#!/usr/bin/env python
"""Profile the multilevel partitioner on a streamed scale-ladder rung.

Runs cProfile over one ``multilevel_kway_partition`` call on a named
stream circuit (the scale-ladder workload shape: streamed array-native
build, batch refiner) and prints the top cumulative functions plus the
recorder's per-phase wall breakdown (coarsen / initial / uncoarsen /
batch_refine).  This is the before/after evidence harness for
partitioner kernel work — the peer of ``tools/profile_sim.py`` on the
partitioning side (docs/performance.md, "Coarsening" and "Scale
ladder", record the numbers it moved).

Examples::

    PYTHONPATH=src python tools/profile_partition.py
    PYTHONPATH=src python tools/profile_partition.py \\
        --circuit viterbi-s10k --k 4 --top 30
    PYTHONPATH=src python tools/profile_partition.py --refiner fm \\
        --sort tottime
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.circuits import load_stream_circuit  # noqa: E402
from repro.core import multilevel_kway_partition  # noqa: E402
from repro.core.batch_refine import REFINERS  # noqa: E402
from repro.hypergraph.build import streamed_flat_hypergraph  # noqa: E402
from repro.obs import MetricsRecorder  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="cProfile one multilevel partition of a stream rung")
    parser.add_argument("--circuit", default="viterbi-s100k",
                        help="stream circuit registry name "
                             "(default: %(default)s)")
    parser.add_argument("--k", type=int, default=8,
                        help="partition count (default: %(default)s)")
    parser.add_argument("--b", type=float, default=5.0,
                        help="Formula-1 balance factor "
                             "(default: %(default)s)")
    parser.add_argument("--seed", type=int, default=1,
                        help="matching / initial-fill seed")
    parser.add_argument("--refiner", default="batch", choices=REFINERS,
                        help="per-level refiner (default: %(default)s)")
    parser.add_argument("--top", type=int, default=25,
                        help="functions to print")
    parser.add_argument("--sort", default="cumulative",
                        choices=("cumulative", "tottime", "calls"),
                        help="pstats sort order")
    args = parser.parse_args(argv)

    csr = load_stream_circuit(args.circuit)
    hg = streamed_flat_hypergraph(csr)
    print(f"circuit={args.circuit} gates={csr.num_gates} "
          f"edges={hg.num_edges} pins={hg.num_pins} "
          f"k={args.k} b={args.b} refiner={args.refiner}")

    rec = MetricsRecorder()
    prof = cProfile.Profile()
    result = prof.runcall(
        multilevel_kway_partition, hg, args.k, args.b,
        seed=args.seed, workers=1, recorder=rec, refiner=args.refiner,
    )
    stats = pstats.Stats(prof, stream=sys.stdout)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)

    print(f"cut={result.cut_size} balanced={result.balanced} "
          f"levels={result.levels} rounds={result.refine_rounds}")
    print("phase walls:")
    for phase, wall in rec.host_timings().items():
        if phase.startswith("partition."):
            print(f"  {phase:>26}: {wall:8.3f}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
