#!/usr/bin/env python
"""Profile the simulation substrate: one presim point + one full run.

Runs cProfile over the two workloads the selection loop is made of —

* **presim point**: one short Time Warp run on one (k, b) candidate
  partition, the unit of work ``brute_force_presim`` repeats per grid
  cell (§3.4 / Figure 3 of the paper); and
* **full run**: the same partition driven with a 10x-longer stimulus,
  the shape of the final Table 5 runs —

and prints the top cumulative functions of each (default 20).  This is
the before/after evidence harness for kernel work: run it on two
checkouts and diff where the time goes (docs/performance.md,
"Simulation kernel", records the numbers this PR moved).

Examples::

    PYTHONPATH=src python tools/profile_sim.py
    PYTHONPATH=src python tools/profile_sim.py --circuit viterbi-test \\
        --vectors 20 --top 30
    PYTHONPATH=src python tools/profile_sim.py --skip-full
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.circuits import circuit_source, random_vectors  # noqa: E402
from repro.core.multiway import design_driven_partition  # noqa: E402
from repro.core.presim import evaluate_partition  # noqa: E402
from repro.sim.cluster import ClusterSpec, TimeWarpConfig  # noqa: E402
from repro.sim.compiled import compile_circuit  # noqa: E402
from repro.verilog import compile_verilog  # noqa: E402


def _profile(label: str, func, top: int, sort: str) -> None:
    print(f"\n=== {label} ===")
    prof = cProfile.Profile()
    result = prof.runcall(func)
    stats = pstats.Stats(prof, stream=sys.stdout)
    stats.strip_dirs().sort_stats(sort).print_stats(top)
    if result is not None:
        print(f"[{label}] committed_events={result.committed_events} "
              f"rollbacks={result.rollbacks} "
              f"speedup={result.speedup:.3f}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="cProfile one presim point and one full run")
    parser.add_argument("--circuit", default="viterbi-single",
                        help="named circuit generator (default: %(default)s)")
    parser.add_argument("--k", type=int, default=4,
                        help="machine count for the candidate partition")
    parser.add_argument("--b", type=float, default=12.5,
                        help="balance factor for the candidate partition")
    parser.add_argument("--vectors", type=int, default=60,
                        help="presim stimulus vectors (full run uses 10x)")
    parser.add_argument("--full-vectors", type=int, default=None,
                        help="override the full-run vector count")
    parser.add_argument("--seed", type=int, default=1,
                        help="stimulus and partitioner seed")
    parser.add_argument("--top", type=int, default=20,
                        help="functions to print per profile")
    parser.add_argument("--sort", default="cumulative",
                        choices=("cumulative", "tottime", "calls"),
                        help="pstats sort order")
    parser.add_argument("--skip-presim", action="store_true",
                        help="profile only the full run")
    parser.add_argument("--skip-full", action="store_true",
                        help="profile only the presim point")
    args = parser.parse_args(argv)

    netlist = compile_verilog(circuit_source(args.circuit))
    circuit = compile_circuit(netlist)
    partition = design_driven_partition(netlist, args.k, args.b,
                                        seed=args.seed)
    spec = ClusterSpec(num_machines=args.k)
    config = TimeWarpConfig()
    print(f"circuit={args.circuit} gates={circuit.num_gates} "
          f"k={args.k} b={args.b} cut={partition.cut_size}")

    if not args.skip_presim:
        events = random_vectors(netlist, args.vectors, seed=args.seed)
        _profile(
            f"presim point ({args.vectors} vectors)",
            lambda: evaluate_partition(circuit, partition, events, spec,
                                       config).report,
            args.top, args.sort,
        )
    if not args.skip_full:
        full = (args.full_vectors if args.full_vectors is not None
                else args.vectors * 10)
        events = random_vectors(netlist, full, seed=args.seed)
        _profile(
            f"full run ({full} vectors)",
            lambda: evaluate_partition(circuit, partition, events, spec,
                                       config).report,
            args.top, args.sort,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
