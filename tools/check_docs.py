#!/usr/bin/env python
"""Documentation reference linter.

Verifies that every ``repro.*`` dotted path and every ``--long-flag``
named in ``docs/*.md`` and ``README.md`` resolves to something real:

* dotted paths must import as a module or resolve as an attribute chain
  on an importable module (``repro.obs.registry.METRIC_REGISTRY`` is a
  module plus an attribute — both forms are accepted);
* long flags must exist on the ``python -m repro`` CLI (discovered by
  walking :func:`repro.cli.build_parser` and every subparser), on a
  script under ``benchmarks/`` or ``tools/`` (discovered by scanning
  for ``add_argument`` calls), or on the small external-tool allowlist
  (pytest plugins invoked verbatim in the README);
* CLI *invocations* (``repro sweep --refiner batch ...`` in prose or a
  code block) are checked per subcommand: every flag in the snippet
  must be accepted by **that** subcommand's parser (or the top-level
  one), not merely exist somewhere on the CLI — so a doc showing a
  ``psim``-only flag on ``repro partition`` fails even though the flag
  is real;
* metric and phase names (``part.ml.levels``, ``tw.rollbacks``,
  ``partition.coarsen``, …) must exist in
  :mod:`repro.obs.registry` — including the derived ``.max`` /
  ``.calls`` suffixes and ``family.*`` wildcards.  Only tokens whose
  two-segment family matches a registered name are checked, so
  attribute chains and file names (``part.to_simulation()``,
  ``part.json``) never false-positive.

Docs rot silently — a renamed module or dropped flag leaves stale prose
behind with no test to catch it.  This linter is that test: it runs in
CI via ``tests/test_docs_refs.py`` and standalone as
``python tools/check_docs.py`` (exit 1 lists every dangling reference).
"""

from __future__ import annotations

import argparse
import importlib
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: documentation files the linter covers
DOC_FILES = ("README.md", "docs")

#: flags that belong to external tools invoked verbatim in the docs
EXTERNAL_FLAGS = {
    "--benchmark-only",  # pytest-benchmark
}

_MODULE_RE = re.compile(r"\brepro(?:\.[A-Za-z_][A-Za-z0-9_]*)+")
_FLAG_RE = re.compile(r"(?<![\w-])--[a-z][a-z0-9-]*")
#: a CLI invocation: ``repro <subcommand> <rest-of-snippet>`` (with or
#: without the ``python -m`` prefix); the rest ends at a backtick or
#: newline so inline code spans stay self-contained
_INVOCATION_RE = re.compile(
    r"(?:python -m )?\brepro\s+([a-z][a-z0-9-]*)\b([^`\n]*)"
)
_ADD_ARGUMENT_RE = re.compile(r"add_argument\(\s*['\"](--[a-z][a-z0-9-]*)['\"]")
_METRIC_RE = re.compile(
    r"(?<![\w.])(?:part|tw|seq|sim|bench|partition|obs|refine|presim|sweep|circ)"
    r"\.(?:[a-z0-9_]+\.)*(?:[a-z0-9_]+|\*)"
)


def doc_paths(root: Path) -> list[Path]:
    out = [root / "README.md"]
    out.extend(sorted((root / "docs").glob("*.md")))
    return [p for p in out if p.exists()]


def referenced_tokens(text: str) -> tuple[set[str], set[str], set[str]]:
    """(dotted repro paths, long flags, metric-like tokens) named
    anywhere in a document."""
    return (set(_MODULE_RE.findall(text)), set(_FLAG_RE.findall(text)),
            set(_METRIC_RE.findall(text)))


def _registry_names() -> tuple[set[str], set[str]]:
    """(all registered metric + phase + host-value names, their
    two-segment families)."""
    from repro.obs.registry import (
        HOST_VALUE_REGISTRY,
        METRIC_REGISTRY,
        PHASE_REGISTRY,
    )

    names = (set(METRIC_REGISTRY) | set(PHASE_REGISTRY)
             | set(HOST_VALUE_REGISTRY))
    families = {".".join(n.split(".")[:2]) for n in names}
    return names, families


def metric_complaint(token: str, names: set[str],
                     families: set[str]) -> str | None:
    """Why ``token`` is a stale metric/phase reference, or None.

    Tokens outside every registered two-segment family are presumed to
    be Python attributes or file names and are skipped; ``family.*``
    wildcards pass when any registered name lives under the prefix.
    """
    from repro.obs.registry import PHASE_REGISTRY, is_registered

    if token.endswith(".*"):
        prefix = token[:-2]
        if any(n == prefix or n.startswith(prefix + ".") for n in names):
            return None
        return f"wildcard `{token}` matches no registered metric or phase"
    if ".".join(token.split(".")[:2]) not in families:
        return None  # attribute chain / file name, not a metric
    if is_registered(token) or token in PHASE_REGISTRY or token in names:
        return None
    return f"unregistered metric, phase or host value `{token}`"


def resolves(dotted: str) -> bool:
    """True when ``dotted`` imports as a module or reaches an attribute
    on the longest importable module prefix."""
    parts = dotted.split(".")
    for cut in range(len(parts), 0, -1):
        module_name = ".".join(parts[:cut])
        try:
            obj = importlib.import_module(module_name)
        except ImportError:
            continue
        try:
            for attr in parts[cut:]:
                obj = getattr(obj, attr)
        except AttributeError:
            return False
        return True
    return False


def cli_flags() -> set[str]:
    """Every long option of ``python -m repro``, all subcommands included."""
    from repro.cli import build_parser

    flags: set[str] = set()
    stack = [build_parser()]
    while stack:
        parser = stack.pop()
        for action in parser._actions:
            flags.update(o for o in action.option_strings if o.startswith("--"))
            if isinstance(action, argparse._SubParsersAction):
                stack.extend(action.choices.values())
    return flags


def cli_command_flags() -> dict[str, set[str]]:
    """Long options per ``python -m repro`` subcommand, plus a ``""``
    entry for the top-level parser.  Nested subcommands (e.g. ``repro
    obs timeline``) are flattened into their parent's set."""
    from repro.cli import build_parser

    def collect(parser: argparse.ArgumentParser) -> set[str]:
        flags: set[str] = set()
        stack = [parser]
        while stack:
            p = stack.pop()
            for action in p._actions:
                flags.update(
                    o for o in action.option_strings if o.startswith("--")
                )
                if isinstance(action, argparse._SubParsersAction):
                    stack.extend(action.choices.values())
        return flags

    table: dict[str, set[str]] = {"": set()}
    for action in build_parser()._actions:
        if isinstance(action, argparse._SubParsersAction):
            for name, sub in action.choices.items():
                table[name] = collect(sub)
        else:
            table[""].update(
                o for o in action.option_strings if o.startswith("--")
            )
    return table


def invocation_complaints(text: str,
                          table: dict[str, set[str]]) -> list[str]:
    """Flags used in ``repro <cmd> ...`` snippets that ``<cmd>`` does
    not accept.  Backslash-continued command lines are joined first;
    words that happen to follow ``repro`` in prose are skipped unless
    they name a real subcommand."""
    out: list[str] = []
    for match in _INVOCATION_RE.finditer(text.replace("\\\n", " ")):
        cmd, rest = match.group(1), match.group(2)
        if cmd not in table:
            continue
        allowed = table[cmd] | table[""] | EXTERNAL_FLAGS
        out.extend(
            f"`{flag}` is not accepted by `repro {cmd}`"
            for flag in _FLAG_RE.findall(rest) if flag not in allowed
        )
    return out


def script_flags(root: Path) -> set[str]:
    """Long options declared by scripts under benchmarks/ and tools/."""
    flags: set[str] = set()
    for directory in ("benchmarks", "tools"):
        for script in sorted((root / directory).glob("*.py")):
            flags.update(_ADD_ARGUMENT_RE.findall(script.read_text()))
    return flags


def check_docs(root: Path = REPO_ROOT) -> list[str]:
    """Return a list of dangling-reference complaints (empty = clean)."""
    known_flags = cli_flags() | script_flags(root) | EXTERNAL_FLAGS
    names, families = _registry_names()
    command_table = cli_command_flags()
    complaints: list[str] = []
    for path in doc_paths(root):
        text = path.read_text()
        modules, flags, metrics = referenced_tokens(text)
        rel = path.relative_to(root)
        for dotted in sorted(modules):
            if not resolves(dotted):
                complaints.append(f"{rel}: unresolvable path `{dotted}`")
        for flag in sorted(flags):
            if flag not in known_flags:
                complaints.append(f"{rel}: unknown CLI flag `{flag}`")
        for why in sorted(set(invocation_complaints(text, command_table))):
            complaints.append(f"{rel}: {why}")
        for token in sorted(metrics):
            why = metric_complaint(token, names, families)
            if why is not None:
                complaints.append(f"{rel}: {why}")
    return complaints


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path, default=REPO_ROOT,
                        help="repository root (default: the checkout "
                             "containing this script)")
    args = parser.parse_args(argv)
    complaints = check_docs(args.root)
    for complaint in complaints:
        print(complaint)
    if complaints:
        print(f"{len(complaints)} dangling documentation reference(s)")
        return 1
    print("docs clean: every repro.* path, CLI flag and metric name "
          "resolves")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
