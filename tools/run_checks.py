#!/usr/bin/env python
"""One-shot pre-PR gate: every fast repository check, chained.

Runs, in order, stopping at the first failure:

1. the tier-1 test suite (``pytest tests/ -x -q`` with ``src`` on the
   path) — the correctness gate ROADMAP.md names;
2. the documentation reference linter (``tools/check_docs.py``) —
   every ``repro.*`` path, CLI flag and metric/phase/host-value name
   in the docs must resolve;
3. the observability selfcheck (``python -m repro obs selfcheck``) —
   analyzers, span-tree invariants, worker-lane merge and the
   Chrome-trace exporter on built-in artifacts;
4. the scale-ladder smoke rung (``benchmarks/bench_scale_ladder.py
   --rungs 1``) — the 10k rung builds, partitions balanced, and its
   per-phase coarsen/refine wall breakdown carries every expected
   recorder phase (the smoke asserts the breakdown keys exist).

Usage::

    python tools/run_checks.py            # run everything
    python tools/run_checks.py --list     # show the steps and exit

Exit code 0 means every step passed (the README names this as the
command to run before opening a PR).  Benchmarks are *not* included —
they take minutes; run ``pytest benchmarks/ --benchmark-only`` when a
change touches measured claims.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: (label, argv, extra PYTHONPATH entries) for each gate step
STEPS: list[tuple[str, list[str], tuple[str, ...]]] = [
    ("tier-1 tests",
     [sys.executable, "-m", "pytest", "tests/", "-x", "-q"],
     ("src",)),
    ("docs references",
     [sys.executable, "tools/check_docs.py"],
     ()),
    ("obs selfcheck",
     [sys.executable, "-m", "repro", "obs", "selfcheck"],
     ("src",)),
    ("scale-ladder smoke rung",
     [sys.executable, "benchmarks/bench_scale_ladder.py", "--rungs", "1"],
     ("src",)),
]


def run_step(label: str, argv: list[str],
             pythonpath: tuple[str, ...]) -> int:
    env = dict(os.environ)
    if pythonpath:
        extra = os.pathsep.join(str(REPO_ROOT / p) for p in pythonpath)
        prior = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (f"{extra}{os.pathsep}{prior}" if prior
                             else extra)
    print(f"==> {label}: {' '.join(argv)}")
    t0 = time.perf_counter()
    code = subprocess.call(argv, cwd=REPO_ROOT, env=env)
    dt = time.perf_counter() - t0
    status = "ok" if code == 0 else f"FAILED (exit {code})"
    print(f"<== {label}: {status} in {dt:.1f}s\n")
    return code


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--list", action="store_true",
                        help="print the steps without running them")
    args = parser.parse_args(argv)
    if args.list:
        for label, step_argv, _ in STEPS:
            print(f"{label}: {' '.join(step_argv)}")
        return 0
    for label, step_argv, pythonpath in STEPS:
        code = run_step(label, step_argv, pythonpath)
        if code != 0:
            print(f"gate failed at step: {label}")
            return code
    print(f"all {len(STEPS)} checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
