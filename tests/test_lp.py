"""ClusterLP mechanics: batches, rollback, annihilation, fossil collection."""

import pytest

from repro.errors import SimulationError
from repro.sim import compile_circuit
from repro.sim.events import Message
from repro.sim.lp import ClusterLP
from repro.sim.logic import VX
from repro.verilog import NetlistBuilder


def two_lp_fixture():
    """a --not(g0)--> m --not(g1)--> y, g0 in lp0, g1 in lp1."""
    nb = NetlistBuilder("t")
    a = nb.input("a")
    m = nb.net("m")
    y = nb.net("y")
    nb.gate("not", (a,), m, name="g0")
    nb.gate("not", (m,), y, name="g1")
    nb.output_net(y)
    nl = nb.build()
    cc = compile_circuit(nl)
    lp0 = ClusterLP(0, cc, [0], checkpoint_interval=1)
    lp1 = ClusterLP(1, cc, [1], checkpoint_interval=1)
    lp0.out_dests[m] = (1,)
    return nl, cc, lp0, lp1, a, m, y


def env_msg(net, value, t, uid, dst=0):
    return Message(recv_time=t, net=net, value=value, src_lp=-1,
                   dst_lp=dst, send_time=t - 1, uid=uid)


class TestBatches:
    def test_no_work_raises(self):
        nl, cc, lp0, lp1, a, m, y = two_lp_fixture()
        with pytest.raises(SimulationError, match="no work"):
            lp0.execute_batch()

    def test_batch_produces_boundary_send(self):
        nl, cc, lp0, lp1, a, m, y = two_lp_fixture()
        lp0.insert_positive(env_msg(a, 1, 0, 0))
        res = lp0.execute_batch()
        assert res.vt == 0
        assert res.gate_evals == 1
        assert len(res.sends) == 1
        msg = res.sends[0]
        assert (msg.net, msg.value, msg.recv_time, msg.dst_lp) == (m, 0, 1, 1)

    def test_local_value_tracks(self):
        nl, cc, lp0, lp1, a, m, y = two_lp_fixture()
        lp0.insert_positive(env_msg(a, 1, 0, 0))
        lp0.execute_batch()  # t=0: evaluates g0, schedules m@1
        lp0.execute_batch()  # t=1: applies m=0 locally
        assert lp0.local_value(m) == 0
        assert lp0.local_value(a) == 1
        assert lp0.next_pending_vt() is None

    def test_swallowed_change_sends_nothing(self):
        nl, cc, lp0, lp1, a, m, y = two_lp_fixture()
        lp0.insert_positive(env_msg(a, 1, 0, 0))
        lp0.execute_batch()
        lp0.execute_batch()
        # drive the same value again: gate output unchanged, no message
        lp0.insert_positive(env_msg(a, 1, 4, 1))
        res = lp0.execute_batch()
        assert res.gate_evals == 0
        assert res.sends == []

    def test_message_filter_tracks_committed_change_stream(self):
        nl, cc, lp0, lp1, a, m, y = two_lp_fixture()
        # a: X->0 at 0 => m: X->1, a: 0->1 at 4 => m: 1->0
        lp0.insert_positive(env_msg(a, 0, 0, 0))
        lp0.insert_positive(env_msg(a, 1, 4, 1))
        sent = []
        while lp0.next_pending_vt() is not None:
            sent += lp0.execute_batch().sends
        assert [(s.recv_time, s.value) for s in sent] == [(1, 1), (5, 0)]


class TestRollback:
    def test_straggler_triggers_rollback(self):
        nl, cc, lp0, lp1, a, m, y = two_lp_fixture()
        lp0.insert_positive(env_msg(a, 1, 0, 0))
        while lp0.next_pending_vt() is not None:
            lp0.execute_batch()
        assert lp0.lvt == 1
        rb = lp0.insert_positive(env_msg(a, 0, 1, 1))
        assert rb is not None
        assert rb.restored_to < 1
        assert lp0.lvt == rb.restored_to

    def test_rollback_restores_values(self):
        nl, cc, lp0, lp1, a, m, y = two_lp_fixture()
        lp0.insert_positive(env_msg(a, 1, 0, 0))
        lp0.execute_batch()
        lp0.execute_batch()
        assert lp0.local_value(m) == 0
        lp0.insert_positive(env_msg(a, 0, 1, 1))  # straggler at t=1
        # re-execute: now a goes 1 at 0 then 0 at 1
        while lp0.next_pending_vt() is not None:
            lp0.execute_batch()
        assert lp0.local_value(a) == 0
        assert lp0.local_value(m) == 1

    def test_future_message_no_rollback(self):
        nl, cc, lp0, lp1, a, m, y = two_lp_fixture()
        lp0.insert_positive(env_msg(a, 1, 0, 0))
        lp0.execute_batch()
        assert lp0.insert_positive(env_msg(a, 0, 5, 1)) is None

    def test_unconfirmed_buffer_suppresses_identical_resend(self):
        nl, cc, lp0, lp1, a, m, y = two_lp_fixture()
        lp0.insert_positive(env_msg(a, 1, 0, 0))
        sends = []
        while lp0.next_pending_vt() is not None:
            sends += lp0.execute_batch().sends
        assert len(sends) == 1
        # a straggler at t=3 does not affect the batch at t=0;
        # its send moves to the unconfirmed buffer...
        lp0.insert_positive(env_msg(a, 0, 3, 1))
        # ...but lvt was 1 < 3 so no rollback happened at all here;
        # force one with a straggler at t=1 instead
        rb = lp0.insert_positive(env_msg(a, 1, 1, 2))
        assert rb is not None
        resends = []
        while lp0.next_pending_vt() is not None:
            resends += lp0.execute_batch().sends
        # batch at t=0 re-emits m=0@1 identically: suppressed.
        # later batches emit the genuinely new changes.
        assert all(s.recv_time != 1 for s in resends)

    def test_anti_message_annihilates_unprocessed(self):
        nl, cc, lp0, lp1, a, m, y = two_lp_fixture()
        msg = Message(recv_time=3, net=m, value=1, src_lp=0, dst_lp=1,
                      send_time=2, uid=9)
        lp1.insert_positive(msg)
        assert lp1.next_pending_vt() == 3
        lp1.insert_anti(msg.anti())
        assert lp1.next_pending_vt() is None

    def test_anti_message_rolls_back_processed(self):
        nl, cc, lp0, lp1, a, m, y = two_lp_fixture()
        msg = Message(recv_time=3, net=m, value=1, src_lp=0, dst_lp=1,
                      send_time=2, uid=9)
        lp1.insert_positive(msg)
        while lp1.next_pending_vt() is not None:
            lp1.execute_batch()
        assert lp1.lvt >= 3
        rb = lp1.insert_anti(msg.anti())
        assert rb is not None
        assert lp1.next_pending_vt() is None  # the event is gone

    def test_anti_before_positive_annihilates_on_arrival(self):
        """Reordered channels (LP migration): the anti parks until its
        twin arrives, then both vanish without any event surviving."""
        nl, cc, lp0, lp1, a, m, y = two_lp_fixture()
        pos = Message(recv_time=3, net=m, value=1, src_lp=0, dst_lp=1,
                      send_time=2, uid=77)
        lp1.insert_anti(pos.anti())
        assert lp1.next_pending_vt() is None
        assert lp1.insert_positive(pos) is None
        assert lp1.next_pending_vt() is None  # annihilated in flight


class TestFossil:
    def test_fossil_keeps_restore_point(self):
        nl, cc, lp0, lp1, a, m, y = two_lp_fixture()
        for i, t in enumerate(range(0, 40, 4)):
            lp0.insert_positive(env_msg(a, (i % 2), t, i))
        while lp0.next_pending_vt() is not None:
            lp0.execute_batch()
        bytes_before = lp0.checkpoint_bytes()
        lp0.fossil_collect(gvt=30)
        assert lp0.checkpoint_bytes() < bytes_before
        # a straggler just above GVT must still be restorable
        rb = lp0.insert_positive(env_msg(a, 1, 31, 99))
        assert rb is not None

    def test_fossil_drops_old_inputs(self):
        nl, cc, lp0, lp1, a, m, y = two_lp_fixture()
        for i, t in enumerate(range(0, 20, 4)):
            lp0.insert_positive(env_msg(a, (i % 2), t, i))
        while lp0.next_pending_vt() is not None:
            lp0.execute_batch()
        n_before = len(lp0._in_msgs)
        lp0.fossil_collect(gvt=100)
        assert len(lp0._in_msgs) < n_before


class TestCheckpointAccounting:
    """The cached per-snapshot ``size`` and the LP's running
    ``checkpoint_bytes()`` total must pin exactly against the actual
    array buffers (``ndarray.nbytes``) at every lifecycle stage."""

    @staticmethod
    def _expected(cp):
        return (
            cp.values.nbytes
            + cp.pending.nbytes
            + 32 * sum(len(s) + 1 for s in cp.agenda.values())
            + 8 * len(cp.heap)
        )

    def _assert_consistent(self, lp):
        for cp in lp._checkpoints:
            assert cp.size == cp.nbytes() == self._expected(cp)
        assert lp.checkpoint_bytes() == sum(
            cp.size for cp in lp._checkpoints
        )

    def test_size_pins_against_ndarray_nbytes(self):
        nl, cc, lp0, lp1, a, m, y = two_lp_fixture()
        self._assert_consistent(lp0)  # the construction-time snapshot
        for i, t in enumerate(range(0, 20, 4)):
            lp0.insert_positive(env_msg(a, (i % 2), t, i))
        while lp0.next_pending_vt() is not None:
            lp0.execute_batch()
        assert len(lp0._checkpoints) > 1
        self._assert_consistent(lp0)
        # array-backed snapshots: the value copy dominates and is
        # accounted at its true buffer size
        cp = lp0._checkpoints[-1]
        assert cp.values.nbytes == lp0.values.nbytes
        assert cp.size >= cp.values.nbytes + cp.pending.nbytes

    def test_running_total_tracks_rollback_and_fossil(self):
        nl, cc, lp0, lp1, a, m, y = two_lp_fixture()
        for i, t in enumerate(range(0, 40, 4)):
            lp0.insert_positive(env_msg(a, (i % 2), t, i))
        while lp0.next_pending_vt() is not None:
            lp0.execute_batch()
        self._assert_consistent(lp0)
        # rollback pops snapshots: the total must shrink in lockstep
        n_before = len(lp0._checkpoints)
        lp0.insert_positive(env_msg(a, 1, 17, 99))
        assert len(lp0._checkpoints) < n_before
        self._assert_consistent(lp0)
        while lp0.next_pending_vt() is not None:
            lp0.execute_batch()
        self._assert_consistent(lp0)
        # fossil collection deletes the pre-GVT prefix
        lp0.fossil_collect(gvt=30)
        self._assert_consistent(lp0)
        # a repeated round at the same floor is a no-op, not a drift
        total = lp0.checkpoint_bytes()
        lp0.fossil_collect(gvt=30)
        assert lp0.checkpoint_bytes() == total
        self._assert_consistent(lp0)


class TestConstruction:
    def test_gate_clusters_and_nets(self):
        nl, cc, lp0, lp1, a, m, y = two_lp_fixture()
        assert lp0.has_net(a) and lp0.has_net(m)
        assert not lp0.has_net(y)
        assert lp1.has_net(m) and lp1.has_net(y)

    def test_initial_values_are_x(self):
        nl, cc, lp0, lp1, a, m, y = two_lp_fixture()
        assert lp0.local_value(a) == VX
        assert lp0.local_value(m) == VX
