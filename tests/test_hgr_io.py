"""hMetis .hgr format round trips and error handling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import HypergraphError
from repro.hypergraph import Hypergraph, dumps_hgr, loads_hgr, read_hgr, write_hgr


def roundtrip(hg):
    return loads_hgr(dumps_hgr(hg))


class TestRoundTrip:
    def test_unweighted(self):
        hg = Hypergraph.from_edges([1, 1, 1], [[0, 1], [1, 2]])
        rt = roundtrip(hg)
        assert rt.num_vertices == 3
        assert rt.num_edges == 2
        assert list(rt.edge_vertices(0)) == [0, 1]

    def test_vertex_weights(self):
        hg = Hypergraph.from_edges([3, 1], [[0, 1]])
        rt = roundtrip(hg)
        assert rt.vertex_weight.tolist() == [3, 1]
        assert "10" in dumps_hgr(hg).splitlines()[0]

    def test_edge_weights(self):
        hg = Hypergraph.from_edges([1, 1], [[0, 1]], edge_weights=[7])
        rt = roundtrip(hg)
        assert rt.edge_weight.tolist() == [7]

    def test_both_weights_fmt_11(self):
        hg = Hypergraph.from_edges([2, 1], [[0, 1]], edge_weights=[3])
        text = dumps_hgr(hg)
        assert text.splitlines()[0].endswith("11")
        rt = loads_hgr(text)
        assert rt.vertex_weight.tolist() == [2, 1]
        assert rt.edge_weight.tolist() == [3]

    def test_file_io(self, tmp_path):
        hg = Hypergraph.from_edges([1, 2], [[0, 1]])
        path = tmp_path / "x.hgr"
        write_hgr(hg, path)
        rt = read_hgr(path)
        assert rt.vertex_weight.tolist() == [1, 2]

    def test_comments_ignored(self):
        text = "% header comment\n2 3\n1 2\n% mid comment\n2 3\n"
        hg = loads_hgr(text)
        assert hg.num_edges == 2
        assert hg.num_vertices == 3


class TestErrors:
    def test_empty(self):
        with pytest.raises(HypergraphError, match="empty"):
            loads_hgr("")

    def test_bad_header(self):
        with pytest.raises(HypergraphError, match="header"):
            loads_hgr("1\n")

    def test_unsupported_fmt(self):
        with pytest.raises(HypergraphError, match="fmt"):
            loads_hgr("1 2 99\n1 2\n")

    def test_truncated(self):
        with pytest.raises(HypergraphError, match="truncated"):
            loads_hgr("3 4\n1 2\n")

    def test_pin_out_of_range(self):
        with pytest.raises(HypergraphError, match="out of range"):
            loads_hgr("1 2\n1 3\n")


@st.composite
def any_hg(draw):
    n = draw(st.integers(2, 10))
    m = draw(st.integers(1, 10))
    edges = []
    for _ in range(m):
        size = draw(st.integers(2, min(n, 4)))
        edges.append(
            draw(st.lists(st.integers(0, n - 1), min_size=size, max_size=size, unique=True))
        )
    vw = draw(st.lists(st.integers(1, 9), min_size=n, max_size=n))
    ew = draw(st.one_of(st.none(), st.lists(st.integers(1, 9), min_size=m, max_size=m)))
    return Hypergraph.from_edges(vw, edges, ew)


@given(any_hg())
@settings(max_examples=60, deadline=None)
def test_roundtrip_preserves_structure(hg):
    rt = roundtrip(hg)
    assert rt.num_vertices == hg.num_vertices
    assert rt.num_edges == hg.num_edges
    assert rt.vertex_weight.tolist() == hg.vertex_weight.tolist()
    assert rt.edge_weight.tolist() == hg.edge_weight.tolist()
    for e in range(hg.num_edges):
        assert list(rt.edge_vertices(e)) == list(hg.edge_vertices(e))
