"""Pre-simulation searches (brute force + the paper's Figure 3 heuristic)."""

import pytest

from repro.circuits import random_vectors
from repro.core import brute_force_presim, evaluate_partition, heuristic_presim
from repro.core import design_driven_partition
from repro.errors import ConfigError
from repro.sim import ClusterSpec, TimeWarpConfig, compile_circuit


KS = (2, 3)
BS = (7.5, 12.5)


@pytest.fixture(scope="module")
def study(viterbi_test):
    events = random_vectors(viterbi_test, 10, seed=2)
    return brute_force_presim(
        viterbi_test, events, ks=KS, bs=BS, seed=1,
        config=TimeWarpConfig(gvt_interval=64),
    )


def _point_row(p):
    """The full structural outcome of one evaluated (k, b) point."""
    return (p.k, p.b, p.cut_size, p.balanced, repr(p.sim_time),
            repr(p.speedup), p.messages, p.rollbacks,
            p.report.committed_events, p.report.processed_events,
            p.report.anti_messages, p.report.rolled_back_events)


class TestParallelSweep:
    """Worker count is a wall-time knob only: the fan-out over a
    process pool must reproduce the serial sweep bit for bit."""

    def test_brute_force_workers_identical(self, viterbi_test):
        events = random_vectors(viterbi_test, 8, seed=2)
        kw = dict(ks=KS, bs=BS, seed=1,
                  config=TimeWarpConfig(gvt_interval=64))
        serial = brute_force_presim(viterbi_test, events, **kw)
        parallel = brute_force_presim(viterbi_test, events, workers=2, **kw)
        assert [_point_row(p) for p in serial.points] == \
            [_point_row(p) for p in parallel.points]
        assert _point_row(serial.best) == _point_row(parallel.best)
        assert serial.runs == parallel.runs

    def test_heuristic_workers_identical(self, viterbi_test):
        events = random_vectors(viterbi_test, 8, seed=2)
        kw = dict(max_k=3, seed=1, config=TimeWarpConfig(gvt_interval=64))
        serial = heuristic_presim(viterbi_test, events, **kw)
        parallel = heuristic_presim(viterbi_test, events, workers=2, **kw)
        assert [_point_row(p) for p in serial.points] == \
            [_point_row(p) for p in parallel.points]
        assert _point_row(serial.best) == _point_row(parallel.best)
        assert serial.runs == parallel.runs


class TestBruteForce:
    def test_grid_covered(self, study):
        combos = {(p.k, p.b) for p in study.points}
        assert combos == {(k, b) for k in KS for b in BS}
        assert study.runs == len(KS) * len(BS)

    def test_best_is_max_speedup(self, study):
        assert study.best.speedup == max(p.speedup for p in study.points)

    def test_best_per_k(self, study):
        per_k = study.best_per_k()
        assert set(per_k) == set(KS)
        for k, p in per_k.items():
            assert p.k == k
            assert p.speedup == max(q.speedup for q in study.points if q.k == k)

    def test_points_carry_simulation_stats(self, study):
        for p in study.points:
            assert p.sim_time > 0
            assert p.report.verified
            assert p.messages >= 0 and p.rollbacks >= 0

    def test_empty_grid_rejected(self, viterbi_test):
        with pytest.raises(ConfigError):
            brute_force_presim(viterbi_test, [], ks=(), bs=(7.5,))


class TestHeuristic:
    def test_runs_at_most_brute_force(self, viterbi_test, study):
        events = random_vectors(viterbi_test, 10, seed=2)
        heur = heuristic_presim(
            viterbi_test, events, max_k=max(KS), seed=1,
            b_start=7.5, b_stop=15.0, b_step=5.0,
            config=TimeWarpConfig(gvt_interval=64),
        )
        # fig-3 sweep: at most (k-1) * len(b grid) runs
        assert 1 <= heur.runs <= (max(KS) - 1) * 2
        assert heur.best is not None

    def test_needs_k2(self, viterbi_test):
        with pytest.raises(ConfigError, match="max_k"):
            heuristic_presim(viterbi_test, [], max_k=1)

    def test_heuristic_picks_from_evaluated(self, viterbi_test):
        events = random_vectors(viterbi_test, 10, seed=2)
        heur = heuristic_presim(
            viterbi_test, events, max_k=3, seed=1,
            config=TimeWarpConfig(gvt_interval=64),
        )
        assert heur.best in heur.points


class TestEvaluatePartition:
    def test_single_point(self, viterbi_test):
        events = random_vectors(viterbi_test, 10, seed=2)
        part = design_driven_partition(viterbi_test, k=2, b=10.0, seed=1)
        circuit = compile_circuit(viterbi_test)
        point = evaluate_partition(
            circuit, part, events, ClusterSpec(num_machines=1),
            TimeWarpConfig(gvt_interval=64),
        )
        assert point.k == 2 and point.b == 10.0
        assert point.cut_size == part.cut_size
        assert point.speedup > 0
