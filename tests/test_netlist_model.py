"""Netlist model internals not covered elsewhere."""

import pytest

from repro.errors import NetlistError
from repro.verilog import CONST0, NetlistBuilder, compile_verilog
from repro.verilog.netlist import Netlist


class TestNetlistChecks:
    def test_gate_cannot_drive_constant(self):
        nl = Netlist("t")
        a = nl.add_net("a")
        with pytest.raises(NetlistError, match="constant"):
            nl.add_gate("buf", "g", (), (a,), CONST0)

    def test_driver_and_sinks_indexed(self, adder4):
        for gate in adder4.gates:
            assert adder4.driver_of(gate.output) == gate.gid
            for nid in gate.inputs:
                assert gate.gid in adder4.sinks_of(nid)

    def test_walk_is_depth_first_self_first(self, adder4):
        names = [n.name for n in adder4.hierarchy.walk()]
        assert names[0] == "top"
        # each fa is followed immediately by its ha children
        i = names.index("f0")
        assert set(names[i + 1 : i + 3]) == {"u1", "u2"}

    def test_sequential_gates_listing(self, pipeadd):
        seq = pipeadd.sequential_gates()
        assert len(seq) == 14
        assert all(g.gtype == "dffr" for g in seq)

    def test_repr_contains_counts(self, adder4):
        text = repr(adder4)
        assert "gates=20" in text

    def test_builder_hierarchy_nesting(self):
        nb = NetlistBuilder("t")
        a = nb.input("a")
        y1, y2 = nb.net(), nb.net()
        nb.gate("not", (a,), y1, path=("outer", "inner"))
        nb.gate("not", (y1,), y2, path=("outer",))
        nl = nb.build()
        outer = nl.hierarchy.children["outer"]
        assert outer.total_gates == 2
        assert outer.children["inner"].total_gates == 1
        assert len(outer.gate_ids) == 1


class TestGateRecord:
    def test_paths_prefix_names(self, adder4):
        for gate in adder4.gates:
            if gate.path:
                assert gate.name.startswith(".".join(gate.path))

    def test_gate_is_frozen(self, adder4):
        with pytest.raises(AttributeError):
            adder4.gates[0].gtype = "or"  # type: ignore[misc]
