"""Trace analyzers, run reports and the regression gate.

The synthetic traces here are hand-built against the kernel's trace
contract (the cascade-ownership invariant documented in
``repro.obs.analyze``): anti-messages a rollback injects occupy the
``send`` sequence numbers immediately before the rollback's own event.
The known answers (cascade depth/width/culprit, stall windows, the 2x2
locality matrix) are therefore exact, not fuzzy.
"""

from __future__ import annotations

import io

import pytest

from repro.circuits import random_vectors
from repro.core import design_driven_partition
from repro.errors import TraceError
from repro.hypergraph import Clustering
from repro.obs import (
    DEFAULT_THRESHOLDS,
    GVT_DONE,
    HIGHER_IS_BETTER,
    NEUTRAL_METRICS,
    REFERENCED_METRICS,
    TRACE_EVENT_KINDS,
    TRACE_FIELD_REGISTRY,
    ProgressHeartbeat,
    TraceBuffer,
    analyze_run,
    diff_metrics,
    gate_directories,
    gvt_progress,
    is_registered,
    message_locality,
    metrics_document,
    metrics_equal,
    parse_trace,
    reconstruct_cascades,
    rollback_hotspots,
    trace_fields,
    write_metrics,
)
from repro.sim import (
    ClusterSpec,
    SequentialSimulator,
    TimeWarpConfig,
    TimeWarpEngine,
    run_partitioned,
)


def ev(seq, kind, **fields):
    return {"seq": seq, "kind": kind, **fields}


def send(seq, src, dst, *, uid, sign=1, src_part=None, dst_part=None):
    return ev(seq, "send", src_machine=src, dst_machine=dst,
              src_lp=src, dst_lp=dst,
              src_partition=src if src_part is None else src_part,
              dst_partition=dst if dst_part is None else dst_part,
              net=0, recv_time=10, sign=sign, uid=uid,
              local=int(src == dst), wall=0.0)


def rollback(seq, lp, *, src, uid, sign, antis=0, undone=1, depth=1,
             part=None, src_part=None):
    return ev(seq, "rollback", machine=lp, lp=lp,
              partition=lp if part is None else part,
              straggler_vt=10, straggler_src=src,
              src_partition=src if src_part is None else src_part,
              straggler_uid=uid, sign=sign, restored_to=5,
              undone=undone, antis=antis, depth=depth, wall=0.0)


# A straggler from LP0 rolls back LP1; LP1's anti-message rolls back
# LP2 — the canonical 3-LP cascade of depth 2.
CASCADE_3LP = [
    send(0, 0, 1, uid=7),                       # the straggler itself
    send(1, 1, 2, uid=3, sign=-1),              # anti injected by seq-2 rollback
    rollback(2, 1, src=0, uid=7, sign=1, antis=1, undone=4, depth=2),
    rollback(3, 2, src=1, uid=3, sign=-1, undone=2),
]


# ---------------------------------------------------------------------------
# Parsing


class TestParseTrace:
    def test_roundtrip_through_tracebuffer(self):
        buf = TraceBuffer()
        buf.emit("exec", lp=0, vt=5)
        buf.emit("gvt", round=1, gvt=3)
        events = parse_trace(buf.to_jsonl())
        assert [e["kind"] for e in events] == ["exec", "gvt"]
        assert events[0]["lp"] == 0 and events[1]["gvt"] == 3

    def test_blank_lines_skipped(self):
        assert parse_trace("\n\n") == []

    @pytest.mark.parametrize("text, match", [
        ("{not json", "not valid JSON"),
        ("[1, 2]", "expected an object"),
        ('{"kind": "mystery", "seq": 0}', "unknown event kind"),
        ('{"kind": "exec"}', "missing integer 'seq'"),
    ])
    def test_rejects_malformed(self, text, match):
        with pytest.raises(TraceError, match=match):
            parse_trace(text)


# ---------------------------------------------------------------------------
# Hotspots


class TestHotspots:
    def test_ranking_and_share(self):
        events = [
            rollback(0, 5, src=1, uid=1, sign=1, undone=3, depth=4, part=2),
            rollback(1, 5, src=1, uid=2, sign=1, undone=2, depth=1, part=2),
            rollback(2, 8, src=1, uid=3, sign=1, undone=9, depth=2, part=0),
        ]
        hs = rollback_hotspots(events)
        assert [h.lp for h in hs] == [5, 8]
        top = hs[0]
        assert (top.partition, top.rollbacks, top.undone, top.antis,
                top.max_depth) == (2, 2, 5, 0, 4)
        assert top.share == pytest.approx(2 / 3)
        assert hs[1].share == pytest.approx(1 / 3)

    def test_ties_break_by_undone_then_lp(self):
        events = [
            rollback(0, 9, src=1, uid=1, sign=1, undone=1),
            rollback(1, 4, src=1, uid=2, sign=1, undone=5),
            rollback(2, 2, src=1, uid=3, sign=1, undone=1),
        ]
        assert [h.lp for h in rollback_hotspots(events)] == [4, 2, 9]

    def test_top_limits(self):
        events = [rollback(i, i, src=0, uid=i, sign=1) for i in range(5)]
        assert len(rollback_hotspots(events, top=2)) == 2

    def test_empty_trace(self):
        assert rollback_hotspots([]) == []


# ---------------------------------------------------------------------------
# Cascade reconstruction (the ISSUE's exactness criterion)


class TestCascades:
    def test_3lp_depth2_exact(self):
        (cascade,) = reconstruct_cascades(CASCADE_3LP)
        assert cascade.root_seq == 2
        assert cascade.culprit_lp == 0
        assert cascade.culprit_partition == 0
        assert cascade.depth == 2
        assert cascade.width == 1
        assert cascade.size == 2
        assert cascade.lps == (1, 2)
        assert cascade.rollback_seqs == (2, 3)

    def test_width_two_fanout(self):
        # one rollback at LP1 injects antis to LP2 AND LP3; both victims
        # roll back -> depth 2, width 2, size 3
        events = [
            send(0, 0, 1, uid=7),
            send(1, 1, 2, uid=3, sign=-1),
            send(2, 1, 3, uid=4, sign=-1),
            rollback(3, 1, src=0, uid=7, sign=1, antis=2),
            rollback(4, 2, src=1, uid=3, sign=-1),
            rollback(5, 3, src=1, uid=4, sign=-1),
        ]
        (cascade,) = reconstruct_cascades(events)
        assert (cascade.depth, cascade.width, cascade.size) == (2, 2, 3)
        assert cascade.lps == (1, 2, 3)
        assert cascade.culprit_lp == 0

    def test_lazy_flushed_anti_starts_new_cascade(self):
        # an anti with no owning rollback (lazy cancellation's deferred
        # flush) cannot link its victim to a parent
        events = [
            send(0, 1, 2, uid=3, sign=-1),      # ownerless anti
            rollback(1, 2, src=1, uid=3, sign=-1),
        ]
        (cascade,) = reconstruct_cascades(events)
        assert cascade.root_seq == 1
        assert (cascade.depth, cascade.size) == (1, 1)

    def test_independent_stragglers_are_separate_roots(self):
        events = [
            rollback(0, 1, src=0, uid=1, sign=1),
            rollback(1, 2, src=0, uid=2, sign=1),
        ]
        cascades = reconstruct_cascades(events)
        assert len(cascades) == 2
        assert all(c.size == 1 for c in cascades)

    def test_sorted_by_size_then_root_seq(self):
        events = CASCADE_3LP + [rollback(10, 4, src=0, uid=9, sign=1)]
        cascades = reconstruct_cascades(events)
        assert [c.size for c in cascades] == [2, 1]

    def test_empty(self):
        assert reconstruct_cascades([]) == []


# ---------------------------------------------------------------------------
# Message locality


class TestLocality:
    def _events(self):
        return [
            send(0, 0, 0, uid=1),
            send(1, 0, 0, uid=2),
            send(2, 0, 0, uid=3),
            send(3, 0, 1, uid=4),
            send(4, 1, 1, uid=5),
            send(5, 1, 1, uid=6),
            send(6, -1, 0, uid=7),              # environment: excluded
            send(7, 1, 0, uid=8, sign=-1),      # anti: counted separately
        ]

    def test_2x2_matrix_exact(self):
        loc = message_locality(self._events())
        assert loc.k == 2
        assert loc.counts == ((3, 1), (0, 2))
        assert loc.total_messages == 6
        assert loc.local_messages == 5
        assert loc.remote_messages == 1
        assert loc.local_fraction == pytest.approx(5 / 6)
        assert loc.anti_messages == 1

    def test_by_machine_vs_partition_differ_under_migration(self):
        # LP 1 migrated to machine 0: partition view still charges
        # partition 1, machine view sees local traffic
        moved = send(0, 1, 0, uid=1)
        moved["src_machine"] = 0     # current host after migration
        part = message_locality([moved], by="partition")
        mach = message_locality([moved], by="machine")
        assert part.counts == ((0, 0), (1, 0))
        assert mach.counts == ((1,),)

    def test_rejects_unknown_grouping(self):
        with pytest.raises(TraceError, match="by must be"):
            message_locality([], by="colour")

    def test_empty(self):
        loc = message_locality([])
        assert loc.k == 0 and loc.local_fraction == 1.0


# ---------------------------------------------------------------------------
# GVT progress


class TestGvtProgress:
    def test_stall_windows_and_rate(self):
        gvts = [10, 10, 10, 20, 30, 30]
        events = [ev(i, "gvt", round=i + 1, gvt=g)
                  for i, g in enumerate(gvts)]
        events.append(ev(6, "gvt", round=7, gvt=GVT_DONE))
        g = gvt_progress(events)
        assert g.rounds == 7
        assert g.completed is True
        assert (g.first_gvt, g.final_gvt) == (10, 30)
        # 20 ticks over rounds 1..6
        assert g.advance_rate == pytest.approx(4.0)
        assert [(s.start_round, s.end_round, s.gvt, s.rounds)
                for s in g.stalls] == [(1, 3, 10, 2), (5, 6, 30, 1)]
        assert g.longest_stall == 2

    def test_monotone_progress_has_no_stalls(self):
        events = [ev(i, "gvt", round=i + 1, gvt=10 * (i + 1))
                  for i in range(4)]
        g = gvt_progress(events)
        assert g.stalls == () and g.completed is False
        assert g.advance_rate == pytest.approx(10.0)

    def test_only_sentinel(self):
        g = gvt_progress([ev(0, "gvt", round=1, gvt=GVT_DONE)])
        assert g.completed is True
        assert g.first_gvt is None and g.advance_rate == 0.0

    def test_empty(self):
        g = gvt_progress([])
        assert g.rounds == 0 and g.completed is False


# ---------------------------------------------------------------------------
# diff_metrics / regression gate


def doc(counters, name="unit", **kw):
    return metrics_document(name, kind="run", params={"k": 2, "seed": 1},
                            counters=counters, **kw)


class TestDiffMetrics:
    def test_identity_diff_is_empty(self):
        d = doc({"tw.rollbacks": 100, "tw.speedup": 1.9})
        result = diff_metrics(d, d)
        assert result.deltas == () and not result.has_regressions
        assert result.verdict()["ok"] is True
        assert "no deltas" in result.render()

    def test_volatile_fields_never_diff(self):
        a = doc({"tw.rollbacks": 1}, generated_at="2026-01-01T00:00:00Z")
        b = doc({"tw.rollbacks": 1}, generated_at="2026-02-02T00:00:00Z")
        b["host_timings"] = {"tw.run": 3.5}
        assert diff_metrics(a, b).deltas == ()
        assert metrics_equal(a, b)

    def test_25pct_more_rollbacks_regresses(self):
        result = diff_metrics(doc({"tw.rollbacks": 100}),
                              doc({"tw.rollbacks": 125}))
        (d,) = result.deltas
        assert d.direction == "worse" and d.regressed
        assert d.rel_delta == pytest.approx(0.25)
        assert result.has_regressions
        assert result.verdict()["regressions"] == ["tw.rollbacks"]
        assert "REGRESSED" in result.render()

    def test_small_move_within_threshold_passes(self):
        result = diff_metrics(doc({"tw.rollbacks": 100}),
                              doc({"tw.rollbacks": 105}))
        (d,) = result.deltas
        assert d.direction == "worse" and not d.regressed

    def test_threshold_override_suppresses(self):
        result = diff_metrics(doc({"tw.rollbacks": 100}),
                              doc({"tw.rollbacks": 125}),
                              thresholds={"tw.rollbacks": 0.5})
        assert not result.has_regressions

    def test_higher_is_better_direction(self):
        worse = diff_metrics(doc({"tw.speedup": 2.0}),
                             doc({"tw.speedup": 1.5}))
        assert worse.deltas[0].direction == "worse"
        assert worse.has_regressions
        better = diff_metrics(doc({"tw.speedup": 1.5}),
                              doc({"tw.speedup": 2.0}))
        assert better.deltas[0].direction == "better"
        assert not better.has_regressions
        assert better.verdict()["improvements"] == ["tw.speedup"]

    def test_neutral_metrics_never_gate(self):
        result = diff_metrics(doc({"tw.committed_events": 100}),
                              doc({"tw.committed_events": 500}))
        (d,) = result.deltas
        assert d.direction == "neutral" and not d.regressed

    def test_appearance_from_zero_regresses_regardless(self):
        result = diff_metrics(doc({"tw.rollbacks": 0}),
                              doc({"tw.rollbacks": 5}))
        (d,) = result.deltas
        assert d.rel_delta is None and d.regressed

    def test_default_per_name_thresholds(self):
        loose = diff_metrics(doc({"tw.peak_checkpoint_bytes": 1000}),
                             doc({"tw.peak_checkpoint_bytes": 1200}))
        assert not loose.has_regressions          # +20% < 25% gate
        tight = diff_metrics(doc({"tw.peak_checkpoint_bytes": 1000}),
                             doc({"tw.peak_checkpoint_bytes": 1300}))
        assert tight.has_regressions

    def test_added_removed_and_param_changes(self):
        old = metrics_document("a", kind="run", params={"k": 2},
                               counters={"tw.rollbacks": 1})
        new = metrics_document("b", kind="run", params={"k": 4},
                               counters={"tw.messages_sent": 9})
        result = diff_metrics(old, new)
        assert result.added == ("tw.messages_sent",)
        assert result.removed == ("tw.rollbacks",)
        assert result.param_changes == ("k",)
        assert "different experiments" in result.render()


class TestGateDirectories:
    def _dirs(self, tmp_path, base_counters, cur_counters):
        base, cur = tmp_path / "base", tmp_path / "cur"
        base.mkdir()
        cur.mkdir()
        write_metrics(base / "BENCH_x.json", doc(base_counters, name="x"))
        write_metrics(cur / "BENCH_x.json", doc(cur_counters, name="x"))
        return base, cur

    def test_identical_documents_pass(self, tmp_path):
        base, cur = self._dirs(tmp_path, {"tw.rollbacks": 10},
                               {"tw.rollbacks": 10})
        messages, ok = gate_directories(base, cur)
        assert ok and messages == []

    def test_regression_fails_with_message(self, tmp_path):
        base, cur = self._dirs(tmp_path, {"tw.rollbacks": 100},
                               {"tw.rollbacks": 130})
        messages, ok = gate_directories(base, cur)
        assert not ok
        assert any("tw.rollbacks" in m and "REGRESSED" in m
                   for m in messages)

    def test_missing_baseline_is_reported_not_fatal(self, tmp_path):
        base, cur = tmp_path / "base", tmp_path / "cur"
        base.mkdir()
        cur.mkdir()
        write_metrics(cur / "BENCH_new.json", doc({"tw.rollbacks": 1},
                                                  name="new"))
        messages, ok = gate_directories(base, cur)
        assert ok
        assert messages == ["BENCH_new.json: no baseline (new benchmark?)"]

    def test_invalid_document_fails(self, tmp_path):
        base, cur = self._dirs(tmp_path, {"tw.rollbacks": 1},
                               {"tw.rollbacks": 1})
        (cur / "BENCH_x.json").write_text("{not json")
        messages, ok = gate_directories(base, cur)
        assert not ok and messages


# ---------------------------------------------------------------------------
# Run reports


class TestRunReport:
    def _events(self):
        return CASCADE_3LP + [
            ev(4, "gvt", round=1, gvt=10),
            ev(5, "gvt", round=2, gvt=GVT_DONE),
        ]

    def _metrics(self):
        return doc({"tw.processed_events": 100, "tw.committed_events": 80,
                    "tw.rollbacks": 2, "tw.speedup": 1.5,
                    "part.cut_size": 7},
                   generated_at="2026-08-06T00:00:00Z")

    def test_report_contents(self):
        report = analyze_run(self._events(), self._metrics())
        assert report.commit_efficiency == pytest.approx(0.8)
        assert report.trace_events == 6
        assert len(report.cascades) == 1
        text = report.render()
        assert "# Run report: unit" in text
        assert "`tw.rollbacks` | 2" in text
        assert "commit efficiency" in text and "0.8000" in text
        assert "## Rollback cascades" in text

    def test_byte_identical_across_invocations(self):
        # fresh inputs both times: determinism must not lean on aliasing
        a = analyze_run(self._events(), self._metrics()).render()
        b = analyze_run(self._events(), self._metrics()).render()
        assert a == b

    def test_trace_only_report(self):
        report = analyze_run(self._events())
        assert report.commit_efficiency is None
        assert report.counters == {}
        assert "no gvt events" not in report.render()


# ---------------------------------------------------------------------------
# Registry enforcement: analyzers, gates and the trace contract


class TestRegistryEnforcement:
    @pytest.mark.parametrize("table", [
        REFERENCED_METRICS,
        sorted(HIGHER_IS_BETTER),
        sorted(NEUTRAL_METRICS),
        sorted(DEFAULT_THRESHOLDS),
    ], ids=["referenced", "higher-is-better", "neutral", "thresholds"])
    def test_direction_tables_use_registered_names(self, table):
        unregistered = [n for n in table if not is_registered(n)]
        assert unregistered == []

    def test_trace_field_registry_covers_every_kind(self):
        assert set(TRACE_FIELD_REGISTRY) == set(TRACE_EVENT_KINDS)
        for kind, fields in TRACE_FIELD_REGISTRY.items():
            assert fields, kind
            for name, meaning in fields.items():
                assert name == name.lower() and meaning.strip()

    def test_synthetic_traces_use_registered_fields(self):
        for e in CASCADE_3LP:
            extra = set(e) - {"seq", "kind"} - trace_fields(e["kind"])
            assert not extra, (e["kind"], extra)


# ---------------------------------------------------------------------------
# Real-engine integration


@pytest.fixture(scope="module")
def traced_run(viterbi_test, viterbi_test_circuit):
    events = random_vectors(viterbi_test, 12, seed=3)
    part = design_driven_partition(viterbi_test, k=3, b=10.0, seed=2)
    clusters, lpm = part.to_simulation()
    trace = TraceBuffer()
    report = run_partitioned(
        viterbi_test_circuit, clusters, lpm, events,
        ClusterSpec(num_machines=3), TimeWarpConfig(), trace=trace,
    )
    return trace, report


class TestEngineTraceContract:
    def test_emitted_fields_are_registered(self, traced_run):
        trace, _ = traced_run
        for e in trace.events():
            extra = set(e.fields) - trace_fields(e.kind)
            assert not extra, (e.kind, extra)

    def test_rollback_events_carry_culprit_enrichment(self, traced_run):
        trace, report = traced_run
        rollbacks = trace.events("rollback")
        if report.rollbacks == 0:
            pytest.skip("no rollbacks at this seed")
        for e in rollbacks:
            assert {"partition", "src_partition",
                    "straggler_uid"} <= set(e.fields)

    def test_analyzers_consume_live_trace(self, traced_run):
        trace, report = traced_run
        events = parse_trace(trace.to_jsonl())
        run_report = analyze_run(events, top=3)
        assert run_report.trace_events == len(events)
        assert sum(h.rollbacks for h in
                   rollback_hotspots(events)) == report.rollbacks
        assert reconstruct_cascades(events) is not None
        assert gvt_progress(events).completed

    def test_cascade_rollbacks_account_for_all(self, traced_run):
        trace, report = traced_run
        events = parse_trace(trace.to_jsonl())
        cascades = reconstruct_cascades(events)
        assert sum(c.size for c in cascades) == report.rollbacks


class TestHeartbeatNeutrality:
    def test_heartbeat_does_not_change_results(self, pipeadd,
                                               pipeadd_circuit,
                                               pipeadd_events):
        """The change-stream oracle passes with a heartbeat attached and
        the run is bit-identical to a silent one."""
        seq = SequentialSimulator(pipeadd_circuit, record_changes=True)
        seq.add_inputs(pipeadd_events)
        seq.run()
        clusters = Clustering.top_level(pipeadd).gate_clusters()
        lpm = [i % 3 for i in range(len(clusters))]

        def run(progress):
            eng = TimeWarpEngine(
                pipeadd_circuit, clusters, lpm,
                ClusterSpec(num_machines=3),
                TimeWarpConfig(record_changes=True),
                progress=progress,
            )
            eng.load_inputs(pipeadd_events)
            stats = eng.run()
            eng.verify_change_stream(seq)
            return stats

        stream = io.StringIO()
        beat = ProgressHeartbeat(stream=stream, min_interval=0.0)
        silent, chatty = run(None), run(beat)
        assert silent == chatty
        assert beat.lines >= 1 and stream.getvalue().startswith("tw: ")

    def test_throttling_by_host_clock(self):
        ticks = iter([0.0, 0.2, 0.4, 2.0, 2.1])
        beat = ProgressHeartbeat(stream=io.StringIO(), min_interval=1.0,
                                 clock=lambda: next(ticks))
        for i in range(5):
            beat.update(gvt=i, rounds=i, processed=10 * i, rollbacks=0,
                        wall=0.0)
        # first line prints immediately, then only the t=2.0 update
        assert beat.lines == 2

    def test_done_sentinel_rendered(self):
        stream = io.StringIO()
        beat = ProgressHeartbeat(stream=stream, min_interval=0.0)
        beat.update(gvt=GVT_DONE, rounds=9, processed=100, rollbacks=5,
                    wall=1.0)
        line = stream.getvalue()
        assert "gvt=done" in line and "(5.0%)" in line
