"""The deterministic parallel refinement engine (repro.core.parallel_refine).

Covers the round scheduler (tournament pairing, greedy packing), the
shared worker-count policy, and the engine's hard guarantee: partitions
are bit-identical at any worker count (ISSUE acceptance matrix —
every pairing strategy x 3 seeds x k in {4, 8}).
"""

import os
from itertools import combinations

import numpy as np
import pytest

from repro.circuits import load_circuit
from repro.core import (
    design_driven_partition,
    resolve_workers,
    schedule_rounds,
    tournament_rounds,
)
from repro.core.parallel_refine import REPRO_WORKERS_ENV, PairwiseRefiner
from repro.errors import ConfigError
from repro.obs import MetricsRecorder


class TestTournamentRounds:
    @pytest.mark.parametrize("k", [2, 3, 4, 5, 6, 7, 8, 9, 16, 17])
    def test_covers_every_pair_exactly_once(self, k):
        rounds = tournament_rounds(k)
        played = [p for rnd in rounds for p in rnd]
        assert sorted(played) == sorted(combinations(range(k), 2))

    @pytest.mark.parametrize("k", [2, 3, 4, 5, 6, 7, 8, 9, 16, 17])
    def test_rounds_are_disjoint(self, k):
        for rnd in tournament_rounds(k):
            flat = [x for pair in rnd for x in pair]
            assert len(flat) == len(set(flat))

    @pytest.mark.parametrize("k", [4, 6, 8, 16])
    def test_even_k_round_shape(self, k):
        rounds = tournament_rounds(k)
        assert len(rounds) == k - 1
        assert all(len(rnd) == k // 2 for rnd in rounds)

    @pytest.mark.parametrize("k", [3, 5, 7, 9, 17])
    def test_odd_k_bye_matches_random_pairs_semantics(self, k):
        # _random_pairs lets exactly one partition sit a round out when
        # k is odd; the tournament must do the same in every round, and
        # every partition must take its bye exactly once.
        rounds = tournament_rounds(k)
        assert len(rounds) == k
        byes = []
        for rnd in rounds:
            assert len(rnd) == (k - 1) // 2
            playing = {x for pair in rnd for x in pair}
            resting = set(range(k)) - playing
            assert len(resting) == 1
            byes.append(resting.pop())
        assert sorted(byes) == list(range(k))

    def test_degenerate_k(self):
        assert tournament_rounds(0) == []
        assert tournament_rounds(1) == []
        assert tournament_rounds(2) == [[(0, 1)]]

    def test_pairs_are_normalized(self):
        for rnd in tournament_rounds(9):
            for a, b in rnd:
                assert a < b


class TestScheduleRounds:
    def test_disjoint_input_is_one_round_in_order(self):
        pairs = [(2, 5), (0, 1), (3, 4)]
        assert schedule_rounds(pairs) == [pairs]

    def test_overlapping_pairs_split_greedily(self):
        rounds = schedule_rounds([(0, 1), (1, 2), (0, 2)])
        assert rounds == [[(0, 1)], [(1, 2)], [(0, 2)]]

    def test_first_fit_packs_into_existing_rounds(self):
        rounds = schedule_rounds([(0, 1), (1, 2), (3, 4)])
        assert rounds == [[(0, 1), (3, 4)], [(1, 2)]]

    def test_empty(self):
        assert schedule_rounds([]) == []


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(REPRO_WORKERS_ENV, raising=False)
        assert resolve_workers() == 1
        assert resolve_workers(None) == 1

    def test_explicit_honoured_verbatim(self):
        # deliberate oversubscription is the caller's choice (and the
        # equivalence tests below rely on it on single-core boxes)
        assert resolve_workers(1) == 1
        assert resolve_workers(64) == 64

    def test_explicit_must_be_positive(self):
        with pytest.raises(ConfigError):
            resolve_workers(0)
        with pytest.raises(ConfigError):
            resolve_workers(-3)

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(REPRO_WORKERS_ENV, "2")
        assert resolve_workers() == min(2, os.cpu_count() or 1)

    def test_env_capped_at_cpu_count(self, monkeypatch):
        monkeypatch.setenv(REPRO_WORKERS_ENV, "100000")
        assert resolve_workers() == (os.cpu_count() or 1)

    def test_env_invalid(self, monkeypatch):
        monkeypatch.setenv(REPRO_WORKERS_ENV, "many")
        with pytest.raises(ConfigError):
            resolve_workers()
        monkeypatch.setenv(REPRO_WORKERS_ENV, "0")
        with pytest.raises(ConfigError):
            resolve_workers()


NETLIST = load_circuit("viterbi-test")


class TestSerialParallelEquivalence:
    """The determinism contract: worker count never changes the result."""

    @pytest.mark.parametrize("pairing", ["random", "exhaustive", "cut", "gain"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("k", [4, 8])
    def test_bit_identical_partitions(self, pairing, seed, k):
        serial = design_driven_partition(
            NETLIST, k=k, b=10.0, seed=seed, pairing=pairing, workers=1
        )
        parallel = design_driven_partition(
            NETLIST, k=k, b=10.0, seed=seed, pairing=pairing, workers=4
        )
        assert serial.assignment.tobytes() == parallel.assignment.tobytes()
        assert serial.cut_size == parallel.cut_size
        assert serial.part_weights.tolist() == parallel.part_weights.tolist()
        assert serial.fm_rounds == parallel.fm_rounds
        assert serial.history == parallel.history

    def test_counters_match_serial(self):
        counters = {}
        for workers in (1, 3):
            rec = MetricsRecorder()
            design_driven_partition(
                NETLIST, k=4, b=10.0, seed=0, pairing="exhaustive",
                workers=workers, recorder=rec,
            )
            counters[workers] = rec.as_counters()
            counters[f"host{workers}"] = rec.host_timings()
        # the engine reports identical work either way: the counter
        # body is byte-identical at any worker count; the resolved
        # worker count and utilization ratios are host values,
        # quarantined in the host_timings channel
        assert counters[1] == counters[3]
        assert counters["host1"]["part.refine.workers"] == 1
        assert counters["host3"]["part.refine.workers"] == 3

    def test_env_workers_equivalent(self, monkeypatch):
        monkeypatch.delenv(REPRO_WORKERS_ENV, raising=False)
        base = design_driven_partition(NETLIST, k=4, b=10.0, seed=1)
        monkeypatch.setenv(REPRO_WORKERS_ENV, "2")
        via_env = design_driven_partition(NETLIST, k=4, b=10.0, seed=1)
        assert base.assignment.tobytes() == via_env.assignment.tobytes()


class TestRefinerEngine:
    def test_rejects_overlapping_round(self):
        from repro.core import BalanceConstraint
        from repro.errors import PartitionError
        from repro.hypergraph.build import Clustering
        from repro.hypergraph.partition_state import PartitionState

        clustering = Clustering.top_level(NETLIST)
        hg = clustering.hypergraph()
        state = PartitionState(
            hg, 4, np.arange(hg.num_vertices, dtype=np.int64) % 4
        )
        with PairwiseRefiner(1) as refiner:
            with pytest.raises(PartitionError):
                refiner.refine_round(
                    state, [(0, 1), (1, 2)], BalanceConstraint(4, 10.0)
                )

    def test_engine_records_structural_metrics(self):
        rec = MetricsRecorder()
        design_driven_partition(
            NETLIST, k=8, b=10.0, seed=0, pairing="exhaustive",
            workers=4, recorder=rec,
        )
        counters = rec.as_counters()
        host = rec.host_timings()
        assert counters["part.refine.rounds"] > 0
        assert counters["part.refine.tasks"] >= counters["part.refine.rounds"]
        assert host["part.refine.workers"] == 4
        # k=8 tournament rounds hold 4 pairs: 4 workers can run them in
        # one slot, so the structural speedup must exceed 1
        assert host["part.refine.ideal_speedup"] > 1.0
        assert 0.0 < host["part.refine.utilization"] <= 1.0
