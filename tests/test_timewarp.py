"""Time Warp engine: equivalence with the sequential oracle.

The central invariant: for ANY circuit, ANY clustering, ANY machine
assignment, and ANY kernel configuration, the committed results of the
optimistic parallel run equal the sequential simulation — same final
net values AND the same number of committed gate events.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import random_logic_verilog, random_vectors
from repro.errors import SimulationError
from repro.hypergraph import Clustering
from repro.sim import (
    ClusterSpec,
    SequentialSimulator,
    TimeWarpConfig,
    TimeWarpEngine,
    compile_circuit,
)
from repro.verilog import compile_verilog


def run_both(netlist, circuit, clusters, lp_machine, events, spec=None, config=None):
    seq = SequentialSimulator(circuit)
    seq.add_inputs(events)
    seq.run()
    spec = spec or ClusterSpec(num_machines=max(lp_machine) + 1)
    config = config or TimeWarpConfig(checkpoint_interval=3, gvt_interval=40)
    eng = TimeWarpEngine(circuit, clusters, lp_machine, spec, config)
    eng.load_inputs(events)
    stats = eng.run()
    eng.verify_against_sequential(seq)
    assert stats.committed_events == seq.stats.gate_evals
    return seq, eng, stats


def hierarchy_clusters(netlist):
    return Clustering.top_level(netlist).gate_clusters()


class TestEquivalence:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_pipeadd_all_k(self, pipeadd, pipeadd_circuit, pipeadd_events, k):
        clusters = hierarchy_clusters(pipeadd)
        lp_machine = [i % k for i in range(len(clusters))]
        run_both(pipeadd, pipeadd_circuit, clusters, lp_machine, pipeadd_events)

    @pytest.mark.parametrize("lazy", [True, False])
    def test_both_cancellation_modes(self, pipeadd, pipeadd_circuit, pipeadd_events, lazy):
        clusters = hierarchy_clusters(pipeadd)
        lp_machine = [i % 3 for i in range(len(clusters))]
        config = TimeWarpConfig(
            checkpoint_interval=2, gvt_interval=30, lazy_cancellation=lazy
        )
        run_both(pipeadd, pipeadd_circuit, clusters, lp_machine, pipeadd_events,
                 config=config)

    @pytest.mark.parametrize("ci", [1, 4, 16])
    def test_checkpoint_intervals(self, pipeadd, pipeadd_circuit, pipeadd_events, ci):
        clusters = hierarchy_clusters(pipeadd)
        lp_machine = [i % 2 for i in range(len(clusters))]
        config = TimeWarpConfig(checkpoint_interval=ci, gvt_interval=25)
        run_both(pipeadd, pipeadd_circuit, clusters, lp_machine, pipeadd_events,
                 config=config)

    @pytest.mark.parametrize("window", [None, 8, 64])
    def test_optimism_windows(self, pipeadd, pipeadd_circuit, pipeadd_events, window):
        clusters = hierarchy_clusters(pipeadd)
        lp_machine = [i % 2 for i in range(len(clusters))]
        config = TimeWarpConfig(gvt_interval=30, optimism_window=window)
        run_both(pipeadd, pipeadd_circuit, clusters, lp_machine, pipeadd_events,
                 config=config)

    def test_viterbi(self, viterbi_test, viterbi_test_circuit):
        events = random_vectors(viterbi_test, 15, seed=3)
        clusters = hierarchy_clusters(viterbi_test)
        lp_machine = [i % 4 for i in range(len(clusters))]
        run_both(viterbi_test, viterbi_test_circuit, clusters, lp_machine, events)

    def test_gate_per_lp_partitioning(self, adder4, adder4_circuit):
        """The flattened extreme: one LP per gate."""
        events = random_vectors(adder4, 10, seed=1)
        clusters = [[g] for g in range(adder4.num_gates)]
        lp_machine = [g % 3 for g in range(adder4.num_gates)]
        run_both(adder4, adder4_circuit, clusters, lp_machine, events)


class TestStatsInvariants:
    def test_one_machine_no_messages(self, pipeadd, pipeadd_circuit, pipeadd_events):
        clusters = hierarchy_clusters(pipeadd)
        seq, eng, stats = run_both(
            pipeadd, pipeadd_circuit, clusters, [0] * len(clusters), pipeadd_events
        )
        assert stats.messages == 0
        assert stats.anti_messages == 0

    def test_wall_time_positive_and_bounded(self, pipeadd, pipeadd_circuit, pipeadd_events):
        clusters = hierarchy_clusters(pipeadd)
        lp_machine = [i % 2 for i in range(len(clusters))]
        seq, eng, stats = run_both(
            pipeadd, pipeadd_circuit, clusters, lp_machine, pipeadd_events
        )
        assert stats.wall_time > 0
        # parallel wall cannot beat perfect speedup on committed work
        spec = ClusterSpec(num_machines=2)
        ideal = stats.committed_events * spec.event_cost / 2
        assert stats.wall_time >= ideal * 0.999

    def test_processed_at_least_committed(self, pipeadd, pipeadd_circuit, pipeadd_events):
        clusters = hierarchy_clusters(pipeadd)
        lp_machine = [i % 3 for i in range(len(clusters))]
        _, _, stats = run_both(
            pipeadd, pipeadd_circuit, clusters, lp_machine, pipeadd_events
        )
        assert stats.processed_events >= stats.committed_events
        assert stats.rolled_back_events == stats.processed_events - stats.committed_events

    def test_determinism(self, pipeadd, pipeadd_circuit, pipeadd_events):
        clusters = hierarchy_clusters(pipeadd)
        lp_machine = [i % 2 for i in range(len(clusters))]

        def once():
            eng = TimeWarpEngine(
                pipeadd_circuit, clusters, lp_machine, ClusterSpec(num_machines=2),
                TimeWarpConfig(checkpoint_interval=3, gvt_interval=40),
            )
            eng.load_inputs(pipeadd_events)
            s = eng.run()
            return (s.messages, s.rollbacks, s.processed_events, s.wall_time)

        assert once() == once()

    def test_machine_stats_sum(self, pipeadd, pipeadd_circuit, pipeadd_events):
        clusters = hierarchy_clusters(pipeadd)
        lp_machine = [i % 2 for i in range(len(clusters))]
        _, _, stats = run_both(
            pipeadd, pipeadd_circuit, clusters, lp_machine, pipeadd_events
        )
        assert sum(m.gate_evals for m in stats.machines) == stats.processed_events
        assert sum(m.rollbacks for m in stats.machines) == stats.rollbacks
        assert stats.wall_time == max(m.wall_time for m in stats.machines)

    def test_env_messages_counted(self, pipeadd, pipeadd_circuit, pipeadd_events):
        clusters = hierarchy_clusters(pipeadd)
        _, _, stats = run_both(
            pipeadd, pipeadd_circuit, clusters, [0] * len(clusters), pipeadd_events
        )
        assert stats.env_messages > 0


class TestValidation:
    def test_cluster_count_mismatch(self, pipeadd_circuit):
        with pytest.raises(SimulationError, match="machine assignments"):
            TimeWarpEngine(pipeadd_circuit, [[0]], [0, 1], ClusterSpec(num_machines=2))

    def test_incomplete_cover(self, pipeadd_circuit):
        with pytest.raises(SimulationError, match="cover"):
            TimeWarpEngine(pipeadd_circuit, [[0, 1]], [0], ClusterSpec(num_machines=1))

    def test_duplicate_gate(self, pipeadd_circuit):
        n = pipeadd_circuit.num_gates
        clusters = [list(range(n)), [0]]
        with pytest.raises(SimulationError, match="two clusters"):
            TimeWarpEngine(pipeadd_circuit, clusters, [0, 0], ClusterSpec(num_machines=1))

    def test_machine_out_of_range(self, pipeadd_circuit):
        n = pipeadd_circuit.num_gates
        with pytest.raises(SimulationError, match="out of range"):
            TimeWarpEngine(
                pipeadd_circuit, [list(range(n))], [5], ClusterSpec(num_machines=2)
            )


class TestQuiescentUnconfirmedDrain:
    """Regression: a quiescent LP still owing anti-messages for
    unconfirmed (lazily cancelled) sends must have them delivered
    before termination — otherwise the receiver keeps a stale positive.

    The LFSR's global feedback loop with per-gate LPs, lazy
    cancellation, and a multi-batch checkpoint interval reproduced the
    leak (the final GVT round used to flush the antis after the driver
    loop had already exited)."""

    @pytest.mark.parametrize("seed", [1, 3, 5, 9])
    def test_lfsr_feedback_loop(self, seed):
        from repro.circuits import lfsr_verilog, load_circuit
        from repro.core import design_driven_partition

        nl = load_circuit("lfsr16")
        cc = compile_circuit(nl)
        events = random_vectors(nl, 12, seed=seed)
        part = design_driven_partition(nl, k=2, b=25.0, seed=1)
        clusters, lpm = part.to_simulation()
        config = TimeWarpConfig(
            checkpoint_interval=2, gvt_interval=256,
            lazy_cancellation=True, optimism_window=128,
        )
        run_both(nl, cc, clusters, lpm, events, config=config)


@st.composite
def random_scenario(draw):
    seed = draw(st.integers(0, 10_000))
    n_gates = draw(st.integers(10, 60))
    k = draw(st.integers(1, 4))
    n_clusters = draw(st.integers(k, min(n_gates, 10)))
    lazy = draw(st.booleans())
    ci = draw(st.sampled_from([1, 3, 7]))
    return seed, n_gates, k, n_clusters, lazy, ci


class TestPropertyEquivalence:
    @given(random_scenario())
    @settings(max_examples=25, deadline=None)
    def test_random_circuit_random_partition(self, scenario):
        seed, n_gates, k, n_clusters, lazy, ci = scenario
        src = random_logic_verilog(n_gates, 6, seed=seed)
        nl = compile_verilog(src)
        cc = compile_circuit(nl)
        events = random_vectors(nl, 8, seed=seed + 1)
        rng = np.random.default_rng(seed + 2)
        membership = rng.integers(0, n_clusters, size=nl.num_gates)
        clusters = [
            [g for g in range(nl.num_gates) if membership[g] == c]
            for c in range(n_clusters)
        ]
        clusters = [c for c in clusters if c]
        lp_machine = [i % k for i in range(len(clusters))]
        config = TimeWarpConfig(
            checkpoint_interval=ci, gvt_interval=20, lazy_cancellation=lazy
        )
        run_both(nl, cc, clusters, lp_machine, events, config=config)
