"""CLI smoke and behaviour tests (in-process via main())."""

import io

import pytest

from repro.cli import main
from tests.conftest import PIPEADD_SRC


@pytest.fixture()
def vfile(tmp_path):
    p = tmp_path / "design.v"
    p.write_text(PIPEADD_SRC)
    return p


def run(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestBasics:
    def test_circuits_lists_registry(self):
        code, text = run("circuits")
        assert code == 0
        assert "viterbi-bench" in text
        assert "gates" in text

    def test_generate(self):
        code, text = run("generate", "adder8")
        assert code == 0
        assert "module" in text and "endmodule" in text

    def test_generate_unknown(self, capsys):
        code, _ = run("generate", "nope")
        assert code == 1

    def test_info(self, vfile):
        code, text = run("info", str(vfile))
        assert code == 0
        assert "gates      : 34" in text
        assert "flip-flops : 14" in text

    def test_info_tree(self, vfile):
        code, text = run("info", str(vfile), "--tree")
        assert code == 0
        assert "[fa]" in text

    def test_missing_file(self):
        code, _ = run("info", "/does/not/exist.v")
        assert code == 1


class TestPartitionCommand:
    def test_design_driven(self, vfile):
        code, text = run("partition", str(vfile), "-k", "2", "-b", "10")
        assert code == 0
        assert "design-driven" in text
        assert "cut size" in text

    def test_multilevel(self, vfile):
        code, text = run("partition", str(vfile), "--algorithm", "multilevel")
        assert code == 0
        assert "multilevel" in text

    def test_random(self, vfile):
        code, text = run("partition", str(vfile), "--algorithm", "random")
        assert code == 0

    def test_assignment_file(self, vfile, tmp_path):
        out_file = tmp_path / "assign.txt"
        code, _ = run(
            "partition", str(vfile), "-k", "2",
            "--assignment-out", str(out_file),
        )
        assert code == 0
        lines = out_file.read_text().strip().splitlines()
        assert len(lines) == 34
        assert all(line.rsplit(" ", 1)[1] in ("0", "1") for line in lines)


class TestOptimizeCommand:
    def test_optimize_reports_and_writes(self, vfile, tmp_path):
        out_v = tmp_path / "opt.v"
        code, text = run("optimize", str(vfile), "-o", str(out_v))
        assert code == 0
        assert "gates" in text
        assert out_v.exists()
        # the optimized output recompiles
        from repro.verilog import compile_verilog

        assert compile_verilog(out_v.read_text()).num_gates >= 0


class TestSimulateCommands:
    def test_sequential(self, vfile):
        code, text = run("simulate", str(vfile), "--vectors", "10")
        assert code == 0
        assert "gate events" in text

    def test_psim(self, vfile):
        code, text = run("psim", str(vfile), "-k", "2", "--vectors", "10")
        assert code == 0
        assert "speedup" in text
        assert "verified        : True" in text

    def test_psim_aggressive(self, vfile):
        code, text = run(
            "psim", str(vfile), "-k", "2", "--vectors", "10", "--aggressive"
        )
        assert code == 0
        assert "verified        : True" in text

    def test_search_brute(self, vfile):
        code, text = run(
            "search", str(vfile), "--max-k", "2", "--vectors", "8"
        )
        assert code == 0
        assert "best: k=" in text

    def test_sweep(self, vfile):
        code, text = run(
            "sweep", str(vfile), "--ks", "2", "--bs", "10", "--vectors", "8"
        )
        assert code == 0
        assert "best: k=2" in text

    def test_search_heuristic(self, vfile):
        code, text = run(
            "search", str(vfile), "--max-k", "3", "--vectors", "8", "--heuristic"
        )
        assert code == 0
        assert "best: k=" in text

    def test_search_presim_workers_identical_output(self, vfile):
        # the parallel sweep is a wall-time knob only: the chosen best
        # (k, b) and every per-point stat line must match the serial run
        base = ("search", str(vfile), "--max-k", "2", "--vectors", "8")
        code_s, text_s = run(*base)
        code_p, text_p = run(*base, "--presim-workers", "2")
        assert code_s == code_p == 0
        assert "best: k=" in text_s
        assert text_p == text_s


class TestObsCommands:
    @pytest.fixture()
    def run_artifacts(self, vfile, tmp_path):
        """One fixed-seed psim run with metrics + trace dumped."""
        metrics = tmp_path / "m.json"
        trace = tmp_path / "t.jsonl"
        code, text = run(
            "psim", str(vfile), "-k", "2", "--vectors", "10",
            "--metrics", str(metrics), "--trace", str(trace),
        )
        assert code == 0 and "verified        : True" in text
        return metrics, trace

    def test_selfcheck(self):
        code, text = run("obs", "selfcheck")
        assert code == 0
        assert "obs selfcheck: ok (18 checks)" in text

    def test_psim_progress_keeps_results(self, vfile):
        code, text = run(
            "psim", str(vfile), "-k", "2", "--vectors", "10", "--progress"
        )
        assert code == 0
        assert "verified        : True" in text

    def test_report_byte_identical_across_invocations(
        self, vfile, run_artifacts, tmp_path
    ):
        metrics, trace = run_artifacts
        # a second independent run of the same fixed-seed experiment
        metrics2 = tmp_path / "m2.json"
        trace2 = tmp_path / "t2.jsonl"
        code, _ = run(
            "psim", str(vfile), "-k", "2", "--vectors", "10",
            "--metrics", str(metrics2), "--trace", str(trace2),
        )
        assert code == 0
        code_a, report_a = run("obs", "report", str(trace), str(metrics))
        code_b, report_b = run("obs", "report", str(trace2), str(metrics2))
        assert code_a == code_b == 0
        assert report_a == report_b
        assert "# Run report: psim" in report_a
        assert "## GVT progress" in report_a

    def test_hotspots(self, run_artifacts):
        _, trace = run_artifacts
        code, text = run("obs", "hotspots", str(trace), "--top", "3")
        assert code == 0
        assert "rollbacks" in text or "no rollbacks in trace" in text

    def test_diff_identical_exits_zero(self, run_artifacts):
        metrics, _ = run_artifacts
        code, text = run("obs", "diff", str(metrics), str(metrics),
                         "--fail-on-regression")
        assert code == 0
        assert "no deltas" in text

    def _doctor(self, metrics, tmp_path, name, factor):
        import json

        doc = json.loads(metrics.read_text())
        old = doc["counters"].get(name, 0)
        doc["counters"][name] = old * factor if old else 5
        doctored = tmp_path / "doctored.json"
        doctored.write_text(json.dumps(doc))
        return doctored

    def test_diff_doctored_regression_fails(self, run_artifacts, tmp_path):
        metrics, _ = run_artifacts
        doctored = self._doctor(metrics, tmp_path, "tw.rollbacks", 1.25)
        code, text = run("obs", "diff", str(metrics), str(doctored),
                         "--fail-on-regression")
        assert code == 1
        assert "REGRESSED" in text
        # without the gate flag the diff reports but exits 0
        code, _ = run("obs", "diff", str(metrics), str(doctored))
        assert code == 0

    def test_diff_threshold_override(self, run_artifacts, tmp_path):
        metrics, _ = run_artifacts
        doctored = self._doctor(metrics, tmp_path, "tw.rollbacks", 1.25)
        code, _ = run("obs", "diff", str(metrics), str(doctored),
                      "--threshold", "tw.rollbacks=10.0",
                      "--fail-on-regression")
        assert code == 0

    def test_diff_json_verdict(self, run_artifacts, tmp_path):
        import json

        metrics, _ = run_artifacts
        doctored = self._doctor(metrics, tmp_path, "tw.rollbacks", 1.25)
        code, text = run("obs", "diff", str(metrics), str(doctored), "--json")
        assert code == 0
        verdict = json.loads(text)
        assert verdict["ok"] is False
        assert "tw.rollbacks" in verdict["regressions"]

    def test_diff_malformed_threshold_errors(self, run_artifacts):
        metrics, _ = run_artifacts
        code, _ = run("obs", "diff", str(metrics), str(metrics),
                      "--threshold", "nonsense")
        assert code == 1
