"""CLI smoke and behaviour tests (in-process via main())."""

import io

import pytest

from repro.cli import main
from tests.conftest import PIPEADD_SRC


@pytest.fixture()
def vfile(tmp_path):
    p = tmp_path / "design.v"
    p.write_text(PIPEADD_SRC)
    return p


def run(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestBasics:
    def test_circuits_lists_registry(self):
        code, text = run("circuits")
        assert code == 0
        assert "viterbi-bench" in text
        assert "gates" in text

    def test_generate(self):
        code, text = run("generate", "adder8")
        assert code == 0
        assert "module" in text and "endmodule" in text

    def test_generate_unknown(self, capsys):
        code, _ = run("generate", "nope")
        assert code == 1

    def test_info(self, vfile):
        code, text = run("info", str(vfile))
        assert code == 0
        assert "gates      : 34" in text
        assert "flip-flops : 14" in text

    def test_info_tree(self, vfile):
        code, text = run("info", str(vfile), "--tree")
        assert code == 0
        assert "[fa]" in text

    def test_missing_file(self):
        code, _ = run("info", "/does/not/exist.v")
        assert code == 1


class TestPartitionCommand:
    def test_design_driven(self, vfile):
        code, text = run("partition", str(vfile), "-k", "2", "-b", "10")
        assert code == 0
        assert "design-driven" in text
        assert "cut size" in text

    def test_multilevel(self, vfile):
        code, text = run("partition", str(vfile), "--algorithm", "multilevel")
        assert code == 0
        assert "multilevel" in text

    def test_random(self, vfile):
        code, text = run("partition", str(vfile), "--algorithm", "random")
        assert code == 0

    def test_assignment_file(self, vfile, tmp_path):
        out_file = tmp_path / "assign.txt"
        code, _ = run(
            "partition", str(vfile), "-k", "2",
            "--assignment-out", str(out_file),
        )
        assert code == 0
        lines = out_file.read_text().strip().splitlines()
        assert len(lines) == 34
        assert all(line.rsplit(" ", 1)[1] in ("0", "1") for line in lines)


class TestOptimizeCommand:
    def test_optimize_reports_and_writes(self, vfile, tmp_path):
        out_v = tmp_path / "opt.v"
        code, text = run("optimize", str(vfile), "-o", str(out_v))
        assert code == 0
        assert "gates" in text
        assert out_v.exists()
        # the optimized output recompiles
        from repro.verilog import compile_verilog

        assert compile_verilog(out_v.read_text()).num_gates >= 0


class TestSimulateCommands:
    def test_sequential(self, vfile):
        code, text = run("simulate", str(vfile), "--vectors", "10")
        assert code == 0
        assert "gate events" in text

    def test_psim(self, vfile):
        code, text = run("psim", str(vfile), "-k", "2", "--vectors", "10")
        assert code == 0
        assert "speedup" in text
        assert "verified        : True" in text

    def test_psim_aggressive(self, vfile):
        code, text = run(
            "psim", str(vfile), "-k", "2", "--vectors", "10", "--aggressive"
        )
        assert code == 0
        assert "verified        : True" in text

    def test_search_brute(self, vfile):
        code, text = run(
            "search", str(vfile), "--max-k", "2", "--vectors", "8"
        )
        assert code == 0
        assert "best: k=" in text

    def test_sweep(self, vfile):
        code, text = run(
            "sweep", str(vfile), "--ks", "2", "--bs", "10", "--vectors", "8"
        )
        assert code == 0
        assert "best: k=2" in text

    def test_search_heuristic(self, vfile):
        code, text = run(
            "search", str(vfile), "--max-k", "3", "--vectors", "8", "--heuristic"
        )
        assert code == 0
        assert "best: k=" in text
