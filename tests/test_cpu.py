"""CPU datapath generator: ISA-level functional verification + structure."""

import numpy as np
import pytest

from repro.circuits import (
    CPU_TEST_CONFIG,
    CpuConfig,
    cpu_verilog,
    natural_schedule,
    random_vectors,
)
from repro.errors import ConfigError
from repro.sim import InputEvent, SequentialSimulator, compile_circuit
from repro.sim.compiled import combinational_depth
from repro.verilog import compile_verilog


def golden_model(cfg: CpuConfig, cycles: int, din: int = 0) -> int:
    """Cycle-accurate Python model of the datapath's ISA."""
    rng = np.random.default_rng(cfg.program_seed)
    IB, RB, W = cfg.insn_bits, cfg.reg_bits, cfg.width
    words = [int(rng.integers(0, 1 << IB)) for _ in range(cfg.rom_size)]
    mask = (1 << W) - 1
    pc, insn_q, res_q = 0, 0, 0
    regs = [0] * cfg.registers
    for _ in range(cycles):
        insn_next = words[pc]
        op = (insn_q >> (IB - 3)) & 7
        bsel = (insn_q >> (2 * RB)) & ((1 << RB) - 1)
        asel = (insn_q >> RB) & ((1 << RB) - 1)
        wsel = insn_q & ((1 << RB) - 1)
        a, b = regs[asel], regs[bsel]
        y = [
            (a + b) & mask,
            (a + ((~b) & mask) + 1) & mask,
            a & b,
            a | b,
            a ^ b,
            a,
            (~(a | b)) & mask,
            (~a) & mask,
        ][op]
        wdata = y ^ din
        regs = list(regs)
        regs[wsel] = wdata
        res_q = y
        insn_q = insn_next
        pc = (pc + 1) % cfg.rom_size
    return res_q


def run_hw(cfg: CpuConfig, cycles: int, din: int = 0) -> int:
    nl = compile_verilog(cpu_verilog(cfg))
    cc = compile_circuit(nl)
    depth = combinational_depth(cc)
    half = depth + 4
    period = 2 * half
    clk = next(n for n in nl.inputs if nl.net_name(n) == "clk")
    rst = next(n for n in nl.inputs if nl.net_name(n) == "rst")
    din_nets = [n for n in nl.inputs if nl.net_name(n).startswith("din")]
    evs = [InputEvent(0, clk, 0), InputEvent(0, rst, 1)]
    evs += [InputEvent(0, d, (din >> i) & 1) for i, d in enumerate(din_nets)]
    evs += [InputEvent(period, clk, 1), InputEvent(period + half, clk, 0),
            InputEvent(period + half + 2, rst, 0)]
    t0 = 2 * period
    for i in range(cycles):
        evs += [InputEvent(t0 + period * i, clk, 1),
                InputEvent(t0 + period * i + half, clk, 0)]
    sim = SequentialSimulator(cc)
    sim.add_inputs(evs)
    sim.run()
    outs = sim.output_values()
    assert all(v in (0, 1) for v in outs), f"X in CPU outputs: {outs}"
    return sum(v << i for i, v in enumerate(outs))


class TestFunctional:
    @pytest.mark.parametrize("cycles", [1, 5, 13, 24])
    def test_matches_golden_model(self, cycles):
        assert run_hw(CPU_TEST_CONFIG, cycles) == golden_model(
            CPU_TEST_CONFIG, cycles
        )

    def test_din_feeds_writeback(self):
        cfg = CPU_TEST_CONFIG
        assert run_hw(cfg, 10, din=5) == golden_model(cfg, 10, din=5)

    @pytest.mark.parametrize("seed", [1, 2])
    def test_other_programs(self, seed):
        cfg = CpuConfig(width=4, registers=4, rom_size=8, program_seed=seed)
        assert run_hw(cfg, 12) == golden_model(cfg, 12)


class TestStructure:
    def test_hierarchy_shape(self):
        nl = compile_verilog(cpu_verilog(CPU_TEST_CONFIG))
        children = set(nl.hierarchy.children)
        assert {"pc_u", "rom_u", "if_reg", "rf", "alu_u", "ex_reg"} <= children
        rf = nl.hierarchy.children["rf"]
        assert len(rf.children) >= CPU_TEST_CONFIG.registers  # two-level

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            CpuConfig(width=2)
        with pytest.raises(ConfigError):
            CpuConfig(registers=3)
        with pytest.raises(ConfigError):
            CpuConfig(rom_size=5)

    def test_natural_schedule_exceeds_depth(self):
        nl = compile_verilog(cpu_verilog(CPU_TEST_CONFIG))
        sched = natural_schedule(nl)
        depth = combinational_depth(compile_circuit(nl))
        period, rise, fall = sched.resolved()
        assert rise > depth

    def test_partitionable_and_simulatable(self):
        from repro.core import design_driven_partition
        from repro.sim import ClusterSpec, run_partitioned

        nl = compile_verilog(cpu_verilog(CPU_TEST_CONFIG))
        part = design_driven_partition(nl, k=3, b=15.0, seed=1)
        clusters, machines = part.to_simulation()
        events = random_vectors(nl, 10, seed=2, schedule=natural_schedule(nl))
        report = run_partitioned(
            compile_circuit(nl), clusters, machines, events,
            ClusterSpec(num_machines=3),
        )
        assert report.verified
