"""Cone partitioning (initial-partition phase)."""

import numpy as np
import pytest

from repro.core import cone_partition, input_cones, build_cluster_dag
from repro.errors import PartitionError
from repro.hypergraph import Clustering


class TestClusterDag:
    def test_adder_carry_chain(self, adder4):
        c = Clustering.top_level(adder4)
        succ, roots = build_cluster_dag(c)
        # fa instances chain via carries: f0 -> f1 -> f2 -> f3
        names = [cl.name for cl in c.clusters]
        idx = {n: i for i, n in enumerate(names)}
        assert idx["f1"] in succ[idx["f0"]]
        assert idx["f3"] in succ[idx["f2"]]
        assert succ[idx["f3"]] == []
        # every fa reads a primary input
        assert set(roots) == set(range(4))

    def test_no_self_loops(self, pipeadd):
        c = Clustering.top_level(pipeadd)
        succ, _ = build_cluster_dag(c)
        for i, s in enumerate(succ):
            assert i not in s


class TestCones:
    def test_cones_cover_reachable(self, adder4):
        c = Clustering.top_level(adder4)
        cones = input_cones(c)
        covered = set()
        for cone in cones:
            covered.update(cone)
        assert covered == set(range(len(c)))

    def test_cones_sorted_heaviest_first(self, adder4):
        c = Clustering.top_level(adder4)
        cones = input_cones(c)
        weights = [c.clusters[i].weight for i in range(len(c))]
        sizes = [sum(weights[v] for v in cone) for cone in cones]
        assert sizes == sorted(sizes, reverse=True)

    def test_cone_is_downstream_closure(self, adder4):
        c = Clustering.top_level(adder4)
        succ, _ = build_cluster_dag(c)
        for cone in input_cones(c):
            cone_set = set(cone)
            for v in cone:
                for nxt in succ[v]:
                    assert nxt in cone_set


class TestConePartition:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_valid_partition(self, viterbi_test, k):
        c = Clustering.top_level(viterbi_test)
        state = cone_partition(c, k)
        assert state.k == k
        assert (state.part >= 0).all() and (state.part < k).all()
        assert state.part_weight.sum() == viterbi_test.num_gates

    def test_no_empty_partition_on_reasonable_input(self, viterbi_test):
        c = Clustering.top_level(viterbi_test)
        state = cone_partition(c, 4)
        assert (state.part_weight > 0).all()

    def test_deterministic_for_seed(self, viterbi_test):
        c = Clustering.top_level(viterbi_test)
        a = cone_partition(c, 3, seed=5).part
        b = cone_partition(c, 3, seed=5).part
        assert (a == b).all()

    def test_too_many_parts(self, adder4):
        c = Clustering.top_level(adder4)
        with pytest.raises(PartitionError, match="cannot make"):
            cone_partition(c, 99)

    def test_loads_roughly_balanced(self, viterbi_test):
        c = Clustering.top_level(viterbi_test)
        state = cone_partition(c, 2)
        total = viterbi_test.num_gates
        # the ideal-spill rule keeps loads within one max-cluster of ideal
        max_cluster = max(cl.weight for cl in c.clusters)
        assert abs(int(state.part_weight[0]) - total / 2) <= max_cluster + total * 0.05
