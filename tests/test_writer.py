"""Writer round-trip tests, including a property-based AST round trip."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.verilog import compile_verilog, parse_source, write_netlist_verilog, write_source
from repro.verilog import ast
from repro.verilog.writer import format_expr


class TestFormatExpr:
    def test_identifier(self):
        assert format_expr(ast.Identifier("foo")) == "foo"

    def test_keyword_escaped(self):
        assert format_expr(ast.Identifier("wire")) == "\\wire "

    def test_dotted_escaped(self):
        assert format_expr(ast.Identifier("a.b")) == "\\a.b "

    def test_bit_select(self):
        assert format_expr(ast.BitSelect("v", 3)) == "v[3]"

    def test_part_select(self):
        assert format_expr(ast.PartSelect("v", 7, 4)) == "v[7:4]"

    def test_concat(self):
        e = ast.Concat((ast.Identifier("a"), ast.BitSelect("b", 0)))
        assert format_expr(e) == "{a, b[0]}"

    def test_literal_msb_first(self):
        assert format_expr(ast.Literal((0, 1))) == "2'b10"

    def test_literal_with_x(self):
        assert format_expr(ast.Literal((2, 1))) == "2'b1x"


class TestSourceRoundTrip:
    def test_simple(self, adder4):
        src = parse_source(open_text())
        text = write_source(src)
        src2 = parse_source(text)
        assert set(src2.modules) == set(src.modules)
        nl1 = compile_verilog(open_text())
        nl2 = compile_verilog(text)
        assert nl1.num_gates == nl2.num_gates
        assert nl1.num_nets == nl2.num_nets

    def test_netlist_roundtrip(self, adder4):
        text = write_netlist_verilog(adder4)
        nl2 = compile_verilog(text)
        assert nl2.num_gates == adder4.num_gates
        assert len(nl2.inputs) == len(adder4.inputs)
        assert len(nl2.outputs) == len(adder4.outputs)

    def test_netlist_roundtrip_with_constants(self):
        nl = compile_verilog(
            """
            module t (o); output o;
              supply1 vdd; wire a;
              and (o, vdd, a);
              buf (a, 1'b0);
            endmodule
            """
        )
        text = write_netlist_verilog(nl)
        nl2 = compile_verilog(text)
        assert nl2.num_gates == nl.num_gates

    def test_sequential_netlist_roundtrip(self, pipeadd):
        text = write_netlist_verilog(pipeadd)
        nl2 = compile_verilog(text)
        assert nl2.num_gates == pipeadd.num_gates
        assert len(nl2.sequential_gates()) == len(pipeadd.sequential_gates())


def open_text():
    from tests.conftest import ADDER4_SRC

    return ADDER4_SRC


# -- property-based: random module AST -> text -> parse -> identical AST ----

_ident = st.from_regex(r"[a-z][a-z0-9_]{0,6}", fullmatch=True)


@st.composite
def random_module(draw):
    name = draw(_ident)
    n_nets = draw(st.integers(2, 8))
    nets = [f"n{i}" for i in range(n_nets)]
    m = ast.Module(name="m_" + name)
    for net in nets:
        width = draw(st.integers(1, 4))
        rng = None if width == 1 else ast.Range(width - 1, 0)
        m.net_decls[net] = ast.NetDecl(net, rng)
    n_gates = draw(st.integers(0, 6))
    for g in range(n_gates):
        gt = draw(st.sampled_from(["and", "or", "nand", "xor", "not", "buf"]))
        n_in = 1 if gt in ("not", "buf") else draw(st.integers(2, 3))
        scalars = [n for n in nets if m.net_decls[n].range is None]
        vectors = [n for n in nets if m.net_decls[n].range is not None]

        def term():
            if vectors and draw(st.booleans()):
                v = draw(st.sampled_from(vectors))
                return ast.BitSelect(v, draw(st.integers(0, m.net_decls[v].range.msb)))
            if scalars:
                return ast.Identifier(draw(st.sampled_from(scalars)))
            v = draw(st.sampled_from(vectors))
            return ast.BitSelect(v, 0)

        m.gates.append(
            ast.GateInst(gt, f"g{g}", tuple(term() for _ in range(n_in + 1)))
        )
    return m


@given(random_module())
@settings(max_examples=60, deadline=None)
def test_ast_roundtrip(module):
    src = ast.Source()
    src.add(module)
    text = write_source(src)
    parsed = parse_source(text)
    back = parsed.modules[module.name]
    assert back.name == module.name
    assert set(back.net_decls) == set(module.net_decls)
    assert len(back.gates) == len(module.gates)
    for g1, g2 in zip(module.gates, back.gates):
        assert g1.gtype == g2.gtype
        assert g1.name == g2.name
        assert g1.terminals == g2.terminals
