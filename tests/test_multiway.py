"""Design-driven multiway partitioning: end-to-end algorithm tests."""

import numpy as np
import pytest

from repro.core import BalanceConstraint, design_driven_partition
from repro.hypergraph import Clustering, hyperedge_cut


class TestBasicContracts:
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_valid_result(self, viterbi_test, k):
        r = design_driven_partition(viterbi_test, k=k, b=10.0, seed=1)
        assert r.k == k
        assert len(r.assignment) == len(r.clustering)
        assert r.part_weights.sum() == viterbi_test.num_gates
        # reported cut matches an independent recomputation
        assert r.cut_size == hyperedge_cut(r.clustering.hypergraph(), r.assignment)

    def test_balanced_flag_truthful(self, viterbi_test):
        r = design_driven_partition(viterbi_test, k=3, b=10.0, seed=1)
        c = BalanceConstraint(3, 10.0)
        assert r.balanced == c.satisfied(r.part_weights)

    def test_gate_assignment_covers_all(self, viterbi_test):
        r = design_driven_partition(viterbi_test, k=2, b=10.0, seed=1)
        ga = r.gate_assignment()
        assert len(ga) == viterbi_test.num_gates
        assert set(np.unique(ga)) <= {0, 1}

    def test_to_simulation_consistent(self, viterbi_test):
        r = design_driven_partition(viterbi_test, k=2, b=10.0, seed=1)
        clusters, lpm = r.to_simulation()
        assert len(clusters) == len(lpm)
        gates = sorted(g for cl in clusters for g in cl)
        assert gates == list(range(viterbi_test.num_gates))

    def test_deterministic(self, viterbi_test):
        r1 = design_driven_partition(viterbi_test, k=3, b=7.5, seed=9)
        r2 = design_driven_partition(viterbi_test, k=3, b=7.5, seed=9)
        assert r1.cut_size == r2.cut_size
        assert (r1.assignment == r2.assignment).all()

    def test_accepts_prebuilt_clustering(self, viterbi_test):
        c = Clustering.top_level(viterbi_test)
        r = design_driven_partition(c, k=2, b=10.0, seed=1)
        assert r.part_weights.sum() == viterbi_test.num_gates

    def test_history_recorded(self, viterbi_test):
        r = design_driven_partition(viterbi_test, k=2, b=10.0, seed=1)
        assert any("cone initial" in h for h in r.history)
        assert any("fm stable" in h for h in r.history)


class TestFlattening:
    def test_tight_balance_forces_flattening(self, viterbi_test):
        """At very tight b the test circuit's modules are too coarse."""
        loose = design_driven_partition(viterbi_test, k=4, b=15.0, seed=1)
        tight = design_driven_partition(viterbi_test, k=4, b=1.0, seed=1)
        assert tight.flatten_steps >= loose.flatten_steps
        # flattening refines the clustering
        assert len(tight.clustering) >= len(loose.clustering)

    def test_flattened_partition_still_covers(self, viterbi_test):
        r = design_driven_partition(viterbi_test, k=4, b=1.0, seed=1)
        gates = sorted(g for cl in r.clustering.gate_clusters() for g in cl)
        assert gates == list(range(viterbi_test.num_gates))

    @pytest.mark.parametrize("pairing", ["random", "exhaustive", "cut", "gain"])
    def test_all_pairing_strategies_work(self, viterbi_test, pairing):
        r = design_driven_partition(viterbi_test, k=3, b=10.0, seed=1, pairing=pairing)
        assert r.part_weights.sum() == viterbi_test.num_gates


class TestQualityTrends:
    def test_cut_no_worse_with_looser_balance(self, viterbi_test):
        """The paper's Table 1 trend: larger b admits smaller cuts.

        Heuristics are not strictly monotone; require the loosest
        setting to be at least as good as the tightest.
        """
        tight = design_driven_partition(viterbi_test, k=2, b=2.5, seed=1)
        loose = design_driven_partition(viterbi_test, k=2, b=15.0, seed=1)
        assert loose.cut_size <= tight.cut_size

    def test_cut_grows_with_k(self, viterbi_test):
        """More partitions can only cut more (Table 1 trend)."""
        c2 = design_driven_partition(viterbi_test, k=2, b=10.0, seed=1).cut_size
        c4 = design_driven_partition(viterbi_test, k=4, b=10.0, seed=1).cut_size
        assert c4 >= c2

    def test_beats_random_assignment(self, viterbi_test):
        from repro.baselines import random_partition
        from repro.hypergraph import hierarchy_hypergraph

        hg = hierarchy_hypergraph(viterbi_test)
        rand_cut = hyperedge_cut(hg, random_partition(hg, 3, seed=2))
        r = design_driven_partition(viterbi_test, k=3, b=10.0, seed=1)
        assert r.cut_size <= rand_cut

    def test_k1_trivial(self, viterbi_test):
        r = design_driven_partition(viterbi_test, k=1, b=10.0, seed=1)
        assert r.cut_size == 0
        assert r.balanced

    def test_multistart_never_worse(self, viterbi_test):
        single = design_driven_partition(viterbi_test, k=3, b=10.0, seed=1)
        multi = design_driven_partition(
            viterbi_test, k=3, b=10.0, seed=1, restarts=3
        )
        assert (not multi.balanced, multi.cut_size) <= (
            not single.balanced, single.cut_size
        )
