"""VCD waveform writer tests."""

import re

import pytest

from repro.circuits import random_vectors
from repro.errors import SimulationError
from repro.sim import InputEvent, SequentialSimulator, compile_circuit
from repro.sim.vcd import VcdWriter, _id_code
from repro.verilog import compile_verilog


SRC = """
module t (a, b, y);
  input a, b; output y;
  and (y, a, b);
endmodule
"""


def run_traced(nl, cc, events, nets=None):
    sim = SequentialSimulator(cc)
    vcd = VcdWriter(nl, nets=nets)
    vcd.attach(sim)
    sim.add_inputs(events)
    sim.run()
    return vcd.finish()


class TestIdCodes:
    def test_unique_and_printable(self):
        codes = [_id_code(i) for i in range(500)]
        assert len(set(codes)) == 500
        for c in codes:
            assert all(33 <= ord(ch) <= 126 for ch in c)

    def test_compact(self):
        assert len(_id_code(0)) == 1
        assert len(_id_code(93)) == 1
        assert len(_id_code(94)) == 2


class TestOutput:
    def test_header_and_definitions(self):
        nl = compile_verilog(SRC)
        cc = compile_circuit(nl)
        text = run_traced(nl, cc, [InputEvent(0, nl.inputs[0], 1)])
        assert "$timescale 1ns $end" in text
        assert "$scope module t $end" in text
        assert text.count("$var wire 1 ") == 3  # a, b, y
        assert "$enddefinitions $end" in text

    def test_initial_dump_is_x(self):
        nl = compile_verilog(SRC)
        cc = compile_circuit(nl)
        text = run_traced(nl, cc, [])
        dump = text.split("$dumpvars")[1].split("$end")[0]
        assert dump.count("x") == 3

    def test_value_changes_recorded(self):
        nl = compile_verilog(SRC)
        cc = compile_circuit(nl)
        a, b = nl.inputs
        events = [InputEvent(0, a, 1), InputEvent(0, b, 1),
                  InputEvent(5, b, 0)]
        text = run_traced(nl, cc, events)
        # y: x -> 1 at t=1, 1 -> 0 at t=6
        assert "#1" in text
        assert "#6" in text

    def test_no_redundant_timestamps(self):
        nl = compile_verilog(SRC)
        cc = compile_circuit(nl)
        text = run_traced(nl, cc, [InputEvent(0, nl.inputs[0], 1)])
        stamps = re.findall(r"^#(\d+)$", text, re.M)
        assert len(stamps) == len(set(stamps))

    def test_custom_net_selection(self):
        nl = compile_verilog(SRC)
        cc = compile_circuit(nl)
        text = run_traced(nl, cc, [], nets=[nl.outputs[0]])
        assert text.count("$var wire 1 ") == 1

    def test_unknown_net_rejected(self):
        nl = compile_verilog(SRC)
        with pytest.raises(SimulationError, match="unknown net"):
            VcdWriter(nl, nets=[9999])

    def test_attach_after_run_rejected(self):
        nl = compile_verilog(SRC)
        cc = compile_circuit(nl)
        sim = SequentialSimulator(cc)
        sim.add_inputs([InputEvent(0, nl.inputs[0], 1)])
        sim.run()
        with pytest.raises(SimulationError, match="before running"):
            VcdWriter(nl).attach(sim)

    def test_file_output(self, tmp_path, pipeadd, pipeadd_circuit):
        events = random_vectors(pipeadd, 5, seed=0)
        sim = SequentialSimulator(pipeadd_circuit)
        vcd = VcdWriter(pipeadd)
        vcd.attach(sim)
        sim.add_inputs(events)
        sim.run()
        path = tmp_path / "wave.vcd"
        vcd.write(path)
        content = path.read_text()
        assert content.startswith("$date")
        # every change line references a declared code
        codes = set(re.findall(r"\$var wire 1 (\S+) ", content))
        for line in content.splitlines():
            m = re.fullmatch(r"[01x](\S+)", line)
            if m:
                assert m.group(1) in codes

    def test_finish_idempotent(self):
        nl = compile_verilog(SRC)
        cc = compile_circuit(nl)
        sim = SequentialSimulator(cc)
        vcd = VcdWriter(nl)
        vcd.attach(sim)
        sim.add_inputs([InputEvent(0, nl.inputs[0], 0)])
        sim.run()
        assert vcd.finish() == vcd.finish()
