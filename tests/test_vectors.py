"""Stimulus generation: schedules, clock detection, determinism."""

import numpy as np
import pytest

from repro.circuits import VectorSchedule, detect_clocks, random_vectors, vector_events
from repro.errors import ConfigError
from repro.sim.events import InputEvent


class TestSchedule:
    def test_defaults_resolve(self):
        period, rise, fall = VectorSchedule().resolved()
        assert 0 < rise < fall < period

    def test_too_short_period(self):
        with pytest.raises(ConfigError, match="period"):
            VectorSchedule(period=2).resolved()

    def test_bad_offsets(self):
        with pytest.raises(ConfigError, match="offsets"):
            VectorSchedule(period=16, rise=10, fall=5).resolved()


class TestClockDetection:
    def test_finds_ff_clock(self, pipeadd):
        clocks = detect_clocks(pipeadd)
        assert len(clocks) == 1
        assert pipeadd.net_name(clocks[0]) == "clk"

    def test_combinational_has_none(self, adder4):
        assert detect_clocks(adder4) == []


class TestVectorEvents:
    def test_layout(self):
        bits = np.array([[1, 0], [0, 1]], dtype=np.int8)
        evs = list(
            vector_events([10, 11], bits, clock_nets=[5],
                          schedule=VectorSchedule(period=8))
        )
        # per vector: 2 data + clock rise + clock fall
        assert len(evs) == 8
        assert evs[0] == InputEvent(0, 10, 1)
        rises = [e for e in evs if e.net == 5 and e.value == 1]
        assert [e.time for e in rises] == [4, 12]

    def test_shape_mismatch(self):
        bits = np.zeros((2, 3), dtype=np.int8)
        with pytest.raises(ConfigError, match="does not match"):
            list(vector_events([1, 2], bits))


class TestRandomVectors:
    def test_deterministic(self, pipeadd):
        a = random_vectors(pipeadd, 5, seed=3)
        b = random_vectors(pipeadd, 5, seed=3)
        assert a == b

    def test_seed_changes_data(self, pipeadd):
        a = random_vectors(pipeadd, 5, seed=3)
        b = random_vectors(pipeadd, 5, seed=4)
        assert a != b

    def test_sorted_by_time(self, pipeadd):
        evs = random_vectors(pipeadd, 10, seed=0)
        times = [e.time for e in evs]
        assert times == sorted(times)

    def test_clock_driven_regularly(self, pipeadd):
        evs = random_vectors(pipeadd, 4, seed=0)
        clk = detect_clocks(pipeadd)[0]
        clk_events = [e for e in evs if e.net == clk]
        # initial 0 + (rise + fall) per vector
        assert len(clk_events) == 1 + 2 * 4

    def test_data_covers_all_noncclock_inputs(self, pipeadd):
        evs = random_vectors(pipeadd, 1, seed=0)
        clk = set(detect_clocks(pipeadd))
        data_nets = {e.net for e in evs if e.time == 0} - clk
        assert data_nets == set(pipeadd.inputs) - clk
