"""ClusterSpec / TimeWarpConfig validation and stats helpers."""

import pytest

from repro.errors import ConfigError
from repro.sim import ClusterSpec, RunStats, TimeWarpConfig
from repro.sim.cluster import MachineStats


class TestClusterSpec:
    def test_defaults_valid(self):
        spec = ClusterSpec(num_machines=4)
        assert spec.event_cost > 0
        assert spec.msg_latency > spec.event_cost

    def test_zero_machines_rejected(self):
        with pytest.raises(ConfigError):
            ClusterSpec(num_machines=0)

    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigError, match="event_cost"):
            ClusterSpec(num_machines=1, event_cost=-1.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigError, match="msg_latency"):
            ClusterSpec(num_machines=1, msg_latency=-0.1)


class TestTimeWarpConfig:
    def test_defaults_valid(self):
        cfg = TimeWarpConfig()
        assert cfg.lazy_cancellation
        assert cfg.checkpoint_interval >= 1

    @pytest.mark.parametrize(
        "kwargs,match",
        [
            (dict(checkpoint_interval=0), "checkpoint_interval"),
            (dict(gvt_interval=0), "gvt_interval"),
            (dict(optimism_window=0), "optimism_window"),
            (dict(stall_threshold=0), "stall_threshold"),
            (dict(migration_threshold=0.0), "migration_threshold"),
            (dict(migration_cost=-1.0), "migration_cost"),
            (dict(migration_cooldown=-1), "migration_cooldown"),
        ],
    )
    def test_invalid_values(self, kwargs, match):
        with pytest.raises(ConfigError, match=match):
            TimeWarpConfig(**kwargs)

    def test_window_none_allowed(self):
        assert TimeWarpConfig(optimism_window=None).optimism_window is None


class TestRunStats:
    def test_efficiency(self):
        s = RunStats(num_machines=4, speedup=2.0)
        assert s.efficiency() == 0.5

    def test_efficiency_empty(self):
        assert RunStats().efficiency() == 0.0

    def test_idle_fraction_bounds(self):
        s = RunStats(num_machines=2, wall_time=10.0)
        s.machines = [MachineStats(busy_time=5.0), MachineStats(busy_time=10.0)]
        assert 0.0 <= s.idle_fraction() <= 1.0
        assert s.idle_fraction() == pytest.approx(0.25)

    def test_summary_mentions_key_numbers(self):
        s = RunStats(num_machines=3, wall_time=1.0, sequential_wall_time=2.0,
                     speedup=2.0, messages=42, rollbacks=7)
        text = s.summary()
        assert "k=3" in text and "42" in text and "2.00" in text
