"""Shared fixtures: small reference circuits compiled once per session."""

from __future__ import annotations

import pytest

from repro.circuits import load_circuit, random_vectors
from repro.sim import compile_circuit
from repro.verilog import compile_verilog

ADDER4_SRC = """
module ha (a, b, s, c);
  input a, b; output s, c;
  xor (s, a, b); and (c, a, b);
endmodule
module fa (a, b, cin, s, cout);
  input a, b, cin; output s, cout;
  wire s1, c1, c2;
  ha u1 (a, b, s1, c1);
  ha u2 (.a(s1), .b(cin), .s(s), .c(c2));
  or (cout, c1, c2);
endmodule
module top (x, y, ci, sum, co);
  input [3:0] x, y; input ci;
  output [3:0] sum; output co;
  wire [2:0] carry;
  fa f0 (x[0], y[0], ci, sum[0], carry[0]);
  fa f1 (x[1], y[1], carry[0], sum[1], carry[1]);
  fa f2 (x[2], y[2], carry[1], sum[2], carry[2]);
  fa f3 (x[3], y[3], carry[2], sum[3], co);
endmodule
"""

PIPEADD_SRC = """
module ha (a, b, s, c);
  input a, b; output s, c;
  xor (s, a, b); and (c, a, b);
endmodule
module fa (a, b, cin, s, cout);
  input a, b, cin; output s, cout;
  wire s1, c1, c2;
  ha u1 (a, b, s1, c1);
  ha u2 (.a(s1), .b(cin), .s(s), .c(c2));
  or (cout, c1, c2);
endmodule
module pipeadd (clk, rst, x, y, ci, sum, co);
  input clk, rst; input [3:0] x, y; input ci;
  output [3:0] sum; output co;
  wire [3:0] xr, yr; wire cir;
  wire [2:0] carry; wire [3:0] s_w; wire co_w;
  dffr rx0 (xr[0], x[0], clk, rst); dffr rx1 (xr[1], x[1], clk, rst);
  dffr rx2 (xr[2], x[2], clk, rst); dffr rx3 (xr[3], x[3], clk, rst);
  dffr ry0 (yr[0], y[0], clk, rst); dffr ry1 (yr[1], y[1], clk, rst);
  dffr ry2 (yr[2], y[2], clk, rst); dffr ry3 (yr[3], y[3], clk, rst);
  dffr rci (cir, ci, clk, rst);
  fa f0 (xr[0], yr[0], cir, s_w[0], carry[0]);
  fa f1 (xr[1], yr[1], carry[0], s_w[1], carry[1]);
  fa f2 (xr[2], yr[2], carry[1], s_w[2], carry[2]);
  fa f3 (xr[3], yr[3], carry[2], s_w[3], co_w);
  dffr rs0 (sum[0], s_w[0], clk, rst); dffr rs1 (sum[1], s_w[1], clk, rst);
  dffr rs2 (sum[2], s_w[2], clk, rst); dffr rs3 (sum[3], s_w[3], clk, rst);
  dffr rco (co, co_w, clk, rst);
endmodule
"""


@pytest.fixture(scope="session")
def adder4():
    """4-bit combinational ripple adder with 2-level hierarchy."""
    return compile_verilog(ADDER4_SRC)


@pytest.fixture(scope="session")
def adder4_circuit(adder4):
    return compile_circuit(adder4)


@pytest.fixture(scope="session")
def pipeadd():
    """Registered 4-bit adder: flip-flops + combinational core."""
    return compile_verilog(PIPEADD_SRC)


@pytest.fixture(scope="session")
def pipeadd_circuit(pipeadd):
    return compile_circuit(pipeadd)


@pytest.fixture(scope="session")
def viterbi_test():
    """Tiny Viterbi decoder (the paper's workload at unit-test scale)."""
    return load_circuit("viterbi-test")


@pytest.fixture(scope="session")
def viterbi_test_circuit(viterbi_test):
    return compile_circuit(viterbi_test)


@pytest.fixture(scope="session")
def pipeadd_events(pipeadd):
    return random_vectors(pipeadd, 40, seed=7)
