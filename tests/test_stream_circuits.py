"""Streamed-vs-parsed equivalence for the array-native circuit path.

The tentpole claim of the streamed construction
(:mod:`repro.circuits.stream`): for every family that exists in both
registries, the :class:`NetlistCSR` emitted directly matches the
netlist parsed from the generated Verilog **gate for gate** — same
gate count, same type and arity at every gate index, and a consistent
net-id bijection covering primary I/O positionally.  On top of that,
the chunked hypergraph build must be bit-identical to the object-model
build, and the compiled-circuit arrays must match between the two
construction paths.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import (
    STREAM_CIRCUITS,
    load_circuit,
    load_stream_circuit,
)
from repro.circuits.memctrl import MemCtrlConfig, memctrl_stream, memctrl_verilog
from repro.circuits.noc import NocConfig, noc_stream, noc_verilog
from repro.circuits.stream import ModuleTemplate, StreamBuilder
from repro.circuits.viterbi import ViterbiConfig, viterbi_stream, viterbi_verilog
from repro.errors import ConfigError, ElaborationError
from repro.hypergraph.build import flat_hypergraph, streamed_flat_hypergraph
from repro.sim.compiled import compile_circuit
from repro.verilog import compile_verilog
from repro.verilog.netlist import _NUM_CONST_NETS
from repro.verilog.netlist_csr import NetlistCSR

#: small configs of the three streamed families — cheap enough that the
#: full bijection check runs in tier-1 time
SMALL = {
    "viterbi": (
        viterbi_verilog,
        viterbi_stream,
        ViterbiConfig(channels=1, states=4, traceback=6, width=4, smu_cols=3),
    ),
    "noc": (noc_verilog, noc_stream, NocConfig(rows=2, cols=3, width=3)),
    "memctrl": (
        memctrl_verilog,
        memctrl_stream,
        MemCtrlConfig(banks=4, abits=3, width=3, queue=2),
    ),
}


def assert_stream_equivalent(netlist, csr) -> None:
    """Gate-for-gate equivalence via a net-id bijection.

    Gate ``i`` of the parsed netlist must be gate ``i`` of the stream
    (same type, same arity), and the pairing of their output/input nets
    must form a single consistent bijection that also maps primary I/O
    positionally and pins the three constant nets to themselves.
    """
    assert csr.num_gates == netlist.num_gates
    assert csr.num_nets == netlist.num_nets
    fwd = np.full(netlist.num_nets, -1, dtype=np.int64)  # parsed -> stream
    rev = np.full(csr.num_nets, -1, dtype=np.int64)

    def bind(a: int, b: int) -> None:
        if fwd[a] == -1:
            assert rev[b] == -1, f"net {b} bound twice on the stream side"
            fwd[a] = b
            rev[b] = a
        else:
            assert fwd[a] == b and rev[b] == a

    for c in range(_NUM_CONST_NETS):
        bind(c, c)
    for gid, gate in enumerate(netlist.gates):
        assert gate.gtype == csr.gate_type(gid), f"gate {gid} type differs"
        spins = csr.gate_inputs(gid)
        assert len(gate.inputs) == len(spins), f"gate {gid} arity differs"
        bind(gate.output, int(csr.gate_output[gid]))
        for a, b in zip(gate.inputs, spins.tolist()):
            bind(a, b)
    assert len(netlist.inputs) == len(csr.inputs)
    assert len(netlist.outputs) == len(csr.outputs)
    for a, b in zip(netlist.inputs, csr.inputs.tolist()):
        bind(a, b)
    for a, b in zip(netlist.outputs, csr.outputs.tolist()):
        bind(a, b)
    assert (fwd >= 0).all(), "some parsed net has no streamed counterpart"
    assert (rev >= 0).all(), "some streamed net has no parsed counterpart"


@pytest.mark.parametrize("family", sorted(SMALL))
def test_streamed_matches_parsed(family):
    text_fn, stream_fn, cfg = SMALL[family]
    netlist = compile_verilog(text_fn(cfg))
    csr = stream_fn(cfg)
    assert_stream_equivalent(netlist, csr)


@pytest.mark.parametrize("family", sorted(SMALL))
def test_streamed_hypergraph_bit_identical(family):
    """Chunked build == object build, array for array."""
    text_fn, stream_fn, cfg = SMALL[family]
    netlist = compile_verilog(text_fn(cfg))
    a = flat_hypergraph(netlist)
    b = streamed_flat_hypergraph(NetlistCSR.from_netlist(netlist))
    assert np.array_equal(a._edge_ptr, b._edge_ptr)
    assert np.array_equal(a._edge_pins, b._edge_pins)
    assert np.array_equal(a.vertex_weight, b.vertex_weight)
    assert np.array_equal(a.edge_weight, b.edge_weight)
    # the public dispatch takes the streamed path for a NetlistCSR
    c = flat_hypergraph(NetlistCSR.from_netlist(netlist))
    assert np.array_equal(a._edge_ptr, c._edge_ptr)
    assert np.array_equal(a._edge_pins, c._edge_pins)


@pytest.mark.parametrize("family", sorted(SMALL))
def test_compiled_circuit_csr_branch_identical(family):
    """compile_circuit(NetlistCSR.from_netlist(nl)) == compile_circuit(nl)."""
    text_fn, _, cfg = SMALL[family]
    netlist = compile_verilog(text_fn(cfg))
    a = compile_circuit(netlist)
    b = compile_circuit(NetlistCSR.from_netlist(netlist))
    assert np.array_equal(a.gate_code, b.gate_code)
    assert np.array_equal(a.gate_output, b.gate_output)
    assert np.array_equal(a.pin_offsets, b.pin_offsets)
    assert np.array_equal(a.pin_net, b.pin_net)
    assert np.array_equal(a.sink_offsets, b.sink_offsets)
    assert np.array_equal(a.sink_gate, b.sink_gate)
    assert np.array_equal(a.initial_values, b.initial_values)
    assert np.array_equal(a.pin_matrix, b.pin_matrix)
    assert np.array_equal(a.pin_mask, b.pin_mask)
    assert a.max_arity == b.max_arity
    assert a.inputs == b.inputs and a.outputs == b.outputs
    # lazy mirrors materialize on demand and carry the same objects
    assert a.gate_inputs == b.gate_inputs
    assert a.net_sinks == b.net_sinks
    assert a.gate_code_list == b.gate_code_list
    assert a.gate_output_list == b.gate_output_list


def test_stream_registry_names_resolve():
    for name in STREAM_CIRCUITS:
        if "xl" in name or "scale" in name or "s100k" in name:
            continue  # big rungs belong to the bench, not tier-1
        csr = load_stream_circuit(name)
        assert isinstance(csr, NetlistCSR)
        assert csr.num_gates > 0


def test_stream_registry_twins_equivalent():
    """Names present in both registries describe the same circuit."""
    for name in ("noc-test", "memctrl-test", "viterbi-test"):
        assert_stream_equivalent(load_circuit(name), load_stream_circuit(name))


def test_unknown_stream_circuit_raises():
    with pytest.raises(ConfigError, match="unknown stream circuit"):
        load_stream_circuit("nope")


def test_template_rejects_unstampable_ports():
    from repro.verilog.netlist import Netlist

    # a port bit aliased to a constant net cannot stamp positionally
    nl = Netlist("bad")
    a = nl.add_net("a")
    nl.inputs.append(a)
    nl.outputs.append(0)  # CONST0 as an "output port"
    with pytest.raises(ElaborationError, match="not stampable"):
        ModuleTemplate.from_netlist(nl)
    # two port bits sharing one net is equally unstampable
    nl2 = Netlist("bad2")
    x = nl2.add_net("x")
    nl2.inputs.append(x)
    nl2.outputs.append(x)
    with pytest.raises(ElaborationError, match="not stampable"):
        ModuleTemplate.from_netlist(nl2)


def test_builder_double_build_rejected():
    b = StreamBuilder("t")
    n_in = b.net()
    b.mark_input([n_in])
    out = b.net()
    b.mark_output([out])
    b.gate("buf", out, n_in)
    b.build()
    with pytest.raises(ConfigError, match="called twice"):
        b.build()


def test_builder_records_circ_counters():
    from repro.obs import MetricsRecorder
    from repro.obs.registry import is_registered

    b = StreamBuilder("t")
    n_in = b.net()
    b.mark_input([n_in])
    outs = b.nets(4)
    b.mark_output(outs)
    b.gates("buf", outs, np.full((4, 1), n_in, dtype=np.int64))
    rec = MetricsRecorder()
    csr = b.build(recorder=rec)
    assert csr.num_gates == 4
    assert rec.counters["circ.gates"] == 4
    assert rec.counters["circ.nets"] == csr.num_nets
    assert rec.counters["circ.pins"] == 4
    assert rec.counters["circ.stamps"] == 0
    assert all(is_registered(k) for k in rec.counters)


def test_streamed_build_records_part_build_counters():
    from repro.obs import MetricsRecorder
    from repro.obs.registry import is_registered

    _, stream_fn, cfg = SMALL["noc"]
    csr = stream_fn(cfg)
    rec = MetricsRecorder()
    hg = streamed_flat_hypergraph(csr, recorder=rec)
    assert rec.counters["part.build.gates"] == hg.num_vertices
    assert rec.counters["part.build.edges"] == hg.num_edges
    assert rec.counters["part.build.edge_pins"] == hg.num_pins
    assert rec.counters["part.build.pins"] == csr.num_pins
    assert all(is_registered(k) for k in rec.counters)
