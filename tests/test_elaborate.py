"""Elaboration tests: hierarchy, binding, constants, error paths."""

import pytest

from repro.errors import ElaborationError
from repro.verilog import (
    CONST0,
    CONST1,
    CONSTX,
    NetlistBuilder,
    compile_verilog,
    elaborate,
    find_top_module,
    parse_source,
)


class TestTopDetection:
    def test_unique_top(self):
        src = parse_source(
            "module a (); b u (); endmodule module b (); endmodule"
        )
        assert find_top_module(src) == "a"

    def test_ambiguous_top(self):
        src = parse_source("module a (); endmodule module b (); endmodule")
        with pytest.raises(ElaborationError, match="ambiguous"):
            find_top_module(src)

    def test_explicit_top_overrides(self):
        nl = compile_verilog(
            "module a (); endmodule module b (); wire y, x; not (y, x); endmodule",
            top="b",
        )
        assert nl.top == "b"
        assert nl.num_gates == 1

    def test_unknown_top(self):
        with pytest.raises(ElaborationError, match="not defined"):
            compile_verilog("module a (); endmodule", top="zzz")


class TestBinding:
    def test_positional_and_named_agree(self):
        base = """
        module inv (y, a); output y; input a; not (y, a); endmodule
        """
        pos = compile_verilog(base + "module t (o, i); output o; input i; inv u (o, i); endmodule")
        nam = compile_verilog(base + "module t (o, i); output o; input i; inv u (.a(i), .y(o)); endmodule")
        assert pos.num_gates == nam.num_gates == 1
        g = nam.gates[0]
        assert g.inputs[0] in nam.inputs
        assert g.output in nam.outputs

    def test_vector_port_binding(self):
        nl = compile_verilog(
            """
            module reg2 (q, d); output [1:0] q; input [1:0] d;
              buf (q[0], d[0]); buf (q[1], d[1]);
            endmodule
            module t (o, i); output [1:0] o; input [1:0] i;
              reg2 u (.q(o), .d(i));
            endmodule
            """
        )
        assert nl.num_gates == 2
        assert len(nl.inputs) == 2
        assert len(nl.outputs) == 2

    def test_concat_binding(self):
        nl = compile_verilog(
            """
            module pass2 (o, i); output [1:0] o; input [1:0] i;
              buf (o[0], i[0]); buf (o[1], i[1]);
            endmodule
            module t (o, a, b); output [1:0] o; input a, b;
              pass2 u (.o(o), .i({b, a}));
            endmodule
            """
        )
        # concat is MSB-first: i[0] <- a, i[1] <- b
        g_by_out = {g.output: g for g in nl.gates}
        o0 = nl.outputs[0]
        a = nl.inputs[0]
        assert g_by_out[o0].inputs[0] == a

    def test_width_mismatch(self):
        with pytest.raises(ElaborationError, match="width mismatch"):
            compile_verilog(
                """
                module s (i); input [3:0] i; endmodule
                module t (a); input a; s u (.i(a)); endmodule
                """
            )

    def test_unknown_port(self):
        with pytest.raises(ElaborationError, match="no port"):
            compile_verilog(
                """
                module s (i); input i; endmodule
                module t (a); input a; s u (.zz(a)); endmodule
                """
            )

    def test_port_connected_twice(self):
        with pytest.raises(ElaborationError, match="twice"):
            compile_verilog(
                """
                module s (i); input i; endmodule
                module t (a); input a; s u (.i(a), .i(a)); endmodule
                """
            )

    def test_too_many_positional(self):
        with pytest.raises(ElaborationError, match="connections"):
            compile_verilog(
                """
                module s (i); input i; endmodule
                module t (a); input a; s u (a, a); endmodule
                """
            )

    def test_unconnected_input_reads_x(self):
        nl = compile_verilog(
            """
            module s (o, i); output o; input i; buf (o, i); endmodule
            module t (o); output o; s u (.o(o), .i()); endmodule
            """
        )
        assert nl.gates[0].inputs[0] == CONSTX

    def test_undefined_module(self):
        with pytest.raises(ElaborationError, match="not defined"):
            compile_verilog("module t (); nosuch u (); endmodule")

    def test_recursive_instantiation_detected(self):
        with pytest.raises(ElaborationError, match="deeper"):
            compile_verilog(
                "module a (); a u (); endmodule", top="a"
            )


class TestConstantsAndAliases:
    def test_literal_connection(self):
        nl = compile_verilog(
            """
            module s (o, i); output o; input i; buf (o, i); endmodule
            module t (o); output o; s u (.o(o), .i(1'b1)); endmodule
            """
        )
        assert nl.gates[0].inputs[0] == CONST1

    def test_supply_nets(self):
        nl = compile_verilog(
            """
            module t (o); output o;
              supply0 gnd; supply1 vdd;
              and (o, vdd, gnd);
            endmodule
            """
        )
        assert set(nl.gates[0].inputs) == {CONST0, CONST1}

    def test_assign_alias_merges_nets(self):
        nl = compile_verilog(
            """
            module t (o, i); output o; input i;
              wire mid;
              assign mid = i;
              buf (o, mid);
            endmodule
            """
        )
        assert nl.gates[0].inputs[0] in nl.inputs

    def test_assign_width_mismatch(self):
        with pytest.raises(ElaborationError, match="width mismatch"):
            compile_verilog(
                "module t (); wire [1:0] a; wire b; assign a = b; endmodule"
            )

    def test_input_tied_to_constant_rejected(self):
        with pytest.raises(ElaborationError, match="constant"):
            compile_verilog(
                "module t (i); input i; assign i = 1'b0; endmodule"
            )

    def test_implicit_scalar_wire(self):
        nl = compile_verilog(
            "module t (o, i); output o; input i; buf (o, undeclared); buf (undeclared, i); endmodule"
        )
        assert nl.num_gates == 2

    def test_gate_terminal_must_be_scalar(self):
        with pytest.raises(ElaborationError, match="scalar"):
            compile_verilog(
                "module t (); wire [1:0] v; wire y; buf (y, v); endmodule"
            )

    def test_multiple_drivers_rejected(self):
        from repro.errors import NetlistError

        with pytest.raises(NetlistError, match="driven by both"):
            compile_verilog(
                "module t (a, b); input a, b; wire y; buf (y, a); buf (y, b); endmodule"
            )


class TestHierarchyTree:
    def test_paths_and_counts(self, adder4):
        root = adder4.hierarchy
        assert root.module == "top"
        assert set(root.children) == {"f0", "f1", "f2", "f3"}
        f0 = root.children["f0"]
        assert f0.module == "fa"
        assert set(f0.children) == {"u1", "u2"}
        assert f0.total_gates == 5
        assert root.total_gates == 20

    def test_subtree_gates_cover(self, adder4):
        all_gates = sorted(adder4.hierarchy.subtree_gates())
        assert all_gates == list(range(adder4.num_gates))

    def test_find(self, adder4):
        node = adder4.hierarchy.find(("f1", "u2"))
        assert node.module == "ha"
        assert len(node.gate_ids) == 2

    def test_gate_paths_match_tree(self, adder4):
        for gate in adder4.gates:
            node = adder4.hierarchy.find(gate.path)
            assert gate.gid in node.gate_ids


class TestNetlistBuilder:
    def test_basic(self):
        nb = NetlistBuilder("toy")
        a, b = nb.input("a"), nb.input("b")
        y = nb.net("y")
        nb.gate("nand", (a, b), y)
        nb.output_net(y)
        nl = nb.build()
        assert nl.num_gates == 1
        assert nl.inputs == [a, b]
        assert nl.outputs == [y]

    def test_inputs_recorded(self):
        nb = NetlistBuilder("toy")
        a, b = nb.input("a"), nb.input("b")
        y = nb.net()
        nb.gate("or", (a, b), y)
        nl = nb.build()
        assert nl.inputs == [a, b]

    def test_path_creates_hierarchy(self):
        nb = NetlistBuilder("toy")
        a = nb.input("a")
        y = nb.net()
        nb.gate("not", (a,), y, path=("sub",))
        nl = nb.build()
        assert "sub" in nl.hierarchy.children
        assert nl.hierarchy.children["sub"].total_gates == 1

    def test_arity_check(self):
        nb = NetlistBuilder("toy")
        a = nb.input("a")
        y = nb.net()
        with pytest.raises(ElaborationError):
            nb.gate("and", (a,), y)

    def test_double_build_rejected(self):
        nb = NetlistBuilder("toy")
        nb.build()
        with pytest.raises(ElaborationError, match="twice"):
            nb.build()

    def test_dff_helper(self):
        nb = NetlistBuilder("toy")
        d, clk = nb.input("d"), nb.input("clk")
        q = nb.net("q")
        nb.dff(d, clk, q)
        nl = nb.build()
        assert nl.gates[0].gtype == "dff"


class TestNetNames:
    def test_shortest_name_wins(self):
        nl = compile_verilog(
            """
            module s (o, i); output o; input i; buf (o, i); endmodule
            module t (out, inp); output out; input inp;
              s u (.o(out), .i(inp));
            endmodule
            """
        )
        # the port alias group {inp, u.i} picks the shortest name
        in_name = nl.net_name(nl.inputs[0])
        assert in_name == "inp"

    def test_undriven_detection(self):
        nl = compile_verilog(
            "module t (o); output o; wire dangling; buf (o, dangling); endmodule"
        )
        undriven = nl.undriven_nets()
        assert len(undriven) == 1
        assert nl.net_name(undriven[0]) == "dangling"
