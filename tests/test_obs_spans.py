"""Hierarchical spans, cross-process telemetry merge and the timeline
exporter (repro.obs.spans / repro.obs.timeline / repro.obs.sampler).

The load-bearing claims:

* nested ``recorder.phase()`` calls become a well-formed span tree
  (parents precede children, child intervals sit inside their parents);
* worker mini-recorder payloads merge back losslessly and in
  deterministic order, so the volatile-stripped metrics document is
  **sha256-identical at any worker count** for every parallel fan-out
  (refine rounds, presim searches, sweep grids);
* ``chrome_trace`` turns a spans-bearing document into valid
  Chrome-trace JSON with one lane per worker process.
"""

import hashlib
import json

import pytest

from repro.circuits import circuit_source, random_vectors
from repro.core import (
    brute_force_presim,
    design_driven_partition,
    heuristic_presim,
)
from repro.errors import MetricsError
from repro.obs import (
    MetricsRecorder,
    ResourceSampler,
    SpanRecorder,
    chrome_trace,
    dumps_metrics,
    export_telemetry,
    merge_telemetry,
    metrics_document,
    span_depths,
    strip_volatile,
    validate_spans,
    worker_lane,
)
from repro.sim import TimeWarpConfig


def fake_clocks():
    """Deterministic (flat clock, span clock) pair for exact trees."""
    flat = iter(x * 0.5 for x in range(1000))
    wall = iter(float(x) for x in range(1000))
    return (lambda: next(flat)), (lambda: next(wall))


def nested_recorder() -> SpanRecorder:
    clock, span_clock = fake_clocks()
    rec = SpanRecorder(clock=clock, span_clock=span_clock)
    with rec.phase("sweep.cell"):
        with rec.phase("presim.partition"):
            pass
        with rec.phase("presim.simulate"):
            pass
    return rec


class TestSpanTree:
    def test_nesting_becomes_parent_links(self):
        rows = nested_recorder().span_rows()
        by_name = {r["name"]: r for r in rows}
        assert by_name["sweep.cell"]["parent"] is None
        root = by_name["sweep.cell"]["sid"]
        assert by_name["presim.partition"]["parent"] == root
        assert by_name["presim.simulate"]["parent"] == root

    def test_invariants_hold(self):
        rows = nested_recorder().span_rows()
        assert validate_spans(rows) is rows
        assert max(span_depths(rows).values()) == 2

    def test_structural_counters(self):
        counters = nested_recorder().as_counters()
        assert counters["obs.span.count"] == 3
        assert counters["obs.span.depth.max"] == 2
        # flat phase accounting is untouched by the span layer
        assert counters["sweep.cell.calls"] == 1
        assert counters["presim.partition.calls"] == 1

    def test_open_spans_not_exported(self):
        clock, span_clock = fake_clocks()
        rec = SpanRecorder(clock=clock, span_clock=span_clock)
        with rec.phase("sweep.cell"):
            with rec.phase("presim.partition"):
                pass
            assert [r["name"] for r in rec.span_rows()] == []
        assert len(rec.span_rows()) == 2

    def test_driver_lane_is_main(self):
        assert worker_lane() == "main"
        assert all(r["lane"] == "main"
                   for r in nested_recorder().span_rows())


class TestMerge:
    def worker_payload(self, lane="worker-1", t0=10.5, t1=10.6):
        wall = iter([t0, t1])
        wrec = SpanRecorder(clock=lambda: 0.25,
                            span_clock=lambda: next(wall), lane=lane)
        with wrec.phase("refine.pair"):
            wrec.incr("part.fm.moves", 3)
            wrec.observe_max("part.fm.gain", 7)
        return export_telemetry(wrec)

    def test_roundtrip_is_lossless(self):
        payload = self.worker_payload()
        assert payload["counters"]["part.fm.moves"] == 3
        assert payload["maxima"]["part.fm.gain"] == 7
        assert payload["phases"]["refine.pair"][0] == 1
        assert len(payload["spans"]) == 1

    def test_merge_grafts_under_open_span(self):
        clock, span_clock = fake_clocks()
        rec = SpanRecorder(clock=clock, span_clock=span_clock)
        with rec.phase("sweep.cell"):
            merge_telemetry(rec, self.worker_payload())
        rows = rec.span_rows()
        worker = next(r for r in rows if r["lane"] == "worker-1")
        root = next(r for r in rows if r["name"] == "sweep.cell")
        assert worker["parent"] == root["sid"]
        counters = rec.as_counters()
        assert counters["part.fm.moves"] == 3
        assert counters["part.fm.gain.max"] == 7
        assert counters["refine.pair.calls"] == 1

    def test_merge_order_gives_stable_sids(self):
        clock, span_clock = fake_clocks()
        rec = SpanRecorder(clock=clock, span_clock=span_clock)
        with rec.phase("sweep.cell"):
            merge_telemetry(rec, self.worker_payload("worker-1"))
            merge_telemetry(rec, self.worker_payload("worker-2"))
        lanes = [r["lane"] for r in rec.span_rows()]
        assert lanes.count("worker-1") == 1 and lanes.count("worker-2") == 1
        assert validate_spans(rec.span_rows(), tolerance=1e9)

    def test_plain_recorder_merges_flat_channels_only(self):
        rec = MetricsRecorder(clock=lambda: 0.0)
        merge_telemetry(rec, self.worker_payload())
        counters = rec.as_counters()
        assert counters["part.fm.moves"] == 3
        assert "obs.span.count" not in counters

    def test_noop_payloads(self):
        rec = SpanRecorder()
        merge_telemetry(rec, None)
        assert rec.span_rows() == []
        from repro.obs import NULL_RECORDER

        merge_telemetry(NULL_RECORDER, self.worker_payload())  # no raise


class TestValidateSpans:
    GOOD = {"sid": 0, "parent": None, "name": "a", "lane": "main",
            "t0": 0.0, "t1": 1.0}

    def test_orphan_rejected(self):
        with pytest.raises(MetricsError, match="orphan"):
            validate_spans([self.GOOD,
                            {**self.GOOD, "sid": 1, "parent": 99}])

    def test_sid_must_increase(self):
        with pytest.raises(MetricsError, match="does not increase"):
            validate_spans([self.GOOD, dict(self.GOOD)])

    def test_backwards_interval_rejected(self):
        with pytest.raises(MetricsError, match="precedes"):
            validate_spans([{**self.GOOD, "t0": 2.0, "t1": 1.0}])

    def test_child_escaping_parent_rejected(self):
        child = {**self.GOOD, "sid": 1, "parent": 0, "t0": 0.5, "t1": 5.0}
        with pytest.raises(MetricsError, match="escapes parent"):
            validate_spans([self.GOOD, child])
        # a generous tolerance forgives the same escape
        assert validate_spans([self.GOOD, child], tolerance=10.0)


class TestDocumentSpans:
    def test_spans_field_is_volatile(self):
        doc = metrics_document("t", kind="custom",
                               recorder=nested_recorder())
        assert len(doc["spans"]) == 3
        assert "spans" not in strip_volatile(doc)
        dumps_metrics(doc)  # validates

    def test_malformed_span_rows_rejected(self):
        doc = metrics_document("t", kind="custom",
                               recorder=nested_recorder())
        bad = {**doc, "spans": [{"sid": 0, "oops": True}]}
        with pytest.raises(MetricsError, match="spans"):
            dumps_metrics(bad)


def _digest(recorder, counters=None) -> str:
    doc = metrics_document("digest", kind="custom", counters=counters,
                           recorder=recorder)
    return hashlib.sha256(
        dumps_metrics(strip_volatile(doc)).encode()).hexdigest()


class TestWorkerCountDigests:
    """ISSUE acceptance: merged telemetry is byte-identical at any
    worker count, for every parallel fan-out in the repo."""

    def test_refine_digest_identical_1_2_4(self, viterbi_test):
        digests = set()
        for workers in (1, 2, 4):
            rec = SpanRecorder()
            design_driven_partition(
                viterbi_test, k=4, b=10.0, seed=0, pairing="exhaustive",
                workers=workers, recorder=rec,
            )
            digests.add(_digest(rec))
        assert len(digests) == 1

    def test_brute_force_presim_digest_identical(self, viterbi_test):
        events = random_vectors(viterbi_test, 8, seed=2)
        digests = set()
        for workers in (1, 2):
            rec = SpanRecorder()
            brute_force_presim(
                viterbi_test, events, ks=(2, 3), bs=(7.5,), seed=1,
                config=TimeWarpConfig(gvt_interval=64),
                workers=workers, recorder=rec,
            )
            digests.add(_digest(rec))
        assert len(digests) == 1

    def test_heuristic_presim_digest_identical(self, viterbi_test):
        events = random_vectors(viterbi_test, 8, seed=2)
        digests = set()
        for workers in (1, 2):
            rec = SpanRecorder()
            heuristic_presim(
                viterbi_test, events, max_k=3, seed=1,
                config=TimeWarpConfig(gvt_interval=64),
                workers=workers, recorder=rec,
            )
            digests.add(_digest(rec))
        assert len(digests) == 1

    def test_sweep_grid_digest_identical(self):
        from repro.bench import run_presim_grid

        source = circuit_source("viterbi-test")
        digests = set()
        for workers in (1, 2):
            rec = SpanRecorder()
            cells = run_presim_grid(
                source, ks=(2,), bs=(7.5, 15.0), n_vectors=8, seed=1,
                workers=workers, recorder=rec,
            )
            digests.add(_digest(
                rec, counters={"bench.rows": len(cells)}))
        assert len(digests) == 1

    def test_parallel_run_has_worker_lanes(self, viterbi_test):
        rec = SpanRecorder()
        design_driven_partition(
            viterbi_test, k=4, b=10.0, seed=0, pairing="exhaustive",
            workers=2, recorder=rec,
        )
        lanes = {r["lane"] for r in rec.span_rows()}
        assert "main" in lanes
        assert any(lane.startswith("worker-") for lane in lanes)
        validate_spans(rec.span_rows())


class TestTimeline:
    def test_chrome_trace_shape(self):
        doc = metrics_document("t", kind="custom",
                               recorder=nested_recorder())
        trace = chrome_trace(doc)
        events = trace["traceEvents"]
        slices = [e for e in events if e["ph"] == "X"]
        metas = [e for e in events if e["ph"] == "M"]
        assert len(slices) == 3
        assert all(e["cat"] == "span" for e in slices)
        assert all(e["dur"] >= 0 for e in slices)
        assert {e["name"] for e in metas} >= {"process_name",
                                              "thread_name"}
        json.dumps(trace)  # serializable as-is

    def test_lanes_get_distinct_tids_main_first(self):
        clock, span_clock = fake_clocks()
        rec = SpanRecorder(clock=clock, span_clock=span_clock)
        wall = iter([0.3, 0.6])
        wrec = SpanRecorder(clock=lambda: 0.0,
                            span_clock=lambda: next(wall),
                            lane="worker-7")
        with wrec.phase("refine.pair"):
            pass
        with rec.phase("sweep.cell"):
            merge_telemetry(rec, export_telemetry(wrec))
        trace = chrome_trace(
            metrics_document("t", kind="custom", recorder=rec))
        lanes = {}
        for e in trace["traceEvents"]:
            if e["ph"] == "M" and e["name"] == "thread_name":
                lanes[e["args"]["name"]] = e["tid"]
        assert set(lanes) == {"main", "worker-7"}
        assert lanes["main"] < lanes["worker-7"]

    def test_document_without_spans_rejected(self):
        doc = metrics_document("t", kind="custom",
                               counters={"part.cut_size": 1})
        with pytest.raises(MetricsError, match="span"):
            chrome_trace(doc)

    def test_cli_timeline_roundtrip(self, tmp_path):
        from repro.cli import main
        from repro.obs import write_metrics

        doc = metrics_document("t", kind="custom",
                               recorder=nested_recorder())
        metrics_path = tmp_path / "m.json"
        write_metrics(metrics_path, doc)
        out_path = tmp_path / "m.trace.json"
        import io

        assert main(["obs", "timeline", str(metrics_path)],
                    out=io.StringIO()) == 0
        trace = json.loads(out_path.read_text())
        assert len([e for e in trace["traceEvents"]
                    if e["ph"] == "X"]) == 3


class TestResourceSampler:
    def test_samples_and_host_values(self):
        with ResourceSampler(interval=0.01) as sampler:
            sum(range(10000))
        vals = sampler.as_host_values()
        assert vals["obs.sampler.samples"] >= 1
        assert vals["obs.sampler.peak_rss_kb"] > 0
        assert vals["obs.sampler.cpu_seconds"] >= 0

    def test_record_into_quarantines(self):
        rec = SpanRecorder()
        sampler = ResourceSampler(interval=0.01)
        sampler.start()
        sampler.stop()
        sampler.record_into(rec)
        host = rec.host_timings()
        assert "obs.sampler.peak_rss_kb" in host
        # host channel only: nothing leaked into the gated counters
        assert not any(k.startswith("obs.sampler")
                       for k in rec.as_counters())


class TestDroppedCounter:
    def test_engine_records_ring_evictions(self, viterbi_test):
        from repro.circuits import random_vectors
        from repro.core import design_driven_partition
        from repro.obs import TraceBuffer
        from repro.sim import (
            ClusterSpec,
            compile_circuit,
            run_partitioned,
        )

        events = random_vectors(viterbi_test, 20, seed=0)
        part = design_driven_partition(viterbi_test, k=2, b=10.0, seed=0)
        clusters, machines = part.to_simulation()
        rec = SpanRecorder()
        trace = TraceBuffer(capacity=4)
        run_partitioned(
            compile_circuit(viterbi_test), clusters, machines, events,
            ClusterSpec(num_machines=2), recorder=rec, trace=trace,
        )
        counters = rec.as_counters()
        assert counters["obs.trace.dropped"] == trace.dropped
        assert trace.dropped > 0

    def test_report_surfaces_truncation(self):
        from repro.obs import TraceBuffer, analyze_run, parse_trace

        buf = TraceBuffer(capacity=2)
        for r in range(5):
            buf.emit("gvt", round=r, gvt=r, checkpoint_bytes=0)
        events = parse_trace(buf.to_jsonl())
        # inference from surviving seqs, no metrics document needed
        report = analyze_run(events)
        assert report.trace_dropped == 3
        assert "trace truncated" in report.render()
        # the recorded counter is authoritative when present
        doc = metrics_document(
            "t", kind="custom", counters={"obs.trace.dropped": 3})
        assert analyze_run(events, doc).trace_dropped == 3

    def test_untruncated_trace_is_quiet(self):
        from repro.obs import TraceBuffer, analyze_run, parse_trace

        buf = TraceBuffer(capacity=16)
        buf.emit("gvt", round=1, gvt=1, checkpoint_bytes=0)
        report = analyze_run(parse_trace(buf.to_jsonl()))
        assert report.trace_dropped == 0
        assert "truncated" not in report.render()
