"""Equivalence tests for the vectorized incremental partition core.

The optimized bookkeeping (λ cache, plain-list mirrors, batch gains,
derived-array snapshots — docs/performance.md) is only admissible
because it computes *exactly* the integers the naive path would.  These
tests pin that contract from several directions:

* randomized interleavings of ``move`` / ``copy`` / ``bulk_assign`` /
  ``snapshot``+``restore`` against a fresh ``recompute()`` oracle;
* batch ``move_gains`` against scalar ``move_gain`` over every
  (vertex, target) cell;
* the mirror invariant: the plain-``int`` lists carry the same values
  as the authoritative NumPy arrays at every observation point;
* the bulk neighbor adjacency against a brute-force rebuild;
* the tier-1 smoke form of the speed study (structural parity between
  the vectorized core and the pre-PR legacy implementation).
"""

import numpy as np
import pytest

from repro.bench.partition_speed import smoke_study, synthetic_hypergraph
from repro.hypergraph import Hypergraph, PartitionState


def _random_hg(seed: int, n: int = 60, m: int = 90) -> Hypergraph:
    rng = np.random.default_rng(seed)
    edges = []
    for _ in range(m):
        size = int(rng.integers(2, 6))
        edges.append(sorted(rng.choice(n, size=size, replace=False).tolist()))
    vw = rng.integers(1, 4, size=n).tolist()
    ew = rng.integers(1, 3, size=m).tolist()
    return Hypergraph.from_edges(vw, edges, edge_weights=ew)


def _assert_matches_oracle(state: PartitionState) -> None:
    """Derived quantities and mirrors equal a from-scratch recompute."""
    oracle = PartitionState(state.hg, state.k, state.part.copy())
    np.testing.assert_array_equal(state.edge_part_count, oracle.edge_part_count)
    np.testing.assert_array_equal(state.edge_lambda, oracle.edge_lambda)
    np.testing.assert_array_equal(state.part_weight, oracle.part_weight)
    assert state.cut_size == oracle.cut_size
    assert state.connectivity == oracle.connectivity
    # mirror invariant: the plain-list shadows carry the same integers
    assert state._part_list == state.part.tolist()
    assert state._lam_list == state.edge_lambda.tolist()
    assert state._counts_list == state.edge_part_count.tolist()
    assert state._pw_list == state.part_weight.tolist()
    # the flat alias still views the authoritative counts array
    assert state._counts_flat.base is state.edge_part_count or (
        state._counts_flat.base is state.edge_part_count.base
    )


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize("k", [2, 4, 8])
def test_interleaved_ops_match_recompute(seed, k):
    hg = _random_hg(seed)
    rng = np.random.default_rng(100 + seed)
    state = PartitionState(hg, k, rng.integers(0, k, size=hg.num_vertices))
    for step in range(120):
        op = rng.integers(0, 10)
        if op < 6:
            state.move(int(rng.integers(0, hg.num_vertices)),
                       int(rng.integers(0, k)))
        elif op < 7:
            vs = rng.choice(hg.num_vertices,
                            size=int(rng.integers(1, 6)), replace=False)
            state.bulk_assign(vs.tolist(), int(rng.integers(0, k)))
        elif op < 8:
            snap = state.snapshot()
            for _ in range(int(rng.integers(1, 8))):
                state.move(int(rng.integers(0, hg.num_vertices)),
                           int(rng.integers(0, k)))
            state.restore(snap)
        else:
            state = state.copy()
        if step % 30 == 29:
            _assert_matches_oracle(state)
    _assert_matches_oracle(state)


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("k", [2, 4, 8])
def test_batch_gains_equal_scalar_everywhere(seed, k):
    hg = _random_hg(seed)
    rng = np.random.default_rng(200 + seed)
    state = PartitionState(hg, k, rng.integers(0, k, size=hg.num_vertices))
    all_v = np.arange(hg.num_vertices, dtype=np.int64)
    for target in range(k):
        batch = state.move_gains(all_v, target)
        scalar = [state.move_gain(int(v), target) for v in all_v]
        assert batch.tolist() == scalar
    # mixed per-vertex targets as well
    targets = rng.integers(0, k, size=hg.num_vertices)
    batch = state.move_gains(all_v, targets)
    scalar = [state.move_gain(int(v), int(t)) for v, t in zip(all_v, targets)]
    assert batch.tolist() == scalar
    # gains predict the realized cut delta
    for v in range(0, hg.num_vertices, 7):
        t = int(targets[v])
        before = state.cut_size
        g = state.move_gain(v, t)
        assert state.move(v, t) == g
        assert state.cut_size == before - g


def test_move_gains_tiny_batch_matches_vector_path():
    # batches straddling the scalar/vector threshold agree
    hg = _random_hg(7, n=80, m=120)
    rng = np.random.default_rng(7)
    state = PartitionState(hg, 4, rng.integers(0, 4, size=hg.num_vertices))
    for size in (1, 2, 15, 16, 17, 40):
        vs = rng.choice(hg.num_vertices, size=size, replace=False)
        ts = rng.integers(0, 4, size=size)
        got = state.move_gains(vs, ts)
        want = [state.move_gain(int(v), int(t)) for v, t in zip(vs, ts)]
        assert got.tolist() == want


def test_export_from_arrays_roundtrip_stays_live():
    hg = _random_hg(11)
    rng = np.random.default_rng(11)
    state = PartitionState(hg, 4, rng.integers(0, 4, size=hg.num_vertices))
    clone = PartitionState.from_arrays(hg, 4, state.export_arrays())
    _assert_matches_oracle(clone)
    # the adopted state keeps working incrementally and independently
    clone.move(3, (clone.part_of(3) + 1) % 4)
    _assert_matches_oracle(clone)
    _assert_matches_oracle(state)
    assert state.part_of(3) != clone.part_of(3) or True  # no aliasing crash


def test_snapshot_restore_preserves_views_and_state():
    hg = _random_hg(13)
    rng = np.random.default_rng(13)
    state = PartitionState(hg, 4, rng.integers(0, 4, size=hg.num_vertices))
    counts_obj = state.edge_part_count
    before = state.export_arrays()
    snap = state.snapshot()
    for _ in range(50):
        state.move(int(rng.integers(0, hg.num_vertices)),
                   int(rng.integers(0, 4)))
    state.restore(snap)
    # same array objects (outstanding views stay valid), same values
    assert state.edge_part_count is counts_obj
    part, pw, counts, lam, cut, soed = before
    np.testing.assert_array_equal(state.part, part)
    np.testing.assert_array_equal(state.part_weight, pw)
    np.testing.assert_array_equal(state.edge_part_count, counts)
    np.testing.assert_array_equal(state.edge_lambda, lam)
    assert state.cut_size == cut
    assert state.connectivity == soed
    _assert_matches_oracle(state)
    # and the restored state still moves correctly
    state.move(5, (state.part_of(5) + 1) % 4)
    _assert_matches_oracle(state)


def test_neighbor_lists_match_bruteforce():
    hg = _random_hg(17)
    lists = hg.neighbor_lists()
    assert len(lists) == hg.num_vertices
    for v in range(hg.num_vertices):
        expect: set[int] = set()
        for e in hg.vertex_edges(v):
            expect.update(int(u) for u in hg.edge_vertices(int(e)))
        expect.discard(v)
        assert lists[v] == sorted(expect)
        assert hg.neighbor_list(v) is lists[v]
        assert hg.neighbors(v) == expect
        np.testing.assert_array_equal(hg.neighbor_array(v), sorted(expect))


def test_neighbor_lists_empty_graph():
    hg = Hypergraph.from_edges([1, 1, 1], [])
    assert hg.neighbor_lists() == [[], [], []]
    assert hg.neighbors(1) == set()


def test_smoke_speed_study_parity_and_counters():
    """Tier-1 form of benchmarks/bench_partition_speed.py: the
    vectorized core and the pre-PR legacy implementation produce the
    same structural sweep outcome (asserted inside speed_study), and
    the batch machinery actually engaged."""
    fast, slow = smoke_study(seed=0)
    assert fast.cut_after < fast.cut_before  # the sweep refined something
    assert fast.cut_after == slow.cut_after
    assert fast.lambda_hits > 0
    assert fast.gain_batches > 0
    assert fast.gain_batch_vertices > 0
    assert fast.boundary_batches > 0
    # legacy side records no core counters (it has no vectorized core)
    assert slow.lambda_hits == 0


def test_synthetic_hypergraph_is_deterministic():
    a = synthetic_hypergraph(300, 450, seed=5)
    b = synthetic_hypergraph(300, 450, seed=5)
    np.testing.assert_array_equal(a.pin_vertices, b.pin_vertices)
    np.testing.assert_array_equal(a.pin_edges, b.pin_edges)
    assert a.num_vertices == 300 and a.num_edges == 450
