"""PartitionState: incremental bookkeeping vs recompute-from-scratch."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PartitionError
from repro.hypergraph import (
    Hypergraph,
    PartitionState,
    connectivity_cut,
    hyperedge_cut,
    part_weights,
)


def hg3():
    return Hypergraph.from_edges(
        [1, 2, 3, 1, 1], [[0, 1], [1, 2, 3], [3, 4], [0, 4]]
    )


class TestBasics:
    def test_initial_all_zero(self):
        s = PartitionState(hg3(), 2)
        assert s.cut_size == 0
        assert s.part_weight.tolist() == [8, 0]

    def test_explicit_assignment(self):
        s = PartitionState(hg3(), 2, [0, 0, 1, 1, 1])
        assert s.cut_size == hyperedge_cut(hg3(), [0, 0, 1, 1, 1])
        assert s.part_weight.tolist() == [3, 5]

    def test_bad_k(self):
        with pytest.raises(PartitionError):
            PartitionState(hg3(), 0)

    def test_bad_assignment_length(self):
        with pytest.raises(PartitionError, match="length"):
            PartitionState(hg3(), 2, [0, 1])

    def test_assignment_out_of_range(self):
        with pytest.raises(PartitionError, match="out of range"):
            PartitionState(hg3(), 2, [0, 0, 0, 0, 5])

    def test_move_updates_weights(self):
        s = PartitionState(hg3(), 2)
        s.move(2, 1)
        assert s.part_weight.tolist() == [5, 3]
        assert s.part_of(2) == 1

    def test_move_to_same_part_is_noop(self):
        s = PartitionState(hg3(), 2)
        assert s.move(0, 0) == 0

    def test_move_to_bad_part(self):
        s = PartitionState(hg3(), 2)
        with pytest.raises(PartitionError):
            s.move(0, 7)

    def test_move_returns_realized_gain(self):
        s = PartitionState(hg3(), 2, [0, 1, 1, 1, 1])
        before = s.cut_size
        gain = s.move(0, 1)
        assert s.cut_size == before - gain

    def test_move_gain_predicts(self):
        s = PartitionState(hg3(), 3, [0, 1, 2, 0, 1])
        for v in range(5):
            for p in range(3):
                predicted = s.move_gain(v, p)
                before = s.cut_size
                frm = s.part_of(v)
                realized = s.move(v, p)
                assert realized == predicted
                assert s.cut_size == before - realized
                s.move(v, frm)  # restore

    def test_parts_listing(self):
        s = PartitionState(hg3(), 2, [0, 1, 0, 1, 0])
        assert s.parts() == [[0, 2, 4], [1, 3]]

    def test_copy_is_independent(self):
        s = PartitionState(hg3(), 2, [0, 1, 0, 1, 0])
        c = s.copy()
        c.move(0, 1)
        assert s.part_of(0) == 0
        assert c.part_of(0) == 1

    def test_bulk_assign(self):
        s = PartitionState(hg3(), 2)
        s.bulk_assign([0, 1, 2], 1)
        assert s.part_weight.tolist() == [2, 6]
        assert s.cut_size == hyperedge_cut(hg3(), s.part)

    def test_pair_cut(self):
        s = PartitionState(hg3(), 3, [0, 1, 2, 0, 1])
        m = s.pair_cut_matrix()
        for a in range(3):
            for b in range(3):
                if a != b:
                    assert m[a, b] == s.pair_cut(a, b)
                else:
                    assert m[a, a] == 0

    def test_max_imbalance_zero_for_perfect(self):
        hg = Hypergraph.from_edges([1, 1], [[0, 1]])
        s = PartitionState(hg, 2, [0, 1])
        assert s.max_imbalance() == 0.0


@st.composite
def hg_and_moves(draw):
    n = draw(st.integers(3, 10))
    m = draw(st.integers(1, 12))
    k = draw(st.integers(2, 4))
    edges = []
    for _ in range(m):
        size = draw(st.integers(2, min(n, 4)))
        edges.append(
            draw(st.lists(st.integers(0, n - 1), min_size=size, max_size=size, unique=True))
        )
    weights = draw(st.lists(st.integers(1, 4), min_size=n, max_size=n))
    init = draw(st.lists(st.integers(0, k - 1), min_size=n, max_size=n))
    moves = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, k - 1)),
            min_size=0,
            max_size=20,
        )
    )
    return Hypergraph.from_edges(weights, edges), k, init, moves


class TestIncrementalOracle:
    @given(hg_and_moves())
    @settings(max_examples=120, deadline=None)
    def test_matches_recompute_after_any_move_sequence(self, data):
        hg, k, init, moves = data
        s = PartitionState(hg, k, init)
        for v, p in moves:
            s.move(v, p)
        assert s.cut_size == hyperedge_cut(hg, s.part)
        assert s.connectivity == connectivity_cut(hg, s.part)
        assert s.part_weight.tolist() == part_weights(hg, s.part, k).tolist()
        # and edge_part_count is internally consistent
        fresh = PartitionState(hg, k, s.part)
        assert (fresh.edge_part_count == s.edge_part_count).all()

    @given(hg_and_moves())
    @settings(max_examples=60, deadline=None)
    def test_connectivity_bounds_cut(self, data):
        """lambda-1 metric always >= hyperedge cut, <= (k-1)*cut."""
        hg, k, init, moves = data
        s = PartitionState(hg, k, init)
        for v, p in moves:
            s.move(v, p)
        assert s.cut_size <= s.connectivity <= (k - 1) * max(s.cut_size, 0) or (
            s.cut_size == 0 and s.connectivity == 0
        )
