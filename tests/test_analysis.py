"""Circuit structure analysis."""

import pytest

from repro.circuits import load_circuit
from repro.hypergraph import analyze_netlist, locality_fraction, stuck_x_report
from repro.sim import Testbench
from repro.verilog import compile_verilog


class TestLocality:
    def test_adder_boundary_nets_are_carries(self, adder4):
        local, boundary = locality_fraction(adder4)
        # carries between fa instances cross visible nodes; intra-fa
        # nets (s1, c1, c2 and ha internals) stay local
        assert boundary >= 3  # the carry chain
        assert local > 0

    def test_viterbi_is_highly_local(self, viterbi_test):
        local, boundary = locality_fraction(viterbi_test)
        assert local / (local + boundary) > 0.5

    def test_counts_only_multi_pin_nets(self, adder4):
        local, boundary = locality_fraction(adder4)
        total_nets = adder4.num_nets
        assert local + boundary < total_nets  # constants etc. excluded


class TestAnalyze:
    def test_fields(self, pipeadd):
        s = analyze_netlist(pipeadd)
        assert s.gates == pipeadd.num_gates
        assert s.flip_flops == 14
        assert s.top_instances == 4
        assert s.hierarchy_depth == 2  # fa -> ha
        assert s.logic_depth >= 3
        assert s.fanout_max >= 1
        assert 0.0 <= s.locality <= 1.0

    def test_summary_text(self, viterbi_test):
        text = analyze_netlist(viterbi_test).summary()
        assert "net locality" in text
        assert "logic depth" in text

    def test_viterbi_vs_cpu_shapes_differ(self):
        """The two workloads' structure — the reason their partitioning
        outcomes differ — is visible in the stats."""
        vit = analyze_netlist(load_circuit("viterbi-test"))
        cpu = analyze_netlist(load_circuit("cpu-test"))
        # the CPU has far fewer, much bigger top instances
        assert cpu.top_instances < vit.top_instances
        assert max(cpu.instance_sizes) > max(vit.instance_sizes)


class TestStuckX:
    def test_clean_design(self, pipeadd):
        tb = Testbench(pipeadd).clock("clk").reset("rst").randomize(seed=1)
        report = stuck_x_report(pipeadd, tb.events(cycles=4))
        assert report.clean
        assert "initializes completely" in report.summary(pipeadd)

    def test_resetless_feedback_detected(self):
        """A dff without reset in a feedback loop re-circulates X —
        exactly the bug the CPU generator originally had."""
        nl = compile_verilog(
            """
            module t (clk, o); input clk; output o;
              wire q, d;
              not (d, q);
              dff (q, d, clk);   // no reset: q is X forever
              buf (o, q);
            endmodule
            """
        )
        tb = Testbench(nl).clock("clk")
        report = stuck_x_report(nl, tb.events(cycles=6))
        assert not report.clean
        causes = set(report.by_cause)
        assert any("flip-flop" in c for c in causes)
        text = report.summary(nl)
        assert "still X" in text

    def test_undriven_net_classified(self):
        nl = compile_verilog(
            "module t (o, a); output o; input a; wire dang; and (o, a, dang); endmodule"
        )
        from repro.sim import InputEvent

        report = stuck_x_report(nl, [InputEvent(0, nl.inputs[0], 1)])
        assert any("undriven" in c for c in report.by_cause)

    def test_derived_x_classified(self):
        nl = compile_verilog(
            """
            module t (o, a); output o; input a;
              wire dang, mid;
              xor (mid, a, dang);
              buf (o, mid);
            endmodule
            """
        )
        from repro.sim import InputEvent

        report = stuck_x_report(nl, [InputEvent(0, nl.inputs[0], 1)])
        assert any("derived" in c for c in report.by_cause)


class TestCli:
    def test_cli_stats_flag(self, tmp_path):
        import io

        from repro.cli import main
        from tests.conftest import PIPEADD_SRC

        p = tmp_path / "d.v"
        p.write_text(PIPEADD_SRC)
        out = io.StringIO()
        assert main(["info", str(p), "--stats"], out=out) == 0
        assert "net locality" in out.getvalue()
