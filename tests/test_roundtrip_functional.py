"""Functional round-trip property: writing a netlist back to Verilog and
recompiling it preserves simulation behaviour exactly.

This closes the loop across four substrates at once — generator →
parser → elaborator → writer → parser → elaborator → simulator — on
randomly generated circuits.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import random_logic_verilog, random_vectors
from repro.sim import SequentialSimulator, compile_circuit
from repro.verilog import compile_verilog, write_netlist_verilog


def final_output_values(netlist, events):
    circuit = compile_circuit(netlist)
    sim = SequentialSimulator(circuit)
    sim.add_inputs(events)
    stats = sim.run()
    return sim.output_values(), stats.gate_evals


@given(st.integers(0, 10_000), st.integers(10, 80))
@settings(max_examples=30, deadline=None)
def test_netlist_verilog_roundtrip_preserves_behaviour(seed, n_gates):
    source = random_logic_verilog(n_gates, 6, seed=seed)
    original = compile_verilog(source)
    rewritten = compile_verilog(write_netlist_verilog(original))
    assert rewritten.num_gates == original.num_gates

    events = random_vectors(original, 6, seed=seed + 1)
    # the rewritten netlist preserves net identity through escaped
    # hierarchical names, so the same net ids carry the same stimulus
    # only if input ordering survived; map events through net names
    name_to_new = {rewritten.net_name(n): n for n in rewritten.inputs}
    remapped = [
        type(ev)(ev.time, name_to_new[original.net_name(ev.net)], ev.value)
        for ev in events
    ]
    out1, evals1 = final_output_values(original, events)
    out2, evals2 = final_output_values(rewritten, remapped)
    assert out1 == out2
    assert evals1 == evals2


@given(st.integers(0, 10_000))
@settings(max_examples=20, deadline=None)
def test_double_roundtrip_is_stable(seed):
    """write(parse(write(x))) == write(x): the writer is a fixpoint."""
    source = random_logic_verilog(40, 5, seed=seed)
    n1 = compile_verilog(source)
    text1 = write_netlist_verilog(n1)
    n2 = compile_verilog(text1)
    text2 = write_netlist_verilog(n2)
    assert text1 == text2
