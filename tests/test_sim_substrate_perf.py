"""The fast simulation substrate vs the pre-PR reference stack.

Two layers of evidence that the vectorized kernel and the rewritten
Time Warp hot path changed *nothing* observable:

* an exhaustive flip-flop transition sweep (every dff/dffr/dffe pin
  role × every {0, 1, X} before/after combination) comparing the
  inline sampling code in :class:`SequentialSimulator` and
  :class:`ClusterLP` against :class:`LegacySequentialSimulator`, whose
  run loop still routes every sequential cell through the reference
  ``_dff_next``; and
* the miniature ``smoke_sim_study`` — the same structural-parity
  assertions (per-point rows, golden digest, chosen best) the full
  ``benchmarks/bench_sim_speed.py`` study makes, at tier-1 cost.
"""

import itertools

import pytest

from repro.bench import (
    LegacySequentialSimulator,
    run_sim_sweep,
    smoke_sim_study,
)
from repro.sim import compile_circuit
from repro.sim.events import InputEvent, Message
from repro.sim.lp import ClusterLP
from repro.sim.sequential import SequentialSimulator
from repro.verilog import NetlistBuilder

VALS = (0, 1, 2)


@pytest.fixture(scope="module")
def ff_circuit():
    """One of each flip-flop variant sharing d/clk, with ``aux`` as the
    dffr reset and the dffe enable (their pin-2 role)."""
    nb = NetlistBuilder("ffs")
    d = nb.input("d")
    clk = nb.input("clk")
    aux = nb.input("aux")
    q0, q1, q2 = nb.net("q0"), nb.net("q1"), nb.net("q2")
    nb.gate("dff", (d, clk), q0, name="f0")
    nb.gate("dffr", (d, clk, aux), q1, name="f1")
    nb.gate("dffe", (d, clk, aux), q2, name="f2")
    for q in (q0, q1, q2):
        nb.output_net(q)
    nl = nb.build()
    return nl, compile_circuit(nl), (d, clk, aux), (q0, q1, q2)


def _episodes():
    """Every (before, after) assignment of (d, clk, aux) over {0,1,X}:
    729 two-step stimuli covering all edge shapes (rising, falling,
    X-involved, idle) against all data/reset/enable values."""
    for before in itertools.product(VALS, repeat=3):
        for after in itertools.product(VALS, repeat=3):
            yield before, after


def _events(nets, before, after):
    return [
        InputEvent(time=1, net=n, value=v) for n, v in zip(nets, before)
    ] + [
        InputEvent(time=3, net=n, value=v) for n, v in zip(nets, after)
    ]


class TestFlipFlopInlinePaths:
    def test_sequential_inline_matches_reference(self, ff_circuit):
        nl, cc, ins, outs = ff_circuit
        for before, after in _episodes():
            events = _events(ins, before, after)
            ref = LegacySequentialSimulator(cc, record_changes=True)
            ref.add_inputs(events)
            ref.run()
            fast = SequentialSimulator(cc, record_changes=True)
            fast.add_inputs(events)
            fast.run()
            assert fast.change_log == ref.change_log, (before, after)
            assert fast.output_values() == ref.output_values()

    def test_cluster_lp_inline_matches_reference(self, ff_circuit):
        nl, cc, ins, outs = ff_circuit
        for before, after in _episodes():
            events = _events(ins, before, after)
            ref = LegacySequentialSimulator(cc, record_changes=True)
            ref.add_inputs(events)
            ref.run()
            lp = ClusterLP(0, cc, [0, 1, 2], checkpoint_interval=2,
                           record_changes=True)
            for uid, ev in enumerate(events):
                lp.insert_positive(Message(
                    recv_time=ev.time, net=ev.net, value=ev.value,
                    src_lp=-1, dst_lp=0, send_time=ev.time - 1, uid=uid,
                ))
            while lp.next_pending_vt() is not None:
                lp.execute_batch()
            assert lp._change_log == ref.change_log, (before, after)
            assert [lp.local_value(q) for q in outs] == ref.output_values()


class TestSmokeStudy:
    def test_smoke_parity_and_counters(self):
        fast, slow = smoke_sim_study()  # asserts structural parity itself
        assert fast.digest and fast.digest == slow.digest
        assert (fast.best_k, fast.best_b) == (slow.best_k, slow.best_b)
        assert fast.committed_events == slow.committed_events > 0
        # only the vectorized stack touches the batched kernel; the
        # legacy stack must never report kernel activity
        assert fast.kernel_scalar_gates > 0
        assert slow.kernel_batches == 0
        assert slow.kernel_batch_gates == 0

    def test_unknown_impl_rejected(self):
        with pytest.raises(ValueError, match="unknown impl"):
            run_sim_sweep("turbo", circuit_name="viterbi-test", vectors=1)
