"""Dynamic extensions: adaptive checkpointing and LP migration.

The invariant that matters: every dynamic policy preserves exact
equivalence with the sequential oracle — these knobs may only move
wall-clock time, never results.
"""

import pytest

from repro.circuits import load_circuit, random_vectors
from repro.hypergraph import Clustering
from repro.sim import (
    ClusterSpec,
    SequentialSimulator,
    TimeWarpConfig,
    TimeWarpEngine,
    compile_circuit,
)


def run_config(netlist, circuit, events, k, config):
    clusters = Clustering.top_level(netlist).gate_clusters()
    lp_machine = [i % k for i in range(len(clusters))]
    seq = SequentialSimulator(circuit)
    seq.add_inputs(events)
    seq.run()
    eng = TimeWarpEngine(circuit, clusters, lp_machine,
                         ClusterSpec(num_machines=k), config)
    eng.load_inputs(events)
    stats = eng.run()
    eng.verify_against_sequential(seq)
    assert stats.committed_events == seq.stats.gate_evals
    return eng, stats


class TestAdaptiveCheckpointing:
    def test_equivalence_preserved(self, pipeadd, pipeadd_circuit, pipeadd_events):
        config = TimeWarpConfig(
            checkpoint_interval=4, gvt_interval=30,
            adaptive_checkpointing=True, max_checkpoint_interval=32,
        )
        run_config(pipeadd, pipeadd_circuit, pipeadd_events, 3, config)

    def test_intervals_actually_adapt(self, viterbi_test, viterbi_test_circuit):
        events = random_vectors(viterbi_test, 20, seed=2)
        config = TimeWarpConfig(
            checkpoint_interval=4, gvt_interval=20,
            adaptive_checkpointing=True, max_checkpoint_interval=64,
        )
        eng, _ = run_config(
            viterbi_test, viterbi_test_circuit, events, 3, config
        )
        intervals = {lp.checkpoint_interval for lp in eng.lps}
        assert intervals != {4}, "no LP ever adapted its interval"

    def test_config_validation(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="max_checkpoint_interval"):
            TimeWarpConfig(checkpoint_interval=16, max_checkpoint_interval=8)


class TestMigration:
    def test_equivalence_preserved(self, pipeadd, pipeadd_circuit, pipeadd_events):
        config = TimeWarpConfig(
            gvt_interval=20, migration=True, migration_threshold=0.05,
        )
        run_config(pipeadd, pipeadd_circuit, pipeadd_events, 3, config)

    def test_migrations_happen_under_imbalance(self, viterbi_test, viterbi_test_circuit):
        """Stack every LP but one on machine 0: migration must fire."""
        events = random_vectors(viterbi_test, 20, seed=2)
        clusters = Clustering.top_level(viterbi_test).gate_clusters()
        lp_machine = [0] * len(clusters)
        lp_machine[-1] = 1
        seq = SequentialSimulator(viterbi_test_circuit)
        seq.add_inputs(events)
        seq.run()
        config = TimeWarpConfig(
            gvt_interval=15, migration=True, migration_threshold=0.10,
        )
        eng = TimeWarpEngine(
            viterbi_test_circuit, clusters, lp_machine,
            ClusterSpec(num_machines=2), config,
        )
        eng.load_inputs(events)
        stats = eng.run()
        eng.verify_against_sequential(seq)
        assert stats.committed_events == seq.stats.gate_evals
        assert stats.migrations > 0

    def test_migration_results_identical_regardless_of_placement_changes(
        self, viterbi_test, viterbi_test_circuit
    ):
        """Migration is a pure performance policy: however it reshuffles
        LPs, committed results are identical to the frozen placement.

        (Whether it *helps* is workload-dependent — load-only migration
        ignores communication affinity and can lose to a good static
        partition; the extension benchmark measures that trade-off.)"""
        events = random_vectors(viterbi_test, 20, seed=2)
        clusters = Clustering.top_level(viterbi_test).gate_clusters()
        lp_machine = [0] * len(clusters)
        lp_machine[-1] = 1
        committed = set()
        for migrate in (False, True):
            seq = SequentialSimulator(viterbi_test_circuit)
            seq.add_inputs(events)
            seq.run()
            eng = TimeWarpEngine(
                viterbi_test_circuit, clusters, list(lp_machine),
                ClusterSpec(num_machines=2),
                TimeWarpConfig(gvt_interval=15, migration=migrate,
                               migration_threshold=0.10),
            )
            eng.load_inputs(events)
            stats = eng.run()
            eng.verify_against_sequential(seq)
            committed.add(stats.committed_events)
        assert len(committed) == 1

    def test_never_empties_a_machine(self, viterbi_test, viterbi_test_circuit):
        events = random_vectors(viterbi_test, 15, seed=1)
        clusters = Clustering.top_level(viterbi_test).gate_clusters()
        lp_machine = [0] * len(clusters)
        lp_machine[0] = 1
        config = TimeWarpConfig(gvt_interval=10, migration=True,
                                migration_threshold=0.01)
        eng = TimeWarpEngine(
            viterbi_test_circuit, clusters, lp_machine,
            ClusterSpec(num_machines=2), config,
        )
        eng.load_inputs(events)
        eng.run()
        hosted = [sum(1 for m in eng.lp_machine if m == mid) for mid in range(2)]
        assert all(h >= 1 for h in hosted)

    def test_combined_policies(self, pipeadd, pipeadd_circuit, pipeadd_events):
        config = TimeWarpConfig(
            checkpoint_interval=2, gvt_interval=25,
            adaptive_checkpointing=True, migration=True,
        )
        run_config(pipeadd, pipeadd_circuit, pipeadd_events, 4, config)

    def test_conservative_with_migration(self, pipeadd, pipeadd_circuit,
                                          pipeadd_events):
        """Conservative execution must stay rollback-free even when
        migration re-routes queued traffic mid-run."""
        config = TimeWarpConfig(
            conservative=True, migration=True, migration_threshold=0.05,
            gvt_interval=15,
        )
        eng, stats = run_config(
            pipeadd, pipeadd_circuit, pipeadd_events, 3, config
        )
        assert stats.rollbacks == 0


class TestStressMatrix:
    """Every policy combination preserves the oracle equivalence."""

    @pytest.mark.parametrize("adaptive", [False, True])
    @pytest.mark.parametrize("migrate", [False, True])
    @pytest.mark.parametrize("lazy", [False, True])
    def test_policy_cube(self, viterbi_test, viterbi_test_circuit,
                         adaptive, migrate, lazy):
        events = random_vectors(viterbi_test, 12, seed=6)
        config = TimeWarpConfig(
            checkpoint_interval=3, gvt_interval=20,
            lazy_cancellation=lazy, adaptive_checkpointing=adaptive,
            migration=migrate, migration_threshold=0.1,
        )
        run_config(viterbi_test, viterbi_test_circuit, events, 3, config)
