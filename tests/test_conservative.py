"""Idealized conservative engine mode: zero rollbacks, exact results."""

import pytest

from repro.circuits import load_circuit, random_vectors
from repro.hypergraph import Clustering
from repro.sim import (
    ClusterSpec,
    SequentialSimulator,
    TimeWarpConfig,
    TimeWarpEngine,
    compile_circuit,
)


def run_conservative(netlist, circuit, events, k):
    clusters = Clustering.top_level(netlist).gate_clusters()
    lp_machine = [i % k for i in range(len(clusters))]
    seq = SequentialSimulator(circuit)
    seq.add_inputs(events)
    seq.run()
    eng = TimeWarpEngine(
        circuit, clusters, lp_machine, ClusterSpec(num_machines=k),
        TimeWarpConfig(conservative=True, gvt_interval=50),
    )
    eng.load_inputs(events)
    stats = eng.run()
    eng.verify_against_sequential(seq)
    assert stats.committed_events == seq.stats.gate_evals
    return stats


class TestConservative:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_equivalence(self, pipeadd, pipeadd_circuit, pipeadd_events, k):
        stats = run_conservative(pipeadd, pipeadd_circuit, pipeadd_events, k)
        assert stats.rollbacks == 0
        assert stats.anti_messages == 0
        assert stats.processed_events == stats.committed_events

    def test_viterbi_no_rollbacks(self, viterbi_test, viterbi_test_circuit):
        events = random_vectors(viterbi_test, 15, seed=4)
        stats = run_conservative(
            viterbi_test, viterbi_test_circuit, events, 3
        )
        assert stats.rollbacks == 0

    def test_no_checkpoint_memory(self, pipeadd, pipeadd_circuit, pipeadd_events):
        """Rollback-free execution keeps only the initial state."""
        stats = run_conservative(pipeadd, pipeadd_circuit, pipeadd_events, 2)
        opt = None
        # compare with an optimistic run's checkpoint footprint
        clusters = Clustering.top_level(pipeadd).gate_clusters()
        lp_machine = [i % 2 for i in range(len(clusters))]
        eng = TimeWarpEngine(
            pipeadd_circuit, clusters, lp_machine, ClusterSpec(num_machines=2),
            TimeWarpConfig(checkpoint_interval=2, gvt_interval=50),
        )
        eng.load_inputs(pipeadd_events)
        opt = eng.run()
        assert stats.peak_checkpoint_bytes <= opt.peak_checkpoint_bytes

    def test_optimism_usually_wins_with_latency(
        self, viterbi_test, viterbi_test_circuit
    ):
        """With real message latency, Time Warp overlaps waiting with
        speculative work; the conservative bound stalls on it.  (This is
        the core argument for optimistic gate-level simulation.)"""
        events = random_vectors(viterbi_test, 15, seed=4)
        clusters = Clustering.top_level(viterbi_test).gate_clusters()
        lp_machine = [i % 3 for i in range(len(clusters))]
        walls = {}
        for conservative in (False, True):
            seq = SequentialSimulator(viterbi_test_circuit)
            seq.add_inputs(events)
            seq.run()
            eng = TimeWarpEngine(
                viterbi_test_circuit, clusters, lp_machine,
                ClusterSpec(num_machines=3),
                TimeWarpConfig(conservative=conservative, gvt_interval=50),
            )
            eng.load_inputs(events)
            stats = eng.run()
            eng.verify_against_sequential(seq)
            walls[conservative] = stats.wall_time
        assert walls[False] < walls[True]
