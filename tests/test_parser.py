"""Parser unit tests: grammar coverage and error positions."""

import pytest

from repro.errors import ParseError
from repro.verilog import ast
from repro.verilog.parser import parse_literal_bits, parse_source


def one_module(text):
    source = parse_source(text)
    assert len(source.modules) == 1
    return next(iter(source.modules.values()))


class TestModules:
    def test_empty_module(self):
        m = one_module("module m (); endmodule")
        assert m.name == "m"
        assert m.port_order == []

    def test_module_without_port_parens(self):
        m = one_module("module m; endmodule")
        assert m.port_order == []

    def test_port_header_order(self):
        m = one_module("module m (a, b, c); input a, b; output c; endmodule")
        assert m.port_order == ["a", "b", "c"]
        assert m.port_decls["a"].direction == "input"
        assert m.port_decls["c"].direction == "output"

    def test_vector_port(self):
        m = one_module("module m (d); input [7:0] d; endmodule")
        assert m.port_decls["d"].range == ast.Range(7, 0)
        assert m.width_of("d") == 8

    def test_reversed_range(self):
        m = one_module("module m (d); input [0:3] d; endmodule")
        assert m.range_of("d").bit_indices() == [3, 2, 1, 0]

    def test_multiple_modules(self):
        src = parse_source("module a (); endmodule module b (); endmodule")
        assert set(src.modules) == {"a", "b"}

    def test_wire_decls(self):
        m = one_module("module m (); wire x; wire [3:0] y, z; endmodule")
        assert m.net_decls["x"].range is None
        assert m.net_decls["z"].range.width == 4

    def test_supply_nets(self):
        m = one_module("module m (); supply0 gnd; supply1 vdd; endmodule")
        assert m.net_decls["gnd"].kind == "supply0"
        assert m.net_decls["vdd"].kind == "supply1"


class TestGates:
    def test_simple_gate(self):
        m = one_module("module m (y,a,b); output y; input a,b; and (y, a, b); endmodule")
        g = m.gates[0]
        assert g.gtype == "and"
        assert g.name is None
        assert g.terminals == (
            ast.Identifier("y"), ast.Identifier("a"), ast.Identifier("b"),
        )

    def test_named_gate(self):
        m = one_module("module m (); wire y,a; not g1 (y, a); endmodule")
        assert m.gates[0].name == "g1"

    def test_gate_list(self):
        m = one_module("module m (); wire a,b,c,d; buf b1 (a, b), b2 (c, d); endmodule")
        assert len(m.gates) == 2
        assert m.gates[1].name == "b2"

    def test_gate_with_delay(self):
        m = one_module("module m (); wire y,a,b; nand #1 (y, a, b); endmodule")
        assert m.gates[0].gtype == "nand"

    def test_gate_with_delay_pair(self):
        m = one_module("module m (); wire y,a; not #(1,2) (y, a); endmodule")
        assert m.gates[0].gtype == "not"

    def test_wide_and(self):
        m = one_module("module m (); wire y,a,b,c,d; and (y, a, b, c, d); endmodule")
        assert len(m.gates[0].terminals) == 5

    def test_multi_output_buf_normalized(self):
        m = one_module("module m (); wire a,b,c,x; buf (a, b, c, x); endmodule")
        assert len(m.gates) == 3
        assert all(g.gtype == "buf" for g in m.gates)
        assert all(g.terminals[1] == ast.Identifier("x") for g in m.gates)

    def test_dff_cell(self):
        m = one_module("module m (); wire q,d,c; dff ff (q, d, c); endmodule")
        assert m.gates[0].gtype == "dff"

    def test_and_arity_error(self):
        with pytest.raises(ParseError, match="inputs"):
            parse_source("module m (); wire y,a; and (y, a); endmodule")

    def test_dff_arity_error(self):
        with pytest.raises(ParseError, match="inputs"):
            parse_source("module m (); wire q,d; dff (q, d); endmodule")


class TestInstances:
    def test_positional(self):
        m = one_module("module m (); wire a,b; sub u1 (a, b); endmodule")
        inst = m.instances[0]
        assert inst.module_name == "sub"
        assert inst.instance_name == "u1"
        assert inst.positional == (ast.Identifier("a"), ast.Identifier("b"))

    def test_named(self):
        m = one_module("module m (); wire a; sub u1 (.x(a), .y()); endmodule")
        inst = m.instances[0]
        assert inst.named[0] == ("x", ast.Identifier("a"))
        assert isinstance(inst.named[1][1], ast.Unconnected)

    def test_instance_list(self):
        m = one_module("module m (); wire a,b; sub u1 (a), u2 (b); endmodule")
        assert [i.instance_name for i in m.instances] == ["u1", "u2"]

    def test_empty_connection_list(self):
        m = one_module("module m (); sub u1 (); endmodule")
        assert m.instances[0].positional == ()

    def test_instance_with_parameter_delay_syntax(self):
        m = one_module("module m (); wire a; sub #5 u1 (a); endmodule")
        assert m.instances[0].module_name == "sub"


class TestExpressions:
    def test_bit_select(self):
        m = one_module("module m (); wire y; wire [3:0] v; buf (y, v[2]); endmodule")
        assert m.gates[0].terminals[1] == ast.BitSelect("v", 2)

    def test_part_select(self):
        m = one_module("module m (); wire [7:0] v; sub u (v[7:4]); endmodule")
        assert m.instances[0].positional[0] == ast.PartSelect("v", 7, 4)

    def test_concat(self):
        m = one_module("module m (); wire a; wire [1:0] v; sub u ({a, v[0]}); endmodule")
        c = m.instances[0].positional[0]
        assert isinstance(c, ast.Concat)
        assert c.items == (ast.Identifier("a"), ast.BitSelect("v", 0))

    def test_literal_in_connection(self):
        m = one_module("module m (); sub u (2'b10); endmodule")
        lit = m.instances[0].positional[0]
        assert lit == ast.Literal((0, 1))

    def test_assign(self):
        m = one_module("module m (); wire a, b; assign a = b; endmodule")
        assert m.assigns[0].lhs == ast.Identifier("a")
        assert m.assigns[0].rhs == ast.Identifier("b")


class TestLiterals:
    @pytest.mark.parametrize(
        "raw,bits",
        [
            ("0", (0,)),
            ("5", (1, 0, 1)),
            ("1'b0", (0,)),
            ("1'b1", (1,)),
            ("4'b1010", (0, 1, 0, 1)),
            ("4'b10x1", (1, 2, 0, 1)),
            ("8'hA5", (1, 0, 1, 0, 0, 1, 0, 1)),
            ("3'o7", (1, 1, 1)),
            ("4'd9", (1, 0, 0, 1)),
            ("2'b1", (1, 0)),       # zero-padded to size
            ("6'hx", (2, 2, 2, 2, 2, 2)),  # x-padded
            ("2'b1010", (0, 1)),    # truncated to size
        ],
    )
    def test_decode(self, raw, bits):
        assert parse_literal_bits(raw) == bits

    def test_no_digits(self):
        with pytest.raises(ParseError, match="digits"):
            parse_literal_bits("4'b")


class TestParseErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError, match="expected"):
            parse_source("module m () endmodule")

    def test_eof_inside_module(self):
        with pytest.raises(ParseError, match="end of file"):
            parse_source("module m ();")

    def test_duplicate_port_decl(self):
        with pytest.raises(ParseError, match="duplicate"):
            parse_source("module m (a); input a; input a; endmodule")

    def test_port_not_in_header(self):
        with pytest.raises(ParseError, match="not in module header"):
            parse_source("module m (a); input a; input b; endmodule")

    def test_garbage_item(self):
        with pytest.raises(ParseError, match="unexpected token"):
            parse_source("module m (); = ; endmodule")

    def test_error_position(self):
        try:
            parse_source("module m ();\n  and (y);\nendmodule")
        except ParseError as e:
            assert e.line == 2
        else:  # pragma: no cover
            pytest.fail("expected ParseError")
