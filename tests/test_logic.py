"""Three-valued gate evaluation: exhaustive truth-table checks."""

import itertools

import numpy as np
import pytest

from repro.sim.logic import (
    GATE_CODES,
    SEQ_CODE_MIN,
    V0,
    V1,
    VX,
    eval_gate,
    eval_gate_coded,
    eval_gates_batch,
    invert,
    value_name,
)


def known(v):
    return v in (V0, V1)


def model(gtype, values):
    """Reference semantics: enumerate all completions of X inputs.

    If every completion agrees, that is the output; otherwise X.  This
    is the *exact* (not pessimistic) three-valued semantics.
    """
    import itertools as it

    ops = {
        "and": lambda vs: int(all(vs)),
        "or": lambda vs: int(any(vs)),
        "nand": lambda vs: 1 - int(all(vs)),
        "nor": lambda vs: 1 - int(any(vs)),
        "xor": lambda vs: sum(vs) % 2,
        "xnor": lambda vs: 1 - sum(vs) % 2,
        "buf": lambda vs: vs[0],
        "not": lambda vs: 1 - vs[0],
    }
    slots = [(0, 1) if v == VX else (v,) for v in values]
    results = {ops[gtype](c) for c in it.product(*slots)}
    return results.pop() if len(results) == 1 else VX


class TestTruthTables:
    @pytest.mark.parametrize("gtype", ["and", "or", "nand", "nor", "xor", "xnor"])
    def test_two_input_exhaustive(self, gtype):
        for a, b in itertools.product((V0, V1, VX), repeat=2):
            assert eval_gate(gtype, [a, b]) == model(gtype, [a, b]), (gtype, a, b)

    @pytest.mark.parametrize("gtype", ["and", "or", "nand", "nor", "xor", "xnor"])
    def test_three_input_exhaustive(self, gtype):
        for vals in itertools.product((V0, V1, VX), repeat=3):
            assert eval_gate(gtype, list(vals)) == model(gtype, list(vals))

    @pytest.mark.parametrize("gtype", ["buf", "not"])
    def test_unary(self, gtype):
        for v in (V0, V1, VX):
            assert eval_gate(gtype, [v]) == model(gtype, [v])

    def test_controlling_inputs_beat_x(self):
        assert eval_gate("and", [V0, VX]) == V0
        assert eval_gate("or", [V1, VX]) == V1
        assert eval_gate("nand", [V0, VX]) == V1
        assert eval_gate("nor", [V1, VX]) == V0

    def test_xor_with_x_is_x(self):
        assert eval_gate("xor", [V1, VX]) == VX
        assert eval_gate("xnor", [V0, VX]) == VX

    def test_invert(self):
        assert invert(V0) == V1
        assert invert(V1) == V0
        assert invert(VX) == VX

    def test_coded_matches_named(self):
        for gtype in ("and", "or", "nand", "nor", "xor", "xnor"):
            for a, b in itertools.product((V0, V1, VX), repeat=2):
                assert eval_gate(gtype, [a, b]) == eval_gate_coded(
                    GATE_CODES[gtype], [a, b]
                )

    def test_value_name(self):
        assert [value_name(v) for v in (V0, V1, VX)] == ["0", "1", "x"]

    def test_codes_dense(self):
        codes = sorted(GATE_CODES.values())
        assert codes == list(range(len(codes)))


def _exhaustive_comb_rows():
    """Every combinational gate code × every input combination over
    {0, 1, X} at arities 1 (unary) / 2 / 3 (folds) — the full input
    space of the scalar evaluator."""
    rows: list[tuple[int, tuple[int, ...]]] = []
    for gtype in ("and", "or", "nand", "nor", "xor", "xnor"):
        for arity in (2, 3):
            for vals in itertools.product((V0, V1, VX), repeat=arity):
                rows.append((GATE_CODES[gtype], vals))
    for gtype in ("buf", "not"):
        for v in (V0, V1, VX):
            rows.append((GATE_CODES[gtype], (v,)))
    return rows


class TestBatchKernel:
    """eval_gates_batch is bit-identical to eval_gate_coded per row."""

    @pytest.mark.parametrize("pad", [V0, V1, VX])
    def test_batch_matches_scalar_exhaustive(self, pad):
        rows = _exhaustive_comb_rows()
        max_arity = max(len(pins) for _, pins in rows)
        n = len(rows)
        codes = np.array([c for c, _ in rows], dtype=np.int8)
        # pad cells deliberately hold a garbage value (parametrized over
        # all three) — the mask, not the pad contents, must decide
        pin_values = np.full((n, max_arity), pad, dtype=np.int8)
        pin_mask = np.zeros((n, max_arity), dtype=bool)
        for i, (_, pins) in enumerate(rows):
            pin_values[i, : len(pins)] = pins
            pin_mask[i, : len(pins)] = True
        outs = eval_gates_batch(codes, pin_values, pin_mask)
        assert outs.dtype == np.int8
        for i, (code, pins) in enumerate(rows):
            expect = eval_gate_coded(code, list(pins))
            assert outs[i] == expect, (code, pins, pad)

    def test_mixed_code_single_rows(self):
        # one-row batches (the degenerate shape) agree too
        for code, pins in _exhaustive_comb_rows():
            vals = np.array([pins], dtype=np.int8)
            mask = np.ones((1, len(pins)), dtype=bool)
            out = eval_gates_batch(np.array([code], dtype=np.int8), vals, mask)
            assert out[0] == eval_gate_coded(code, list(pins))

    def test_all_comb_codes_covered(self):
        # the exhaustive sweep really visits every combinational code
        covered = {c for c, _ in _exhaustive_comb_rows()}
        assert covered == {c for c in GATE_CODES.values() if c < SEQ_CODE_MIN}
