"""Three-valued gate evaluation: exhaustive truth-table checks."""

import itertools

import pytest

from repro.sim.logic import (
    GATE_CODES,
    V0,
    V1,
    VX,
    eval_gate,
    eval_gate_coded,
    invert,
    value_name,
)


def known(v):
    return v in (V0, V1)


def model(gtype, values):
    """Reference semantics: enumerate all completions of X inputs.

    If every completion agrees, that is the output; otherwise X.  This
    is the *exact* (not pessimistic) three-valued semantics.
    """
    import itertools as it

    ops = {
        "and": lambda vs: int(all(vs)),
        "or": lambda vs: int(any(vs)),
        "nand": lambda vs: 1 - int(all(vs)),
        "nor": lambda vs: 1 - int(any(vs)),
        "xor": lambda vs: sum(vs) % 2,
        "xnor": lambda vs: 1 - sum(vs) % 2,
        "buf": lambda vs: vs[0],
        "not": lambda vs: 1 - vs[0],
    }
    slots = [(0, 1) if v == VX else (v,) for v in values]
    results = {ops[gtype](c) for c in it.product(*slots)}
    return results.pop() if len(results) == 1 else VX


class TestTruthTables:
    @pytest.mark.parametrize("gtype", ["and", "or", "nand", "nor", "xor", "xnor"])
    def test_two_input_exhaustive(self, gtype):
        for a, b in itertools.product((V0, V1, VX), repeat=2):
            assert eval_gate(gtype, [a, b]) == model(gtype, [a, b]), (gtype, a, b)

    @pytest.mark.parametrize("gtype", ["and", "or", "nand", "nor", "xor", "xnor"])
    def test_three_input_exhaustive(self, gtype):
        for vals in itertools.product((V0, V1, VX), repeat=3):
            assert eval_gate(gtype, list(vals)) == model(gtype, list(vals))

    @pytest.mark.parametrize("gtype", ["buf", "not"])
    def test_unary(self, gtype):
        for v in (V0, V1, VX):
            assert eval_gate(gtype, [v]) == model(gtype, [v])

    def test_controlling_inputs_beat_x(self):
        assert eval_gate("and", [V0, VX]) == V0
        assert eval_gate("or", [V1, VX]) == V1
        assert eval_gate("nand", [V0, VX]) == V1
        assert eval_gate("nor", [V1, VX]) == V0

    def test_xor_with_x_is_x(self):
        assert eval_gate("xor", [V1, VX]) == VX
        assert eval_gate("xnor", [V0, VX]) == VX

    def test_invert(self):
        assert invert(V0) == V1
        assert invert(V1) == V0
        assert invert(VX) == VX

    def test_coded_matches_named(self):
        for gtype in ("and", "or", "nand", "nor", "xor", "xnor"):
            for a, b in itertools.product((V0, V1, VX), repeat=2):
                assert eval_gate(gtype, [a, b]) == eval_gate_coded(
                    GATE_CODES[gtype], [a, b]
                )

    def test_value_name(self):
        assert [value_name(v) for v in (V0, V1, VX)] == ["0", "1", "x"]

    def test_codes_dense(self):
        codes = sorted(GATE_CODES.values())
        assert codes == list(range(len(codes)))
