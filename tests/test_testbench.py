"""Testbench builder: declarative stimulus with correct timing."""

import pytest

from repro.circuits import counter_verilog, load_circuit
from repro.errors import ConfigError
from repro.sim import SequentialSimulator, Testbench, compile_circuit
from repro.verilog import compile_verilog


class TestConfiguration:
    def test_unknown_input(self, pipeadd):
        with pytest.raises(ConfigError, match="no primary input"):
            Testbench(pipeadd).clock("nope")

    def test_vector_clock_rejected(self, pipeadd):
        with pytest.raises(ConfigError, match="scalar"):
            Testbench(pipeadd).clock("x")

    def test_drive_value_range(self, pipeadd):
        with pytest.raises(ConfigError, match="fit"):
            Testbench(pipeadd).drive("x", 16)  # x is 4 bits

    def test_reset_needs_clock(self, pipeadd):
        tb = Testbench(pipeadd).reset("rst")
        with pytest.raises(ConfigError, match="clock"):
            tb.events(cycles=2)

    def test_bus_grouping(self, pipeadd):
        tb = Testbench(pipeadd)
        assert len(tb._by_name["x"]) == 4
        assert len(tb._by_name["clk"]) == 1


class TestBehaviour:
    def test_counter_counts_exactly(self):
        nl = compile_verilog(counter_verilog(4))
        cc = compile_circuit(nl)
        for cycles in (1, 5, 11, 19):
            tb = Testbench(nl).clock("clk").reset("rst", cycles=1)
            sim = SequentialSimulator(cc)
            sim.add_inputs(tb.events(cycles=cycles))
            sim.run()
            o = sim.output_values()
            assert sum(v << i for i, v in enumerate(o)) == cycles % 16

    def test_cpu_matches_golden_model(self):
        from tests.test_cpu import golden_model
        from repro.circuits import CPU_TEST_CONFIG, cpu_verilog

        nl = compile_verilog(cpu_verilog(CPU_TEST_CONFIG))
        cc = compile_circuit(nl)
        tb = (Testbench(nl)
              .clock("clk")
              .reset("rst", cycles=1)
              .drive("din", 0))
        sim = SequentialSimulator(cc)
        sim.add_inputs(tb.events(cycles=15))
        sim.run()
        got = sum(v << i for i, v in enumerate(sim.output_values()))
        assert got == golden_model(CPU_TEST_CONFIG, 15)

    def test_randomize_deterministic_per_seed(self, pipeadd):
        def run(seed):
            return Testbench(pipeadd).clock("clk").reset("rst").randomize(
                seed=seed
            ).events(cycles=4)

        assert run(3) == run(3)
        assert run(3) != run(4)

    def test_undriven_inputs_default_zero(self, pipeadd, pipeadd_circuit):
        tb = Testbench(pipeadd).clock("clk").reset("rst")
        sim = SequentialSimulator(pipeadd_circuit)
        sim.add_inputs(tb.events(cycles=3))
        sim.run()
        # all data inputs held 0 -> sum register is 0, not X
        assert sim.output_values() == [0, 0, 0, 0, 0]

    def test_combinational_only(self, adder4, adder4_circuit):
        tb = Testbench(adder4).randomize(seed=1)
        events = tb.events(cycles=3)
        sim = SequentialSimulator(adder4_circuit)
        sim.add_inputs(events)
        sim.run()
        assert all(v in (0, 1) for v in sim.output_values())

    def test_events_sorted(self, pipeadd):
        events = Testbench(pipeadd).clock("clk").reset("rst").randomize().events(5)
        times = [e.time for e in events]
        assert times == sorted(times)
