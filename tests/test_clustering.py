"""Clustering (visible nodes / super-gates) and hypergraph builders."""

import pytest

from repro.errors import PartitionError
from repro.hypergraph import Clustering, flat_hypergraph, hierarchy_hypergraph


class TestTopLevel:
    def test_visible_nodes(self, adder4):
        c = Clustering.top_level(adder4)
        # 4 fa instances, no top-level gates
        assert len(c) == 4
        names = {cl.name for cl in c.clusters}
        assert names == {"f0", "f1", "f2", "f3"}
        assert all(cl.weight == 5 for cl in c.clusters)

    def test_mixed_gates_and_instances(self, pipeadd):
        c = Clustering.top_level(pipeadd)
        supers = [cl for cl in c.clusters if cl.is_super_gate]
        singles = [cl for cl in c.clusters if not cl.is_super_gate]
        assert len(supers) == 4   # fa instances
        assert len(singles) == 14  # top-level dffr gates
        assert sum(cl.weight for cl in c.clusters) == pipeadd.num_gates

    def test_gate_cover_exact(self, viterbi_test):
        c = Clustering.top_level(viterbi_test)
        gates = sorted(g for cl in c.gate_clusters() for g in cl)
        assert gates == list(range(viterbi_test.num_gates))


class TestFlat:
    def test_one_gate_per_cluster(self, adder4):
        c = Clustering.flat(adder4)
        assert len(c) == adder4.num_gates
        assert all(cl.weight == 1 for cl in c.clusters)
        assert not any(cl.is_super_gate for cl in c.clusters)


class TestFlatten:
    def test_flatten_replaces_super_gate(self, adder4):
        c = Clustering.top_level(adder4)
        idx = next(i for i, cl in enumerate(c.clusters) if cl.is_super_gate)
        before_weight = c.clusters[idx].weight
        c2 = c.flatten(idx)
        # fa -> 1 'or' gate + 2 ha instances
        assert len(c2) == len(c) + 2
        new = c2.clusters[idx : idx + 3]
        assert sum(cl.weight for cl in new) == before_weight
        assert sum(cl.weight for cl in c2.clusters) == adder4.num_gates

    def test_flatten_plain_gate_rejected(self, pipeadd):
        c = Clustering.top_level(pipeadd)
        idx = next(i for i, cl in enumerate(c.clusters) if not cl.is_super_gate)
        with pytest.raises(PartitionError, match="plain gate"):
            c.flatten(idx)

    def test_flatten_to_bottom(self, adder4):
        c = Clustering.top_level(adder4)
        while True:
            idx = c.largest_super_gate()
            if idx is None:
                break
            c = c.flatten(idx)
        assert len(c) == adder4.num_gates

    def test_largest_super_gate_among(self, pipeadd):
        c = Clustering.top_level(pipeadd)
        supers = [i for i, cl in enumerate(c.clusters) if cl.is_super_gate]
        assert c.largest_super_gate(among=supers[:1]) == supers[0]
        singles = [i for i, cl in enumerate(c.clusters) if not cl.is_super_gate]
        assert c.largest_super_gate(among=singles) is None


class TestHypergraphs:
    def test_hierarchy_smaller_than_flat(self, viterbi_test):
        hh = hierarchy_hypergraph(viterbi_test)
        fh = flat_hypergraph(viterbi_test)
        assert hh.num_vertices < fh.num_vertices
        assert hh.total_weight == fh.total_weight == viterbi_test.num_gates

    def test_hierarchy_edges_are_cross_module_nets(self, adder4):
        hh = hierarchy_hypergraph(adder4)
        # only the carry chain crosses fa instances (PI/PO nets touch one)
        assert hh.num_vertices == 4
        for e in range(hh.num_edges):
            assert hh.edge_size(e) >= 2

    def test_flat_edges_match_nets(self, adder4):
        fh = flat_hypergraph(adder4)
        assert fh.num_vertices == 20
        # every multi-gate net appears
        assert fh.num_edges > 0

    def test_hypergraph_cached(self, adder4):
        c = Clustering.top_level(adder4)
        assert c.hypergraph() is c.hypergraph()

    def test_incomplete_cover_rejected(self, adder4):
        from repro.hypergraph.build import Cluster

        with pytest.raises(PartitionError, match="covers"):
            Clustering(adder4, [Cluster("only", (0,), 1)])
