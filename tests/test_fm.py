"""Pairwise k-way FM refinement (the paper's iterative-movement phase)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BalanceConstraint, refine_pair, rebalance_pair
from repro.hypergraph import Hypergraph, PartitionState, hyperedge_cut


def chain_hg(n=8):
    """Path hypergraph: optimal bisection cuts one edge."""
    return Hypergraph.from_edges([1] * n, [[i, i + 1] for i in range(n - 1)])


class TestRefinePair:
    def test_improves_bad_bisection(self):
        hg = chain_hg(8)
        # interleaved assignment: terrible cut
        state = PartitionState(hg, 2, [0, 1, 0, 1, 0, 1, 0, 1])
        before = state.cut_size
        res = refine_pair(state, 0, 1, BalanceConstraint(2, 15.0))
        assert state.cut_size < before
        assert res.gain == before - state.cut_size

    def test_never_worsens(self):
        hg = chain_hg(8)
        state = PartitionState(hg, 2, [0, 0, 0, 0, 1, 1, 1, 1])
        before = state.cut_size  # already optimal = 1
        refine_pair(state, 0, 1, BalanceConstraint(2, 15.0))
        assert state.cut_size <= before

    def test_respects_bounds(self):
        hg = chain_hg(8)
        state = PartitionState(hg, 2, [0, 1, 0, 1, 0, 1, 0, 1])
        c = BalanceConstraint(2, 12.5)
        refine_pair(state, 0, 1, c)
        assert c.satisfied(state.part_weight)

    def test_only_pair_parts_touched(self):
        hg = chain_hg(9)
        init = [0, 0, 0, 1, 1, 1, 2, 2, 2]
        state = PartitionState(hg, 3, init)
        refine_pair(state, 0, 1, BalanceConstraint(3, 15.0))
        # partition 2's membership is untouched
        assert [v for v in range(9) if state.part_of(v) == 2] == [6, 7, 8]

    def test_gain_counts_third_party_edges(self):
        """Moving a vertex can cut an edge into partition 2; the k-way
        gain must see that."""
        hg = Hypergraph.from_edges([1, 1, 1], [[0, 1], [1, 2]])
        state = PartitionState(hg, 3, [0, 0, 2])
        # moving v1 to part 1 would cut edge {0,1} while edge {1,2}
        # stays cut: net gain -1, so FM must not do it
        before = state.cut_size
        refine_pair(state, 0, 1, BalanceConstraint(3, 100.0))
        assert state.cut_size <= before


@st.composite
def state_and_pair(draw):
    n = draw(st.integers(4, 12))
    m = draw(st.integers(2, 14))
    k = draw(st.integers(2, 4))
    edges = []
    for _ in range(m):
        size = draw(st.integers(2, min(n, 4)))
        edges.append(
            draw(st.lists(st.integers(0, n - 1), min_size=size, max_size=size, unique=True))
        )
    weights = draw(st.lists(st.integers(1, 3), min_size=n, max_size=n))
    init = draw(st.lists(st.integers(0, k - 1), min_size=n, max_size=n))
    a = draw(st.integers(0, k - 1))
    b = draw(st.integers(0, k - 1).filter(lambda x: True))
    return Hypergraph.from_edges(weights, edges), k, init, a, (b % k)


class TestFMProperties:
    @given(state_and_pair())
    @settings(max_examples=80, deadline=None)
    def test_reported_gain_matches_cut_delta(self, data):
        hg, k, init, a, b = data
        if a == b:
            b = (a + 1) % k
        state = PartitionState(hg, k, init)
        before = hyperedge_cut(hg, state.part)
        res = refine_pair(state, a, b, BalanceConstraint(k, 100.0))
        after = hyperedge_cut(hg, state.part)
        assert before - after == res.gain
        assert res.gain >= 0

    @given(state_and_pair())
    @settings(max_examples=50, deadline=None)
    def test_vertices_outside_pair_never_move(self, data):
        hg, k, init, a, b = data
        if a == b:
            b = (a + 1) % k
        state = PartitionState(hg, k, init)
        outside = {
            v: state.part_of(v)
            for v in range(hg.num_vertices)
            if state.part_of(v) not in (a, b)
        }
        refine_pair(state, a, b, BalanceConstraint(k, 100.0))
        for v, p in outside.items():
            assert state.part_of(v) == p


class TestRebalance:
    def test_moves_weight_toward_light(self):
        hg = chain_hg(10)
        state = PartitionState(hg, 2, [0] * 9 + [1])
        c = BalanceConstraint(2, 10.0)
        moved = rebalance_pair(state, 0, 1, c)
        assert moved > 0
        assert c.satisfied(state.part_weight)

    def test_noop_when_balanced(self):
        hg = chain_hg(8)
        state = PartitionState(hg, 2, [0, 0, 0, 0, 1, 1, 1, 1])
        assert rebalance_pair(state, 0, 1, BalanceConstraint(2, 10.0)) == 0

    def test_prefers_low_cut_damage(self):
        hg = chain_hg(10)
        state = PartitionState(hg, 2, [0] * 9 + [1])
        rebalance_pair(state, 0, 1, BalanceConstraint(2, 10.0))
        # moving the chain tail keeps the cut at 1
        assert state.cut_size == 1
