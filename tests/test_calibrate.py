"""Cost-model calibration against the host."""

import pytest

from repro.circuits import random_vectors
from repro.errors import ConfigError
from repro.sim import (
    CalibrationResult,
    ClusterSpec,
    calibrated_spec,
    measure_event_cost,
)


class TestMeasure:
    def test_produces_positive_cost(self, pipeadd, pipeadd_circuit):
        events = random_vectors(pipeadd, 10, seed=0)
        cal = measure_event_cost(pipeadd_circuit, events, repeats=2)
        assert cal.events > 0
        assert cal.elapsed > 0
        assert cal.event_cost > 0
        assert cal.events_per_second() > 1000  # any machine beats 1k ev/s

    def test_empty_stimulus_rejected(self, pipeadd_circuit):
        with pytest.raises(ConfigError, match="no gate events"):
            measure_event_cost(pipeadd_circuit, [], repeats=1)

    def test_repeats_validated(self, pipeadd_circuit):
        with pytest.raises(ConfigError, match="repeats"):
            measure_event_cost(pipeadd_circuit, [], repeats=0)


class TestCalibratedSpec:
    def test_ratios_preserved(self):
        base = ClusterSpec(num_machines=4)
        cal = CalibrationResult(events=1000, elapsed=0.004, event_cost=4e-6)
        spec = calibrated_spec(base, cal)
        assert spec.event_cost == pytest.approx(4e-6)
        assert spec.msg_cpu_overhead / spec.event_cost == pytest.approx(
            base.msg_cpu_overhead / base.event_cost
        )
        assert spec.msg_latency / spec.event_cost == pytest.approx(
            base.msg_latency / base.event_cost
        )

    def test_event_cost_only(self):
        base = ClusterSpec(num_machines=2)
        cal = CalibrationResult(events=1, elapsed=1e-5, event_cost=1e-5)
        spec = calibrated_spec(base, cal, keep_ratios=False)
        assert spec.event_cost == pytest.approx(1e-5)
        assert spec.msg_latency == base.msg_latency

    def test_modeled_time_predicts_real_runtime(self, pipeadd, pipeadd_circuit):
        """The point of calibration: modeled sequential wall time equals
        measured host runtime (same stimulus, by construction)."""
        import time

        from repro.sim import SequentialSimulator

        events = random_vectors(pipeadd, 20, seed=3)
        cal = measure_event_cost(pipeadd_circuit, events, repeats=2)
        spec = calibrated_spec(ClusterSpec(num_machines=1), cal)
        sim = SequentialSimulator(pipeadd_circuit)
        sim.add_inputs(events)
        start = time.perf_counter()
        stats = sim.run()
        real = time.perf_counter() - start
        modeled = stats.gate_evals * spec.event_cost
        # same machine, same events: within 3x despite scheduler noise
        assert modeled == pytest.approx(real, rel=2.0)
