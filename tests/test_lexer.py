"""Lexer unit tests."""

import pytest

from repro.errors import LexError
from repro.verilog.lexer import Token, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)]


def values(text):
    return [t.value for t in tokenize(text) if t.kind != "eof"]


class TestTokens:
    def test_keywords_vs_idents(self):
        toks = tokenize("module foo endmodule")
        assert [t.kind for t in toks[:-1]] == ["keyword", "ident", "keyword"]

    def test_punctuation(self):
        assert kinds("( ) [ ] { } , ; : = . #")[:-1] == [
            "(", ")", "[", "]", "{", "}", ",", ";", ":", "=", ".", "#",
        ]

    def test_plain_number(self):
        toks = tokenize("42")
        assert toks[0].kind == "number"
        assert toks[0].value == "42"

    def test_underscore_in_number(self):
        assert tokenize("1_000")[0].value == "1000"

    def test_sized_binary(self):
        t = tokenize("4'b10x1")[0]
        assert t.kind == "sized_number"
        assert t.value == "4'b10x1"

    def test_sized_hex(self):
        assert tokenize("8'hFF")[0].kind == "sized_number"

    def test_unsized_based(self):
        assert tokenize("'b0")[0].kind == "sized_number"

    def test_signed_literal(self):
        assert tokenize("4'sb1010")[0].kind == "sized_number"

    def test_identifier_with_dollar(self):
        assert tokenize("a$b")[0].value == "a$b"

    def test_escaped_identifier(self):
        toks = tokenize("\\foo.bar[3] baz")
        assert toks[0].kind == "ident"
        assert toks[0].value == "foo.bar[3]"
        assert toks[1].value == "baz"

    def test_line_comment(self):
        assert values("a // comment\n b") == ["a", "b"]

    def test_block_comment(self):
        assert values("a /* many\nlines */ b") == ["a", "b"]

    def test_directive_skipped(self):
        assert values("`timescale 1ns/1ps\nmodule") == ["module"]

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "eof"

    def test_positions(self):
        toks = tokenize("ab\n  cd")
        assert (toks[0].line, toks[0].column) == (1, 1)
        assert (toks[1].line, toks[1].column) == (2, 3)


class TestLexErrors:
    def test_unknown_char(self):
        with pytest.raises(LexError, match="unexpected character"):
            tokenize("a @ b")

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError, match="unterminated"):
            tokenize("/* never closed")

    def test_empty_escaped_identifier(self):
        with pytest.raises(LexError, match="empty escaped"):
            tokenize("\\ foo")

    def test_malformed_based_literal(self):
        with pytest.raises(LexError, match="malformed"):
            tokenize("4'q0")

    def test_error_carries_position(self):
        try:
            tokenize("ab\n  @")
        except LexError as e:
            assert e.line == 2
            assert e.column == 3
        else:  # pragma: no cover
            pytest.fail("expected LexError")
