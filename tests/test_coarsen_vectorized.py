"""Bit-identity oracles for the vectorized coarsening pipeline.

The multilevel engine's determinism contract promises byte-identical
partitions for a fixed seed, so the vectorized matcher, projection and
gain-gather kernels must reproduce their scalar predecessors *exactly*
— same mapping ints, same float scores bit for bit, same CSR arrays.
This module pins each against its retained reference implementation
(:func:`repro.core.multilevel._heavy_edge_matching_reference`,
:func:`repro.hypergraph.build._project_hypergraph_reference`) across
randomized seeds, k and adversarial edge shapes (edges that collapse
after contraction, clock-net-wide edges past the scoring limit,
all-parallel edge bundles), plus a forced fingerprint-collision stress
test for the projection's dedup fallback and golden end-to-end digests
for the batch refiner's incremental gather.
"""

import hashlib

import numpy as np
import pytest

import repro.hypergraph.build as build_mod
from repro.core import BalanceConstraint, multilevel_kway_partition
from repro.core.batch_refine import batch_refine
from repro.core.multilevel import (
    MultilevelConfig,
    _heavy_edge_matching,
    _heavy_edge_matching_reference,
)
from repro.errors import HypergraphError
from repro.hypergraph import Hypergraph, PartitionState
from repro.hypergraph.build import (
    _project_hypergraph_reference,
    project_hypergraph,
)


def random_hypergraph(rng, n_max=48, e_max=70, adversarial=0):
    """Random circuit-ish hypergraph; ``adversarial`` selects a shape:
    0 plain, 1 all-parallel bundle, 2 clock-net-wide edge, 3 both."""
    n = int(rng.integers(2, n_max))
    ne = int(rng.integers(1, e_max))
    edges = [
        rng.integers(0, n, int(rng.integers(1, min(n, 9) + 1))).tolist()
        for _ in range(ne)
    ]
    if adversarial in (1, 3):
        edges += [edges[0]] * 4  # parallel copies of one edge
    if adversarial in (2, 3):
        edges.append(list(range(n)))  # one clock/reset-wide net
    weights = rng.integers(1, 6, n).tolist()
    edge_weights = rng.integers(1, 4, len(edges)).tolist()
    return Hypergraph.from_edges(weights, edges, edge_weights)


def surjective_mapping(rng, n):
    """Random contraction map with no empty clusters (what matching
    always produces — every coarse id owns at least one fine vertex)."""
    raw = rng.integers(0, max(1, n // 2), n)
    _, mapping = np.unique(raw, return_inverse=True)
    return mapping.astype(np.int64)


def graphs_equal(a: Hypergraph, b: Hypergraph) -> bool:
    return (
        np.array_equal(a.vertex_weight, b.vertex_weight)
        and np.array_equal(a.edge_weight, b.edge_weight)
        and np.array_equal(a._edge_ptr, b._edge_ptr)
        and np.array_equal(a._edge_pins, b._edge_pins)
        and a._edge_pins.dtype == b._edge_pins.dtype == np.int64
    )


class TestMatchingOracle:
    def test_randomized_bit_identity(self):
        rng = np.random.default_rng(1234)
        for trial in range(120):
            hg = random_hypergraph(rng, adversarial=trial % 4)
            seed = int(rng.integers(0, 10_000))
            max_w = int(rng.integers(2, 24))
            limit = int(rng.integers(2, 12))
            got = _heavy_edge_matching(
                hg, np.random.default_rng(seed), max_w, limit)
            want = _heavy_edge_matching_reference(
                hg, np.random.default_rng(seed), max_w, limit)
            assert np.array_equal(got[0], want[0]), f"mapping @ {trial}"
            assert got[0].dtype == want[0].dtype == np.int64
            assert got[1] == want[1], f"matched_pairs @ {trial}"
            # float score must be the identical IEEE double, not close
            assert got[2] == want[2], f"match_score @ {trial}"

    def test_committed_benchmark_seed(self):
        # the scale ladder's committed seed (SEED=1) on a real streamed
        # rung: the production matcher must reproduce the reference on
        # the exact hypergraph the committed benchmarks coarsen
        from repro.circuits import load_stream_circuit
        from repro.hypergraph.build import streamed_flat_hypergraph

        hg = streamed_flat_hypergraph(load_stream_circuit("viterbi-s10k"))
        cfg = MultilevelConfig()
        constraint = BalanceConstraint(8, 5.0)
        max_w = cfg.max_cluster_weight(constraint, hg.total_weight)
        got = _heavy_edge_matching(
            hg, np.random.default_rng(1), max_w, cfg.large_edge_limit)
        want = _heavy_edge_matching_reference(
            hg, np.random.default_rng(1), max_w, cfg.large_edge_limit)
        assert np.array_equal(got[0], want[0])
        assert got[1:] == want[1:]

    def test_weight_cap_filters_candidates(self):
        # two heavy vertices may not merge; the light pair still does
        hg = Hypergraph.from_edges([5, 5, 1, 1], [[0, 1], [2, 3]])
        mapping, pairs, _ = _heavy_edge_matching(
            hg, np.random.default_rng(0), 4, 8)
        ref = _heavy_edge_matching_reference(
            hg, np.random.default_rng(0), 4, 8)
        assert np.array_equal(mapping, ref[0])
        assert pairs == ref[1] == 1
        assert mapping[0] != mapping[1] and mapping[2] == mapping[3]


class TestProjectionOracle:
    def test_randomized_byte_identity(self):
        rng = np.random.default_rng(77)
        for trial in range(120):
            hg = random_hypergraph(rng, adversarial=trial % 4)
            mapping = surjective_mapping(rng, hg.num_vertices)
            got = project_hypergraph(hg, mapping)
            want = _project_hypergraph_reference(hg, mapping)
            assert graphs_equal(got, want), f"trial {trial}"

    def test_all_edges_collapse(self):
        # empty-after-contraction: every edge internal to one cluster
        hg = Hypergraph.from_edges([1, 1, 1, 1], [[0, 1], [2, 3], [0, 1]])
        mapping = np.array([0, 0, 1, 1])
        got = project_hypergraph(hg, mapping)
        assert graphs_equal(got, _project_hypergraph_reference(hg, mapping))
        assert got.num_edges == 0 and got.num_vertices == 2

    def test_all_parallel_merge_weights(self):
        hg = Hypergraph.from_edges(
            [1, 1, 1, 1], [[0, 2], [1, 3], [0, 3], [1, 2]], [2, 3, 5, 7])
        mapping = np.array([0, 0, 1, 1])  # every edge becomes {0, 1}
        got = project_hypergraph(hg, mapping)
        assert graphs_equal(got, _project_hypergraph_reference(hg, mapping))
        assert got.num_edges == 1
        assert int(got.edge_weight[0]) == 17

    def test_fingerprint_collision_stress(self, monkeypatch):
        # force every fingerprint to collide: the exact-regroup fallback
        # must keep the projection byte-identical to the reference
        monkeypatch.setattr(
            build_mod, "_edge_fingerprints",
            lambda pins, starts: (
                np.zeros(len(starts), dtype=np.uint64),
                np.zeros(len(starts), dtype=np.uint64),
            ),
        )
        rng = np.random.default_rng(5150)
        for trial in range(60):
            hg = random_hypergraph(rng, n_max=28, e_max=40,
                                   adversarial=trial % 4)
            mapping = surjective_mapping(rng, hg.num_vertices)
            got = project_hypergraph(hg, mapping)
            want = _project_hypergraph_reference(hg, mapping)
            assert graphs_equal(got, want), f"collision trial {trial}"


class TestFromCsr:
    def test_matches_from_edges(self):
        edges = [[0, 2, 3], [1, 2], [0, 4]]
        a = Hypergraph.from_edges([1, 2, 3, 1, 1], edges, [1, 2, 1])
        b = Hypergraph.from_csr(
            np.array([1, 2, 3, 1, 1]), np.array([1, 2, 1]),
            np.array([0, 3, 5, 7]), np.array([0, 2, 3, 1, 2, 0, 4]),
        )
        assert graphs_equal(a, b)
        assert np.array_equal(a._vertex_ptr, b._vertex_ptr)
        assert np.array_equal(a._vertex_pins, b._vertex_pins)

    def test_widens_narrow_arrays(self):
        hg = Hypergraph.from_csr(
            np.array([1, 1], dtype=np.int32), np.array([1], dtype=np.int32),
            np.array([0, 2], dtype=np.int32), np.array([0, 1], dtype=np.int32),
        )
        for arr in (hg.vertex_weight, hg.edge_weight,
                    hg._edge_ptr, hg._edge_pins):
            assert arr.dtype == np.int64

    @pytest.mark.parametrize("ptr, pins", [
        (np.array([1, 2]), np.array([0, 1])),      # doesn't start at 0
        (np.array([0, 1]), np.array([0, 1])),      # doesn't end at len
        (np.array([0, 2, 1, 2]), np.array([0, 1])),  # decreasing
        (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)),
    ])
    def test_rejects_bad_pointer(self, ptr, pins):
        nv = max(2, int(pins.max()) + 1 if len(pins) else 2)
        ne = max(0, len(ptr) - 1)
        with pytest.raises(HypergraphError):
            Hypergraph.from_csr(
                np.ones(nv, dtype=np.int64), np.ones(ne, dtype=np.int64),
                ptr, pins,
            )


class TestGainMatrixKernel:
    def test_matches_stacked_vector_queries(self):
        rng = np.random.default_rng(99)
        for trial in range(60):
            hg = random_hypergraph(rng, adversarial=trial % 4)
            n = hg.num_vertices
            k = int(rng.integers(2, 6))
            state = PartitionState(hg, k, rng.integers(0, k, n))
            verts = np.unique(rng.integers(0, n, int(rng.integers(1, n + 1))))
            targets = np.arange(k, dtype=np.int64)
            gains, soeds = state.move_gains_matrix(verts, targets)
            assert np.array_equal(
                gains, np.stack([state.move_gains(verts, p)
                                 for p in range(k)]))
            assert np.array_equal(
                soeds, np.stack([state.move_soed_gains(verts, p)
                                 for p in range(k)]))

    def test_target_subset_and_empty(self):
        hg = Hypergraph.from_edges([1] * 6, [[0, 1, 2], [2, 3], [4, 5]])
        state = PartitionState(hg, 4, np.array([0, 1, 2, 3, 0, 1]))
        sub = np.array([3, 1], dtype=np.int64)
        gains, soeds = state.move_gains_matrix(np.arange(6), sub)
        assert np.array_equal(
            gains, np.stack([state.move_gains(np.arange(6), int(p))
                             for p in sub]))
        g0, s0 = state.move_gains_matrix(np.empty(0, dtype=np.int64), sub)
        assert g0.shape == (2, 0) and s0.shape == (2, 0)


class TestIncrementalGatherIdentity:
    """The cached boundary-restricted gather must leave every refiner
    decision — and therefore the end-to-end partition bytes — exactly
    where the full per-round re-gather left them.  The digests below
    were produced by the pre-vectorization full-gather implementation."""

    def synthetic(self, n=1200, seed=3):
        rng = np.random.default_rng(seed)
        weights = rng.integers(1, 4, n).tolist()
        edges = []
        for i in range(0, n - 3, 2):
            edges.append([i, i + 1, i + 2])
        for s in range(0, n, 24):
            edges.append(list(range(s, min(s + 24, n))))
        for _ in range(n // 12):
            a, b = int(rng.integers(0, n)), int(rng.integers(0, n))
            if a != b:
                edges.append([a, b])
        return Hypergraph.from_edges(weights, edges)

    @pytest.mark.parametrize("k, b, refiner, seed, cut, digest", [
        (2, 10.0, "fm", 1, 49, "43533d83b2337ee4"),
        (4, 10.0, "fm", 1, 77, "e296f37778389fc5"),
        (4, 10.0, "batch", 1, 88, "3a408d96abee43b4"),
        (3, 5.0, "batch", 7, 82, "b87c8d09da4bb782"),
    ])
    def test_golden_partition_digests(self, k, b, refiner, seed, cut,
                                      digest):
        result = multilevel_kway_partition(
            self.synthetic(), k, b, seed=seed, refiner=refiner)
        got = hashlib.sha256(result.assignment.tobytes()).hexdigest()[:16]
        assert (result.cut_size, got) == (cut, digest)

    def test_kick_rollback_restores_cache_coherence(self):
        # a batch_refine call whose kick loop rolls back must still
        # leave the state consistent (cut/SOED recomputable) — the
        # rollback marks the whole cache stale
        hg = self.synthetic(n=240, seed=11)
        rng = np.random.default_rng(2)
        state = PartitionState(hg, 3, rng.integers(0, 3, hg.num_vertices))
        constraint = BalanceConstraint(3, 10.0)
        result = batch_refine(state, constraint, max_kicks=4)
        cut, soed = state.cut_size, state.connectivity
        state.recompute()
        assert (state.cut_size, state.connectivity) == (cut, soed)
        assert result.gain >= 0
