"""Deep verification: committed change streams match entry-for-entry.

Final-value equivalence can in principle hide compensating errors;
comparing the full committed (time, net, value) history cannot.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import load_circuit, random_logic_verilog, random_vectors
from repro.errors import SimulationError
from repro.hypergraph import Clustering
from repro.sim import (
    ClusterSpec,
    SequentialSimulator,
    TimeWarpConfig,
    TimeWarpEngine,
    compile_circuit,
)
from repro.verilog import compile_verilog


def run_deep(netlist, circuit, events, k, **config_kw):
    seq = SequentialSimulator(circuit, record_changes=True)
    seq.add_inputs(events)
    seq.run()
    clusters = Clustering.top_level(netlist).gate_clusters()
    lp_machine = [i % k for i in range(len(clusters))]
    eng = TimeWarpEngine(
        circuit, clusters, lp_machine, ClusterSpec(num_machines=k),
        TimeWarpConfig(record_changes=True, checkpoint_interval=3,
                       gvt_interval=30, **config_kw),
    )
    eng.load_inputs(events)
    eng.run()
    eng.verify_change_stream(seq)
    return eng, seq


class TestDeepOracle:
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_pipeadd(self, pipeadd, pipeadd_circuit, pipeadd_events, k):
        run_deep(pipeadd, pipeadd_circuit, pipeadd_events, k)

    def test_viterbi(self, viterbi_test, viterbi_test_circuit):
        events = random_vectors(viterbi_test, 12, seed=8)
        run_deep(viterbi_test, viterbi_test_circuit, events, 3)

    @pytest.mark.parametrize("lazy", [True, False])
    def test_both_cancellation_modes(self, pipeadd, pipeadd_circuit,
                                     pipeadd_events, lazy):
        run_deep(pipeadd, pipeadd_circuit, pipeadd_events, 3,
                 lazy_cancellation=lazy)

    def test_with_migration(self, pipeadd, pipeadd_circuit, pipeadd_events):
        run_deep(pipeadd, pipeadd_circuit, pipeadd_events, 3,
                 migration=True, migration_threshold=0.1)

    def test_requires_flag_on_engine(self, pipeadd, pipeadd_circuit,
                                     pipeadd_events):
        clusters = Clustering.top_level(pipeadd).gate_clusters()
        eng = TimeWarpEngine(
            pipeadd_circuit, clusters, [0] * len(clusters),
            ClusterSpec(num_machines=1), TimeWarpConfig(),
        )
        eng.load_inputs(pipeadd_events)
        eng.run()
        with pytest.raises(SimulationError, match="record_changes"):
            eng.committed_changes()

    def test_requires_flag_on_reference(self, pipeadd, pipeadd_circuit,
                                        pipeadd_events):
        seq = SequentialSimulator(pipeadd_circuit)
        seq.add_inputs(pipeadd_events)
        seq.run()
        clusters = Clustering.top_level(pipeadd).gate_clusters()
        eng = TimeWarpEngine(
            pipeadd_circuit, clusters, [0] * len(clusters),
            ClusterSpec(num_machines=1),
            TimeWarpConfig(record_changes=True),
        )
        eng.load_inputs(pipeadd_events)
        eng.run()
        with pytest.raises(SimulationError, match="reference"):
            eng.verify_change_stream(seq)

    @given(st.integers(0, 5000), st.integers(1, 4))
    @settings(max_examples=15, deadline=None)
    def test_random_circuits(self, seed, k):
        nl = compile_verilog(random_logic_verilog(40, 6, seed=seed))
        cc = compile_circuit(nl)
        events = random_vectors(nl, 6, seed=seed + 1)
        rng = np.random.default_rng(seed)
        n_clusters = max(k, 6)
        memb = rng.integers(0, n_clusters, size=nl.num_gates)
        clusters = [
            [g for g in range(nl.num_gates) if memb[g] == c]
            for c in range(n_clusters)
        ]
        clusters = [c for c in clusters if c]
        seq = SequentialSimulator(cc, record_changes=True)
        seq.add_inputs(events)
        seq.run()
        eng = TimeWarpEngine(
            cc, clusters, [i % k for i in range(len(clusters))],
            ClusterSpec(num_machines=k),
            TimeWarpConfig(record_changes=True, checkpoint_interval=2,
                           gvt_interval=25),
        )
        eng.load_inputs(events)
        eng.run()
        eng.verify_change_stream(seq)
