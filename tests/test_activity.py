"""Activity-based load metric (the paper's future-work extension)."""

import numpy as np
import pytest

from repro.circuits import random_vectors
from repro.core import (
    activity_clustering,
    design_driven_partition,
    profile_activity,
)
from repro.errors import PartitionError
from repro.hypergraph import Clustering


class TestProfileActivity:
    def test_shape_and_floor(self, pipeadd, pipeadd_events):
        w = profile_activity(pipeadd, pipeadd_events)
        assert len(w) == pipeadd.num_gates
        assert (w >= 1).all()

    def test_matches_sequential_counts(self, pipeadd, pipeadd_events):
        from repro.sim import SequentialSimulator, compile_circuit

        sim = SequentialSimulator(compile_circuit(pipeadd), record_activity=True)
        sim.add_inputs(pipeadd_events)
        sim.run()
        w = profile_activity(pipeadd, pipeadd_events, smoothing=0)
        # smoothing=0 gives raw counts (may contain zeros -> Clustering
        # would reject them; profile only)
        assert (w == sim.stats.activity).all()

    def test_active_gates_weigh_more(self, pipeadd, pipeadd_events):
        w = profile_activity(pipeadd, pipeadd_events)
        assert w.max() > w.min()


class TestWeightedClustering:
    def test_cluster_weights_are_activity_sums(self, pipeadd, pipeadd_events):
        c = activity_clustering(pipeadd, pipeadd_events)
        w = profile_activity(pipeadd, pipeadd_events)
        for cl in c.clusters:
            assert cl.weight == sum(int(w[g]) for g in cl.gate_ids)

    def test_hypergraph_total_weight(self, pipeadd, pipeadd_events):
        c = activity_clustering(pipeadd, pipeadd_events)
        w = profile_activity(pipeadd, pipeadd_events)
        assert c.hypergraph().total_weight == int(w.sum())

    def test_flatten_preserves_weights(self, pipeadd, pipeadd_events):
        c = activity_clustering(pipeadd, pipeadd_events)
        idx = c.largest_super_gate()
        total = sum(cl.weight for cl in c.clusters)
        c2 = c.flatten(idx)
        assert sum(cl.weight for cl in c2.clusters) == total
        assert c2.gate_weights is c.gate_weights

    def test_bad_weight_length_rejected(self, pipeadd):
        with pytest.raises(PartitionError, match="entries"):
            Clustering.top_level(pipeadd, gate_weights=np.ones(3, dtype=np.int64))

    def test_zero_weights_rejected(self, pipeadd):
        with pytest.raises(PartitionError, match=">= 1"):
            Clustering.top_level(
                pipeadd, gate_weights=np.zeros(pipeadd.num_gates, dtype=np.int64)
            )


class TestWeightedPartitioning:
    def test_partition_balances_activity(self, viterbi_test):
        events = random_vectors(viterbi_test, 10, seed=4)
        c = activity_clustering(viterbi_test, events)
        r = design_driven_partition(c, k=2, b=15.0, seed=1)
        # loads are measured in activity units now
        assert r.part_weights.sum() == c.hypergraph().total_weight
        if r.balanced:
            total = int(r.part_weights.sum())
            lo = total * (0.5 - 0.15)
            hi = total * (0.5 + 0.15)
            assert all(lo - 1e-9 <= w <= hi + 1e-9 for w in r.part_weights)

    def test_weighted_vs_unweighted_differ(self, viterbi_test):
        events = random_vectors(viterbi_test, 10, seed=4)
        weighted = design_driven_partition(
            activity_clustering(viterbi_test, events), k=2, b=10.0, seed=1
        )
        plain = design_driven_partition(viterbi_test, k=2, b=10.0, seed=1)
        # sanity: both valid; typically different loads in gate terms
        assert weighted.part_weights.sum() != plain.part_weights.sum()
