"""Netlist optimizer: folding correctness + simulation equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import random_logic_verilog, random_vectors
from repro.sim import InputEvent, SequentialSimulator, compile_circuit
from repro.verilog import compile_verilog
from repro.verilog.optimize import optimize_netlist


def outputs_after(netlist, events):
    sim = SequentialSimulator(compile_circuit(netlist))
    sim.add_inputs(events)
    sim.run()
    return sim.output_values()


class TestFolding:
    def test_constant_and_folds(self):
        nl = compile_verilog(
            "module t (o, a); output o; input a; and (o, a, 1'b0); endmodule"
        )
        opt, stats = optimize_netlist(nl)
        assert opt.num_gates == 0
        assert stats.const_folded == 1
        assert outputs_after(opt, [InputEvent(0, opt.inputs[0], 1)]) == [0]

    def test_neutral_constant_not_folded(self):
        """and(a, 1) is not constant; the conservative passes keep it."""
        nl = compile_verilog(
            "module t (o, a); output o; input a; and (o, a, 1'b1); endmodule"
        )
        opt, _ = optimize_netlist(nl)
        assert opt.num_gates == 1

    def test_buffer_chain_collapses(self):
        nl = compile_verilog(
            """
            module t (o, a); output o; input a;
              wire m1, m2;
              buf (m1, a); buf (m2, m1); buf (o, m2);
            endmodule
            """
        )
        opt, stats = optimize_netlist(nl)
        assert opt.num_gates == 0
        assert stats.buffers_collapsed == 3
        assert outputs_after(opt, [InputEvent(0, opt.inputs[0], 1)]) == [1]

    def test_transitive_constant_wave(self):
        nl = compile_verilog(
            """
            module t (o, a); output o; input a;
              wire m1, m2;
              nor (m1, 1'b1, a);     // = 0
              or (m2, m1, 1'b0);     // = 0
              xor (o, m2, a);        // = a, but xor isn't folded: 1 gate
            endmodule
            """
        )
        opt, stats = optimize_netlist(nl)
        assert stats.const_folded >= 2
        assert opt.num_gates == 1
        assert outputs_after(opt, [InputEvent(0, opt.inputs[0], 1)]) == [1]

    def test_dead_logic_removed(self):
        nl = compile_verilog(
            """
            module t (o, a, b); output o; input a, b;
              wire unused;
              xor (unused, a, b);   // observable by nothing
              and (o, a, b);
            endmodule
            """
        )
        opt, stats = optimize_netlist(nl)
        assert stats.dead_removed == 1
        assert opt.num_gates == 1

    def test_dead_flipflop_removed(self):
        nl = compile_verilog(
            """
            module t (o, a, clk); output o; input a, clk;
              wire q;
              dff (q, a, clk);      // state nobody reads
              buf (o, a);
            endmodule
            """
        )
        opt, stats = optimize_netlist(nl)
        assert stats.dead_removed == 1
        assert opt.num_gates == 0  # the buf collapsed too

    def test_live_flipflop_kept(self, pipeadd):
        opt, stats = optimize_netlist(pipeadd)
        assert len(opt.sequential_gates()) == len(pipeadd.sequential_gates())

    def test_hierarchy_preserved(self, pipeadd):
        opt, _ = optimize_netlist(pipeadd)
        assert set(opt.hierarchy.children) <= set(pipeadd.hierarchy.children)
        for gate in opt.gates:
            node = opt.hierarchy.find(gate.path)
            assert gate.gid in node.gate_ids

    def test_stats_summary(self, pipeadd):
        _, stats = optimize_netlist(pipeadd)
        text = stats.summary()
        assert "gates" in text and str(stats.gates_after) in text


class TestEquivalence:
    @pytest.mark.parametrize("name", ["adder4", "pipeadd", "viterbi"])
    def test_fixture_circuits(self, name, adder4, pipeadd, viterbi_test):
        nl = {"adder4": adder4, "pipeadd": pipeadd, "viterbi": viterbi_test}[name]
        opt, _ = optimize_netlist(nl)
        events = random_vectors(nl, 12, seed=5)
        name_map = {opt.net_name(n): n for n in opt.inputs}
        remapped = [
            InputEvent(e.time, name_map[nl.net_name(e.net)], e.value)
            for e in events
        ]
        assert outputs_after(nl, events) == outputs_after(opt, remapped)

    @given(st.integers(0, 10_000), st.integers(20, 100))
    @settings(max_examples=30, deadline=None)
    def test_random_circuits(self, seed, n_gates):
        nl = compile_verilog(random_logic_verilog(n_gates, 6, seed=seed))
        opt, stats = optimize_netlist(nl)
        assert stats.gates_after <= stats.gates_before
        events = random_vectors(nl, 6, seed=seed + 1)
        name_map = {opt.net_name(n): n for n in opt.inputs}
        remapped = [
            InputEvent(e.time, name_map[nl.net_name(e.net)], e.value)
            for e in events
        ]
        assert outputs_after(nl, events) == outputs_after(opt, remapped)
