"""IO roundtrips for array-native artifacts.

The streamed construction path (:mod:`repro.circuits.stream`) emits
hypergraphs and partitions straight from CSR arrays; this module pins
down that the persistence layers (:mod:`repro.hypergraph.io`,
:mod:`repro.core.partition_io`) survive that output faithfully:
dtype preservation (everything frozen is int64, weights past 2^31
included), empty-edge handling, and stability of large ids/weights
through the text formats.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.memctrl import MemCtrlConfig, memctrl_stream, memctrl_verilog
from repro.circuits.noc import NocConfig, noc_stream, noc_verilog
from repro.core import (
    design_driven_partition,
    dumps_partition,
    loads_partition,
)
from repro.errors import HypergraphError
from repro.hypergraph import Hypergraph, dumps_hgr, loads_hgr
from repro.hypergraph.build import flat_hypergraph, streamed_flat_hypergraph
from repro.verilog import compile_verilog

_NOC = NocConfig(rows=2, cols=2, width=3)
_MEM = MemCtrlConfig(banks=2, abits=3, width=3, queue=1)


@pytest.mark.parametrize(
    "stream_fn,cfg",
    [(noc_stream, _NOC), (memctrl_stream, _MEM)],
    ids=["noc", "memctrl"],
)
class TestStreamedHypergraphRoundtrip:
    def test_hgr_preserves_structure(self, stream_fn, cfg):
        hg = streamed_flat_hypergraph(stream_fn(cfg))
        rt = loads_hgr(dumps_hgr(hg))
        assert rt.num_vertices == hg.num_vertices
        assert rt.num_edges == hg.num_edges
        assert np.array_equal(rt.vertex_weight, hg.vertex_weight)
        assert np.array_equal(rt.edge_weight, hg.edge_weight)
        # pin lists survive (hgr readback sorts within an edge, and the
        # streamed build already emits sorted deduped pins)
        assert np.array_equal(rt._edge_ptr, hg._edge_ptr)
        assert np.array_equal(rt._edge_pins, hg._edge_pins)

    def test_reload_dtypes_are_int64(self, stream_fn, cfg):
        """The frozen substrate is int64-only; a reload must not narrow."""
        rt = loads_hgr(dumps_hgr(streamed_flat_hypergraph(stream_fn(cfg))))
        for arr in (rt._edge_ptr, rt._edge_pins, rt.vertex_weight, rt.edge_weight):
            assert arr.dtype == np.int64


class TestLargeValueStability:
    def test_weights_past_int32_roundtrip(self):
        """int64 weights survive the text format exactly (no float path)."""
        big_vw = [1, (1 << 40) + 3, 7]
        big_ew = [(1 << 35) + 1, 5]
        hg = Hypergraph.from_edges(big_vw, [[0, 1], [1, 2]], big_ew)
        rt = loads_hgr(dumps_hgr(hg))
        assert rt.vertex_weight.tolist() == big_vw
        assert rt.edge_weight.tolist() == big_ew
        assert rt.vertex_weight.dtype == np.int64
        assert rt.edge_weight.dtype == np.int64


class TestEmptyEdgeHandling:
    def test_zero_edge_hypergraph_roundtrips(self):
        hg = Hypergraph.from_edges([2, 3], [])
        rt = loads_hgr(dumps_hgr(hg))
        assert rt.num_vertices == 2
        assert rt.num_edges == 0
        assert rt.vertex_weight.tolist() == [2, 3]

    def test_empty_edge_rejected_with_clear_error(self):
        """An empty pin line would parse as a blank line — refuse to
        emit it rather than writing a file that cannot be read back."""
        hg = Hypergraph.from_edges([1, 1], [[0, 1], []])
        with pytest.raises(HypergraphError, match="no pins"):
            dumps_hgr(hg)


class TestPartitionRoundtripOnStreamTwin:
    """Partition persistence for circuits that exist in both registries.

    ``partition_io`` is keyed by gate names, so it binds to the parsed
    twin of a streamed family — the same circuit the array-native path
    emits, gate for gate (see test_stream_circuits).
    """

    def test_noc_partition_roundtrip(self):
        netlist = compile_verilog(noc_verilog(_NOC))
        result = design_driven_partition(netlist, k=3, b=10.0, seed=1)
        loaded = loads_partition(dumps_partition(result), netlist)
        assert loaded.cut_size == result.cut_size
        assert loaded.assignment.dtype == np.int64
        assert np.array_equal(
            loaded.gate_assignment(), result.gate_assignment()
        )

    def test_memctrl_partition_roundtrip(self):
        netlist = compile_verilog(memctrl_verilog(_MEM))
        result = design_driven_partition(netlist, k=2, b=10.0, seed=1)
        loaded = loads_partition(dumps_partition(result), netlist)
        assert loaded.cut_size == result.cut_size
        assert np.array_equal(
            loaded.part_weights, result.part_weights
        )

    def test_flat_hypergraph_matches_after_reload(self):
        """The hypergraph a reloaded clustering induces matches the
        original — partition IO does not perturb the array substrate."""
        netlist = compile_verilog(noc_verilog(_NOC))
        result = design_driven_partition(netlist, k=3, b=10.0, seed=1)
        loaded = loads_partition(dumps_partition(result), netlist)
        a = flat_hypergraph(netlist)
        b = flat_hypergraph(netlist)
        assert np.array_equal(a._edge_ptr, b._edge_ptr)
        assert np.array_equal(a._edge_pins, b._edge_pins)
        assert loaded.clustering.netlist is netlist
