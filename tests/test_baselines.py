"""Multilevel (hMetis-style) baseline, FM2, coarsening, random floor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    coarsen,
    coarsen_once,
    cut_of,
    fm_refine_bisection,
    grow_bisection,
    multilevel_bisect,
    multilevel_partition,
    random_bisection,
    random_partition,
)
from repro.errors import PartitionError
from repro.hypergraph import Hypergraph, flat_hypergraph, hyperedge_cut, part_weights


@st.composite
def any_hg(draw):
    n = draw(st.integers(4, 16))
    m = draw(st.integers(2, 20))
    edges = []
    for _ in range(m):
        size = draw(st.integers(2, min(n, 4)))
        edges.append(
            draw(st.lists(st.integers(0, n - 1), min_size=size, max_size=size, unique=True))
        )
    vw = draw(st.lists(st.integers(1, 4), min_size=n, max_size=n))
    ew = draw(st.lists(st.integers(1, 3), min_size=m, max_size=m))
    return Hypergraph.from_edges(vw, edges, ew)


class TestFM2:
    @given(any_hg(), st.integers(0, 100))
    @settings(max_examples=80, deadline=None)
    def test_gain_equals_cut_delta(self, hg, seed):
        rng = np.random.default_rng(seed)
        side = rng.integers(0, 2, size=hg.num_vertices).astype(np.int64)
        before = cut_of(hg, side)
        total = hg.total_weight
        gain = fm_refine_bisection(hg, side, (0, total), (0, total))
        after = cut_of(hg, side)
        assert before - after == gain
        assert gain >= 0

    def test_respects_asymmetric_bounds(self):
        hg = Hypergraph.from_edges([1] * 9, [[i, i + 1] for i in range(8)])
        side = np.array([0, 0, 0, 1, 1, 1, 1, 1, 1], dtype=np.int64)
        # keep the 1/3 : 2/3 split within +-1
        fm_refine_bisection(hg, side, (2, 4), (5, 7))
        w = np.bincount(side, minlength=2)
        assert 2 <= w[0] <= 4

    def test_finds_obvious_cut(self):
        # two cliques joined by one edge
        edges = [[0, 1], [1, 2], [0, 2], [3, 4], [4, 5], [3, 5], [2, 3]]
        hg = Hypergraph.from_edges([1] * 6, edges)
        side = np.array([0, 1, 0, 1, 0, 1], dtype=np.int64)
        fm_refine_bisection(hg, side, (2, 4), (2, 4))
        assert cut_of(hg, side) == 1

    def test_empty_graph(self):
        hg = Hypergraph.from_edges([], [])
        side = np.zeros(0, dtype=np.int64)
        assert fm_refine_bisection(hg, side, (0, 1), (0, 1)) == 0


class TestCoarsen:
    @given(any_hg(), st.integers(0, 50))
    @settings(max_examples=50, deadline=None)
    def test_weight_preserved(self, hg, seed):
        rng = np.random.default_rng(seed)
        coarse, mapping = coarsen_once(hg, rng, max_vertex_weight=hg.total_weight)
        assert coarse.total_weight == hg.total_weight
        assert coarse.num_vertices <= hg.num_vertices
        assert len(mapping) == hg.num_vertices
        assert mapping.max() == coarse.num_vertices - 1

    @given(any_hg(), st.integers(0, 50))
    @settings(max_examples=50, deadline=None)
    def test_cut_projection_consistent(self, hg, seed):
        """A coarse bisection's cut equals the projected fine cut."""
        rng = np.random.default_rng(seed)
        coarse, mapping = coarsen_once(hg, rng, max_vertex_weight=hg.total_weight)
        cside = rng.integers(0, 2, size=coarse.num_vertices).astype(np.int64)
        fside = cside[mapping]
        # coarse cut uses accumulated edge weights; dropped single-pin
        # coarse edges were uncuttable anyway
        assert cut_of(coarse, cside) == cut_of(hg, fside)

    def test_level_stack(self, viterbi_test):
        hg = flat_hypergraph(viterbi_test)
        coarsest, levels = coarsen(hg, target_vertices=40, seed=0)
        assert coarsest.num_vertices <= max(40, hg.num_vertices)
        assert coarsest.total_weight == hg.total_weight
        # mapping chain composes back to the finest graph
        assert levels[0].fine is hg


class TestInitial:
    def test_random_bisection_hits_target(self):
        hg = Hypergraph.from_edges([1] * 10, [[i, i + 1] for i in range(9)])
        side = random_bisection(hg, 5, np.random.default_rng(0))
        w = np.bincount(side, minlength=2)
        assert w[0] >= 1 and w[1] >= 1

    def test_grow_bisection_connected_region(self):
        hg = Hypergraph.from_edges([1] * 10, [[i, i + 1] for i in range(9)])
        side = grow_bisection(hg, 5, np.random.default_rng(0))
        # grown region of a path is contiguous: cut must be 1 or 2
        assert cut_of(hg, side) <= 2


class TestMultilevel:
    @pytest.mark.parametrize("k", [2, 3, 4, 5])
    def test_valid_kway(self, viterbi_test, k):
        hg = flat_hypergraph(viterbi_test)
        r = multilevel_partition(hg, k, b=10.0, seed=1)
        assert len(np.unique(r.assignment)) == k
        assert r.part_weights.sum() == hg.total_weight
        assert r.cut_size == hyperedge_cut(hg, r.assignment)

    def test_beats_random(self, viterbi_test):
        hg = flat_hypergraph(viterbi_test)
        ml = multilevel_partition(hg, 3, b=10.0, seed=1)
        rd = hyperedge_cut(hg, random_partition(hg, 3, seed=1))
        assert ml.cut_size < rd

    def test_bisect_bounds(self, viterbi_test):
        hg = flat_hypergraph(viterbi_test)
        side = multilevel_bisect(hg, frac0=0.5, ub=10.0, seed=0)
        w = np.zeros(2, dtype=np.int64)
        np.add.at(w, side, hg.vertex_weight)
        total = hg.total_weight
        assert abs(w[0] - total / 2) <= total * 0.101

    def test_unequal_fraction(self, viterbi_test):
        hg = flat_hypergraph(viterbi_test)
        side = multilevel_bisect(hg, frac0=1 / 3, ub=10.0, seed=0)
        w = np.zeros(2, dtype=np.int64)
        np.add.at(w, side, hg.vertex_weight)
        assert abs(w[0] - hg.total_weight / 3) <= hg.total_weight * 0.101

    def test_k_too_large(self):
        hg = Hypergraph.from_edges([1, 1], [[0, 1]])
        with pytest.raises(PartitionError):
            multilevel_partition(hg, 5, b=10.0)

    def test_deterministic(self, viterbi_test):
        hg = flat_hypergraph(viterbi_test)
        a = multilevel_partition(hg, 3, b=10.0, seed=4)
        b = multilevel_partition(hg, 3, b=10.0, seed=4)
        assert (a.assignment == b.assignment).all()


class TestRandomPartition:
    def test_balanced(self):
        hg = Hypergraph.from_edges([1] * 12, [[i, i + 1] for i in range(11)])
        a = random_partition(hg, 3, seed=0)
        w = part_weights(hg, a, 3)
        assert w.max() - w.min() <= 1

    def test_bad_k(self):
        hg = Hypergraph.from_edges([1], [])
        with pytest.raises(PartitionError):
            random_partition(hg, 2)
