"""Benchmark harness: formatting and miniature experiment runs."""

import pytest

from repro.bench import (
    ExperimentConfig,
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
    fig6_fig7_messages_rollbacks,
    format_kv,
    format_series,
    format_table,
    heuristic_vs_brute_force,
    shape_checks_cutsize,
    shape_checks_speedup,
    table1_cutsize_design,
    table2_cutsize_multilevel,
    table3_presim,
    table4_best_partitions,
    table5_full_sim,
)


class TestFormatting:
    def test_table_alignment(self):
        out = format_table(["k", "b", "cut"], [[2, 2.5, 2428], [2, 15.0, 513]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "cut" in lines[0]
        assert "2428" in lines[2]

    def test_table_title(self):
        out = format_table(["x"], [[1]], title="Table 1")
        assert out.startswith("Table 1")

    def test_series(self):
        out = format_series("machines", [2, 3, 4], {"b=2.5": [10, 20, 30]})
        assert "b=2.5" in out
        assert "30" in out

    def test_kv(self):
        out = format_kv({"speedup": 1.96, "cut": 513})
        assert "1.96" in out and "513" in out


TINY = ExperimentConfig(
    circuit="viterbi-test", ks=(2, 3), bs=(7.5, 15.0),
    presim_vectors=8, full_vectors=16, seed=1,
)


class TestExperiments:
    def test_table1_rows(self):
        rows = table1_cutsize_design(TINY)
        assert len(rows) == 4
        assert all(r.cut >= 0 for r in rows)

    def test_table2_rows(self):
        rows = table2_cutsize_multilevel(TINY)
        assert len(rows) == 4

    def test_design_competitive_and_far_cheaper_at_scale(self):
        """A strong multilevel baseline can tie the hierarchy-aware cut
        at laptop scale; the robust advantages are (a) never being
        meaningfully worse and (b) partitioning a ~40-vertex hypergraph
        instead of a ~4000-vertex one, orders of magnitude faster."""
        import time

        cfg = ExperimentConfig(circuit="viterbi-bench", ks=(2,), bs=(10.0,), seed=1)
        t0 = time.perf_counter()
        d = table1_cutsize_design(cfg)[0].cut
        t_design = time.perf_counter() - t0
        t0 = time.perf_counter()
        m = table2_cutsize_multilevel(cfg)[0].cut
        t_multilevel = time.perf_counter() - t0
        assert d <= 1.2 * m
        assert t_design < t_multilevel

    def test_table3_through_5_pipeline(self):
        study = table3_presim(TINY)
        assert study.runs == 4
        best = table4_best_partitions(study)
        assert set(best) == {2, 3}
        rows, seq_wall = table5_full_sim(TINY, study)
        assert len(rows) == 2
        assert seq_wall > 0
        msgs, rbs, ks = fig6_fig7_messages_rollbacks(study)
        assert ks == [2, 3]
        assert set(msgs) == {7.5, 15.0}

    def test_heuristic_comparison(self):
        comp = heuristic_vs_brute_force(TINY)
        assert comp.heuristic.runs >= 1
        assert comp.brute.runs == 4


class TestShapeChecks:
    def test_paper_data_passes_cut_checks(self):
        checks = shape_checks_cutsize(PAPER_TABLE1, PAPER_TABLE2)
        assert all(c.passed for c in checks), [str(c) for c in checks]

    def test_paper_data_passes_speedup_checks(self):
        speedups = {kb: s for kb, (_, s) in PAPER_TABLE3.items()}
        checks = shape_checks_speedup(speedups)
        assert all(c.passed for c in checks), [str(c) for c in checks]

    def test_failing_shape_detected(self):
        bad = dict(PAPER_TABLE1)
        worst = dict(PAPER_TABLE2)
        # invert the relationship
        bad, worst = worst, bad
        checks = shape_checks_cutsize(bad, worst)
        assert not all(c.passed for c in checks)
