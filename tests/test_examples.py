"""Smoke-run the fastest example scripts end to end.

The heavyweight studies (viterbi_partition_study, parallel_speedup)
are exercised through their underlying library calls elsewhere; these
tests run the quick scripts exactly as a user would.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, argv: list[str], capsys) -> str:
    old_argv = sys.argv
    sys.argv = [name] + argv
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", [], capsys)
    assert "compiled:" in out
    assert "verified=True" in out


def test_waveforms_and_analysis(tmp_path, capsys):
    out = run_example("waveforms_and_analysis.py", [str(tmp_path)], capsys)
    assert "net locality" in out
    assert "events/s" in out
    assert (tmp_path / "cpu.vcd").exists()
    assert (tmp_path / "cpu_k2.json").exists()
    assert "verified=True" in out
