"""Circuit generator tests: functional correctness + structural shape."""

import itertools

import numpy as np
import pytest

from repro.circuits import (
    PAPER_CONFIG,
    TEST_CONFIG,
    ViterbiConfig,
    available_circuits,
    circuit_source,
    counter_verilog,
    lfsr_verilog,
    load_circuit,
    mesh_verilog,
    multiplier_verilog,
    pipeline_verilog,
    random_logic_verilog,
    random_vectors,
    ripple_adder_verilog,
    viterbi_verilog,
)
from repro.errors import ConfigError
from repro.sim import InputEvent, SequentialSimulator, compile_circuit
from repro.verilog import compile_verilog


def run_with(nl, cc, pin_values, extra=()):
    sim = SequentialSimulator(cc)
    evs = [InputEvent(0, net, v) for net, v in pin_values] + list(extra)
    sim.add_inputs(sorted(evs, key=lambda e: e.time))
    sim.run()
    return sim


class TestAdder:
    @pytest.mark.parametrize("hier", [True, False])
    def test_random_cases(self, hier):
        nl = compile_verilog(ripple_adder_verilog(6, hierarchical=hier))
        cc = compile_circuit(nl)
        rng = np.random.default_rng(0)
        for _ in range(40):
            a, b, ci = int(rng.integers(64)), int(rng.integers(64)), int(rng.integers(2))
            pins = [(nl.inputs[i], (a >> i) & 1) for i in range(6)]
            pins += [(nl.inputs[6 + i], (b >> i) & 1) for i in range(6)]
            pins += [(nl.inputs[12], ci)]
            sim = run_with(nl, cc, pins)
            o = sim.output_values()
            got = sum(o[i] << i for i in range(6)) + (o[6] << 6)
            assert got == a + b + ci

    def test_hierarchical_has_instances(self):
        nl = compile_verilog(ripple_adder_verilog(6))
        assert len(nl.hierarchy.children) == 6


class TestMultiplier:
    def test_exhaustive_3bit(self):
        nl = compile_verilog(multiplier_verilog(3))
        cc = compile_circuit(nl)
        for a, b in itertools.product(range(8), range(8)):
            pins = [(nl.inputs[i], (a >> i) & 1) for i in range(3)]
            pins += [(nl.inputs[3 + i], (b >> i) & 1) for i in range(3)]
            sim = run_with(nl, cc, pins)
            o = sim.output_values()
            assert sum(o[i] << i for i in range(6)) == a * b

    def test_width_validation(self):
        with pytest.raises(ConfigError):
            multiplier_verilog(1)


class TestCounter:
    def test_counts_modulo(self):
        nl = compile_verilog(counter_verilog(4))
        cc = compile_circuit(nl)
        clk, rst = nl.inputs
        evs = [InputEvent(0, clk, 0), InputEvent(0, rst, 1),
               InputEvent(4, clk, 1), InputEvent(8, clk, 0),
               InputEvent(10, rst, 0)]
        ticks = 11
        for i in range(ticks):
            evs += [InputEvent(12 + 8 * i, clk, 1), InputEvent(16 + 8 * i, clk, 0)]
        sim = SequentialSimulator(cc)
        sim.add_inputs(evs)
        sim.run()
        o = sim.output_values()
        assert sum(o[i] << i for i in range(4)) == ticks % 16


class TestLfsr:
    def test_leaves_zero_state(self):
        nl = compile_verilog(lfsr_verilog(8))
        cc = compile_circuit(nl)
        clk, rst = nl.inputs
        evs = [InputEvent(0, clk, 0), InputEvent(0, rst, 1),
               InputEvent(4, clk, 1), InputEvent(8, clk, 0),
               InputEvent(10, rst, 0)]
        for i in range(12):
            evs += [InputEvent(12 + 8 * i, clk, 1), InputEvent(16 + 8 * i, clk, 0)]
        sim = SequentialSimulator(cc)
        sim.add_inputs(evs)
        sim.run()
        assert any(v == 1 for v in sim.output_values())


class TestViterbiGenerator:
    def test_paper_config_instance_count(self):
        assert PAPER_CONFIG.instances == 388

    def test_instances_formula_matches_elaboration(self, viterbi_test):
        assert len(viterbi_test.hierarchy.children) == TEST_CONFIG.instances

    def test_smu_blocks_are_heavy_at_bench_scale(self):
        cfg = ViterbiConfig(channels=1, states=8, traceback=16, width=5, smu_cols=8)
        nl = compile_verilog(viterbi_verilog(cfg))
        sizes = {n.name: n.total_gates for n in nl.hierarchy.children.values()}
        smu = [v for k, v in sizes.items() if "smu" in k]
        other = [v for k, v in sizes.items() if "smu" not in k]
        assert max(smu) > max(other)  # the size skew the paper's b exploits

    def test_two_level_hierarchy(self, viterbi_test):
        smu = next(
            n for n in viterbi_test.hierarchy.children.values() if "smu" in n.name
        )
        assert smu.children  # columns inside the block

    def test_decoder_settles_after_reset(self, viterbi_test, viterbi_test_circuit):
        evs = random_vectors(viterbi_test, 20, seed=2)
        sim = SequentialSimulator(viterbi_test_circuit)
        sim.add_inputs(evs)
        sim.run()
        assert all(v in (0, 1) for v in sim.output_values())

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            ViterbiConfig(states=6)
        with pytest.raises(ConfigError):
            ViterbiConfig(channels=0)
        with pytest.raises(ConfigError):
            ViterbiConfig(width=1)

    def test_tail_block_generated(self):
        cfg = ViterbiConfig(channels=1, states=4, traceback=5, width=4, smu_cols=3)
        src = viterbi_verilog(cfg)
        assert "vit_smu_tail" in src
        nl = compile_verilog(src)
        assert nl.num_gates > 0


class TestOtherGenerators:
    def test_pipeline_stage_structure(self):
        nl = compile_verilog(pipeline_verilog(4, 6))
        assert len(nl.hierarchy.children) == 8  # add+reg per stage

    def test_mesh_structure(self):
        nl = compile_verilog(mesh_verilog(3, 3, 4))
        assert len(nl.hierarchy.children) == 9

    def test_random_logic_compiles_and_runs(self):
        for seed in (0, 1, 2):
            nl = compile_verilog(random_logic_verilog(80, 6, seed=seed))
            cc = compile_circuit(nl)
            evs = random_vectors(nl, 5, seed=seed)
            sim = SequentialSimulator(cc)
            sim.add_inputs(evs)
            sim.run()

    def test_registry_complete(self):
        names = available_circuits()
        assert "viterbi-bench" in names
        assert "adder8" in names
        for name in names:
            assert isinstance(circuit_source(name), str)

    def test_registry_unknown(self):
        with pytest.raises(ConfigError, match="unknown circuit"):
            load_circuit("bogus")
