"""The production multilevel k-way engine (repro.core.multilevel).

Covers the ISSUE acceptance matrix: serial-vs-parallel bit-identity at
worker counts {1, 2, 4}, the coarsening invariants (total vertex weight
preserved per level, no merged cluster past the balance-implied cap),
the randomized projection oracle (the projected assignment's cut equals
a from-scratch recount at every level), and the CLI / presim plumbing.
"""

import hashlib
import io
import json

import numpy as np
import pytest

from repro.circuits import circuit_source, load_circuit, random_vectors
from repro.cli import main
from repro.core import (
    BalanceConstraint,
    MultilevelConfig,
    brute_force_presim,
    coarsen_hypergraph,
    direct_kway_partition,
    multilevel_flat_partition,
    multilevel_kway_partition,
)
from repro.errors import ConfigError, PartitionError
from repro.hypergraph import Hypergraph, hyperedge_cut, project_hypergraph
from repro.obs import MetricsRecorder
from repro.obs.registry import is_registered


def synthetic_hypergraph(n=1200, seed=3) -> Hypergraph:
    """Deterministic circuit-shaped hypergraph: local windows, wide
    block nets, sparse random long-range pairs, weights in 1..3."""
    rng = np.random.default_rng(seed)
    weights = rng.integers(1, 4, n).tolist()
    edges = []
    for i in range(0, n - 3, 2):
        edges.append([i, i + 1, i + 2])
    for s in range(0, n, 24):
        edges.append(list(range(s, min(s + 24, n))))
    for _ in range(n // 12):
        a, b = int(rng.integers(0, n)), int(rng.integers(0, n))
        if a != b:
            edges.append([a, b])
    return Hypergraph.from_edges(weights, edges)


@pytest.fixture(scope="module")
def hg():
    return synthetic_hypergraph()


class TestCoarsening:
    def test_invariants_per_level(self, hg):
        constraint = BalanceConstraint(4, 10.0)
        coarsest, levels = coarsen_hypergraph(hg, constraint, seed=1)
        assert levels, "expected at least one coarsening level"
        current = hg
        for level in levels:
            assert level.fine is current
            # total vertex weight is preserved by contraction
            assert level.coarse.total_weight == level.fine.total_weight
            # the mapping is a surjection onto [0, coarse_n)
            assert level.mapping.shape == (level.fine.num_vertices,)
            assert set(level.mapping.tolist()) == set(
                range(level.coarse.num_vertices))
            # strictly shrinking hierarchy
            assert level.coarse.num_vertices < level.fine.num_vertices
            # no *merged* cluster exceeds the matching weight cap
            counts = np.bincount(level.mapping,
                                 minlength=level.coarse.num_vertices)
            merged = np.flatnonzero(counts >= 2)
            cw = np.asarray(level.coarse.vertex_weight_list)
            assert (cw[merged] <= level.max_cluster_weight).all()
            current = level.coarse
        assert coarsest is current

    def test_stop_size_honored(self, hg):
        constraint = BalanceConstraint(2, 10.0)
        cfg = MultilevelConfig(coarsest_vertices=300, coarsest_per_part=10)
        coarsest, levels = coarsen_hypergraph(hg, constraint, config=cfg)
        # stopped at/above the target, and the level before was above it
        assert levels[-1].fine.num_vertices > 300

    def test_projection_is_cut_exact(self, hg):
        """Randomized oracle: for any assignment, the coarse cut equals
        the fine cut of the projected assignment — per level and for
        arbitrary (non-matching) contractions."""
        constraint = BalanceConstraint(3, 10.0)
        _, levels = coarsen_hypergraph(hg, constraint, seed=2)
        rng = np.random.default_rng(11)
        for level in levels:
            coarse_assign = rng.integers(0, 3, level.coarse.num_vertices)
            fine_assign = coarse_assign[level.mapping]
            assert (hyperedge_cut(level.coarse, coarse_assign)
                    == hyperedge_cut(level.fine, fine_assign))
        # arbitrary random mapping, not produced by matching
        mapping = rng.integers(0, 100, hg.num_vertices)
        mapping[np.arange(100)] = np.arange(100)  # keep it surjective
        coarse = project_hypergraph(hg, mapping)
        assert coarse.total_weight == hg.total_weight
        coarse_assign = rng.integers(0, 4, coarse.num_vertices)
        assert (hyperedge_cut(coarse, coarse_assign)
                == hyperedge_cut(hg, coarse_assign[mapping]))

    def test_bad_mapping_rejected(self, hg):
        with pytest.raises(PartitionError):
            project_hypergraph(hg, np.zeros(3, dtype=np.int64))


class TestMultilevelKway:
    @pytest.mark.parametrize("k,b", [(2, 10.0), (4, 10.0), (3, 5.0)])
    def test_cut_oracle_and_balance(self, hg, k, b):
        r = multilevel_kway_partition(hg, k, b, seed=1)
        assert r.cut_size == hyperedge_cut(hg, r.assignment)
        assert r.assignment.shape == (hg.num_vertices,)
        assert set(np.unique(r.assignment)) <= set(range(k))
        assert r.balanced
        lo, hi = BalanceConstraint(k, b).bounds(hg.total_weight)
        assert all(lo <= w <= hi for w in r.part_weights.tolist())

    def test_bit_identical_across_worker_counts(self, hg):
        """The determinism contract: sha256(assignment) is invariant in
        the worker count (ISSUE acceptance: {1, 2, 4})."""
        digests = {}
        for workers in (1, 2, 4):
            r = multilevel_kway_partition(hg, 4, 10.0, seed=5,
                                          workers=workers)
            digests[workers] = hashlib.sha256(
                r.assignment.tobytes()).hexdigest()
        assert len(set(digests.values())) == 1, digests

    def test_beats_or_matches_direct(self, hg):
        ml = multilevel_kway_partition(hg, 4, 10.0, seed=1)
        direct = direct_kway_partition(hg, 4, 10.0, seed=1)
        assert ml.balanced and direct.balanced
        assert ml.cut_size <= direct.cut_size

    def test_counters_registered_and_sane(self, hg):
        rec = MetricsRecorder()
        r = multilevel_kway_partition(hg, 4, 10.0, seed=1, recorder=rec)
        counters = rec.as_counters()
        unregistered = [n for n in counters if not is_registered(n)]
        assert not unregistered, unregistered
        assert counters["part.ml.levels"] == r.levels > 0
        assert counters["part.ml.coarse_vertices"] == r.coarse_vertices
        assert counters["part.ml.initial_cut"] == r.initial_cut
        assert counters["part.ml.uncoarsen_gain"] >= 0
        assert counters["partition.coarsen.calls"] == 1
        assert counters["partition.uncoarsen.calls"] == 1
        # recorder presence never changes the partition
        bare = multilevel_kway_partition(hg, 4, 10.0, seed=1)
        assert np.array_equal(bare.assignment, r.assignment)

    def test_level_cuts_track_uncoarsening(self, hg):
        r = multilevel_kway_partition(hg, 4, 10.0, seed=1)
        assert len(r.level_cuts) == r.levels
        assert r.level_cuts[-1] == r.cut_size
        assert r.history  # provenance lines present

    def test_validation(self, hg):
        with pytest.raises(PartitionError):
            multilevel_kway_partition(hg, 0, 10.0)
        with pytest.raises(PartitionError):
            multilevel_kway_partition(hg, hg.num_vertices + 1, 10.0)

    def test_direct_engine_is_flat(self, hg):
        r = direct_kway_partition(hg, 3, 10.0, seed=2)
        assert r.levels == 0
        assert r.coarse_vertices == hg.num_vertices
        assert r.cut_size == hyperedge_cut(hg, r.assignment)

    def test_batch_kick_gate_by_level_size(self, hg, monkeypatch):
        """Levels above ``batch_kick_vertex_limit`` refine without kick
        perturbation (the million-vertex wall guard); levels at or
        below it keep the refiner's full default budget."""
        import repro.core.multilevel as ml

        seen = []
        real = ml.batch_refine

        def spy(state, constraint, **kw):
            seen.append((state.hg.num_vertices, kw.get("max_kicks")))
            return real(state, constraint, **kw)

        monkeypatch.setattr(ml, "batch_refine", spy)
        cfg = MultilevelConfig(batch_kick_vertex_limit=600)
        r = multilevel_kway_partition(hg, 3, 10.0, seed=1,
                                      refiner="batch", config=cfg)
        assert r.balanced
        assert seen, "batch refiner never invoked"
        for n, kicks in seen:
            assert kicks == (8 if n <= 600 else 0), (n, kicks)
        assert any(n > 600 for n, _ in seen)
        assert any(n <= 600 for n, _ in seen)
        # the default limit sits above every committed benchmark size,
        # so existing results are unchanged by the gate
        assert MultilevelConfig().batch_kick_vertex_limit == 200_000

    def test_to_simulation_partitions_every_gate(self):
        netlist = load_circuit("cpu-test")
        r = multilevel_flat_partition(netlist, 3, 10.0, seed=0)
        clusters, machines = r.to_simulation()
        flat = sorted(g for c in clusters for g in c)
        assert flat == list(range(netlist.num_gates))
        assert len(machines) == len(clusters)
        assert np.array_equal(r.gate_assignment(), r.assignment)


class TestIntegration:
    def test_cli_partition_multilevel_metrics(self, tmp_path):
        src = tmp_path / "c.v"
        src.write_text(circuit_source("cpu-test"))
        metrics = tmp_path / "m.json"
        out = io.StringIO()
        rc = main(["partition", str(src), "-k", "3", "-b", "10",
                   "--algorithm", "multilevel", "--refine-workers", "2",
                   "--metrics", str(metrics)], out=out)
        assert rc == 0
        text = out.getvalue()
        assert "multilevel" in text and "levels:" in text
        doc = json.loads(metrics.read_text())
        assert doc["counters"]["part.ml.levels"] >= 1
        assert doc["counters"]["part.balanced"] == 1
        assert doc["counters"]["part.cut_size"] >= 0

    def test_cli_search_accepts_algorithm(self, tmp_path):
        src = tmp_path / "c.v"
        src.write_text(circuit_source("counter8"))
        out = io.StringIO()
        rc = main(["search", str(src), "--max-k", "2", "--vectors", "5",
                   "--algorithm", "multilevel"], out=out)
        assert rc == 0
        assert "best:" in out.getvalue()

    def test_presim_multilevel_backend(self):
        netlist = load_circuit("counter8")
        events = random_vectors(netlist, 5, seed=0)
        study = brute_force_presim(netlist, events, ks=(2,), bs=(10.0,),
                                   algorithm="multilevel")
        assert study.runs == 1
        assert study.best.partition.balanced

    def test_presim_rejects_unknown_algorithm(self):
        netlist = load_circuit("counter8")
        events = random_vectors(netlist, 5, seed=0)
        with pytest.raises(ConfigError):
            brute_force_presim(netlist, events, ks=(2,), bs=(10.0,),
                               algorithm="metis")
