"""Documentation references stay live (tools/check_docs.py in CI).

Every ``repro.*`` dotted path and ``--flag`` named in the docs must
resolve against the actual package and CLI — renames and flag removals
fail here instead of rotting silently in prose.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_docs  # noqa: E402


def test_docs_have_no_dangling_references():
    complaints = check_docs.check_docs(REPO_ROOT)
    assert not complaints, "\n".join(complaints)


def test_linter_catches_bad_module(tmp_path):
    root = tmp_path
    (root / "docs").mkdir()
    (root / "benchmarks").mkdir()
    (root / "tools").mkdir()
    (root / "README.md").write_text(
        "see `repro.core.no_such_module` and `repro.obs`\n"
    )
    complaints = check_docs.check_docs(root)
    assert len(complaints) == 1
    assert "repro.core.no_such_module" in complaints[0]


def test_linter_catches_unknown_flag(tmp_path):
    root = tmp_path
    (root / "docs").mkdir()
    (root / "benchmarks").mkdir()
    (root / "tools").mkdir()
    (root / "README.md").write_text(
        "run with `--refine-workers` or `--no-such-flag`\n"
    )
    complaints = check_docs.check_docs(root)
    assert len(complaints) == 1
    assert "--no-such-flag" in complaints[0]


def test_attribute_chains_resolve():
    assert check_docs.resolves("repro.obs.registry.METRIC_REGISTRY")
    assert check_docs.resolves("repro.core.parallel_refine")
    assert not check_docs.resolves("repro.obs.registry.NOPE")
    assert not check_docs.resolves("repro.nonexistent")


def test_linter_catches_stale_metric_name(tmp_path):
    root = tmp_path
    (root / "docs").mkdir()
    (root / "benchmarks").mkdir()
    (root / "tools").mkdir()
    (root / "README.md").write_text(
        "watch `part.ml.levels` and `part.ml.no_such_counter`, "
        "plus the `partition.coarsen` phase and the `part.ml.*` family; "
        "`part.to_simulation()` and `part.json` are not metrics\n"
    )
    complaints = check_docs.check_docs(root)
    assert len(complaints) == 1
    assert "part.ml.no_such_counter" in complaints[0]


def test_linter_catches_empty_wildcard(tmp_path):
    root = tmp_path
    (root / "docs").mkdir()
    (root / "benchmarks").mkdir()
    (root / "tools").mkdir()
    (root / "README.md").write_text("the whole `part.nosuch.*` family\n")
    complaints = check_docs.check_docs(root)
    assert len(complaints) == 1
    assert "part.nosuch.*" in complaints[0]


def test_derived_suffixes_pass():
    names, families = check_docs._registry_names()
    assert check_docs.metric_complaint(
        "part.ml.reduction.max", names, families) is None
    assert check_docs.metric_complaint(
        "partition.coarsen.calls", names, families) is None
    assert check_docs.metric_complaint(
        "part.ml.level_cut", names, families) is None
    # host-value names (quarantined channel) are documented too
    assert check_docs.metric_complaint(
        "part.refine.workers", names, families) is None
    assert check_docs.metric_complaint(
        "obs.sampler.peak_rss_kb", names, families) is None


def test_cli_flag_universe_includes_subcommands():
    flags = check_docs.cli_flags()
    assert "--refine-workers" in flags
    assert "--fail-on-regression" in flags  # obs diff, nested subparser
    assert "--metrics-out" in flags


def test_command_flag_table_is_per_subcommand():
    table = check_docs.cli_command_flags()
    assert "--refiner" in table["partition"]
    assert "--refiner" in table["sweep"]
    # psim-only flag does not leak into partition's set
    assert "--trace" in table["psim"]
    assert "--trace" not in table["partition"]
    # top-level options live under the "" key
    assert "--version" in table[""]


def test_invocation_flags_checked_against_their_subcommand(tmp_path):
    root = tmp_path
    (root / "docs").mkdir()
    (root / "benchmarks").mkdir()
    (root / "tools").mkdir()
    # --trace exists (on psim), so the flat flag check passes; the
    # invocation check must still flag it on `repro partition`
    (root / "README.md").write_text(
        "run `python -m repro partition a.v --trace out.json`\n"
        "and `repro psim a.v --trace out.json` (fine)\n"
    )
    complaints = check_docs.check_docs(root)
    assert len(complaints) == 1
    assert "--trace" in complaints[0]
    assert "repro partition" in complaints[0]


def test_invocation_check_joins_continuation_lines():
    table = check_docs.cli_command_flags()
    text = "```\npython -m repro sweep design.v \\\n  --refiner batch\n```\n"
    assert check_docs.invocation_complaints(text, table) == []
    bad = "`repro sweep design.v --trace t.json`"
    out = check_docs.invocation_complaints(bad, table)
    assert out == ["`--trace` is not accepted by `repro sweep`"]
