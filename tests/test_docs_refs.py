"""Documentation references stay live (tools/check_docs.py in CI).

Every ``repro.*`` dotted path and ``--flag`` named in the docs must
resolve against the actual package and CLI — renames and flag removals
fail here instead of rotting silently in prose.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_docs  # noqa: E402


def test_docs_have_no_dangling_references():
    complaints = check_docs.check_docs(REPO_ROOT)
    assert not complaints, "\n".join(complaints)


def test_linter_catches_bad_module(tmp_path):
    root = tmp_path
    (root / "docs").mkdir()
    (root / "benchmarks").mkdir()
    (root / "tools").mkdir()
    (root / "README.md").write_text(
        "see `repro.core.no_such_module` and `repro.obs`\n"
    )
    complaints = check_docs.check_docs(root)
    assert len(complaints) == 1
    assert "repro.core.no_such_module" in complaints[0]


def test_linter_catches_unknown_flag(tmp_path):
    root = tmp_path
    (root / "docs").mkdir()
    (root / "benchmarks").mkdir()
    (root / "tools").mkdir()
    (root / "README.md").write_text(
        "run with `--refine-workers` or `--no-such-flag`\n"
    )
    complaints = check_docs.check_docs(root)
    assert len(complaints) == 1
    assert "--no-such-flag" in complaints[0]


def test_attribute_chains_resolve():
    assert check_docs.resolves("repro.obs.registry.METRIC_REGISTRY")
    assert check_docs.resolves("repro.core.parallel_refine")
    assert not check_docs.resolves("repro.obs.registry.NOPE")
    assert not check_docs.resolves("repro.nonexistent")


def test_linter_catches_stale_metric_name(tmp_path):
    root = tmp_path
    (root / "docs").mkdir()
    (root / "benchmarks").mkdir()
    (root / "tools").mkdir()
    (root / "README.md").write_text(
        "watch `part.ml.levels` and `part.ml.no_such_counter`, "
        "plus the `partition.coarsen` phase and the `part.ml.*` family; "
        "`part.to_simulation()` and `part.json` are not metrics\n"
    )
    complaints = check_docs.check_docs(root)
    assert len(complaints) == 1
    assert "part.ml.no_such_counter" in complaints[0]


def test_linter_catches_empty_wildcard(tmp_path):
    root = tmp_path
    (root / "docs").mkdir()
    (root / "benchmarks").mkdir()
    (root / "tools").mkdir()
    (root / "README.md").write_text("the whole `part.nosuch.*` family\n")
    complaints = check_docs.check_docs(root)
    assert len(complaints) == 1
    assert "part.nosuch.*" in complaints[0]


def test_derived_suffixes_pass():
    names, families = check_docs._registry_names()
    assert check_docs.metric_complaint(
        "part.ml.reduction.max", names, families) is None
    assert check_docs.metric_complaint(
        "partition.coarsen.calls", names, families) is None
    assert check_docs.metric_complaint(
        "part.ml.level_cut", names, families) is None
    # host-value names (quarantined channel) are documented too
    assert check_docs.metric_complaint(
        "part.refine.workers", names, families) is None
    assert check_docs.metric_complaint(
        "obs.sampler.peak_rss_kb", names, families) is None


def test_cli_flag_universe_includes_subcommands():
    flags = check_docs.cli_flags()
    assert "--refine-workers" in flags
    assert "--fail-on-regression" in flags  # obs diff, nested subparser
    assert "--metrics-out" in flags
