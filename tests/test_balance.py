"""Formula 1 (load-balancing constraint) math."""

import numpy as np
import pytest

from repro.core import BalanceConstraint, PAPER_B_VALUES, PAPER_K_VALUES
from repro.errors import ConfigError


class TestBounds:
    def test_paper_formula(self):
        c = BalanceConstraint(k=4, b=10.0)
        lo, hi = c.bounds(1000)
        assert lo == pytest.approx(1000 * (0.25 - 0.10))
        assert hi == pytest.approx(1000 * (0.25 + 0.10))

    def test_lower_bound_clamped_at_zero(self):
        c = BalanceConstraint(k=4, b=50.0)
        lo, hi = c.bounds(100)
        assert lo == 0.0

    def test_satisfied_exact_split(self):
        c = BalanceConstraint(k=2, b=2.5)
        assert c.satisfied(np.array([500, 500]), 1000)

    def test_satisfied_edge_of_band(self):
        c = BalanceConstraint(k=2, b=10.0)
        assert c.satisfied(np.array([600, 400]))
        assert not c.satisfied(np.array([601, 399]))

    def test_pairwise_difference_bound(self):
        """The paper: loads differ by at most 2*b percent of total."""
        c = BalanceConstraint(k=3, b=5.0)
        w = np.array([320, 333, 347])
        total = int(w.sum())
        if c.satisfied(w):
            assert w.max() - w.min() <= 2 * 0.05 * total + 1e-9

    def test_violation_zero_when_satisfied(self):
        c = BalanceConstraint(k=2, b=10.0)
        assert c.violation(np.array([550, 450])) == 0.0

    def test_violation_measures_excess(self):
        c = BalanceConstraint(k=2, b=0.0)
        assert c.violation(np.array([600, 400])) == pytest.approx(200.0)

    def test_describe_mentions_parameters(self):
        text = BalanceConstraint(k=3, b=7.5).describe(900)
        assert "k=3" in text and "7.5" in text

    def test_invalid_k(self):
        with pytest.raises(ConfigError):
            BalanceConstraint(k=0, b=5.0)

    def test_invalid_b(self):
        with pytest.raises(ConfigError):
            BalanceConstraint(k=2, b=-1.0)

    def test_paper_grid_constants(self):
        assert PAPER_K_VALUES == (2, 3, 4)
        assert PAPER_B_VALUES == (2.5, 5.0, 7.5, 10.0, 12.5, 15.0)
