"""Full-pipeline integration tests across multiple workloads.

Each scenario walks the complete paper flow: Verilog text → parse →
elaborate → hierarchy clustering → design-driven partition → Time Warp
simulation verified against the sequential oracle — plus the baseline
path (flat hypergraph → multilevel partition).
"""

import pytest

from repro.baselines import multilevel_partition
from repro.circuits import load_circuit, random_vectors
from repro.core import design_driven_partition, BalanceConstraint
from repro.hypergraph import flat_hypergraph, hyperedge_cut
from repro.sim import ClusterSpec, compile_circuit, run_partitioned


@pytest.mark.parametrize(
    "circuit,k,b",
    [
        ("pipeline4", 2, 10.0),
        ("pipeline8", 4, 10.0),
        ("mesh3x3", 3, 15.0),
        ("viterbi-test", 2, 10.0),
        ("viterbi-test", 4, 15.0),
        ("lfsr16", 2, 25.0),
    ],
)
def test_full_flow(circuit, k, b):
    netlist = load_circuit(circuit)
    events = random_vectors(netlist, 12, seed=3)
    part = design_driven_partition(netlist, k=k, b=b, seed=1)
    assert part.part_weights.sum() == netlist.num_gates
    clusters, machines = part.to_simulation()
    report = run_partitioned(
        compile_circuit(netlist), clusters, machines, events,
        ClusterSpec(num_machines=k),
    )
    assert report.verified
    assert report.committed_events == report.seq_stats.gate_evals
    assert report.parallel_wall_time > 0


def test_baseline_flow_matches_metrics():
    netlist = load_circuit("mesh3x3")
    hg = flat_hypergraph(netlist)
    r = multilevel_partition(hg, 3, 10.0, seed=0)
    assert r.cut_size == hyperedge_cut(hg, r.assignment)


def test_partition_then_simulate_consistency_across_seeds():
    """Different partition seeds give different layouts but identical
    committed simulation results."""
    netlist = load_circuit("viterbi-test")
    circuit = compile_circuit(netlist)
    events = random_vectors(netlist, 10, seed=9)
    reference = None
    for seed in (1, 2, 3):
        part = design_driven_partition(netlist, k=3, b=15.0, seed=seed)
        clusters, machines = part.to_simulation()
        report = run_partitioned(
            circuit, clusters, machines, events, ClusterSpec(num_machines=3)
        )
        assert report.verified
        if reference is None:
            reference = report.committed_events
        else:
            assert report.committed_events == reference


def test_balance_constraint_integration():
    """A loose constraint is reported satisfied; results stay valid."""
    netlist = load_circuit("pipeline8")
    r = design_driven_partition(netlist, k=2, b=15.0, seed=0)
    assert r.balanced
    assert BalanceConstraint(2, 15.0).satisfied(r.part_weights)


def test_speedup_improves_with_k_on_parallel_workload():
    """The mesh has ample concurrency: k=4 must beat k=1 wall time."""
    netlist = load_circuit("mesh4x4")
    circuit = compile_circuit(netlist)
    events = random_vectors(netlist, 25, seed=5)
    walls = {}
    for k in (1, 4):
        part = design_driven_partition(netlist, k=k, b=15.0, seed=1)
        clusters, machines = part.to_simulation()
        report = run_partitioned(
            circuit, clusters, machines, events, ClusterSpec(num_machines=k)
        )
        walls[k] = report.parallel_wall_time
    assert walls[4] < walls[1]
