"""run_partitioned façade and SimulationReport contents."""

import pytest

from repro.hypergraph import Clustering
from repro.sim import (
    ClusterSpec,
    TimeWarpConfig,
    compile_circuit,
    run_partitioned,
    run_sequential_baseline,
)


def setup(pipeadd, pipeadd_events, k=2):
    clusters = Clustering.top_level(pipeadd).gate_clusters()
    lp_machine = [i % k for i in range(len(clusters))]
    return clusters, lp_machine


class TestRunPartitioned:
    def test_report_fields(self, pipeadd, pipeadd_events):
        clusters, lpm = setup(pipeadd, pipeadd_events)
        rep = run_partitioned(
            pipeadd, clusters, lpm, pipeadd_events, ClusterSpec(num_machines=2)
        )
        assert rep.num_machines == 2
        assert rep.parallel_wall_time > 0
        assert rep.sequential_wall_time > 0
        assert rep.speedup == pytest.approx(
            rep.sequential_wall_time / rep.parallel_wall_time
        )
        assert rep.verified
        assert rep.committed_events == rep.seq_stats.gate_evals

    def test_accepts_compiled_circuit(self, pipeadd, pipeadd_circuit, pipeadd_events):
        clusters, lpm = setup(pipeadd, pipeadd_events)
        rep = run_partitioned(
            pipeadd_circuit, clusters, lpm, pipeadd_events,
            ClusterSpec(num_machines=2),
        )
        assert rep.verified

    def test_reuses_sequential_baseline(self, pipeadd, pipeadd_circuit, pipeadd_events):
        seq, wall = run_sequential_baseline(
            pipeadd_circuit, pipeadd_events, ClusterSpec(num_machines=1)
        )
        clusters, lpm = setup(pipeadd, pipeadd_events)
        rep = run_partitioned(
            pipeadd_circuit, clusters, lpm, pipeadd_events,
            ClusterSpec(num_machines=2), sequential=seq,
        )
        assert rep.sequential_wall_time == pytest.approx(wall)

    def test_verify_can_be_skipped(self, pipeadd, pipeadd_events):
        clusters, lpm = setup(pipeadd, pipeadd_events)
        rep = run_partitioned(
            pipeadd, clusters, lpm, pipeadd_events,
            ClusterSpec(num_machines=2), verify=False,
        )
        assert not rep.verified

    def test_single_machine_speedup_near_one(self, pipeadd, pipeadd_events):
        clusters, lpm = setup(pipeadd, pipeadd_events, k=1)
        rep = run_partitioned(
            pipeadd, clusters, lpm, pipeadd_events, ClusterSpec(num_machines=1)
        )
        # same cost model, no messages: wall == seq wall (batch min-cost
        # rounding can only slow it)
        assert 0.5 < rep.speedup <= 1.0 + 1e-9

    def test_stats_summary_text(self, pipeadd, pipeadd_events):
        clusters, lpm = setup(pipeadd, pipeadd_events)
        rep = run_partitioned(
            pipeadd, clusters, lpm, pipeadd_events, ClusterSpec(num_machines=2)
        )
        text = rep.run_stats.summary()
        assert "k=2" in text and "speedup" in text
        assert 0.0 <= rep.run_stats.idle_fraction() <= 1.0
        assert 0.0 < rep.run_stats.efficiency() <= 1.0
