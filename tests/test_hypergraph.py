"""Unit tests for the core hypergraph data structure."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import HypergraphError
from repro.hypergraph import Hypergraph, HypergraphBuilder


def simple_hg():
    #     e0={0,1,2}  e1={1,3}  e2={2,3}
    return Hypergraph.from_edges([1, 2, 3, 4], [[0, 1, 2], [1, 3], [2, 3]])


class TestConstruction:
    def test_counts(self):
        hg = simple_hg()
        assert hg.num_vertices == 4
        assert hg.num_edges == 3
        assert hg.num_pins == 7
        assert hg.total_weight == 10

    def test_edge_vertices_sorted(self):
        hg = Hypergraph.from_edges([1, 1, 1], [[2, 0, 1]])
        assert list(hg.edge_vertices(0)) == [0, 1, 2]

    def test_duplicate_pins_collapsed(self):
        hg = Hypergraph.from_edges([1, 1], [[0, 1, 1, 0]])
        assert hg.edge_size(0) == 2

    def test_vertex_edges(self):
        hg = simple_hg()
        assert list(hg.vertex_edges(1)) == [0, 1]
        assert list(hg.vertex_edges(3)) == [1, 2]
        assert hg.vertex_degree(0) == 1

    def test_default_edge_weights_one(self):
        hg = simple_hg()
        assert (hg.edge_weight == 1).all()

    def test_explicit_edge_weights(self):
        hg = Hypergraph.from_edges([1, 1], [[0, 1]], edge_weights=[5])
        assert hg.edge_weight[0] == 5

    def test_neighbors(self):
        hg = simple_hg()
        assert hg.neighbors(0) == {1, 2}
        assert hg.neighbors(3) == {1, 2}

    def test_iter_edges(self):
        hg = simple_hg()
        seen = {e: list(p) for e, p in hg.iter_edges()}
        assert seen[1] == [1, 3]

    def test_names_default(self):
        hg = simple_hg()
        assert hg.vertex_name(2) == "v2"
        assert hg.edge_name(0) == "e0"

    def test_names_explicit(self):
        hg = Hypergraph.from_edges(
            [1, 1], [[0, 1]], vertex_names=["a", "b"], edge_names=["n"]
        )
        assert hg.vertex_name(1) == "b"
        assert hg.edge_name(0) == "n"

    def test_empty_edge_set(self):
        hg = Hypergraph.from_edges([1, 1], [])
        assert hg.num_edges == 0
        assert hg.vertex_degree(0) == 0


class TestValidation:
    def test_zero_vertex_weight_rejected(self):
        with pytest.raises(HypergraphError, match="non-positive weight"):
            Hypergraph.from_edges([1, 0], [[0, 1]])

    def test_zero_edge_weight_rejected(self):
        with pytest.raises(HypergraphError, match="non-positive weight"):
            Hypergraph.from_edges([1, 1], [[0, 1]], edge_weights=[0])

    def test_pin_out_of_range_rejected(self):
        with pytest.raises(HypergraphError, match="out of range"):
            Hypergraph.from_edges([1, 1], [[0, 5]])

    def test_name_length_mismatch_rejected(self):
        with pytest.raises(HypergraphError, match="vertex_names"):
            Hypergraph.from_edges([1, 1], [[0, 1]], vertex_names=["only-one"])


class TestBuilder:
    def test_basic_flow(self):
        b = HypergraphBuilder()
        b.add_vertex("g1", weight=2)
        b.add_vertex("g2")
        b.add_edge("n1", ["g1", "g2"])
        hg = b.freeze()
        assert hg.num_vertices == 2
        assert hg.total_weight == 3
        assert hg.vertex_name(b.vertex_id("g1")) == "g1"

    def test_duplicate_vertex_rejected(self):
        b = HypergraphBuilder()
        b.add_vertex("x")
        with pytest.raises(HypergraphError, match="duplicate"):
            b.add_vertex("x")

    def test_single_pin_edges_dropped_by_default(self):
        b = HypergraphBuilder()
        b.add_vertex("a")
        b.add_vertex("b")
        b.add_edge("loop", ["a", "a"])
        b.add_edge("real", ["a", "b"])
        hg = b.freeze()
        assert hg.num_edges == 1

    def test_single_pin_edges_kept_on_request(self):
        b = HypergraphBuilder()
        b.add_vertex("a")
        b.add_edge("loop", ["a"])
        hg = b.freeze(drop_single_pin_edges=False)
        assert hg.num_edges == 1

    def test_mixed_id_and_name_pins(self):
        b = HypergraphBuilder()
        a = b.add_vertex("a")
        b.add_vertex("b")
        b.add_edge("n", [a, "b"])
        hg = b.freeze()
        assert hg.edge_size(0) == 2

    def test_has_vertex(self):
        b = HypergraphBuilder()
        b.add_vertex("a")
        assert b.has_vertex("a")
        assert not b.has_vertex("z")


@st.composite
def random_hypergraph(draw):
    n = draw(st.integers(2, 12))
    m = draw(st.integers(1, 15))
    edges = []
    for _ in range(m):
        size = draw(st.integers(2, min(n, 4)))
        pins = draw(
            st.lists(st.integers(0, n - 1), min_size=size, max_size=size, unique=True)
        )
        edges.append(pins)
    weights = draw(st.lists(st.integers(1, 5), min_size=n, max_size=n))
    return Hypergraph.from_edges(weights, edges)


class TestProperties:
    @given(random_hypergraph())
    @settings(max_examples=60, deadline=None)
    def test_incidence_is_symmetric(self, hg):
        """v in edge_vertices(e) iff e in vertex_edges(v)."""
        for e in range(hg.num_edges):
            for v in hg.edge_vertices(e):
                assert e in hg.vertex_edges(int(v))
        for v in range(hg.num_vertices):
            for e in hg.vertex_edges(v):
                assert v in hg.edge_vertices(int(e))

    @given(random_hypergraph())
    @settings(max_examples=60, deadline=None)
    def test_pin_count_consistent(self, hg):
        from_edges = sum(hg.edge_size(e) for e in range(hg.num_edges))
        from_vertices = sum(hg.vertex_degree(v) for v in range(hg.num_vertices))
        assert from_edges == from_vertices == hg.num_pins
