"""Index-dtype policy: the 2^31 boundary, audited end to end.

One helper (:mod:`repro.hypergraph.dtypes`) decides index widths for
the whole repo; construction paths may run int32, the frozen substrate
(:class:`Hypergraph`, :class:`PartitionState`, :class:`CompiledCircuit`,
:class:`NetlistCSR`) is int64-only.  Allocating 2^31 real ids is not an
option in a test, so the boundary itself is exercised with synthetic
``max_id`` values and the overflow guards with mocked bounds.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.circuits.stream as stream_mod
from repro.circuits.noc import NocConfig, noc_stream
from repro.circuits.stream import StreamBuilder
from repro.errors import ConfigError
from repro.hypergraph import INT32_MAX, index_dtype, require_int64
from repro.hypergraph.build import flat_hypergraph
from repro.hypergraph.partition_state import PartitionState
from repro.sim.compiled import compile_circuit

_NOC = NocConfig(rows=2, cols=2, width=3)


class TestIndexDtypeBoundary:
    """Synthetic sizes straddling 2^31 — the only place the rule lives."""

    @pytest.mark.parametrize(
        "max_id,expected",
        [
            (-1, np.int32),  # empty id range
            (0, np.int32),
            (1 << 20, np.int32),
            (INT32_MAX - 1, np.int32),
            (INT32_MAX, np.int32),  # last id that fits
            (INT32_MAX + 1, np.int64),  # first that does not
            (1 << 40, np.int64),
        ],
    )
    def test_boundary(self, max_id, expected):
        assert index_dtype(max_id) == np.dtype(expected)

    def test_require_int64_is_identity_on_int64(self):
        a = np.arange(5, dtype=np.int64)
        assert require_int64(a) is a

    def test_require_int64_widens_int32(self):
        a = np.arange(5, dtype=np.int32)
        b = require_int64(a)
        assert b.dtype == np.int64
        assert np.array_equal(a, b)


class TestStreamBuilderOverflowGuard:
    def test_small_expected_nets_builds_int32_chunks(self):
        b = StreamBuilder("t", expected_nets=1000)
        assert b._dtype == np.dtype(np.int32)

    def test_huge_expected_nets_builds_int64_chunks(self):
        b = StreamBuilder("t", expected_nets=INT32_MAX + 2)
        assert b._dtype == np.dtype(np.int64)
        # int64 chunks have no overflow cliff to guard
        b._num_nets = INT32_MAX + 10
        b._alloc(4)  # does not raise

    def test_int32_overflow_raises_with_mocked_bound(self, monkeypatch):
        """The guard fires at the bound without allocating 2^31 nets."""
        monkeypatch.setattr(stream_mod, "INT32_MAX", 64)
        b = StreamBuilder("tiny")
        b._alloc(60)  # still under the mocked bound
        with pytest.raises(ConfigError, match="exceeded int32"):
            b._alloc(10)

    def test_builder_output_is_int64_regardless_of_chunk_width(self):
        """int32 accumulation, int64 freeze — the one upcast."""
        csr = noc_stream(_NOC)
        for arr in (csr.gate_output, csr.pin_ptr, csr.pin_net,
                    csr.inputs, csr.outputs):
            assert arr.dtype == np.int64


class TestFrozenSubstrateIsInt64:
    """partition_state / compiled audit: every index array the query
    kernels mix with arange/repeat products is int64."""

    def test_partition_state_arrays(self):
        hg = flat_hypergraph(noc_stream(_NOC))
        state = PartitionState(hg, 3)
        assert state.part.dtype == np.int64
        assert state.edge_lambda.dtype == np.int64
        assert state.edge_part_count.dtype == np.int64
        assert state.part_weight.dtype == np.int64
        assert hg._edge_ptr.dtype == np.int64
        assert hg._edge_pins.dtype == np.int64

    def test_compiled_circuit_arrays(self):
        cc = compile_circuit(noc_stream(_NOC))
        assert cc.gate_output.dtype == np.int64
        assert cc.pin_offsets.dtype == np.int64
        assert cc.pin_net.dtype == np.int64
        assert cc.sink_offsets.dtype == np.int64
        assert cc.sink_gate.dtype == np.int64
        assert cc.pin_matrix.dtype == np.int64

    def test_batch_move_gains_stay_int64(self):
        """batch_refine's gather path returns int64 gains — no silent
        float or int32 intermediate."""
        hg = flat_hypergraph(noc_stream(_NOC))
        state = PartitionState(hg, 3)
        boundary = np.arange(hg.num_vertices, dtype=np.int64)
        gains = state.move_gains(boundary, 1)
        soed = state.move_soed_gains(boundary, 2)
        assert gains.dtype == np.int64
        assert soed.dtype == np.int64
