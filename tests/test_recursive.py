"""Recursive bipartitioning baseline (the §3.1.1 rejected alternative)."""

import numpy as np
import pytest

from repro.core import (
    design_driven_partition,
    recursive_design_driven_partition,
)
from repro.errors import PartitionError
from repro.hypergraph import hyperedge_cut


class TestContracts:
    @pytest.mark.parametrize("k", [2, 3, 4, 5])
    def test_valid_partition_any_k(self, viterbi_test, k):
        r = recursive_design_driven_partition(viterbi_test, k=k, b=10.0, seed=1)
        assert r.k == k
        assert set(np.unique(r.assignment)) <= set(range(k))
        assert r.part_weights.sum() == viterbi_test.num_gates
        assert r.cut_size == hyperedge_cut(r.clustering.hypergraph(), r.assignment)

    def test_all_parts_populated(self, viterbi_test):
        r = recursive_design_driven_partition(viterbi_test, k=4, b=15.0, seed=1)
        assert (r.part_weights > 0).all()

    def test_deterministic(self, viterbi_test):
        a = recursive_design_driven_partition(viterbi_test, k=3, b=10.0, seed=2)
        b = recursive_design_driven_partition(viterbi_test, k=3, b=10.0, seed=2)
        assert (a.assignment == b.assignment).all()

    def test_invalid_k(self, viterbi_test):
        with pytest.raises(PartitionError):
            recursive_design_driven_partition(viterbi_test, k=10**6, b=10.0)

    def test_no_flattening(self, viterbi_test):
        r = recursive_design_driven_partition(viterbi_test, k=4, b=5.0, seed=1)
        assert r.flatten_steps == 0

    def test_simulatable(self, viterbi_test):
        from repro.circuits import random_vectors
        from repro.sim import ClusterSpec, compile_circuit, run_partitioned

        r = recursive_design_driven_partition(viterbi_test, k=3, b=15.0, seed=1)
        clusters, machines = r.to_simulation()
        report = run_partitioned(
            compile_circuit(viterbi_test), clusters, machines,
            random_vectors(viterbi_test, 8, seed=2),
            ClusterSpec(num_machines=3),
        )
        assert report.verified


class TestPaperArgument:
    def test_direct_not_worse_on_module_rich_circuit(self):
        """§3.1.1: the direct pairwise algorithm was chosen because
        recursion struggles to reduce cut on finer sub-hypergraphs."""
        from repro.circuits import load_circuit

        netlist = load_circuit("viterbi-bench")
        direct = design_driven_partition(netlist, k=4, b=10.0, seed=1)
        recur = recursive_design_driven_partition(netlist, k=4, b=10.0, seed=1)
        assert direct.cut_size <= recur.cut_size
