"""Pairing strategies (paper §3.1.1)."""

import numpy as np
import pytest

from repro.core import PAIRING_STRATEGIES, estimate_pair_gain, pairing_strategy
from repro.errors import ConfigError
from repro.hypergraph import Hypergraph, PartitionState


def state_k4():
    # two cliques-ish groups per part pair with cross edges
    edges = [[0, 1], [2, 3], [4, 5], [6, 7], [0, 2], [0, 4], [1, 6], [3, 5]]
    hg = Hypergraph.from_edges([1] * 8, edges)
    return PartitionState(hg, 4, [0, 0, 1, 1, 2, 2, 3, 3])


class TestStrategies:
    def test_lookup(self):
        for name in ("random", "exhaustive", "cut", "gain"):
            assert pairing_strategy(name) is PAIRING_STRATEGIES[name]

    def test_unknown_name(self):
        with pytest.raises(ConfigError, match="unknown pairing"):
            pairing_strategy("nope")

    @pytest.mark.parametrize("name", ["random", "cut", "gain"])
    def test_disjoint_pairs(self, name):
        state = state_k4()
        rng = np.random.default_rng(0)
        pairs = pairing_strategy(name)(state, rng)
        seen = [p for ab in pairs for p in ab]
        assert len(seen) == len(set(seen))
        for a, b in pairs:
            assert 0 <= a < b < state.k

    def test_exhaustive_lists_all(self):
        state = state_k4()
        rng = np.random.default_rng(0)
        pairs = pairing_strategy("exhaustive")(state, rng)
        assert len(pairs) == 6  # C(4,2)
        assert len(set(pairs)) == 6

    def test_cut_based_prefers_heaviest(self):
        state = state_k4()
        rng = np.random.default_rng(0)
        pairs = pairing_strategy("cut")(state, rng)
        matrix = state.pair_cut_matrix()
        first = pairs[0]
        assert matrix[first] == matrix.max()

    def test_cut_based_skips_unconnected(self):
        hg = Hypergraph.from_edges([1, 1, 1, 1], [[0, 1]])
        state = PartitionState(hg, 4, [0, 1, 2, 3])
        pairs = pairing_strategy("cut")(state, np.random.default_rng(0))
        assert pairs == [(0, 1)]

    def test_random_is_seed_deterministic(self):
        state = state_k4()
        p1 = pairing_strategy("random")(state, np.random.default_rng(7))
        p2 = pairing_strategy("random")(state, np.random.default_rng(7))
        assert p1 == p2

    def test_odd_k_random_leaves_one_out(self):
        hg = Hypergraph.from_edges([1, 1, 1], [[0, 1], [1, 2]])
        state = PartitionState(hg, 3, [0, 1, 2])
        pairs = pairing_strategy("random")(state, np.random.default_rng(1))
        assert len(pairs) == 1


class TestGainEstimate:
    def test_zero_when_no_shared_edges(self):
        hg = Hypergraph.from_edges([1, 1, 1, 1], [[0, 1], [2, 3]])
        state = PartitionState(hg, 4, [0, 0, 2, 3])
        assert estimate_pair_gain(state, 0, 1) == 0

    def test_positive_when_improvable(self):
        # v1 sits alone across the boundary: moving it gains 1
        hg = Hypergraph.from_edges([1, 1, 1], [[0, 1], [1, 2]])
        state = PartitionState(hg, 2, [0, 1, 0])
        assert estimate_pair_gain(state, 0, 1) > 0

    def test_gain_pairs_rank_by_estimate(self):
        state = state_k4()
        rng = np.random.default_rng(0)
        pairs = pairing_strategy("gain")(state, rng)
        if len(pairs) >= 2:
            g0 = estimate_pair_gain(state, *pairs[0])
            g1 = estimate_pair_gain(state, *pairs[1])
            assert g0 >= g1
