"""Batch data-parallel refinement (repro.core.batch_refine).

Covers the ISSUE acceptance matrix: the degenerate exits (empty
boundary, k=1, every move rejected by balance), the randomized
never-worse / oracle-consistency property at the fixpoint, the
move_batch scatter against a sequential-move oracle, and the
``refiner="batch"`` plumbing through multilevel, multiway, recursive
and the CLI.
"""

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import ripple_adder_verilog
from repro.cli import main
from repro.core import (
    REFINERS,
    BalanceConstraint,
    batch_refine,
    cut_degrees,
    design_driven_partition,
    multilevel_flat_partition,
    recursive_design_driven_partition,
    validate_refiner,
)
from repro.errors import ConfigError, PartitionError
from repro.hypergraph import Hypergraph, PartitionState, hyperedge_cut
from repro.obs import MetricsRecorder
from repro.obs.registry import is_registered
from repro.verilog import compile_verilog


def synthetic_hypergraph(n=600, seed=7) -> Hypergraph:
    """Circuit-shaped: local windows, wide block nets, random wires."""
    rng = np.random.default_rng(seed)
    weights = rng.integers(1, 4, n).tolist()
    edges = []
    for i in range(0, n - 3, 2):
        edges.append([i, i + 1, i + 2])
    for s in range(0, n, 20):
        edges.append(list(range(s, min(s + 20, n))))
    for _ in range(n // 10):
        a, b = int(rng.integers(0, n)), int(rng.integers(0, n))
        if a != b:
            edges.append([a, b])
    return Hypergraph.from_edges(weights, edges)


class TestValidateRefiner:
    def test_known_names(self):
        for name in REFINERS:
            assert validate_refiner(name) == name

    def test_unknown_name(self):
        with pytest.raises(ConfigError):
            validate_refiner("anneal")

    def test_entry_points_reject_unknown(self):
        nl = compile_verilog(ripple_adder_verilog(4))
        for fn in (design_driven_partition, multilevel_flat_partition,
                   recursive_design_driven_partition):
            with pytest.raises(ConfigError):
                fn(nl, 2, 10.0, refiner="anneal")


class TestDegenerateExits:
    def test_empty_boundary_is_noop(self):
        # two disconnected cliques, one per block: zero cut edges
        hg = Hypergraph.from_edges([1] * 6, [[0, 1, 2], [3, 4, 5]])
        state = PartitionState(hg, 2, [0, 0, 0, 1, 1, 1])
        assert state.cut_size == 0
        res = batch_refine(state, BalanceConstraint(2, 10.0))
        assert (res.rounds, res.moves, res.gain) == (0, 0, 0)
        assert state.part.tolist() == [0, 0, 0, 1, 1, 1]

    def test_single_block_returns_immediately(self):
        hg = Hypergraph.from_edges([1] * 4, [[0, 1], [2, 3]])
        state = PartitionState(hg, 1, [0, 0, 0, 0])
        res = batch_refine(state, BalanceConstraint(1, 10.0))
        assert (res.rounds, res.moves, res.gain) == (0, 0, 0)

    def test_blocks_restriction_needs_two(self):
        hg = Hypergraph.from_edges([1] * 4, [[0, 1], [2, 3]])
        state = PartitionState(hg, 3, [0, 1, 2, 2])
        res = batch_refine(state, BalanceConstraint(3, 10.0), blocks=(1,))
        assert res.moves == 0

    def test_blocks_out_of_range(self):
        hg = Hypergraph.from_edges([1] * 4, [[0, 1], [2, 3]])
        state = PartitionState(hg, 2, [0, 1, 0, 1])
        with pytest.raises(PartitionError):
            batch_refine(state, BalanceConstraint(2, 10.0), blocks=(0, 5))

    def test_all_moves_rejected_by_balance(self):
        # a cut edge whose repair would empty a block: with b=0 the
        # weights must stay exactly ideal, so no move is admissible
        hg = Hypergraph.from_edges([1, 1], [[0, 1]])
        state = PartitionState(hg, 2, [0, 1])
        assert state.cut_size == 1
        res = batch_refine(state, BalanceConstraint(2, 0.0))
        assert (res.rounds, res.moves, res.gain) == (0, 0, 0)
        assert state.part.tolist() == [0, 1]

    def test_no_edges(self):
        hg = Hypergraph.from_edges([1, 1, 1], [])
        state = PartitionState(hg, 2, [0, 1, 0])
        res = batch_refine(state, BalanceConstraint(2, 10.0))
        assert (res.rounds, res.moves, res.gain) == (0, 0, 0)


class TestCutDegrees:
    def test_matches_definition(self):
        hg = synthetic_hypergraph(n=120, seed=1)
        rng = np.random.default_rng(2)
        state = PartitionState(hg, 3, rng.integers(0, 3, hg.num_vertices))
        deg = cut_degrees(state)
        for v in range(hg.num_vertices):
            expect = sum(
                1 for e in hg.vertex_edges(v) if state.edge_lambda[e] > 1
            )
            assert deg[v] == expect


class TestFixpointProperties:
    def test_improves_and_stays_consistent(self):
        hg = synthetic_hypergraph()
        rng = np.random.default_rng(3)
        state = PartitionState(hg, 4, rng.integers(0, 4, hg.num_vertices))
        constraint = BalanceConstraint(4, 10.0)
        cut0 = state.cut_size
        res = batch_refine(state, constraint)
        assert res.cut_size == state.cut_size <= cut0
        assert res.gain == cut0 - state.cut_size > 0
        # incremental bookkeeping matches a from-scratch recount
        assert state.cut_size == hyperedge_cut(hg, state.part)
        fresh = PartitionState(hg, 4, state.part.copy())
        assert (fresh.edge_part_count == state.edge_part_count).all()

    def test_fixpoint_is_idempotent(self):
        hg = synthetic_hypergraph(seed=11)
        rng = np.random.default_rng(4)
        state = PartitionState(hg, 3, rng.integers(0, 3, hg.num_vertices))
        constraint = BalanceConstraint(3, 10.0)
        batch_refine(state, constraint)
        again = batch_refine(state, constraint)
        assert (again.rounds, again.moves, again.gain) == (0, 0, 0)

    def test_deterministic(self):
        hg = synthetic_hypergraph(seed=13)
        rng = np.random.default_rng(5)
        init = rng.integers(0, 4, hg.num_vertices)
        outs = []
        for _ in range(2):
            state = PartitionState(hg, 4, init.copy())
            batch_refine(state, BalanceConstraint(4, 10.0))
            outs.append(state.part.copy())
        assert (outs[0] == outs[1]).all()

    def test_balance_preserved_when_started_inside(self):
        hg = synthetic_hypergraph(seed=17)
        constraint = BalanceConstraint(4, 10.0)
        lo, hi = constraint.bounds(hg.total_weight)
        # start from a balanced greedy fill
        order = np.argsort(-hg.vertex_weight, kind="stable")
        part = np.zeros(hg.num_vertices, dtype=np.int64)
        loads = [0, 0, 0, 0]
        for v in order:
            p = int(np.argmin(loads))
            part[v] = p
            loads[p] += int(hg.vertex_weight[v])
        state = PartitionState(hg, 4, part)
        assert constraint.satisfied(state.part_weight)
        batch_refine(state, constraint)
        assert constraint.satisfied(state.part_weight)
        assert all(lo <= w <= hi for w in state.part_weight.tolist())

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_randomized_never_worse(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(8, 60))
        m = int(rng.integers(4, 80))
        k = int(rng.integers(2, 5))
        edges = []
        for _ in range(m):
            size = int(rng.integers(2, min(n, 5)))
            edges.append(rng.choice(n, size=size, replace=False).tolist())
        hg = Hypergraph.from_edges(rng.integers(1, 4, n).tolist(), edges)
        state = PartitionState(hg, k, rng.integers(0, k, n))
        constraint = BalanceConstraint(k, float(rng.choice([5.0, 10.0, 20.0])))
        cut0 = state.cut_size
        satisfied0 = constraint.satisfied(state.part_weight)
        res = batch_refine(state, constraint)
        assert state.cut_size <= cut0
        assert res.gain == cut0 - state.cut_size
        assert state.cut_size == hyperedge_cut(hg, state.part)
        if satisfied0:
            assert constraint.satisfied(state.part_weight)
        # fixpoint: a second call finds nothing
        assert batch_refine(state, constraint).moves == 0


class TestMoveBatchOracle:
    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_matches_sequential_moves(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(6, 40))
        m = int(rng.integers(3, 50))
        k = int(rng.integers(2, 5))
        edges = []
        for _ in range(m):
            size = int(rng.integers(2, min(n, 5)))
            edges.append(rng.choice(n, size=size, replace=False).tolist())
        hg = Hypergraph.from_edges(rng.integers(1, 4, n).tolist(), edges)
        init = rng.integers(0, k, n)
        n_moves = int(rng.integers(1, min(n, 8) + 1))
        verts = rng.choice(n, size=n_moves, replace=False)
        targets = rng.integers(0, k, n_moves)

        batched = PartitionState(hg, k, init.copy())
        gain, touched, old_lam = batched.move_batch(verts, targets)

        serial = PartitionState(hg, k, init.copy())
        cut_before = serial.cut_size
        for v, p in zip(verts, targets):
            serial.move(int(v), int(p))

        assert batched.part.tolist() == serial.part.tolist()
        assert batched.cut_size == serial.cut_size
        assert batched.connectivity == serial.connectivity
        assert batched.part_weight.tolist() == serial.part_weight.tolist()
        assert (batched.edge_part_count == serial.edge_part_count).all()
        assert gain == cut_before - serial.cut_size
        # the flipped-edge report covers exactly the λ changes
        fresh = PartitionState(hg, k, init.copy())
        changed = np.flatnonzero(fresh.edge_lambda != batched.edge_lambda)
        assert set(changed.tolist()) <= set(touched.tolist())
        assert (old_lam == fresh.edge_lambda[touched]).all()

    def test_rejects_bad_target(self):
        hg = Hypergraph.from_edges([1, 1], [[0, 1]])
        state = PartitionState(hg, 2, [0, 1])
        with pytest.raises(PartitionError):
            state.move_batch([0], [5])

    def test_empty_batch(self):
        hg = Hypergraph.from_edges([1, 1], [[0, 1]])
        state = PartitionState(hg, 2, [0, 1])
        gain, touched, old_lam = state.move_batch([], [])
        assert gain == 0 and len(touched) == 0 and len(old_lam) == 0


class TestBlocksRestriction:
    def test_only_listed_blocks_move(self):
        hg = synthetic_hypergraph(n=200, seed=19)
        rng = np.random.default_rng(6)
        init = rng.integers(0, 3, hg.num_vertices)
        state = PartitionState(hg, 3, init.copy())
        frozen = np.flatnonzero(init == 2)
        batch_refine(state, BalanceConstraint(3, 30.0), blocks=(0, 1))
        assert (state.part[frozen] == 2).all()
        moved = np.flatnonzero(state.part != init)
        assert set(state.part[moved].tolist()) <= {0, 1}


class TestIntegration:
    def test_entry_points_accept_batch(self):
        nl = compile_verilog(ripple_adder_verilog(16))
        for fn in (design_driven_partition, multilevel_flat_partition,
                   recursive_design_driven_partition):
            r = fn(nl, 3, 10.0, seed=1, refiner="batch")
            assert r.balanced

    def test_metrics_are_registered(self):
        hg = synthetic_hypergraph(n=300, seed=23)
        rng = np.random.default_rng(7)
        state = PartitionState(hg, 3, rng.integers(0, 3, hg.num_vertices))
        rec = MetricsRecorder()
        batch_refine(state, BalanceConstraint(3, 10.0), recorder=rec)
        counters = rec.as_counters()
        assert counters["partition.batch_refine.calls"] == 1
        assert counters["part.batch.rounds"] >= 1
        assert counters["part.batch.moves"] >= 1
        for name in counters:
            assert is_registered(name), name

    def test_cli_partition_refiner_flag(self, tmp_path):
        src = tmp_path / "a.v"
        src.write_text(ripple_adder_verilog(8))
        out = io.StringIO()
        rc = main(["partition", str(src), "-k", "2", "--refiner", "batch"],
                  out=out)
        assert rc == 0
        assert "refiner=batch" in out.getvalue()
