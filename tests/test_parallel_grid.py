"""Process-parallel (k, b) sweep: identical results, any worker count."""

import os

import pytest

from repro.bench import run_presim_grid
from repro.circuits import circuit_source

SOURCE = circuit_source("viterbi-test")
KS = (2, 3)
BS = (7.5, 15.0)


@pytest.fixture(scope="module")
def serial_rows():
    return run_presim_grid(SOURCE, ks=KS, bs=BS, n_vectors=8, seed=1, workers=1)


class TestGrid:
    def test_serial_shape(self, serial_rows):
        assert [(c.k, c.b) for c in serial_rows] == [
            (k, b) for k in KS for b in BS
        ]
        for c in serial_rows:
            assert c.cut_size >= 0
            assert c.sim_time > 0

    def test_workers_none_equals_one(self, serial_rows):
        again = run_presim_grid(SOURCE, ks=KS, bs=BS, n_vectors=8, seed=1)
        assert again == serial_rows

    @pytest.mark.skipif(os.cpu_count() is None or os.cpu_count() < 2,
                        reason="needs >= 2 cores")
    def test_parallel_matches_serial(self, serial_rows):
        parallel = run_presim_grid(
            SOURCE, ks=KS, bs=BS, n_vectors=8, seed=1, workers=2
        )
        assert parallel == serial_rows

    def test_seed_changes_results(self, serial_rows):
        other = run_presim_grid(SOURCE, ks=KS, bs=BS, n_vectors=8, seed=2)
        assert other != serial_rows

    def test_multilevel_backend(self, serial_rows):
        ml = run_presim_grid(SOURCE, ks=(2,), bs=(10.0,), n_vectors=8,
                             seed=1, algorithm="multilevel")
        assert len(ml) == 1
        assert ml[0].balanced
        assert ml[0].cut_size >= 0
