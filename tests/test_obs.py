"""The observability layer: recorders, traces, metrics JSON, registry.

The layer's two contracts (docs/observability.md) are enforced here:
zero cost when off — attaching a recorder/trace never changes results —
and determinism — identical inputs give byte-identical metric dumps
modulo ``generated_at``.
"""

from __future__ import annotations

import json

import pytest

from repro.circuits import random_vectors
from repro.core import design_driven_partition
from repro.obs import (
    METRIC_REGISTRY,
    METRICS_SCHEMA_VERSION,
    NULL_RECORDER,
    PHASE_REGISTRY,
    TRACE_EVENT_KINDS,
    TRACE_FIELD_REGISTRY,
    MetricsError,
    MetricsRecorder,
    TraceBuffer,
    dumps_metrics,
    is_registered,
    metrics_document,
    read_metrics,
    strip_volatile,
    trace_fields,
    validate_metrics,
    write_metrics,
)
from repro.sim import ClusterSpec, TimeWarpConfig, run_partitioned


# ---------------------------------------------------------------------------
# Recorder


class TestRecorder:
    def test_null_recorder_is_disabled_noop(self):
        assert NULL_RECORDER.enabled is False
        NULL_RECORDER.incr("tw.rollbacks")
        NULL_RECORDER.observe_max("tw.straggler_depth", 5)
        with NULL_RECORDER.phase("tw.run"):
            pass
        # a Null recorder accumulates nothing and exposes no counters
        assert not hasattr(NULL_RECORDER, "as_counters") or not dict(
            NULL_RECORDER.as_counters()
        )

    def test_incr_and_observe_max(self):
        rec = MetricsRecorder()
        rec.incr("tw.rollbacks")
        rec.incr("tw.rollbacks", 2)
        rec.observe_max("tw.straggler_depth", 3)
        rec.observe_max("tw.straggler_depth", 1)
        c = rec.as_counters()
        assert c["tw.rollbacks"] == 3
        assert c["tw.straggler_depth.max"] == 3

    def test_phase_calls_and_host_timings(self):
        ticks = iter(range(100))
        rec = MetricsRecorder(clock=lambda: float(next(ticks)))
        with rec.phase("partition.refine"):
            pass
        with rec.phase("partition.refine"):
            pass
        c = rec.as_counters()
        assert c["partition.refine.calls"] == 2
        # host seconds live ONLY in the quarantined channel
        assert "partition.refine" not in c
        assert rec.host_timings()["partition.refine"] == pytest.approx(2.0)

    def test_as_counters_sorted(self):
        rec = MetricsRecorder()
        rec.incr("tw.rollbacks")
        rec.incr("part.cut_size", 7)
        assert list(rec.as_counters()) == sorted(rec.as_counters())


# ---------------------------------------------------------------------------
# Trace buffer


class TestTraceBuffer:
    def test_bounded_with_dropped_count_and_seq_gap(self):
        buf = TraceBuffer(capacity=3)
        for i in range(5):
            buf.emit("gvt", round=i)
        events = buf.events()
        assert len(events) == 3
        assert buf.dropped == 2
        # the tail survives; the seq gap reveals the eviction
        assert [e.seq for e in events] == [2, 3, 4]
        assert [e.fields["round"] for e in events] == [2, 3, 4]

    def test_kind_filter_and_unknown_kind(self):
        buf = TraceBuffer()
        buf.emit("exec", lp=0)
        buf.emit("rollback", lp=1)
        assert [e.kind for e in buf.events("rollback")] == ["rollback"]
        with pytest.raises(ValueError):
            buf.emit("nonsense")
        with pytest.raises(ValueError):
            TraceBuffer(capacity=0)

    def test_jsonl_deterministic_and_parseable(self, tmp_path):
        def fill(buf):
            buf.emit("send", src_lp=1, dst_lp=2, sign=1)
            buf.emit("rollback", lp=2, to=5, depth=3)

        a, b = TraceBuffer(), TraceBuffer()
        fill(a)
        fill(b)
        assert a.to_jsonl() == b.to_jsonl()
        path = tmp_path / "t.jsonl"
        assert a.dump(path) == 2
        lines = path.read_text().splitlines()
        assert [json.loads(l)["kind"] for l in lines] == ["send", "rollback"]
        # sorted keys per line -> byte-stable
        assert path.read_text() == a.to_jsonl()


# ---------------------------------------------------------------------------
# Metrics documents


def _doc(**over):
    doc = metrics_document(
        "unit",
        kind="custom",
        params={"k": 4, "b": 7.5},
        counters={"tw.rollbacks": 3, "tw.speedup": 1.5},
        rows=[{"k": 2, "cut": 10}],
        series={"machines": [2, 3, 4]},
    )
    doc.update(over)
    return doc


class TestMetricsDocument:
    def test_roundtrip_validates(self, tmp_path):
        path = tmp_path / "m.json"
        write_metrics(path, _doc())
        back = read_metrics(path)  # read_metrics validates
        assert back == _doc()
        assert back["schema_version"] == METRICS_SCHEMA_VERSION

    def test_dumps_canonical(self):
        out = dumps_metrics(_doc())
        assert out.endswith("\n")
        assert json.loads(out) == _doc()
        # key order is canonical regardless of construction order
        assert out == dumps_metrics(json.loads(out))

    def test_recorder_counters_merged(self):
        rec = MetricsRecorder()
        rec.incr("tw.rollbacks", 2)
        doc = metrics_document("r", kind="run", recorder=rec,
                               counters={"part.cut_size": 9})
        assert doc["counters"] == {"part.cut_size": 9, "tw.rollbacks": 2}

    def test_strip_volatile(self):
        doc = _doc(generated_at="2026-08-06T00:00:00+00:00")
        stripped = strip_volatile(doc)
        # normalized to null (the key stays so the doc remains valid)
        assert stripped["generated_at"] is None
        validate_metrics(stripped)
        assert doc["generated_at"] is not None  # original untouched
        assert strip_volatile(_doc(generated_at="1999-01-01")) == stripped

    @pytest.mark.parametrize(
        "breakage",
        [
            {"schema_version": 99},
            {"name": ""},
            {"kind": "mystery"},
            {"counters": {"tw.rollbacks": True}},  # bool is not a count
            {"counters": {"tw.rollbacks": "3"}},
            {"rows": [{"k": [1, 2]}]},  # non-scalar cell
            {"series": {"xs": [1, "two"]}},
            {"surprise": 1},  # unknown top-level field
        ],
    )
    def test_validation_rejects(self, breakage):
        with pytest.raises(MetricsError):
            validate_metrics(_doc(**breakage))

    def test_validation_error_names_path(self):
        with pytest.raises(MetricsError, match="counters"):
            validate_metrics(_doc(counters={"x": "bad"}))


# ---------------------------------------------------------------------------
# Registry


class TestRegistry:
    def test_lookup_and_derived_suffixes(self):
        assert is_registered("tw.rollbacks")
        assert is_registered("tw.straggler_depth.max")
        assert is_registered("partition.refine.calls")
        assert not is_registered("tw.made_up")
        assert not is_registered("tw.made_up.max")
        assert not is_registered("tw.rollbacks.calls")

    def test_registries_are_documented(self):
        for table in (METRIC_REGISTRY, PHASE_REGISTRY):
            for name, meaning in table.items():
                assert name == name.lower() and " " not in name
                assert meaning.strip()

    def test_trace_field_registry_matches_kinds(self):
        assert set(TRACE_FIELD_REGISTRY) == set(TRACE_EVENT_KINDS)
        assert trace_fields("rollback") >= {
            "partition", "src_partition", "straggler_uid"}

    def test_kernel_counters_registered(self):
        # the vectorized gate-eval kernel's counters are first-class
        # registered names (enforced like every RunStats counter below)
        for name in ("sim.kernel.batches", "sim.kernel.batch_gates",
                     "sim.kernel.scalar_gates"):
            assert is_registered(name)


# ---------------------------------------------------------------------------
# End to end: instrumented runs


@pytest.fixture(scope="module")
def stimulus(viterbi_test):
    return random_vectors(viterbi_test, 12, seed=3)


def _run(viterbi_test, viterbi_test_circuit, stimulus, **obs):
    part = design_driven_partition(viterbi_test, k=3, b=10.0, seed=2,
                                   **({"recorder": obs["recorder"]}
                                      if "recorder" in obs else {}))
    clusters, lpm = part.to_simulation()
    report = run_partitioned(
        viterbi_test_circuit, clusters, lpm, stimulus,
        ClusterSpec(num_machines=3), TimeWarpConfig(), **obs,
    )
    return part, report


class TestInstrumentedRun:
    def test_observability_does_not_change_results(
        self, viterbi_test, viterbi_test_circuit, stimulus
    ):
        _, bare = _run(viterbi_test, viterbi_test_circuit, stimulus)
        _, observed = _run(
            viterbi_test, viterbi_test_circuit, stimulus,
            recorder=MetricsRecorder(), trace=TraceBuffer(),
        )
        assert bare.run_stats == observed.run_stats
        assert bare.to_counters() == observed.to_counters()
        assert bare.verified and observed.verified

    def test_every_emitted_counter_is_registered(
        self, viterbi_test, viterbi_test_circuit, stimulus
    ):
        rec = MetricsRecorder()
        _run(viterbi_test, viterbi_test_circuit, stimulus, recorder=rec)
        unregistered = [n for n in rec.as_counters() if not is_registered(n)]
        assert unregistered == []

    def test_partitioner_and_kernel_counters_present(
        self, viterbi_test, viterbi_test_circuit, stimulus
    ):
        rec = MetricsRecorder()
        _, report = _run(viterbi_test, viterbi_test_circuit, stimulus,
                         recorder=rec)
        c = rec.as_counters()
        assert c["partition.initial.calls"] == 1
        assert c["partition.refine.calls"] >= 1
        assert c["part.pairing.rounds"] >= 1
        assert c["tw.run.calls"] == 1
        assert c["tw.committed_events"] == report.committed_events
        assert c["seq.gate_evals"] == report.seq_stats.gate_evals

    def test_run_stats_counters_all_registered(
        self, viterbi_test, viterbi_test_circuit, stimulus
    ):
        # every name RunStats flattens to — including the sim.kernel.*
        # counters the vectorized kernel added — must be registered,
        # and the kernel totals must reconcile with the report
        _, report = _run(viterbi_test, viterbi_test_circuit, stimulus)
        counters = report.run_stats.to_counters()
        unregistered = [n for n in counters if not is_registered(n)]
        assert unregistered == []
        assert counters["sim.kernel.batches"] == \
            report.run_stats.kernel_batches
        assert counters["sim.kernel.batch_gates"] == \
            report.run_stats.kernel_batch_gates
        assert counters["sim.kernel.scalar_gates"] == \
            report.run_stats.kernel_scalar_gates
        assert counters["sim.kernel.scalar_gates"] > 0

    def test_identical_seeds_identical_dumps(
        self, viterbi_test, viterbi_test_circuit, stimulus
    ):
        def dump():
            rec = MetricsRecorder()
            _run(viterbi_test, viterbi_test_circuit, stimulus,
                 recorder=rec, trace=(trace := TraceBuffer()))
            doc = metrics_document(
                "det", kind="run", recorder=rec, params={"seed": 2},
                generated_at="2026-01-01T00:00:00+00:00",
            )
            return dumps_metrics(strip_volatile(doc)), trace.to_jsonl()

        assert dump() == dump()

    def test_trace_captures_kernel_events(
        self, viterbi_test, viterbi_test_circuit, stimulus
    ):
        trace = TraceBuffer()
        _, report = _run(viterbi_test, viterbi_test_circuit, stimulus,
                         trace=trace)
        kinds = {e.kind for e in trace.events()}
        assert "exec" in kinds and "gvt" in kinds
        if report.messages:
            assert "send" in kinds
        if report.rollbacks:
            assert len(trace.events("rollback")) == report.rollbacks
        seqs = [e.seq for e in trace.events()]
        assert seqs == sorted(seqs)

    def test_every_emitted_trace_field_is_registered(
        self, viterbi_test, viterbi_test_circuit, stimulus
    ):
        trace = TraceBuffer()
        _run(viterbi_test, viterbi_test_circuit, stimulus, trace=trace)
        for e in trace.events():
            extra = set(e.fields) - trace_fields(e.kind)
            assert not extra, (e.kind, extra)
