"""Partition persistence: JSON round trip + integrity checks."""

import io
import json

import pytest

from repro.circuits import random_vectors
from repro.core import (
    design_driven_partition,
    dumps_partition,
    load_partition,
    loads_partition,
    save_partition,
)
from repro.errors import PartitionError
from repro.verilog import compile_verilog


@pytest.fixture()
def partition(viterbi_test):
    return design_driven_partition(viterbi_test, k=3, b=10.0, seed=1)


class TestRoundTrip:
    def test_basic(self, viterbi_test, partition, tmp_path):
        path = tmp_path / "p.json"
        save_partition(partition, path)
        loaded = load_partition(path, viterbi_test)
        assert loaded.k == partition.k
        assert loaded.b == partition.b
        assert loaded.cut_size == partition.cut_size
        assert loaded.part_weights.tolist() == partition.part_weights.tolist()
        assert (loaded.gate_assignment() == partition.gate_assignment()).all()

    def test_survives_re_elaboration(self, partition, tmp_path):
        """Same source recompiled on 'another day' still binds."""
        from repro.circuits import circuit_source

        fresh = compile_verilog(circuit_source("viterbi-test"))
        text = dumps_partition(partition)
        loaded = loads_partition(text, fresh)
        assert loaded.cut_size == partition.cut_size

    def test_simulatable_after_load(self, viterbi_test, partition, tmp_path):
        from repro.sim import ClusterSpec, compile_circuit, run_partitioned

        loaded = loads_partition(dumps_partition(partition), viterbi_test)
        clusters, machines = loaded.to_simulation()
        report = run_partitioned(
            compile_circuit(viterbi_test), clusters, machines,
            random_vectors(viterbi_test, 8, seed=2),
            ClusterSpec(num_machines=loaded.k),
        )
        assert report.verified

    def test_json_is_stable(self, partition):
        assert dumps_partition(partition) == dumps_partition(partition)


class TestValidation:
    def test_not_json(self, viterbi_test):
        with pytest.raises(PartitionError, match="not a partition file"):
            loads_partition("not json {", viterbi_test)

    def test_wrong_format(self, viterbi_test):
        with pytest.raises(PartitionError, match="not a repro-partition"):
            loads_partition(json.dumps({"format": "other"}), viterbi_test)

    def test_wrong_version(self, viterbi_test, partition):
        doc = json.loads(dumps_partition(partition))
        doc["version"] = 99
        with pytest.raises(PartitionError, match="version"):
            loads_partition(json.dumps(doc), viterbi_test)

    def test_wrong_netlist(self, partition, pipeadd):
        with pytest.raises(PartitionError, match="gates"):
            loads_partition(dumps_partition(partition), pipeadd)

    def test_unknown_gate_name(self, viterbi_test, partition):
        doc = json.loads(dumps_partition(partition))
        doc["clusters"][0]["gates"][0] = "no.such.gate"
        with pytest.raises(PartitionError, match="no gate named"):
            loads_partition(json.dumps(doc), viterbi_test)

    def test_partition_out_of_range(self, viterbi_test, partition):
        doc = json.loads(dumps_partition(partition))
        doc["clusters"][0]["partition"] = 99
        with pytest.raises(PartitionError, match="outside"):
            loads_partition(json.dumps(doc), viterbi_test)

    def test_duplicate_gate(self, viterbi_test, partition):
        doc = json.loads(dumps_partition(partition))
        dup = doc["clusters"][0]["gates"][0]
        doc["clusters"][1]["gates"].append(dup)
        with pytest.raises(PartitionError, match="two clusters"):
            loads_partition(json.dumps(doc), viterbi_test)

    def test_incomplete_cover(self, viterbi_test, partition):
        doc = json.loads(dumps_partition(partition))
        doc["clusters"][0]["gates"].pop()
        with pytest.raises(PartitionError):
            loads_partition(json.dumps(doc), viterbi_test)


class TestCliIntegration:
    def test_save_then_reuse(self, tmp_path):
        from repro.cli import main
        from tests.conftest import PIPEADD_SRC

        vfile = tmp_path / "d.v"
        vfile.write_text(PIPEADD_SRC)
        pfile = tmp_path / "part.json"
        out = io.StringIO()
        assert main(
            ["partition", str(vfile), "-k", "2", "--save", str(pfile)], out=out
        ) == 0
        assert pfile.exists()
        out = io.StringIO()
        assert main(
            ["psim", str(vfile), "--vectors", "8", "--partition", str(pfile)],
            out=out,
        ) == 0
        assert "loaded partition" in out.getvalue()
        assert "verified        : True" in out.getvalue()

    def test_save_requires_design_algorithm(self, tmp_path):
        from repro.cli import main
        from tests.conftest import PIPEADD_SRC

        vfile = tmp_path / "d.v"
        vfile.write_text(PIPEADD_SRC)
        code = main(
            ["partition", str(vfile), "--algorithm", "random",
             "--save", str(tmp_path / "x.json")],
            out=io.StringIO(),
        )
        assert code == 1

    def test_psim_conservative_flag(self, tmp_path):
        from repro.cli import main
        from tests.conftest import PIPEADD_SRC

        vfile = tmp_path / "d.v"
        vfile.write_text(PIPEADD_SRC)
        out = io.StringIO()
        assert main(
            ["psim", str(vfile), "-k", "2", "--vectors", "8", "--conservative"],
            out=out,
        ) == 0
        assert "rollbacks       : 0 " in out.getvalue()
