"""Sequential simulator: functional correctness and event semantics."""

import itertools

import pytest

from repro.errors import SimulationError
from repro.sim import (
    InputEvent,
    SequentialSimulator,
    compile_circuit,
    simulate_sequential,
)
from repro.sim.logic import V0, V1, VX
from repro.verilog import NetlistBuilder, compile_verilog


def drive(nl, assignments, extra=()):
    """Events setting named primary inputs at t=0 plus extra events."""
    by_name = {nl.net_name(n): n for n in nl.inputs}
    evs = [InputEvent(0, by_name[k], v) for k, v in assignments.items()]
    return sorted(list(extra) + evs, key=lambda e: e.time)


class TestCombinational:
    def test_adder_exhaustive(self, adder4, adder4_circuit):
        for x, y, ci in itertools.product(range(16), range(16), range(2)):
            sim = SequentialSimulator(adder4_circuit)
            evs = [InputEvent(0, adder4.inputs[i], (x >> i) & 1) for i in range(4)]
            evs += [InputEvent(0, adder4.inputs[4 + i], (y >> i) & 1) for i in range(4)]
            evs.append(InputEvent(0, adder4.inputs[8], ci))
            sim.add_inputs(evs)
            sim.run()
            outs = sim.output_values()
            got = sum(outs[i] << i for i in range(4)) + (outs[4] << 4)
            assert got == x + y + ci

    def test_initial_state_is_x(self, adder4_circuit):
        sim = SequentialSimulator(adder4_circuit)
        sim.run()
        assert all(v == VX for v in sim.output_values())

    def test_unit_delay_propagation(self):
        nl = compile_verilog(
            "module t (o, i); output o; input i; wire m; not (m, i); not (o, m); endmodule"
        )
        cc = compile_circuit(nl)
        sim = SequentialSimulator(cc)
        sim.add_inputs([InputEvent(0, nl.inputs[0], 1)])
        sim.run(until=1)
        assert sim.value_of(nl.outputs[0]) == VX  # not yet propagated
        sim.run(until=2)
        assert sim.value_of(nl.outputs[0]) == VX  # o's event is at t=2
        sim.run(until=3)
        assert sim.value_of(nl.outputs[0]) == V1
        sim.run()
        assert sim.stats.end_time == 2

    def test_glitch_suppressed(self):
        # y = and(a, a): scheduling the same value twice causes no event
        nl = compile_verilog(
            "module t (y, a, b); output y; input a, b; and (y, a, b); endmodule"
        )
        cc = compile_circuit(nl)
        sim = SequentialSimulator(cc)
        sim.add_inputs([InputEvent(0, nl.inputs[0], 1), InputEvent(0, nl.inputs[1], 0)])
        sim.run()
        evals1 = sim.stats.gate_evals
        # change a while b=0 keeps y=0: gate re-evaluates but no net event
        sim.schedule(sim.now + 1, nl.inputs[0], 0)
        sim.run()
        assert sim.value_of(nl.outputs[0]) == V0
        assert sim.stats.gate_evals == evals1 + 1
        # the y net only changed once (X->0); a's second flip was absorbed
        assert sim.stats.net_events == 4  # a@0, b@0, y@1 (X->0), a@2

    def test_record_activity(self, adder4, adder4_circuit):
        sim = SequentialSimulator(adder4_circuit, record_activity=True)
        evs = [InputEvent(0, n, 1) for n in adder4.inputs]
        sim.add_inputs(evs)
        sim.run()
        assert sim.stats.activity is not None
        assert sim.stats.activity.sum() == sim.stats.gate_evals
        assert (sim.stats.activity >= 0).all()


class TestScheduling:
    def test_cannot_schedule_in_past(self, adder4, adder4_circuit):
        sim = SequentialSimulator(adder4_circuit)
        sim.add_inputs([InputEvent(0, adder4.inputs[0], 1)])
        sim.run()
        with pytest.raises(SimulationError, match="cannot schedule"):
            sim.schedule(0, adder4.inputs[0], 0)

    def test_run_until_is_exclusive(self, adder4, adder4_circuit):
        sim = SequentialSimulator(adder4_circuit)
        sim.add_inputs([InputEvent(5, adder4.inputs[0], 1)])
        sim.run(until=5)
        assert sim.value_of(adder4.inputs[0]) == VX
        sim.run(until=6)
        assert sim.value_of(adder4.inputs[0]) == V1

    def test_simulate_sequential_helper(self, adder4, adder4_circuit):
        sim, stats = simulate_sequential(
            adder4_circuit, [InputEvent(0, n, 0) for n in adder4.inputs]
        )
        assert stats.gate_evals > 0
        assert sim.output_values()[:4] == [0, 0, 0, 0]


def _dff_fixture(cell="dff"):
    nb = NetlistBuilder("t")
    d, clk = nb.input("d"), nb.input("clk")
    extra = []
    if cell in ("dffr", "dffe"):
        extra = [nb.input("x")]
    q = nb.net("q")
    nb.gate(cell, (d, clk, *extra), q)
    nb.output_net(q)
    nl = nb.build()
    return nl, compile_circuit(nl)


class TestFlipFlops:
    def test_samples_on_rising_edge(self):
        nl, cc = _dff_fixture()
        d, clk = nl.inputs
        sim = SequentialSimulator(cc)
        sim.add_inputs(
            [
                InputEvent(0, clk, 0),
                InputEvent(0, d, 1),
                InputEvent(2, clk, 1),
            ]
        )
        sim.run()
        assert sim.output_values() == [1]

    def test_no_capture_on_falling_edge(self):
        nl, cc = _dff_fixture()
        d, clk = nl.inputs
        sim = SequentialSimulator(cc)
        sim.add_inputs(
            [
                InputEvent(0, clk, 1),
                InputEvent(0, d, 1),
                InputEvent(2, clk, 0),
            ]
        )
        sim.run()
        assert sim.output_values() == [VX]  # never captured

    def test_d_sampled_before_edge(self):
        """d changing at the same instant as the edge uses the old d."""
        nl, cc = _dff_fixture()
        d, clk = nl.inputs
        sim = SequentialSimulator(cc)
        sim.add_inputs(
            [
                InputEvent(0, clk, 0),
                InputEvent(0, d, 0),
                InputEvent(2, clk, 1),  # edge at t=2
                InputEvent(2, d, 1),    # d flips at the same instant
            ]
        )
        sim.run()
        assert sim.output_values() == [0]

    def test_d_change_without_clock_holds(self):
        nl, cc = _dff_fixture()
        d, clk = nl.inputs
        sim = SequentialSimulator(cc)
        sim.add_inputs(
            [
                InputEvent(0, clk, 0),
                InputEvent(0, d, 0),
                InputEvent(2, clk, 1),
                InputEvent(5, d, 1),  # no edge: q keeps 0
            ]
        )
        sim.run()
        assert sim.output_values() == [0]

    def test_unknown_edge_gives_x(self):
        nl, cc = _dff_fixture()
        d, clk = nl.inputs
        sim = SequentialSimulator(cc)
        # clk X -> 1 is a possible edge: conservative X output
        sim.add_inputs([InputEvent(0, d, 1), InputEvent(2, clk, 1)])
        sim.run()
        assert sim.output_values() == [VX]

    def test_dffr_sync_reset(self):
        nl, cc = _dff_fixture("dffr")
        d, clk, rst = nl.inputs
        sim = SequentialSimulator(cc)
        sim.add_inputs(
            [
                InputEvent(0, clk, 0),
                InputEvent(0, d, 1),
                InputEvent(0, rst, 1),
                InputEvent(2, clk, 1),  # edge with rst: q <- 0
            ]
        )
        sim.run()
        assert sim.output_values() == [0]

    def test_dffr_release(self):
        nl, cc = _dff_fixture("dffr")
        d, clk, rst = nl.inputs
        sim = SequentialSimulator(cc)
        sim.add_inputs(
            [
                InputEvent(0, clk, 0),
                InputEvent(0, d, 1),
                InputEvent(0, rst, 1),
                InputEvent(2, clk, 1),
                InputEvent(4, clk, 0),
                InputEvent(5, rst, 0),
                InputEvent(6, clk, 1),  # edge without rst: q <- d
            ]
        )
        sim.run()
        assert sim.output_values() == [1]

    def test_dffe_enable_off_holds(self):
        nl, cc = _dff_fixture("dffe")
        d, clk, en = nl.inputs
        sim = SequentialSimulator(cc)
        sim.add_inputs(
            [
                InputEvent(0, clk, 0),
                InputEvent(0, d, 1),
                InputEvent(0, en, 1),
                InputEvent(2, clk, 1),   # loads 1
                InputEvent(4, clk, 0),
                InputEvent(5, en, 0),
                InputEvent(5, d, 0),
                InputEvent(6, clk, 1),   # enable off: holds 1
            ]
        )
        sim.run()
        assert sim.output_values() == [1]

    def test_counter_counts(self):
        src = """
        module cnt (clk, rst, q0, q1);
          input clk, rst; output q0, q1;
          wire d0, d1;
          not (d0, q0);
          xor (d1, q1, q0);
          dffr ff0 (q0, d0, clk, rst);
          dffr ff1 (q1, d1, clk, rst);
        endmodule
        """
        nl = compile_verilog(src)
        cc = compile_circuit(nl)
        clk, rst = nl.inputs
        sim = SequentialSimulator(cc)
        evs = [InputEvent(0, clk, 0), InputEvent(0, rst, 1),
               InputEvent(4, clk, 1), InputEvent(8, clk, 0),
               InputEvent(10, rst, 0)]
        for i in range(5):
            evs += [InputEvent(12 + 8 * i, clk, 1), InputEvent(16 + 8 * i, clk, 0)]
        sim.add_inputs(evs)
        sim.run()
        q0, q1 = sim.output_values()
        assert q0 + 2 * q1 == 5 % 4
