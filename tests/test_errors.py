"""Exception hierarchy contracts."""

import pytest

from repro.errors import (
    ConfigError,
    ElaborationError,
    HypergraphError,
    LexError,
    NetlistError,
    ParseError,
    PartitionError,
    ReproError,
    SimulationError,
    VerilogError,
)


def test_everything_derives_from_repro_error():
    for exc in (
        VerilogError, LexError, ParseError, ElaborationError, NetlistError,
        HypergraphError, PartitionError, SimulationError, ConfigError,
    ):
        assert issubclass(exc, ReproError)


def test_front_end_errors_are_verilog_errors():
    for exc in (LexError, ParseError, ElaborationError):
        assert issubclass(exc, VerilogError)


def test_positional_errors_carry_location():
    err = LexError("bad char", 3, 7)
    assert err.line == 3 and err.column == 7
    assert "line 3" in str(err)
    err = ParseError("bad token", 2, 1)
    assert err.line == 2
    assert "column 1" in str(err)


def test_catching_base_class_catches_all():
    with pytest.raises(ReproError):
        raise PartitionError("nope")
