"""Public API surface: lazy exports, versioning, depth utility."""

import pytest

import repro
from repro.sim.compiled import combinational_depth, compile_circuit
from repro.verilog import compile_verilog


class TestTopLevel:
    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_lazy_design_driven_export(self):
        fn = repro.design_driven_partition
        from repro.core import design_driven_partition

        assert fn is design_driven_partition

    def test_lazy_multilevel_export(self):
        fn = repro.multilevel_partition
        from repro.baselines import multilevel_partition

        assert fn is multilevel_partition

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            repro.no_such_symbol

    def test_error_types_exported(self):
        assert issubclass(repro.ParseError, repro.ReproError)


class TestObservabilitySurface:
    def test_all_exports_resolve_and_are_documented(self):
        import repro.obs as obs

        for name in obs.__all__:
            member = getattr(obs, name)
            if callable(member) and not isinstance(member, type):
                assert member.__doc__, f"{name} lacks a docstring"

    def test_instrumented_entry_points_document_recorder(self):
        from repro.core import design_driven_partition
        from repro.sim import run_partitioned

        assert "recorder" in design_driven_partition.__doc__
        assert "recorder" in run_partitioned.__doc__
        assert "trace" in run_partitioned.__doc__

    def test_null_recorder_shared_default(self):
        import inspect

        from repro.core import design_driven_partition
        from repro.obs import NULL_RECORDER
        from repro.sim import run_partitioned

        for fn in (design_driven_partition, run_partitioned):
            assert (
                inspect.signature(fn).parameters["recorder"].default
                is NULL_RECORDER
            )


class TestCombinationalDepth:
    def test_inverter_chain(self):
        n = 7
        wires = "".join(f"wire m{i}; " for i in range(n - 1))
        gates = "not (m0, a); " + "".join(
            f"not (m{i+1}, m{i}); " for i in range(n - 2)
        ) + f"not (o, m{n-2});"
        nl = compile_verilog(
            f"module t (o, a); output o; input a; {wires} {gates} endmodule"
        )
        assert combinational_depth(compile_circuit(nl)) == n

    def test_flipflops_cut_paths(self):
        nl = compile_verilog(
            """
            module t (o, a, clk); output o; input a, clk;
              wire m1, q, m2;
              not (m1, a);
              dff (q, m1, clk);
              not (m2, q);
              not (o, m2);
            endmodule
            """
        )
        # longest purely combinational run: q -> m2 -> o = 2
        assert combinational_depth(compile_circuit(nl)) == 2

    def test_empty_circuit(self):
        nl = compile_verilog("module t (a); input a; endmodule")
        assert combinational_depth(compile_circuit(nl)) == 0

    def test_adder_depth_scales_with_width(self, adder4):
        from repro.circuits import ripple_adder_verilog

        d4 = combinational_depth(compile_circuit(adder4))
        nl8 = compile_verilog(ripple_adder_verilog(8, hierarchical=False))
        d8 = combinational_depth(compile_circuit(nl8))
        assert d8 > d4 >= 4
