"""The paper's full methodology end to end (Tables 3-5).

1. pre-simulate every (k, b) with a short random-vector run,
2. pick the best partition per machine count (and overall),
3. run the full-length simulation on the winners,
4. report times, speedups, messages and rollbacks.

Run:  python examples/parallel_speedup.py [--heuristic]
      --heuristic uses the paper's Figure-3 search instead of the
      brute-force sweep.
"""

import argparse

from repro.bench import format_table
from repro.circuits import load_circuit, random_vectors
from repro.core import brute_force_presim, evaluate_partition, heuristic_presim
from repro.sim import ClusterSpec, compile_circuit, run_sequential_baseline


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--heuristic", action="store_true")
    ap.add_argument("--presim-vectors", type=int, default=30)
    ap.add_argument("--full-vectors", type=int, default=300)
    ap.add_argument("--seed", type=int, default=1)
    args = ap.parse_args()

    netlist = load_circuit("viterbi-single")
    presim_events = random_vectors(netlist, args.presim_vectors, seed=args.seed)
    print(f"workload: {netlist.num_gates} gates; "
          f"pre-sim {args.presim_vectors} vectors, full {args.full_vectors}")

    if args.heuristic:
        study = heuristic_presim(netlist, presim_events, max_k=4, seed=args.seed)
        print(f"\nheuristic search: {study.runs} pre-simulation runs")
    else:
        study = brute_force_presim(netlist, presim_events, seed=args.seed)
        print(f"\nbrute-force search: {study.runs} pre-simulation runs")

    print(format_table(
        ["k", "b", "cut", "presim time (s)", "speedup"],
        [[p.k, p.b, p.cut_size, f"{p.sim_time:.4f}", f"{p.speedup:.2f}"]
         for p in study.points],
        title="Pre-simulation (Table 3)",
    ))
    best = study.best
    print(f"\nselected partition: k={best.k}, b={best.b} "
          f"(pre-sim speedup {best.speedup:.2f})")

    # full-length run on the winners per k (Table 5)
    circuit = compile_circuit(netlist)
    full_events = random_vectors(netlist, args.full_vectors, seed=args.seed + 1)
    sequential, seq_wall = run_sequential_baseline(
        circuit, full_events, ClusterSpec(num_machines=1)
    )
    rows = []
    for k, point in sorted(study.best_per_k().items()):
        rep = evaluate_partition(
            circuit, point.partition, full_events,
            ClusterSpec(num_machines=1), sequential=sequential,
        )
        rows.append([k, point.b, point.cut_size, f"{rep.sim_time:.4f}",
                     f"{rep.speedup:.2f}", rep.messages, rep.rollbacks])
    print()
    print(format_table(
        ["k", "b*", "cut", "full time (s)", "speedup", "messages", "rollbacks"],
        rows,
        title=f"Full simulation (Table 5) -- sequential {seq_wall:.4f}s",
    ))


if __name__ == "__main__":
    main()
