"""Quickstart: compile Verilog, partition it, simulate it in parallel.

Run:  python examples/quickstart.py
"""

from repro import compile_verilog
from repro.circuits import pipeline_verilog, random_vectors
from repro.core import design_driven_partition
from repro.sim import ClusterSpec, compile_circuit, run_partitioned


def main() -> None:
    # 1. A gate-level design.  Any structural Verilog text works; here
    #    we use a generated 4-stage registered adder pipeline.
    source = pipeline_verilog(stages=4, width=8)
    netlist = compile_verilog(source)
    print(f"compiled: {netlist}")
    print(f"top-level instances: {sorted(netlist.hierarchy.children)}")

    # 2. Partition at design-hierarchy granularity (the paper's
    #    algorithm): 2 machines, balance factor b = 10%.
    result = design_driven_partition(netlist, k=2, b=10.0, seed=0)
    print(
        f"\npartition: cut={result.cut_size}, "
        f"loads={result.part_weights.tolist()}, balanced={result.balanced}"
    )

    # 3. Simulate 100 random vectors on a 2-machine virtual cluster
    #    (Clustered Time Warp), verified against the sequential oracle.
    events = random_vectors(netlist, 100, seed=1)
    clusters, machines = result.to_simulation()
    report = run_partitioned(
        compile_circuit(netlist), clusters, machines, events,
        ClusterSpec(num_machines=2),
    )
    print(
        f"\nsimulation: speedup={report.speedup:.2f}, "
        f"messages={report.messages}, rollbacks={report.rollbacks}, "
        f"verified={report.verified}"
    )


if __name__ == "__main__":
    main()
