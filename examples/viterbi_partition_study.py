"""The paper's Table 1 / Table 2 comparison in miniature.

Partitions the synthetic Viterbi decoder with (a) the design-driven
hierarchy-aware algorithm and (b) the hMetis-style multilevel
partitioner on the flattened netlist, across the paper's (k, b) grid,
and prints both cut tables side by side.

Run:  python examples/viterbi_partition_study.py [--full]
      --full uses the paper-shaped 388-instance decoder (slower).
"""

import argparse

from repro.baselines import multilevel_partition
from repro.bench import format_table
from repro.circuits import load_circuit
from repro.core import PAPER_B_VALUES, PAPER_K_VALUES, design_driven_partition
from repro.hypergraph import flat_hypergraph


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--full", action="store_true",
                    help="use the 388-instance paper-shaped decoder")
    ap.add_argument("--seed", type=int, default=1)
    args = ap.parse_args()

    name = "viterbi-paper" if args.full else "viterbi-single"
    netlist = load_circuit(name)
    print(f"workload: {name} -> {netlist.num_gates} gates, "
          f"{len(netlist.hierarchy.children)} top-level instances\n")

    flat = flat_hypergraph(netlist)
    rows = []
    for k in PAPER_K_VALUES:
        for b in PAPER_B_VALUES:
            design = design_driven_partition(netlist, k=k, b=b, seed=args.seed)
            ml = multilevel_partition(flat, k, b, seed=args.seed)
            rows.append([
                k, b, design.cut_size,
                "yes" if design.balanced else "NO",
                design.flatten_steps, ml.cut_size,
                f"{ml.cut_size / max(design.cut_size, 1):.1f}x",
            ])
            print(f"  k={k} b={b}: design={design.cut_size} "
                  f"multilevel={ml.cut_size}")
    print()
    print(format_table(
        ["k", "b", "design cut", "balanced", "flattened", "multilevel cut",
         "ratio"],
        rows,
        title="Design-driven (Table 1) vs multilevel-on-flat (Table 2)",
    ))
    total_d = sum(r[2] for r in rows)
    total_m = sum(r[5] for r in rows)
    print(f"\naggregate cut ratio: {total_m / max(total_d, 1):.1f}x "
          f"(paper reports ~4.5x on the 1.2M-gate netlist)")


if __name__ == "__main__":
    main()
