"""Simulator toolbox tour: analysis, calibration, waveforms, saved partitions.

Covers the substrate features around the core algorithm:

1. structural analysis of a design (why partitioners behave as they do),
2. calibrating the virtual-cluster cost model to this host,
3. dumping a VCD waveform of a simulation run,
4. saving a partition to JSON and reusing it.

Run:  python examples/waveforms_and_analysis.py [outdir]
"""

import sys
import tempfile
from pathlib import Path

from repro.circuits import load_circuit, natural_schedule, random_vectors
from repro.core import design_driven_partition, load_partition, save_partition
from repro.hypergraph import analyze_netlist
from repro.sim import (
    ClusterSpec,
    SequentialSimulator,
    VcdWriter,
    calibrated_spec,
    compile_circuit,
    measure_event_cost,
    run_partitioned,
)


def main() -> None:
    outdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(tempfile.mkdtemp())
    outdir.mkdir(parents=True, exist_ok=True)

    netlist = load_circuit("cpu-test")
    circuit = compile_circuit(netlist)

    # 1. structural analysis
    print("=== structural analysis (cpu-test) ===")
    print(analyze_netlist(netlist).summary())

    # 2. host calibration: map modeled seconds to real seconds
    schedule = natural_schedule(netlist)
    events = random_vectors(netlist, 40, seed=1, schedule=schedule)
    calibration = measure_event_cost(circuit, events, repeats=2)
    spec = calibrated_spec(ClusterSpec(num_machines=2), calibration)
    print("\n=== host calibration ===")
    print(f"measured {calibration.events} events in {calibration.elapsed:.3f}s "
          f"-> {calibration.events_per_second():,.0f} events/s")
    print(f"calibrated event_cost = {spec.event_cost * 1e6:.2f} us")

    # 3. VCD waveform of a short run
    sim = SequentialSimulator(circuit)
    vcd = VcdWriter(netlist)  # primary I/O by default
    vcd.attach(sim)
    sim.add_inputs(random_vectors(netlist, 10, seed=2, schedule=schedule))
    sim.run()
    wave_path = outdir / "cpu.vcd"
    vcd.write(wave_path)
    print(f"\n=== waveform ===\nwrote {wave_path} "
          f"({len(wave_path.read_text().splitlines())} lines; open in GTKWave)")

    # 4. partition once, save, reuse
    part = design_driven_partition(netlist, k=2, b=15.0, seed=0)
    part_path = outdir / "cpu_k2.json"
    save_partition(part, part_path)
    reloaded = load_partition(part_path, netlist)
    clusters, machines = reloaded.to_simulation()
    report = run_partitioned(circuit, clusters, machines, events, spec)
    print(f"\n=== saved partition reuse ===")
    print(f"partition file: {part_path}")
    print(f"cut={reloaded.cut_size}, speedup={report.speedup:.2f} "
          f"(calibrated model), verified={report.verified}")


if __name__ == "__main__":
    main()
