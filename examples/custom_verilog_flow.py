"""Bring-your-own-Verilog: every step of the pipeline on user source.

Demonstrates the individual substrates a downstream project would use:
parsing, elaboration, hierarchy inspection, hypergraph export (hMetis
.hgr interchange), partitioning at two granularities, and simulation
with a custom testbench stimulus.

Run:  python examples/custom_verilog_flow.py
"""

import tempfile
from pathlib import Path

from repro.baselines import multilevel_partition
from repro.core import design_driven_partition
from repro.circuits import detect_clocks
from repro.hypergraph import (
    Clustering,
    flat_hypergraph,
    hierarchy_hypergraph,
    write_hgr,
)
from repro.sim import (
    ClusterSpec,
    InputEvent,
    SequentialSimulator,
    compile_circuit,
    run_partitioned,
)
from repro.verilog import compile_verilog, parse_source, write_netlist_verilog

SOURCE = """
// A 4-bit synchronous gray-code generator built from a binary counter
// stage and a bin->gray converter stage.
module bin_counter (clk, rst, q);
  input clk, rst; output [3:0] q;
  wire [3:0] d; wire c1, c2;
  not (d[0], q[0]);
  xor (d[1], q[1], q[0]);
  and (c1, q[1], q[0]);
  xor (d[2], q[2], c1);
  and (c2, q[2], c1);
  xor (d[3], q[3], c2);
  dffr f0 (q[0], d[0], clk, rst);
  dffr f1 (q[1], d[1], clk, rst);
  dffr f2 (q[2], d[2], clk, rst);
  dffr f3 (q[3], d[3], clk, rst);
endmodule

module bin2gray (b, g);
  input [3:0] b; output [3:0] g;
  buf (g[3], b[3]);
  xor (g[2], b[3], b[2]);
  xor (g[1], b[2], b[1]);
  xor (g[0], b[1], b[0]);
endmodule

module graygen (clk, rst, gray);
  input clk, rst;
  output [3:0] gray;
  wire [3:0] bin;
  bin_counter cnt (.clk(clk), .rst(rst), .q(bin));
  bin2gray conv (.b(bin), .g(gray));
endmodule
"""


def main() -> None:
    # parse + elaborate
    source = parse_source(SOURCE)
    print("modules:", ", ".join(source.modules))
    netlist = compile_verilog(SOURCE)
    print("elaborated:", netlist)
    for node in netlist.hierarchy.walk():
        indent = "  " * len(node.path)
        print(f"{indent}{node.name} ({node.module}): {node.total_gates} gates")

    # hypergraph views + hMetis interchange
    hier = hierarchy_hypergraph(netlist)
    flat = flat_hypergraph(netlist)
    print(f"\nhierarchy hypergraph: {hier}")
    print(f"flat hypergraph:      {flat}")
    out = Path(tempfile.mkdtemp()) / "graygen.hgr"
    write_hgr(flat, out)
    print(f"wrote hMetis interchange file: {out}")

    # partition both ways
    design = design_driven_partition(netlist, k=2, b=10.0, seed=0)
    ml = multilevel_partition(flat, 2, 10.0, seed=0)
    print(f"\ndesign-driven cut: {design.cut_size}  "
          f"(loads {design.part_weights.tolist()})")
    print(f"multilevel (flat) cut: {ml.cut_size}  "
          f"(loads {ml.part_weights.tolist()})")

    # a custom testbench: explicit reset sequence + 20 clock periods
    clk = detect_clocks(netlist)[0]
    rst = next(n for n in netlist.inputs if netlist.net_name(n) == "rst")
    events = [InputEvent(0, clk, 0), InputEvent(0, rst, 1),
              InputEvent(4, clk, 1), InputEvent(8, clk, 0),
              InputEvent(10, rst, 0)]
    for i in range(20):
        events += [InputEvent(12 + 8 * i, clk, 1),
                   InputEvent(16 + 8 * i, clk, 0)]

    circuit = compile_circuit(netlist)
    seq = SequentialSimulator(circuit)
    seq.add_inputs(events)
    seq.run()
    gray = sum(v << i for i, v in enumerate(seq.output_values()))
    print(f"\nafter 20 clocks the gray output is {gray:04b} "
          f"(binary count 20 % 16 = {20 % 16} -> gray {(20 % 16) ^ ((20 % 16) >> 1):04b})")

    # the same testbench on the 2-machine virtual cluster
    clusters, machines = design.to_simulation()
    report = run_partitioned(
        circuit, clusters, machines, events, ClusterSpec(num_machines=2)
    )
    print(f"parallel run verified={report.verified}, "
          f"speedup={report.speedup:.2f}, rollbacks={report.rollbacks}")

    # and back out to Verilog (flat) for other tools
    text = write_netlist_verilog(netlist)
    print(f"\nflattened Verilog is {len(text.splitlines())} lines; first three:")
    for line in text.splitlines()[:3]:
        print("  " + line)


if __name__ == "__main__":
    main()
