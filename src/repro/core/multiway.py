"""Design-driven multiway partitioning — the paper's algorithm (Figure 2).

Pipeline::

    setup k, b  →  cone initial partitioning  →  [ pairing → FM moves ]*
                →  balance check  →  (flatten largest super-gate,
                   redistribute load, repeat)  →  final partition

The hypergraph starts at *visible-node* granularity (top-level gates +
module-instance super-gates).  Whenever the load-balancing constraint
(Formula 1) cannot be met because super-gates are too coarse, the
largest super-gate inside an overweight partition is flattened one
hierarchy level, the partition assignment is carried over to the new
vertices, loads are redistributed, and pairing/FM resumes on the finer
hypergraph.  The loop ends when the constraint holds and no pairing
configuration yields further cut improvement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import PartitionError
from ..hypergraph.build import Clustering
from ..hypergraph.partition_state import PartitionState
from ..obs.recorder import NULL_RECORDER, Recorder
from ..verilog.netlist import Netlist
from .balance import BalanceConstraint
from .batch_refine import batch_refine, validate_refiner
from .cone import cone_partition
from .fm import rebalance_pair
from .parallel_refine import PairwiseRefiner, pairing_rounds

__all__ = ["MultiwayResult", "design_driven_partition"]


@dataclass
class MultiwayResult:
    """Final partition plus provenance.

    ``clustering`` is the (possibly partially flattened) visible-node
    set; ``assignment[i]`` is the partition of ``clustering.clusters[i]``.
    ``balanced`` records whether Formula 1 was ultimately met —
    partitions that exhausted every flattening opportunity without
    meeting a very tight b are returned with ``balanced=False`` rather
    than silently discarded.
    """

    clustering: Clustering
    assignment: np.ndarray
    k: int
    b: float
    cut_size: int
    part_weights: np.ndarray
    balanced: bool
    flatten_steps: int
    fm_rounds: int
    history: list[str] = field(default_factory=list)

    def gate_assignment(self) -> np.ndarray:
        """Partition id per gate of the underlying netlist."""
        out = np.zeros(self.clustering.netlist.num_gates, dtype=np.int64)
        for ci, cluster in enumerate(self.clustering.clusters):
            for gid in cluster.gate_ids:
                out[gid] = self.assignment[ci]
        return out

    def to_simulation(self) -> tuple[list[list[int]], list[int]]:
        """(gate clusters, machine per cluster) for the Time Warp engine."""
        return self.clustering.gate_clusters(), [int(p) for p in self.assignment]


def design_driven_partition(
    netlist_or_clustering: Netlist | Clustering,
    k: int,
    b: float,
    seed: int = 0,
    pairing: str = "gain",
    initial: str = "cone",
    max_fm_passes: int = 8,
    max_flatten_steps: int | None = None,
    max_rounds: int = 64,
    restarts: int = 1,
    workers: int | None = None,
    recorder: Recorder = NULL_RECORDER,
    refiner: str = "fm",
) -> MultiwayResult:
    """Run the design-driven multiway partitioning algorithm.

    Parameters
    ----------
    netlist_or_clustering:
        An elaborated netlist (partitioned at visible-node granularity)
        or a pre-built :class:`Clustering`.
    k, b:
        Partition count and balance factor (Formula 1).
    seed:
        Controls cone-order and pairing randomness; fully deterministic
        for a fixed value.
    pairing:
        Pairing strategy: ``"random"``, ``"exhaustive"``, ``"cut"`` or
        ``"gain"`` (paper §3.1.1).
    initial:
        Initial-partition generator: ``"cone"`` (the paper's choice) or
        ``"random"`` (ablation baseline).
    max_flatten_steps:
        Safety cap on flattening operations (default: number of
        instances in the design — enough to flatten everything).
    max_rounds:
        Cap on pairing/FM improvement rounds per granularity level.
    restarts:
        Independent runs with consecutive seeds; the best result wins
        (balance first, then cut).  Multi-start is the standard cheap
        defense against the local minima iterative partitioners fall
        into; the paper's single-run behaviour is ``restarts=1``.
    workers:
        Refinement worker processes (:mod:`repro.core.parallel_refine`).
        ``None`` consults the ``REPRO_WORKERS`` environment variable
        (unset means serial); any value produces **bit-identical**
        partitions — parallelism changes wall time only.  See
        ``docs/parallelism.md``.
    recorder:
        Observability sink (:mod:`repro.obs`).  Receives the
        ``part.*`` counters (cone stats, pairing rounds, FM moves,
        flatten/redistribute activity) and the phase timers
        ``partition.initial`` / ``partition.refine`` /
        ``partition.flatten`` / ``partition.rebalance``.  With
        ``restarts > 1`` every candidate run feeds the same recorder,
        so counters reflect total work, not just the winner.  The
        default :data:`~repro.obs.recorder.NULL_RECORDER` records
        nothing at zero cost; a recorder never changes the result.
    refiner:
        Refinement mode per improvement cycle: ``"fm"`` (the paper's
        pairing + pairwise heap FM) or ``"batch"`` (the data-parallel
        whole-boundary refiner of :mod:`repro.core.batch_refine`; no
        pairing, k-way moves in synchronous batches).  See
        ``docs/refinement.md``.
    """
    validate_refiner(refiner)
    if restarts > 1:
        candidates = [
            design_driven_partition(
                netlist_or_clustering, k, b, seed=seed + i, pairing=pairing,
                initial=initial, max_fm_passes=max_fm_passes,
                max_flatten_steps=max_flatten_steps, max_rounds=max_rounds,
                restarts=1, workers=workers, recorder=recorder,
                refiner=refiner,
            )
            for i in range(restarts)
        ]
        return min(candidates, key=lambda r: (not r.balanced, r.cut_size))
    if isinstance(netlist_or_clustering, Clustering):
        clustering = netlist_or_clustering
    else:
        clustering = Clustering.top_level(netlist_or_clustering)
    constraint = BalanceConstraint(k, b)
    rounds_fn = pairing_rounds(pairing, recorder=recorder)
    rng = np.random.default_rng(seed)
    history: list[str] = []

    with recorder.phase("partition.initial"):
        if initial == "cone":
            state = cone_partition(clustering, k, seed=seed, recorder=recorder)
        elif initial == "random":
            from ..baselines.random_partition import random_partition

            state = PartitionState(
                clustering.hypergraph(), k,
                random_partition(clustering.hypergraph(), k, seed=seed),
            )
        else:
            raise PartitionError(f"unknown initial partitioner {initial!r}")
    history.append(
        f"{initial} initial: cut={state.cut_size}, loads={state.part_weight.tolist()}"
    )

    if max_flatten_steps is None:
        max_flatten_steps = sum(
            1 for _ in clustering.netlist.hierarchy.walk()
        ) + len(clustering)

    fm_rounds = 0
    flatten_steps = 0
    engine = PairwiseRefiner(workers, recorder=recorder)
    try:
        fm_rounds, flatten_steps, clustering, state = _partition_loop(
            clustering, state, constraint, rounds_fn, engine, rng,
            max_fm_passes, max_flatten_steps, max_rounds, history, recorder,
            refiner,
        )
        engine.record_summary()
    finally:
        engine.close()

    if recorder.enabled:
        recorder.incr("part.rounds", fm_rounds)

    return MultiwayResult(
        clustering=clustering,
        assignment=state.part.copy(),
        k=k,
        b=b,
        cut_size=state.cut_size,
        part_weights=state.part_weight.copy(),
        balanced=constraint.satisfied(state.part_weight),
        flatten_steps=flatten_steps,
        fm_rounds=fm_rounds,
        history=history,
    )


def _partition_loop(
    clustering: Clustering,
    state: PartitionState,
    constraint: BalanceConstraint,
    rounds_fn,
    engine: PairwiseRefiner,
    rng: np.random.Generator,
    max_fm_passes: int,
    max_flatten_steps: int,
    max_rounds: int,
    history: list[str],
    recorder: Recorder,
    refiner: str = "fm",
) -> tuple[int, int, Clustering, PartitionState]:
    """The refine / rebalance / flatten loop of Figure 2 (body of
    :func:`design_driven_partition`, split out so the refinement
    engine's lifecycle wraps it cleanly)."""
    fm_rounds = 0
    flatten_steps = 0
    while True:
        with recorder.phase("partition.refine"):
            fm_rounds += _improve_until_stable(
                state, constraint, rounds_fn, engine, rng, max_fm_passes,
                max_rounds, history, refiner=refiner, recorder=recorder,
            )
        if constraint.satisfied(state.part_weight):
            break
        # first try to repair the load at the current granularity —
        # flattening is only warranted when the existing grains cannot
        # be packed into the admissible band
        with recorder.phase("partition.rebalance"):
            _redistribute(state, constraint, history, recorder)
        if constraint.satisfied(state.part_weight):
            continue  # re-run FM on the repaired partition, then re-check
        # constraint still violated: flatten the largest super-gate
        # inside the most overweight partition (paper §3.2)
        if flatten_steps >= max_flatten_steps:
            history.append("flatten budget exhausted; returning unbalanced")
            break
        with recorder.phase("partition.flatten"):
            target = _flatten_candidate(clustering, state, constraint)
            if target is None:
                target_found = False
            else:
                target_found = True
                clustering, state = _flatten_and_carry(clustering, state, target)
        if not target_found:
            # nothing left to flatten: final greedy load repair
            with recorder.phase("partition.rebalance"):
                _final_rebalance(state, constraint, history, recorder)
            break
        flatten_steps += 1
        if recorder.enabled:
            recorder.incr("part.flatten.steps")
        history.append(
            f"flatten step {flatten_steps}: vertex {target} -> "
            f"{len(clustering)} clusters; cut={state.cut_size}"
        )
        with recorder.phase("partition.rebalance"):
            _redistribute(state, constraint, history, recorder)

    return fm_rounds, flatten_steps, clustering, state


def _improve_until_stable(
    state: PartitionState,
    constraint: BalanceConstraint,
    rounds_fn,
    engine: PairwiseRefiner,
    rng: np.random.Generator,
    max_fm_passes: int,
    max_rounds: int,
    history: list[str],
    refiner: str = "fm",
    recorder: Recorder = NULL_RECORDER,
) -> int:
    """Refinement until no move yields gain (Figure 2 loop).

    With ``refiner="fm"``, ``rounds_fn`` yields, per improvement round,
    a list of conflict-free pair rounds; ``engine`` executes each — in
    place serially, or via its process pool with deterministic move
    replay (either way the resulting partition is identical).  With
    ``refiner="batch"``, the data-parallel whole-boundary refiner runs
    to its fixpoint instead — no pairing, the same round cap.
    """
    if refiner == "batch":
        # a batch round is one synchronous gather/select/apply step —
        # far finer-grained than a pairing round — so the FM round cap
        # does not apply; the refiner's own default cap backstops the
        # natural fixpoint exit
        rounds = batch_refine(state, constraint,
                              recorder=recorder).rounds
        history.append(
            f"batch refine fixpoint after {rounds} rounds: "
            f"cut={state.cut_size}, loads={state.part_weight.tolist()}"
        )
        return rounds
    rounds = 0
    for _ in range(max_rounds):
        schedule = rounds_fn(state, rng)
        round_gain = 0
        for pair_round in schedule:
            round_gain += engine.refine_round(
                state, pair_round, constraint, max_passes=max_fm_passes,
            )
        rounds += 1
        if round_gain <= 0:
            break
    history.append(
        f"fm stable after {rounds} rounds: cut={state.cut_size}, "
        f"loads={state.part_weight.tolist()}"
    )
    return rounds


def _flatten_candidate(
    clustering: Clustering,
    state: PartitionState,
    constraint: BalanceConstraint,
) -> int | None:
    """Pick the super-gate to flatten: the largest one inside the most
    overweight partition; falls back to the globally largest one."""
    lo, hi = constraint.bounds(state.hg.total_weight)
    order = np.argsort(-state.part_weight)
    for p in order:
        if state.part_weight[p] <= hi:
            break
        members = [v for v in range(state.hg.num_vertices) if state.part_of(v) == int(p)]
        cand = clustering.largest_super_gate(among=members)
        if cand is not None:
            return cand
    # underweight-only violations: flatten the largest super-gate anywhere
    # so finer grains can migrate into the starved partition
    return clustering.largest_super_gate()


def _flatten_and_carry(
    clustering: Clustering,
    state: PartitionState,
    index: int,
) -> tuple[Clustering, PartitionState]:
    """Flatten one super-gate, carrying the assignment onto its pieces."""
    owner = state.part_of(index)
    before = len(clustering)
    new_clustering = clustering.flatten(index)
    grown = len(new_clustering) - before + 1  # replacement cluster count
    assignment = np.concatenate(
        [
            state.part[:index],
            np.full(grown, owner, dtype=np.int64),
            state.part[index + 1 :],
        ]
    )
    new_state = PartitionState(new_clustering.hypergraph(), state.k, assignment)
    return new_clustering, new_state


def _redistribute(
    state: PartitionState,
    constraint: BalanceConstraint,
    history: list[str],
    recorder: Recorder = NULL_RECORDER,
) -> None:
    """Repair over- and under-weight partitions by moving the current
    granularity's grains from the heaviest toward the lightest."""
    if recorder.enabled:
        recorder.incr("part.redistribute.calls")
    lo, hi = constraint.bounds(state.hg.total_weight)
    for _ in range(2 * state.k):
        heavy = int(np.argmax(state.part_weight))
        light = int(np.argmin(state.part_weight))
        if heavy == light:
            break
        if state.part_weight[heavy] <= hi and state.part_weight[light] >= lo:
            break
        moved = rebalance_pair(state, heavy, light, constraint, recorder=recorder)
        if moved == 0:
            break
        history.append(
            f"redistributed {moved} vertices {heavy}->{light}: "
            f"loads={state.part_weight.tolist()}"
        )


def _final_rebalance(
    state: PartitionState,
    constraint: BalanceConstraint,
    history: list[str],
    recorder: Recorder = NULL_RECORDER,
) -> None:
    """Last-resort repair when no super-gate remains to flatten."""
    lo, hi = constraint.bounds(state.hg.total_weight)
    for _ in range(4 * state.k):
        weights = state.part_weight
        heavy = int(np.argmax(weights))
        light = int(np.argmin(weights))
        if (weights[heavy] <= hi and weights[light] >= lo) or heavy == light:
            break
        if rebalance_pair(state, heavy, light, constraint, recorder=recorder) == 0:
            break
    history.append(
        f"final rebalance: loads={state.part_weight.tolist()}, "
        f"cut={state.cut_size}"
    )
