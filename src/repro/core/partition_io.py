"""Partition persistence: save a computed partition, reuse it later.

Pre-simulation selects one partition that the (much longer) full run
then uses — in practice those are separate invocations, possibly on
separate days.  This module serializes a
:class:`~repro.core.multiway.MultiwayResult` to a JSON document keyed
by *gate names* (stable across re-elaboration of the same source,
unlike dense ids) and re-binds it to a netlist on load, with integrity
checks.

Format (version 1)::

    {
      "format": "repro-partition",
      "version": 1,
      "k": 4, "b": 7.5,
      "cut_size": 91, "balanced": true,
      "top": "viterbi_top", "num_gates": 4322,
      "clusters": [
        {"name": "ch0_smu0", "partition": 2,
         "gates": ["ch0_smu0.col0._g0", ...]},
        ...
      ]
    }
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..errors import PartitionError
from ..hypergraph.build import Cluster, Clustering
from ..hypergraph.partition_state import PartitionState
from ..verilog.netlist import Netlist
from .multiway import MultiwayResult

__all__ = ["save_partition", "load_partition", "dumps_partition", "loads_partition"]

_FORMAT = "repro-partition"
_VERSION = 1


def dumps_partition(result: MultiwayResult) -> str:
    """Serialize a partition to a JSON string."""
    netlist = result.clustering.netlist
    clusters = []
    for cluster, part in zip(result.clustering.clusters, result.assignment):
        clusters.append(
            {
                "name": cluster.name,
                "partition": int(part),
                "gates": [netlist.gates[g].name for g in cluster.gate_ids],
            }
        )
    doc = {
        "format": _FORMAT,
        "version": _VERSION,
        "k": result.k,
        "b": result.b,
        "cut_size": result.cut_size,
        "balanced": result.balanced,
        "top": netlist.top,
        "num_gates": netlist.num_gates,
        "clusters": clusters,
    }
    return json.dumps(doc, indent=1)


def save_partition(result: MultiwayResult, path: str | Path) -> None:
    """Write a partition JSON file."""
    Path(path).write_text(dumps_partition(result))


def loads_partition(text: str, netlist: Netlist) -> MultiwayResult:
    """Re-bind a serialized partition to an elaborated netlist.

    The netlist must contain exactly the gates the file names (same
    source re-elaborated); mismatches raise :class:`PartitionError`
    with the offending name.
    """
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise PartitionError(f"not a partition file: {exc}") from exc
    if doc.get("format") != _FORMAT:
        raise PartitionError("not a repro-partition document")
    if doc.get("version") != _VERSION:
        raise PartitionError(
            f"unsupported partition format version {doc.get('version')!r}"
        )
    if doc.get("num_gates") != netlist.num_gates:
        raise PartitionError(
            f"partition was computed for {doc.get('num_gates')} gates; "
            f"this netlist has {netlist.num_gates}"
        )
    by_name = {g.name: g.gid for g in netlist.gates}
    clusters: list[Cluster] = []
    assignment: list[int] = []
    seen: set[int] = set()
    k = int(doc["k"])
    for entry in doc["clusters"]:
        gids = []
        for name in entry["gates"]:
            gid = by_name.get(name)
            if gid is None:
                raise PartitionError(f"netlist has no gate named {name!r}")
            if gid in seen:
                raise PartitionError(f"gate {name!r} appears in two clusters")
            seen.add(gid)
            gids.append(gid)
        part = int(entry["partition"])
        if not (0 <= part < k):
            raise PartitionError(
                f"cluster {entry['name']!r} assigned to partition {part} "
                f"outside [0, {k})"
            )
        clusters.append(
            Cluster(entry["name"], tuple(sorted(gids)), len(gids))
        )
        assignment.append(part)
    if len(seen) != netlist.num_gates:
        raise PartitionError(
            f"partition covers {len(seen)} of {netlist.num_gates} gates"
        )
    clustering = Clustering(netlist, clusters)
    state = PartitionState(clustering.hypergraph(), k, assignment)
    return MultiwayResult(
        clustering=clustering,
        assignment=np.asarray(assignment, dtype=np.int64),
        k=k,
        b=float(doc["b"]),
        cut_size=state.cut_size,
        part_weights=state.part_weight.copy(),
        balanced=bool(doc.get("balanced", False)),
        flatten_steps=0,
        fm_rounds=0,
        history=[f"loaded from partition file (saved cut {doc['cut_size']})"],
    )


def load_partition(path: str | Path, netlist: Netlist) -> MultiwayResult:
    """Read a partition JSON file and bind it to ``netlist``."""
    return loads_partition(Path(path).read_text(), netlist)
