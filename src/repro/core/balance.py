"""Load-balancing constraint (paper Formula 1).

The load of a processor is the number of gates assigned to it; the
balance factor ``b`` (in percent) admits loads within

    load * (1/k - b/100)  <=  load[i]  <=  load * (1/k + b/100)

so two processors' loads differ by at most ``2*b`` percent of the total
circuit load.  The paper sweeps b over {2.5, 5, 7.5, 10, 12.5, 15}.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError

__all__ = ["BalanceConstraint", "PAPER_B_VALUES", "PAPER_K_VALUES"]

#: the (k, b) grid of the paper's Tables 1-3
PAPER_K_VALUES = (2, 3, 4)
PAPER_B_VALUES = (2.5, 5.0, 7.5, 10.0, 12.5, 15.0)


@dataclass(frozen=True)
class BalanceConstraint:
    """The paper's Formula 1 for a fixed (k, b)."""

    k: int
    b: float

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ConfigError(f"k must be >= 1, got {self.k}")
        if self.b < 0:
            raise ConfigError(f"b must be >= 0, got {self.b}")

    def bounds(self, total_load: int) -> tuple[float, float]:
        """(lower, upper) admissible load per partition."""
        lo = total_load * (1.0 / self.k - self.b / 100.0)
        hi = total_load * (1.0 / self.k + self.b / 100.0)
        return max(lo, 0.0), hi

    def satisfied(self, part_weights: np.ndarray | list[int], total_load: int | None = None) -> bool:
        """Whether every partition's load is within bounds."""
        w = np.asarray(part_weights)
        total = int(w.sum()) if total_load is None else total_load
        lo, hi = self.bounds(total)
        return bool((w >= lo - 1e-9).all() and (w <= hi + 1e-9).all())

    def violation(self, part_weights: np.ndarray | list[int]) -> float:
        """Total weight outside the admissible band (0 when satisfied)."""
        w = np.asarray(part_weights, dtype=np.float64)
        lo, hi = self.bounds(int(w.sum()))
        over = np.maximum(w - hi, 0.0).sum()
        under = np.maximum(lo - w, 0.0).sum()
        return float(over + under)

    def describe(self, total_load: int) -> str:
        """Human-readable bounds for diagnostics."""
        lo, hi = self.bounds(total_load)
        return (
            f"k={self.k}, b={self.b}%: each partition in "
            f"[{lo:.0f}, {hi:.0f}] of {total_load} gates"
        )
