"""Recursive bipartitioning multiway — the alternative the paper rejects.

Paper §3.1.1: "The recursive approach applies bipartitioning
recursively until the desired number of partitions is obtained ... it
suffers from several limitations.  If the number of partitions [is] not
a power of 2, the desired number of multiway partition[s] cannot be
achieved.  Furthermore, as the algorithm proceeds, it becomes harder to
reduce the cut-size since the partitioning is performed on finer and
finer hypergraphs."

This module implements that rejected alternative faithfully — repeated
two-way design-driven partitioning of each half — so the ablation
benchmark can reproduce the paper's argument for choosing the *direct*
pairwise algorithm.  Non-power-of-two k is supported here through
proportional weight targets (a small generalization; restricting to
powers of two only weakens the baseline further).
"""

from __future__ import annotations

import numpy as np

from ..errors import PartitionError
from ..hypergraph.build import Clustering
from ..hypergraph.partition_state import PartitionState
from ..verilog.netlist import Netlist
from .balance import BalanceConstraint
from .batch_refine import batch_refine, validate_refiner
from .cone import cone_partition
from .fm import refine_pair
from .multiway import MultiwayResult
from .parallel_refine import resolve_workers

__all__ = ["recursive_design_driven_partition"]


def recursive_design_driven_partition(
    netlist_or_clustering: Netlist | Clustering,
    k: int,
    b: float,
    seed: int = 0,
    max_fm_passes: int = 8,
    workers: int | None = None,
    refiner: str = "fm",
) -> MultiwayResult:
    """k-way partition by recursive two-way design-driven splits.

    Each split runs cone seeding restricted to the sub-problem followed
    by two-way FM under a proportional balance window derived from the
    global Formula-1 constraint.  No super-gate flattening is performed
    (the two-way predecessor [16] flattens too, but interleaving
    flattening with recursion re-derives the direct algorithm; keeping
    the recursive baseline pure preserves the §3.1.1 contrast).

    ``workers`` is accepted for interface parity with
    :func:`repro.core.multiway.design_driven_partition` and validated
    through the shared :func:`repro.core.parallel_refine.resolve_workers`
    policy, but each recursive level refines a *single* pair — there is
    no disjoint-pair round to fan out, so the value cannot change the
    result or the schedule (this limitation is exactly the paper's
    §3.1.1 argument against the recursive approach).

    ``refiner`` selects the per-split improvement engine: ``"fm"`` runs
    heap FM (:func:`repro.core.fm.refine_pair`) and ``"batch"`` the
    data-parallel boundary refiner
    (:func:`repro.core.batch_refine.batch_refine`) restricted to the
    split's two active blocks.
    """
    validate_refiner(refiner)
    resolve_workers(workers)  # validate; single-pair splits stay serial
    if isinstance(netlist_or_clustering, Clustering):
        clustering = netlist_or_clustering
    else:
        clustering = Clustering.top_level(netlist_or_clustering)
    hg = clustering.hypergraph()
    if k < 1 or k > hg.num_vertices:
        raise PartitionError(f"invalid k={k} for {hg.num_vertices} vertices")
    assignment = np.zeros(hg.num_vertices, dtype=np.int64)
    seed_state = cone_partition(clustering, max(k, 1), seed=seed)
    _split(
        hg, np.arange(hg.num_vertices), k, 0, b, seed, max_fm_passes,
        assignment, seed_state, refiner,
    )
    state = PartitionState(hg, k, assignment)
    constraint = BalanceConstraint(k, b)
    return MultiwayResult(
        clustering=clustering,
        assignment=assignment,
        k=k,
        b=b,
        cut_size=state.cut_size,
        part_weights=state.part_weight.copy(),
        balanced=constraint.satisfied(state.part_weight),
        flatten_steps=0,
        fm_rounds=k - 1,
        history=[f"recursive bipartitioning into {k} parts"],
    )


def _split(
    hg,
    vertices: np.ndarray,
    k: int,
    first_part: int,
    b: float,
    seed: int,
    max_fm_passes: int,
    assignment: np.ndarray,
    seed_state: PartitionState,
    refiner: str = "fm",
) -> None:
    if k == 1:
        assignment[vertices] = first_part
        return
    k0 = k // 2
    frac0 = k0 / k
    # two-way split of this vertex subset on the FULL hypergraph: build
    # a temporary 2-way state where everything outside the subset is
    # parked in a frozen third partition so FM cannot touch it
    local = PartitionState(hg, 3, np.full(hg.num_vertices, 2, dtype=np.int64))
    # seed: order the subset by the global cone partition's layout so
    # related cones start on the same side
    order = sorted(
        (int(v) for v in vertices),
        key=lambda v: (seed_state.part_of(v), v),
    )
    subset_weight = int(hg.vertex_weight[vertices].sum())
    target0 = frac0 * subset_weight
    acc = 0
    for v in order:
        side = 0 if acc < target0 else 1
        local.move(v, side)
        if side == 0:
            acc += int(hg.vertex_weight[v])
    # FM between the two sides with the subset-scaled balance window
    slack = subset_weight * b / 100.0
    window = _SubsetWindow(target0, subset_weight - target0, slack, subset_weight)
    if refiner == "batch":
        batch_refine(local, window, blocks=(0, 1))
    else:
        refine_pair(local, 0, 1, window, max_passes=max_fm_passes)
    left = np.array([v for v in vertices if local.part_of(int(v)) == 0])
    right = np.array([v for v in vertices if local.part_of(int(v)) == 1])
    if len(left) == 0 or len(right) == 0:
        half = len(vertices) // 2
        left, right = vertices[:half], vertices[half:]
    _split(hg, left, k0, first_part, b, seed * 31 + 1, max_fm_passes,
           assignment, seed_state, refiner)
    _split(hg, right, k - k0, first_part + k0, b, seed * 31 + 2, max_fm_passes,
           assignment, seed_state, refiner)


class _SubsetWindow:
    """Balance-constraint adapter with explicit asymmetric targets.

    :func:`repro.core.fm.refine_pair` only consults ``bounds(total)``;
    the recursive splitter needs windows around unequal targets computed
    from the *subset* weight, not the hypergraph total.
    """

    def __init__(self, t0: float, t1: float, slack: float, subset: float) -> None:
        lo = max(min(t0, t1) - slack, 0.0)
        hi = max(t0, t1) + slack
        self._bounds = (lo, hi)

    def bounds(self, total_weight: int) -> tuple[float, float]:
        return self._bounds
