"""Cone partitioning — the initial-partition stage (paper §3.3).

"A cone partitioning algorithm [Saucier et al.] is first employed to
generate an initial partition.  Cone partitioning emphasizes the
concurrency present in the design.  The algorithm starts at the primary
inputs of the circuit and traverses the hypergraph."

Concretely: every primary input defines a *cone* — the set of vertices
reachable from it through driver→sink net direction.  Cones are
complete input-to-output computation paths; placing whole cones on one
processor maximizes the work a processor can do without waiting on its
peers.  Cones are assigned greedily, heaviest unclaimed cone first,
always to the currently lightest partition; a vertex shared by several
cones goes wherever the first cone that reached it went (cones overlap
heavily in real circuits).  Vertices unreachable from any input —
constant generators, dangling logic — are packed last, lightest
partition first.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..errors import PartitionError
from ..hypergraph.build import Clustering
from ..hypergraph.partition_state import PartitionState
from ..obs.recorder import NULL_RECORDER, Recorder

__all__ = ["cone_partition", "build_cluster_dag", "input_cones"]


def build_cluster_dag(clustering: Clustering) -> tuple[list[list[int]], list[int]]:
    """Directed cluster graph and input-fed roots.

    Returns ``(successors, roots)`` where ``successors[c]`` lists the
    clusters reading any net driven inside cluster ``c`` (self-loops
    dropped), and ``roots`` are clusters reading a primary-input net.
    """
    netlist = clustering.netlist
    gate_cluster = [0] * netlist.num_gates
    for ci, cluster in enumerate(clustering.clusters):
        for gid in cluster.gate_ids:
            gate_cluster[gid] = ci
    succ: list[set[int]] = [set() for _ in clustering.clusters]
    roots: set[int] = set()
    for nid in range(netlist.num_nets):
        driver = netlist.net_driver[nid]
        sinks = netlist.net_sinks[nid]
        if not sinks:
            continue
        if driver >= 0:
            src = gate_cluster[driver]
            for gid in sinks:
                dst = gate_cluster[gid]
                if dst != src:
                    succ[src].add(dst)
        elif nid in set(netlist.inputs):
            for gid in sinks:
                roots.add(gate_cluster[gid])
    return [sorted(s) for s in succ], sorted(roots)


def input_cones(clustering: Clustering) -> list[list[int]]:
    """Reachable cluster set per root, heaviest cone first."""
    succ, roots = build_cluster_dag(clustering)
    weights = [c.weight for c in clustering.clusters]
    cones: list[list[int]] = []
    for root in roots:
        seen = {root}
        frontier = deque([root])
        while frontier:
            c = frontier.popleft()
            for nxt in succ[c]:
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        cones.append(sorted(seen))
    cones.sort(key=lambda cone: (-sum(weights[c] for c in cone), cone))
    return cones


def cone_partition(
    clustering: Clustering,
    k: int,
    seed: int = 0,
    recorder: Recorder = NULL_RECORDER,
) -> PartitionState:
    """Initial k-way partition by greedy cone assignment.

    The seed only breaks ties among equal-weight cones (assignment is
    otherwise deterministic), keeping repeated runs reproducible while
    allowing restarts.

    ``recorder`` (optional, :mod:`repro.obs`) receives the
    ``part.cone.*`` counters — cone count, input-fed roots, and
    vertices unreachable from any input; the default no-op recorder
    keeps this free.
    """
    hg = clustering.hypergraph()
    if k > hg.num_vertices:
        raise PartitionError(
            f"cannot make {k} partitions from {hg.num_vertices} vertices"
        )
    rng = np.random.default_rng(seed)
    cones = input_cones(clustering)
    if seed:
        # perturb the visit order of equal-weight cones
        weights = [c.weight for c in clustering.clusters]
        keyed = [
            (-sum(weights[c] for c in cone), rng.random(), cone) for cone in cones
        ]
        keyed.sort(key=lambda t: (t[0], t[1]))
        cones = [t[2] for t in keyed]

    if recorder.enabled:
        _, roots = build_cluster_dag(clustering)
        recorder.incr("part.cone.cones", len(cones))
        recorder.incr("part.cone.roots", len(roots))

    assignment = np.full(hg.num_vertices, -1, dtype=np.int64)
    load = np.zeros(k, dtype=np.int64)
    ideal = hg.total_weight / k
    for cone in cones:
        unclaimed = [c for c in cone if assignment[c] < 0]
        if not unclaimed:
            continue
        # whole cones go to one partition while it has room; a cone
        # larger than the ideal load spills into the next-lightest
        # partition rather than swamping one processor
        target = int(np.argmin(load))
        for c in unclaimed:
            if load[target] >= ideal and k > 1:
                target = int(np.argmin(load))
            assignment[c] = target
            load[target] += hg.vertex_weight[c]
    orphans = 0
    for v in range(hg.num_vertices):
        if assignment[v] < 0:
            orphans += 1
            target = int(np.argmin(load))
            assignment[v] = target
            load[target] += hg.vertex_weight[v]
    if recorder.enabled and orphans:
        recorder.incr("part.cone.orphan_vertices", orphans)
    return PartitionState(hg, k, assignment)
