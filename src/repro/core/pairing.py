"""Partition-pairing strategies (paper §3.1.1).

The pairwise multiway algorithm repeatedly picks two partitions and
runs FM between them.  The paper lists four selection criteria:

* **random** — simple and efficient, "but the pairing quality is not
  good";
* **exhaustive** — every combination; expensive but "able to climb out
  of local minima";
* **cut-based** — the pair with the maximum mutual cut;
* **gain-based** — the pair with the maximum estimated cut reduction.

A strategy yields an ordered list of pairs for one improvement round;
the multiway driver keeps requesting rounds until no pair produces
gain (the flowchart's "pairing configuration available?" test).
"""

from __future__ import annotations

from itertools import combinations
from typing import Callable

import numpy as np

from ..errors import ConfigError
from ..hypergraph.partition_state import PartitionState
from ..obs.recorder import NULL_RECORDER, Recorder

__all__ = ["pairing_strategy", "PAIRING_STRATEGIES", "estimate_pair_gain"]


def _random_pairs(state: PartitionState, rng: np.random.Generator) -> list[tuple[int, int]]:
    """Disjoint random pairs (odd partition sits a round out)."""
    parts = list(range(state.k))
    rng.shuffle(parts)
    return [
        (min(parts[i], parts[i + 1]), max(parts[i], parts[i + 1]))
        for i in range(0, len(parts) - 1, 2)
    ]


def _exhaustive_pairs(state: PartitionState, rng: np.random.Generator) -> list[tuple[int, int]]:
    """Every unordered pair."""
    return list(combinations(range(state.k), 2))


def _cut_based_pairs(state: PartitionState, rng: np.random.Generator) -> list[tuple[int, int]]:
    """Disjoint pairs by descending mutual cut weight."""
    matrix = state.pair_cut_matrix()
    pairs = sorted(
        combinations(range(state.k), 2),
        key=lambda ab: (-int(matrix[ab[0], ab[1]]), ab),
    )
    taken: set[int] = set()
    out: list[tuple[int, int]] = []
    for a, b in pairs:
        if a in taken or b in taken:
            continue
        if matrix[a, b] == 0:
            continue  # no shared edge: FM between them cannot gain
        taken.add(a)
        taken.add(b)
        out.append((a, b))
    return out


def estimate_pair_gain(state: PartitionState, a: int, b: int, sample: int = 0) -> int:
    """Cheap optimistic estimate of the cut reduction FM(a, b) can find.

    Sums the positive single-move gains of boundary vertices — an
    upper-bound-flavoured proxy (moves interact), adequate for ranking
    pairs.  ``sample`` > 0 caps the number of boundary vertices
    inspected for very large states.

    Fully vectorized: :meth:`PartitionState.pair_boundary` masks the
    spanning edges through the λ array and gathers their pins in one
    CSR pass (the boundary comes back sorted, so the sample cap is the
    same deterministic ``sorted(...)[:sample]`` prefix as before), and
    one batch :meth:`PartitionState.move_gains` query replaces the
    per-vertex gain loop.
    """
    boundary = state.pair_boundary(a, b)
    if sample and len(boundary) > sample:
        boundary = boundary[:sample]
    if not len(boundary):
        return 0
    targets = np.where(state.part[boundary] == a, b, a)
    gains = state.move_gains(boundary, targets)
    return int(gains[gains > 0].sum())


def _gain_based_pairs(state: PartitionState, rng: np.random.Generator) -> list[tuple[int, int]]:
    """Disjoint pairs by descending estimated FM gain."""
    scored = []
    for a, b in combinations(range(state.k), 2):
        if state.pair_cut(a, b) == 0:
            continue
        scored.append((estimate_pair_gain(state, a, b), a, b))
    scored.sort(key=lambda t: (-t[0], t[1], t[2]))
    taken: set[int] = set()
    out: list[tuple[int, int]] = []
    for gain, a, b in scored:
        if a in taken or b in taken:
            continue
        taken.add(a)
        taken.add(b)
        out.append((a, b))
    return out


PAIRING_STRATEGIES: dict[str, Callable[[PartitionState, np.random.Generator], list[tuple[int, int]]]] = {
    "random": _random_pairs,
    "exhaustive": _exhaustive_pairs,
    "cut": _cut_based_pairs,
    "gain": _gain_based_pairs,
}


def pairing_strategy(
    name: str,
    recorder: Recorder = NULL_RECORDER,
) -> Callable[[PartitionState, np.random.Generator], list[tuple[int, int]]]:
    """Look up a pairing strategy by name (see :data:`PAIRING_STRATEGIES`).

    When an enabled ``recorder`` (:mod:`repro.obs`) is supplied the
    returned callable also counts ``part.pairing.rounds`` (one per
    invocation) and ``part.pairing.pairs`` (pairs proposed); the
    default no-op recorder returns the raw strategy unchanged.
    """
    try:
        strategy = PAIRING_STRATEGIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown pairing strategy {name!r}; choose from "
            f"{sorted(PAIRING_STRATEGIES)}"
        )
    if not recorder.enabled:
        return strategy

    def counted(
        state: PartitionState, rng: np.random.Generator
    ) -> list[tuple[int, int]]:
        pairs = strategy(state, rng)
        recorder.incr("part.pairing.rounds")
        recorder.incr("part.pairing.pairs", len(pairs))
        return pairs

    return counted
