"""Deterministic process-parallel pairwise refinement.

The paper's pairwise multiway improvement (§3.1.1) selects *disjoint*
partition pairs per round, which makes each round embarrassingly
parallel.  This module exploits that without giving up run-to-run
reproducibility: the partition produced at any worker count is
**bit-identical** to the serial one.

Why that is possible at all rests on an invariance property of the
pairwise FM kernel (:func:`repro.core.fm.refine_pair`):

    For two *disjoint* pairs (a, b) and (c, d), the move sequence FM
    computes for (a, b) is unaffected by any moves performed inside
    (c, d).

Sketch: every gain FM evaluates for an a↔b move depends only on
``counts[a]``, ``counts[b]`` and the predicate "some partition outside
{a, b} still touches this edge".  Moves inside (c, d) only relocate
pins between c and d, so the occupied-outside predicate, the pair's
partition weights and the pair's vertex membership are all invariant —
hence refining each pair against the *round-start snapshot* yields
exactly the moves a serial in-place sweep (in any pair order) would
make.  The engine therefore:

1. ships the read-only CSR hypergraph arrays to each worker **once**
   (pool initializer; re-shipped only when super-gate flattening
   replaces the hypergraph),
2. sends each worker the round-start derived-array snapshot
   (:meth:`PartitionState.export_arrays` — assignment, weights,
   per-edge counts, λ, cut) plus one pair, adopted without any
   per-pair recompute,
3. receives a *slim move list* (the retained ``(vertex, target)``
   moves) per pair, and
4. replays the move lists on the driver's state **in pair order** —
   a deterministic reduction independent of completion order.

The ``exhaustive`` strategy emits overlapping pairs (every C(k, 2)
combination), so it is decomposed by :func:`tournament_rounds` — a
round-robin tournament (circle method) that covers every pair exactly
once in k-1 (even k) or k (odd k) conflict-free rounds; with odd k one
partition sits each round out, matching the bye semantics of the random
strategy.  The other three strategies already produce disjoint pairs
and pass through :func:`schedule_rounds` unchanged.

Observability: the engine reports ``part.refine.rounds`` /
``part.refine.tasks`` as counters (deterministic, structural) and
``part.refine.workers`` / ``part.refine.ideal_speedup`` /
``part.refine.utilization`` as host values — they depend on the
execution harness's worker count, so they live in the quarantined
``host_timings`` channel with wall time, never in the deterministic
counter body.  Each pair task — in a pool
worker *and* on the serial path — runs under its own mini-recorder
(:func:`repro.obs.spans.worker_telemetry`) whose ``refine.pair`` span
and FM counters travel back with the move list and merge in pair
order, so the merged telemetry document is byte-identical at any
worker count.  See ``docs/parallelism.md`` for the full determinism
contract and the move-replay protocol.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Sequence

import numpy as np

from ..errors import ConfigError, PartitionError
from ..hypergraph.partition_state import PartitionState
from ..obs.recorder import NULL_RECORDER, Recorder
from ..obs.spans import export_telemetry, merge_telemetry, worker_telemetry
from .balance import BalanceConstraint
from .fm import refine_pair
from .pairing import PAIRING_STRATEGIES, pairing_strategy

__all__ = [
    "REPRO_WORKERS_ENV",
    "resolve_workers",
    "tournament_rounds",
    "schedule_rounds",
    "pairing_rounds",
    "PairwiseRefiner",
]

#: environment variable consulted when no explicit worker count is given
REPRO_WORKERS_ENV = "REPRO_WORKERS"


def resolve_workers(workers: int | None = None) -> int:
    """Resolve a worker count for any parallel harness in the repo.

    One shared policy (used by the refinement engine and the
    :func:`repro.bench.parallel.run_presim_grid` sweep alike):

    * ``workers=None`` — consult the ``REPRO_WORKERS`` environment
      variable; unset/empty means serial (1).  The env request is
      capped at ``os.cpu_count()`` — an environment-wide default must
      not oversubscribe small CI boxes.
    * an explicit integer is honoured verbatim (>= 1 enforced, no cap):
      deliberate oversubscription is a caller's choice, and the
      determinism contract makes any worker count produce identical
      results anyway.
    """
    if workers is None:
        raw = os.environ.get(REPRO_WORKERS_ENV, "").strip()
        if not raw:
            return 1
        try:
            requested = int(raw)
        except ValueError:
            raise ConfigError(
                f"{REPRO_WORKERS_ENV}={raw!r} is not an integer"
            ) from None
        if requested < 1:
            raise ConfigError(
                f"{REPRO_WORKERS_ENV} must be >= 1, got {requested}"
            )
        return max(1, min(requested, os.cpu_count() or 1))
    workers = int(workers)
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    return workers


def tournament_rounds(k: int) -> list[list[tuple[int, int]]]:
    """Round-robin tournament schedule over partitions ``0..k-1``.

    Circle method: every unordered pair appears in exactly one round,
    pairs within a round are disjoint.  Even k gives k-1 rounds of
    k/2 pairs; odd k gives k rounds of (k-1)/2 pairs with one
    partition taking a bye each round (the same "odd partition sits a
    round out" semantics as the random pairing strategy).
    """
    if k < 2:
        return []
    players = list(range(k))
    if k % 2:
        players.append(-1)  # bye marker
    n = len(players)
    rounds: list[list[tuple[int, int]]] = []
    for _ in range(n - 1):
        rnd = []
        for i in range(n // 2):
            a, b = players[i], players[n - 1 - i]
            if a != -1 and b != -1:
                rnd.append((min(a, b), max(a, b)))
        rounds.append(sorted(rnd))
        # rotate everyone but the first player
        players = [players[0], players[-1]] + players[1:-1]
    return rounds


def schedule_rounds(
    pairs: Sequence[tuple[int, int]],
) -> list[list[tuple[int, int]]]:
    """Pack an ordered pair list into conflict-free rounds (first fit).

    Pairs already disjoint come back as a single round in their
    original order, so the disjoint strategies (random / cut / gain)
    are scheduled exactly as the serial driver executed them.
    Overlapping inputs are split greedily, preserving relative order
    within each round.
    """
    rounds: list[list[tuple[int, int]]] = []
    busy: list[set[int]] = []
    for a, b in pairs:
        for rnd, used in zip(rounds, busy):
            if a not in used and b not in used:
                rnd.append((a, b))
                used.update((a, b))
                break
        else:
            rounds.append([(a, b)])
            busy.append({a, b})
    return rounds


def pairing_rounds(
    name: str,
    recorder: Recorder = NULL_RECORDER,
) -> Callable[[PartitionState, np.random.Generator], list[list[tuple[int, int]]]]:
    """Round-schedule form of a pairing strategy.

    Returns a callable producing, for one improvement round, a list of
    conflict-free pair rounds.  ``random`` / ``cut`` / ``gain`` already
    emit disjoint pairs and become a single round; ``exhaustive`` is
    decomposed into its round-robin tournament (every C(k, 2) pair
    exactly once per improvement round).  Counter semantics match the
    serial path: ``part.pairing.rounds`` counts improvement rounds and
    ``part.pairing.pairs`` the pairs proposed.
    """
    if name == "exhaustive":
        if "exhaustive" not in PAIRING_STRATEGIES:  # pragma: no cover
            raise ConfigError("exhaustive strategy missing from registry")

        def exhaustive_rounds(
            state: PartitionState, rng: np.random.Generator
        ) -> list[list[tuple[int, int]]]:
            rounds = tournament_rounds(state.k)
            if recorder.enabled:
                recorder.incr("part.pairing.rounds")
                recorder.incr("part.pairing.pairs",
                              sum(len(r) for r in rounds))
            return rounds

        return exhaustive_rounds

    strategy = pairing_strategy(name, recorder=recorder)

    def strategy_rounds(
        state: PartitionState, rng: np.random.Generator
    ) -> list[list[tuple[int, int]]]:
        pairs = strategy(state, rng)
        return schedule_rounds(pairs)

    return strategy_rounds


# -- worker side -----------------------------------------------------------

# Per-process context installed by the pool initializer: the read-only
# hypergraph (shipped once per granularity level), partition count,
# balance constraint, FM pass budget, and whether to collect telemetry.
_WORKER_CTX: tuple | None = None


def _init_refine_worker(hg, k, constraint, max_passes, collect) -> None:
    global _WORKER_CTX
    _WORKER_CTX = (hg, k, constraint, max_passes, collect)


def _refine_pair_task(
    snapshot: tuple, a: int, b: int
) -> tuple[int, int, int, list[tuple[int, int]], dict | None]:
    """Worker: refine one pair against the round-start snapshot.

    ``snapshot`` is the driver's :meth:`PartitionState.export_arrays`
    payload — the full derived state (assignment, partition weights,
    per-edge partition counts, λ, cut, SOED), adopted wholesale via
    :meth:`PartitionState.from_arrays`.  Unpickling already gave this
    process private copies, so reconstruction costs nothing beyond
    transport: no per-pair ``recompute`` over the pins.

    Returns ``(gain, passes, moves, move_log, telemetry)`` — the slim
    move payload the driver replays plus, when the driver's recorder is
    on, this task's mini-recorder export (a ``refine.pair`` span on
    this worker's lane carrying the FM counters) for deterministic
    merge; the worker's full state is discarded.
    """
    hg, k, constraint, max_passes, collect = _WORKER_CTX
    state = PartitionState.from_arrays(hg, k, snapshot)
    if not collect:
        res = refine_pair(state, a, b, constraint, max_passes=max_passes,
                          collect_moves=True)
        return res.gain, res.passes, res.moves, res.moves_log or [], None
    wrec = worker_telemetry()
    with wrec.phase("refine.pair"):
        res = refine_pair(state, a, b, constraint, max_passes=max_passes,
                          collect_moves=True, recorder=wrec)
    return (res.gain, res.passes, res.moves, res.moves_log or [],
            export_telemetry(wrec))


# -- driver side -----------------------------------------------------------


class PairwiseRefiner:
    """Executes conflict-free pair rounds, serially or across processes.

    ``workers=1`` refines each pair in place (the classic serial
    sweep); ``workers>1`` snapshots the assignment at round start,
    fans the pairs out over a :class:`ProcessPoolExecutor` and replays
    the returned move lists in pair order.  By the disjoint-pair
    invariance property (module docstring) the two paths produce
    bit-identical partitions — enforced at runtime by checking that
    every replayed move list realizes exactly the gain its worker
    reported.

    The pool is created lazily on the first parallel round and rebuilt
    only when the hypergraph changes (super-gate flattening); inside a
    daemonic process (e.g. a sweep-grid worker) the engine silently
    degrades to serial because nested process pools are not allowed.
    """

    def __init__(self, workers: int | None = None,
                 recorder: Recorder = NULL_RECORDER) -> None:
        self.workers = resolve_workers(workers)
        if self.workers > 1 and multiprocessing.current_process().daemon:
            self.workers = 1
        self._recorder = recorder
        self._pool: ProcessPoolExecutor | None = None
        self._pool_key: tuple | None = None
        self._tasks = 0
        self._slots = 0

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
            self._pool_key = None

    def __enter__(self) -> "PairwiseRefiner":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def _ensure_pool(self, state: PartitionState,
                     constraint: BalanceConstraint,
                     max_passes: int) -> ProcessPoolExecutor:
        collect = self._recorder.enabled
        key = (id(state.hg), state.k, constraint, max_passes, collect)
        if self._pool is not None and self._pool_key == key:
            return self._pool
        self.close()
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_init_refine_worker,
            initargs=(state.hg, state.k, constraint, max_passes, collect),
        )
        self._pool_key = key
        return self._pool

    # -- execution --------------------------------------------------------

    def refine_round(
        self,
        state: PartitionState,
        pairs: Sequence[tuple[int, int]],
        constraint: BalanceConstraint,
        max_passes: int = 8,
    ) -> int:
        """Refine one conflict-free round of pairs; returns the realized
        cut gain on ``state`` (mutated in place)."""
        if not pairs:
            return 0
        touched: set[int] = set()
        for a, b in pairs:
            if a in touched or b in touched or a == b:
                raise PartitionError(
                    f"refine_round requires disjoint pairs, got {list(pairs)}"
                )
            touched.update((a, b))
        recorder = self._recorder
        self._tasks += len(pairs)
        self._slots += -(-len(pairs) // self.workers)  # ceil division
        if recorder.enabled:
            recorder.incr("part.refine.rounds")
            recorder.incr("part.refine.tasks", len(pairs))
        if self.workers == 1 or len(pairs) == 1:
            # the serial path builds the SAME per-task mini-recorder a
            # pool worker would, so the merged telemetry (counters,
            # phase calls, span structure) is byte-identical at any
            # worker count — only the volatile span lanes/timestamps
            # differ
            gain = 0
            for a, b in pairs:
                if recorder.enabled:
                    wrec = worker_telemetry()
                    with wrec.phase("refine.pair"):
                        gain += refine_pair(state, a, b, constraint,
                                            max_passes=max_passes,
                                            recorder=wrec).gain
                    merge_telemetry(recorder, export_telemetry(wrec))
                else:
                    gain += refine_pair(state, a, b, constraint,
                                        max_passes=max_passes).gain
            return gain
        pool = self._ensure_pool(state, constraint, max_passes)
        # full derived-array snapshot, exported once per round; workers
        # adopt it directly (export copies, so replaying moves below
        # cannot race the executor's late pickling of queued tasks)
        snapshot = state.export_arrays()
        futures = [pool.submit(_refine_pair_task, snapshot, a, b)
                   for a, b in pairs]
        round_gain = 0
        for (a, b), future in zip(pairs, futures):
            worker_gain, passes, moves, move_log, telemetry = future.result()
            replayed = 0
            for v, to in move_log:
                replayed += state.move(v, to)
            if replayed != worker_gain:
                raise PartitionError(
                    f"parallel refinement diverged on pair ({a}, {b}): "
                    f"worker gain {worker_gain} != replayed {replayed} "
                    "(pairs in a round must be disjoint)"
                )
            round_gain += replayed
            # fold the worker's FM counters + refine.pair span back in
            # submission (pair) order — deterministic regardless of
            # completion order
            merge_telemetry(recorder, telemetry)
        return round_gain

    # -- telemetry --------------------------------------------------------

    def record_summary(self) -> None:
        """Record the parallelism summary of the whole run: resolved
        worker count, ideal (critical-path) speedup and worker
        utilization.  These are functions of the execution harness's
        worker count — host configuration, not modeled results — so
        they go to the recorder's quarantined host-value channel
        (:data:`repro.obs.registry.HOST_VALUE_REGISTRY`), keeping the
        deterministic counter body byte-identical at any worker count
        (the telemetry-merge contract of :mod:`repro.obs.spans`)."""
        recorder = self._recorder
        if not recorder.enabled or self._tasks == 0:
            return
        record = getattr(recorder, "record_host", None)
        if record is None:
            return
        slots = max(self._slots, 1)
        record("part.refine.workers", self.workers)
        record("part.refine.ideal_speedup", round(self._tasks / slots, 4))
        record("part.refine.utilization",
               round(self._tasks / (slots * self.workers), 4))
