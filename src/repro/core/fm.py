"""Pairwise Fiduccia–Mattheyses refinement.

The iterative-movement phase of the paper's algorithm (§3, Figure 2):
given two partitions picked by the pairing step, *free vertices* are
moved between them — highest cut-gain first, each vertex at most once
per pass, weight bounds respected — and the pass is rolled back to its
best prefix.  Passes repeat until one yields no improvement ("no free
vertex left or no gain in cut-size can be obtained").

Gains are evaluated against the **global** k-way cut through
:meth:`PartitionState.move_gain`, so refining the pair (a, b) never
degrades edges that also touch third partitions without accounting for
them.  A lazy max-heap with per-vertex version stamps stands in for
the classic bucket array — same amortized behaviour, simpler to keep
correct with weighted vertices and k-way gain updates.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from ..hypergraph.partition_state import PartitionState
from ..obs.recorder import NULL_RECORDER, Recorder
from .balance import BalanceConstraint

__all__ = ["FMPassResult", "refine_pair", "rebalance_pair"]


@dataclass
class FMPassResult:
    """Outcome of :func:`refine_pair`: total realized gain and moves.

    ``moves_log`` is populated only when :func:`refine_pair` was called
    with ``collect_moves=True``: the retained ``(vertex, target)``
    moves in execution order — replaying them with
    :meth:`PartitionState.move` on a copy of the pre-refinement state
    reproduces the refined state exactly.  This is the slim payload the
    process-parallel engine (:mod:`repro.core.parallel_refine`) ships
    back from workers.
    """

    gain: int
    moves: int
    passes: int
    moves_log: list[tuple[int, int]] | None = None


def _pair_vertices(state: PartitionState, a: int, b: int) -> list[int]:
    """Vertices currently in partition a or b."""
    return [v for v in range(state.hg.num_vertices) if state.part[v] in (a, b)]


def refine_pair(
    state: PartitionState,
    a: int,
    b: int,
    constraint: BalanceConstraint,
    max_passes: int = 8,
    recorder: Recorder = NULL_RECORDER,
    collect_moves: bool = False,
) -> FMPassResult:
    """FM refinement between partitions ``a`` and ``b`` (in place).

    Runs up to ``max_passes`` full FM passes; stops as soon as a pass
    realizes no positive gain.  Returns the total cut improvement.

    ``recorder`` (optional, :mod:`repro.obs`) accumulates
    ``part.fm.passes`` / ``part.fm.moves`` / ``part.fm.gain`` across
    calls; the default no-op recorder keeps this free.

    With ``collect_moves=True`` the result additionally carries the
    retained move log (see :class:`FMPassResult.moves_log`) so a remote
    caller can replay the refinement on another copy of the state.
    """
    total_gain = 0
    total_moves = 0
    passes = 0
    log: list[tuple[int, int]] | None = [] if collect_moves else None
    for _ in range(max_passes):
        gain, retained = _one_pass(state, a, b, constraint)
        passes += 1
        total_gain += gain
        total_moves += len(retained)
        if log is not None:
            log.extend(retained)
        if gain <= 0:
            break
    if recorder.enabled:
        recorder.incr("part.fm.passes", passes)
        recorder.incr("part.fm.moves", total_moves)
        recorder.incr("part.fm.gain", total_gain)
    return FMPassResult(total_gain, total_moves, passes, log)


def _one_pass(
    state: PartitionState,
    a: int,
    b: int,
    constraint: BalanceConstraint,
) -> tuple[int, list[tuple[int, int]]]:
    """One FM pass; returns (realized gain, retained (v, to) moves)."""
    hg = state.hg
    lo, hi = constraint.bounds(hg.total_weight)
    vertices = _pair_vertices(state, a, b)
    if not vertices:
        return 0, []

    stamp = {v: 0 for v in vertices}
    locked: set[int] = set()
    heap: list[tuple[int, int, int, int]] = []  # (-gain, v, stamp, target)

    def push(v: int) -> None:
        frm = state.part_of(v)
        to = b if frm == a else a
        g = state.move_gain(v, to)
        heapq.heappush(heap, (-g, v, stamp[v], to))

    for v in vertices:
        push(v)

    # move log for best-prefix rollback: (v, frm, to)
    moves: list[tuple[int, int, int]] = []
    cum = 0
    best = 0
    best_idx = 0

    while heap:
        neg_g, v, st, to = heapq.heappop(heap)
        if v in locked or st != stamp[v]:
            continue
        frm = state.part_of(v)
        if frm not in (a, b):  # pragma: no cover - defensive
            continue
        expected_to = b if frm == a else a
        if to != expected_to:
            continue  # stale direction after an interleaved move
        wv = int(hg.vertex_weight[v])
        if state.part_weight[to] + wv > hi or state.part_weight[frm] - wv < lo:
            # re-push is pointless within this pass: bounds only tighten
            # for this direction as the pass proceeds; simply skip.
            locked.add(v)
            continue
        realized = state.move(v, to)
        locked.add(v)
        moves.append((v, frm, to))
        cum += realized
        if cum > best:
            best = cum
            best_idx = len(moves)
        # refresh gains of unlocked neighbours sharing an edge
        for u in hg.neighbors(v):
            if u in stamp and u not in locked:
                stamp[u] += 1
                push(u)

    # roll back past the best prefix
    for v, frm, _ in reversed(moves[best_idx:]):
        state.move(v, frm)
    return best, [(v, to) for v, _, to in moves[:best_idx]]


def rebalance_pair(
    state: PartitionState,
    heavy: int,
    light: int,
    constraint: BalanceConstraint,
    recorder: Recorder = NULL_RECORDER,
) -> int:
    """Move vertices from an overweight partition toward a lighter one
    until the pair meets the constraint (or no movable vertex remains).

    Used after super-gate flattening (paper §3.2: "flatten the largest
    super-gate in the partition and employ iterative movement in order
    to achieve a better load balance").  Vertices are chosen by best
    cut gain, then smallest weight — load correction with the least
    cut damage.  Returns the number of vertices moved; ``recorder``
    accumulates it under ``part.fm.rebalance_moves``.
    """
    hg = state.hg
    lo, hi = constraint.bounds(hg.total_weight)
    moved = 0
    while state.part_weight[heavy] > hi or state.part_weight[light] < lo:
        candidates = [v for v in range(hg.num_vertices) if state.part_of(v) == heavy]
        best_v = None
        best_key: tuple[int, int] | None = None
        for v in candidates:
            wv = int(hg.vertex_weight[v])
            if state.part_weight[light] + wv > hi:
                continue
            if state.part_weight[heavy] - wv < lo:
                continue
            key = (-state.move_gain(v, light), wv)
            if best_key is None or key < best_key:
                best_key = key
                best_v = v
        if best_v is None:
            break
        state.move(best_v, light)
        moved += 1
    if recorder.enabled and moved:
        recorder.incr("part.fm.rebalance_moves", moved)
    return moved
