"""Pairwise Fiduccia–Mattheyses refinement.

The iterative-movement phase of the paper's algorithm (§3, Figure 2):
given two partitions picked by the pairing step, *free vertices* are
moved between them — highest cut-gain first, each vertex at most once
per pass, weight bounds respected — and the pass is rolled back to its
best prefix.  Passes repeat until one yields no improvement ("no free
vertex left or no gain in cut-size can be obtained").

Gains are evaluated against the **global** k-way cut through
:meth:`PartitionState.move_gain`, so refining the pair (a, b) never
degrades edges that also touch third partitions without accounting for
them.  A lazy max-heap with per-vertex version stamps stands in for
the classic bucket array — same amortized behaviour, simpler to keep
correct with weighted vertices and k-way gain updates.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from ..hypergraph.partition_state import _VECTOR_DEGREE, PartitionState
from ..obs.recorder import NULL_RECORDER, Recorder
from .balance import BalanceConstraint

__all__ = ["FMPassResult", "refine_pair", "rebalance_pair"]


@dataclass
class FMPassResult:
    """Outcome of :func:`refine_pair`: total realized gain and moves.

    ``moves_log`` is populated only when :func:`refine_pair` was called
    with ``collect_moves=True``: the retained ``(vertex, target)``
    moves in execution order — replaying them with
    :meth:`PartitionState.move` on a copy of the pre-refinement state
    reproduces the refined state exactly.  This is the slim payload the
    process-parallel engine (:mod:`repro.core.parallel_refine`) ships
    back from workers.
    """

    gain: int
    moves: int
    passes: int
    moves_log: list[tuple[int, int]] | None = None


def _pair_vertices(state: PartitionState, a: int, b: int) -> list[int]:
    """Vertices currently in partition a or b (ascending ids)."""
    return state.pair_vertices(a, b).tolist()


def refine_pair(
    state: PartitionState,
    a: int,
    b: int,
    constraint: BalanceConstraint,
    max_passes: int = 8,
    recorder: Recorder = NULL_RECORDER,
    collect_moves: bool = False,
) -> FMPassResult:
    """FM refinement between partitions ``a`` and ``b`` (in place).

    Runs up to ``max_passes`` full FM passes; stops as soon as a pass
    realizes no positive gain.  Returns the total cut improvement.

    ``recorder`` (optional, :mod:`repro.obs`) accumulates
    ``part.fm.passes`` / ``part.fm.moves`` / ``part.fm.gain`` across
    calls; the default no-op recorder keeps this free.

    With ``collect_moves=True`` the result additionally carries the
    retained move log (see :class:`FMPassResult.moves_log`) so a remote
    caller can replay the refinement on another copy of the state.
    """
    total_gain = 0
    total_moves = 0
    passes = 0
    log: list[tuple[int, int]] | None = [] if collect_moves else None
    for _ in range(max_passes):
        gain, retained = _one_pass(state, a, b, constraint)
        passes += 1
        total_gain += gain
        total_moves += len(retained)
        if log is not None:
            log.extend(retained)
        if gain <= 0:
            break
    if recorder.enabled:
        recorder.incr("part.fm.passes", passes)
        recorder.incr("part.fm.moves", total_moves)
        recorder.incr("part.fm.gain", total_gain)
    return FMPassResult(total_gain, total_moves, passes, log)


def _one_pass(
    state: PartitionState,
    a: int,
    b: int,
    constraint: BalanceConstraint,
) -> tuple[int, list[tuple[int, int]]]:
    """One FM pass; returns (realized gain, retained (v, to) moves)."""
    hg = state.hg
    lo, hi = constraint.bounds(hg.total_weight)
    vertices = _pair_vertices(state, a, b)
    if not vertices:
        return 0, []

    stamp = dict.fromkeys(vertices, 0)
    locked: set[int] = set()

    # (-gain, v, stamp, target): a total order with no duplicate keys,
    # so the heap's internal layout (heapify vs. pushes, batch vs.
    # scalar fill) can never change pop order — only speed.  The
    # initial fill is one vectorized batch gain query plus an O(n)
    # heapify.
    frm_arr = state.part[vertices]
    targets = np.where(frm_arr == a, b, a)
    gains = state.move_gains(vertices, targets)
    heap: list[tuple[int, int, int, int]] = [
        (-g, u, 0, to)
        for u, g, to in zip(vertices, gains.tolist(), targets.tolist())
    ]
    heapq.heapify(heap)

    # move log for best-prefix rollback: (v, frm, to)
    moves: list[tuple[int, int, int]] = []
    cum = 0
    best = 0
    best_idx = 0

    # the pair's weights, tracked as plain ints so the admissibility
    # check per pop costs two comparisons instead of NumPy indexing;
    # hot callables pre-bound once per pass
    vw = hg.vertex_weight_list
    weight_a = int(state.part_weight[a])
    weight_b = int(state.part_weight[b])
    heappop = heapq.heappop
    heappush = heapq.heappush
    move_gain = state.move_gain
    neighbor_lists = hg.neighbor_lists()
    # the neighbour-refresh gain evaluation below inlines the scalar
    # λ-cache kernel of PartitionState.move_gain — this is the hottest
    # loop in the whole partitioner and even a bound method call per
    # neighbour is measurable.  Same arithmetic, same integers; the
    # property tests cross-check both against recompute().
    part_list = state._part_list
    adj = state._adj
    counts_list = state._counts_list
    lam_list = state._lam_list
    w_list = state._w_list
    lam_hits = 0

    while heap:
        neg_g, v, st, to = heappop(heap)
        if v in locked or st != stamp[v]:
            continue
        frm = part_list[v]
        if frm not in (a, b):  # pragma: no cover - defensive
            continue
        expected_to = b if frm == a else a
        if to != expected_to:
            continue  # stale direction after an interleaved move
        wv = vw[v]
        if frm == a:
            blocked = weight_b + wv > hi or weight_a - wv < lo
        else:
            blocked = weight_a + wv > hi or weight_b - wv < lo
        if blocked:
            # re-push is pointless within this pass: bounds only tighten
            # for this direction as the pass proceeds; simply skip.
            locked.add(v)
            continue
        realized = state.move(v, to)
        if frm == a:
            weight_a -= wv
            weight_b += wv
        else:
            weight_b -= wv
            weight_a += wv
        locked.add(v)
        moves.append((v, frm, to))
        cum += realized
        if cum > best:
            best = cum
            best_idx = len(moves)
        # refresh gains of unlocked neighbours sharing an edge — the
        # cached adjacency avoids rebuilding a pin set per move; the
        # handful of survivors is re-evaluated through the scalar gain
        # path (same integers as the batch query, no array dispatch)
        for u in neighbor_lists[v]:
            if u in stamp and u not in locked:
                su = stamp[u] + 1
                stamp[u] = su
                frm_u = part_list[u]
                to_u = b if frm_u == a else a
                edges_u = adj[u]
                if len(edges_u) > _VECTOR_DEGREE:
                    g = move_gain(u, to_u)
                else:
                    lam_hits += len(edges_u)
                    g = 0
                    for e in edges_u:
                        row = counts_list[e]
                        spanned = lam_list[e]
                        new_spanned = (
                            spanned
                            - (1 if row[frm_u] == 1 else 0)
                            + (1 if row[to_u] == 0 else 0)
                        )
                        if spanned > 1 and new_spanned == 1:
                            g += w_list[e]
                        elif spanned == 1 and new_spanned > 1:
                            g -= w_list[e]
                heappush(heap, (-g, u, su, to_u))

    state.lambda_hits += lam_hits
    # roll back past the best prefix
    for v, frm, _ in reversed(moves[best_idx:]):
        state.move(v, frm)
    return best, [(v, to) for v, _, to in moves[:best_idx]]


def rebalance_pair(
    state: PartitionState,
    heavy: int,
    light: int,
    constraint: BalanceConstraint,
    recorder: Recorder = NULL_RECORDER,
) -> int:
    """Move vertices from an overweight partition toward a lighter one
    until the pair meets the constraint (or no movable vertex remains).

    Used after super-gate flattening (paper §3.2: "flatten the largest
    super-gate in the partition and employ iterative movement in order
    to achieve a better load balance").  Vertices are chosen by best
    cut gain, then smallest weight — load correction with the least
    cut damage.  Returns the number of vertices moved; ``recorder``
    accumulates it under ``part.fm.rebalance_moves``.
    """
    hg = state.hg
    lo, hi = constraint.bounds(hg.total_weight)
    moved = 0
    while state.part_weight[heavy] > hi or state.part_weight[light] < lo:
        candidates = np.nonzero(state.part == heavy)[0]
        # one batch gain query for every candidate; the admissibility
        # filter and the (-gain, weight) selection key — first-smallest
        # wins ties, i.e. lowest vertex id — are unchanged
        gains = state.move_gains(candidates, light)
        best_v = None
        best_key: tuple[int, int] | None = None
        for v, g in zip(candidates.tolist(), gains.tolist()):
            wv = int(hg.vertex_weight[v])
            if state.part_weight[light] + wv > hi:
                continue
            if state.part_weight[heavy] - wv < lo:
                continue
            key = (-g, wv)
            if best_key is None or key < best_key:
                best_key = key
                best_v = v
        if best_v is None:
            break
        state.move(best_v, light)
        moved += 1
    if recorder.enabled and moved:
        recorder.incr("part.fm.rebalance_moves", moved)
    return moved
