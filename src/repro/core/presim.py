"""Pre-simulation: choosing (k, b) by short trial runs (paper §3.4, §4.2).

A full gate-level run is far too expensive to repeat per candidate
partition, so the paper evaluates each (k, b) with a short random-vector
pre-simulation (10 000 vectors against the full run's 1 000 000) and
keeps the partition with the best speedup.  Two searches are provided:

* :func:`brute_force_presim` — every (k, b) combination (Tables 3/4);
* :func:`heuristic_presim` — the paper's Figure 3 pseudo-code: start
  from the maximum machine count, sweep b upward from 7.5 in steps of
  2.5, and abandon a k as soon as speedup stops improving.  (The
  figure's listing calls ``presimulation(k, b)`` with ``b`` never
  reassigned inside the loop — an obvious typo for the loop variable
  ``b1``, which is what we implement.)  The paper notes the heuristic
  "could be trapped in the local minimum"; the ablation benchmark
  quantifies exactly that against the brute-force sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Sequence

from ..errors import ConfigError
from ..sim.cluster import ClusterSpec, TimeWarpConfig
from ..sim.compiled import CompiledCircuit, compile_circuit
from ..sim.engine import SimulationReport, run_partitioned, run_sequential_baseline
from ..sim.events import InputEvent
from ..verilog.netlist import Netlist
from .balance import PAPER_B_VALUES
from .multiway import MultiwayResult, design_driven_partition

__all__ = [
    "PresimPoint",
    "PresimStudy",
    "evaluate_partition",
    "brute_force_presim",
    "heuristic_presim",
]


@dataclass
class PresimPoint:
    """One evaluated (k, b) combination."""

    k: int
    b: float
    cut_size: int
    balanced: bool
    sim_time: float
    speedup: float
    messages: int
    rollbacks: int
    partition: MultiwayResult
    report: SimulationReport


@dataclass
class PresimStudy:
    """Search outcome: every evaluated point plus the winner."""

    points: list[PresimPoint]
    best: PresimPoint
    runs: int

    def best_per_k(self) -> dict[int, PresimPoint]:
        """Highest-speedup point for each machine count (Table 4)."""
        out: dict[int, PresimPoint] = {}
        for p in self.points:
            cur = out.get(p.k)
            if cur is None or p.speedup > cur.speedup:
                out[p.k] = p
        return out


def evaluate_partition(
    circuit: CompiledCircuit,
    partition: MultiwayResult,
    events: Sequence[InputEvent],
    base_spec: ClusterSpec,
    config: TimeWarpConfig = TimeWarpConfig(),
    sequential=None,
) -> PresimPoint:
    """Pre-simulate one partition on a k-machine virtual cluster."""
    clusters, lp_machine = partition.to_simulation()
    spec = replace(base_spec, num_machines=partition.k)
    report = run_partitioned(
        circuit,
        clusters,
        lp_machine,
        events,
        spec,
        config,
        sequential=sequential,
    )
    return PresimPoint(
        k=partition.k,
        b=partition.b,
        cut_size=partition.cut_size,
        balanced=partition.balanced,
        sim_time=report.parallel_wall_time,
        speedup=report.speedup,
        messages=report.messages,
        rollbacks=report.rollbacks,
        partition=partition,
        report=report,
    )


PartitionFn = Callable[[Netlist, int, float], MultiwayResult]


def _default_partitioner(
    seed: int, pairing: str, refine_workers: int | None = None
) -> PartitionFn:
    def fn(netlist: Netlist, k: int, b: float) -> MultiwayResult:
        return design_driven_partition(
            netlist, k, b, seed=seed, pairing=pairing, workers=refine_workers
        )

    return fn


def brute_force_presim(
    netlist: Netlist,
    events: Sequence[InputEvent],
    ks: Sequence[int] = (2, 3, 4),
    bs: Sequence[float] = PAPER_B_VALUES,
    base_spec: ClusterSpec = ClusterSpec(num_machines=1),
    config: TimeWarpConfig = TimeWarpConfig(),
    seed: int = 0,
    pairing: str = "gain",
    partitioner: PartitionFn | None = None,
    refine_workers: int | None = None,
) -> PresimStudy:
    """Evaluate every (k, b) combination; Tables 3 and 4's generator.

    ``refine_workers`` is forwarded to
    :func:`~repro.core.multiway.design_driven_partition` (ignored when a
    custom ``partitioner`` is supplied); any worker count yields the
    same partitions — see ``docs/parallelism.md``.
    """
    if not ks or not bs:
        raise ConfigError("ks and bs must be non-empty")
    partition_fn = partitioner or _default_partitioner(seed, pairing, refine_workers)
    circuit = compile_circuit(netlist)
    sequential, _ = run_sequential_baseline(circuit, events, base_spec)
    points: list[PresimPoint] = []
    for k in ks:
        for b in bs:
            part = partition_fn(netlist, k, b)
            points.append(
                evaluate_partition(
                    circuit, part, events, base_spec, config, sequential=sequential
                )
            )
    best = max(points, key=lambda p: (p.speedup, -p.k, p.b))
    return PresimStudy(points=points, best=best, runs=len(points))


def heuristic_presim(
    netlist: Netlist,
    events: Sequence[InputEvent],
    max_k: int = 4,
    base_spec: ClusterSpec = ClusterSpec(num_machines=1),
    config: TimeWarpConfig = TimeWarpConfig(),
    seed: int = 0,
    pairing: str = "gain",
    partitioner: PartitionFn | None = None,
    refine_workers: int | None = None,
    b_start: float = 7.5,
    b_stop: float = 15.0,
    b_step: float = 2.5,
) -> PresimStudy:
    """The paper's heuristic search (Figure 3).

    Starts at the maximum number of processors ("sooner or later, no
    choice of b will overcome having too many processors"), sweeps b
    upward, abandons the b sweep on the first non-improving speedup,
    then decrements k.  Saves pre-simulation runs at the cost of
    possible local-minimum capture.
    """
    if max_k < 2:
        raise ConfigError("heuristic presimulation needs max_k >= 2")
    partition_fn = partitioner or _default_partitioner(seed, pairing, refine_workers)
    circuit = compile_circuit(netlist)
    sequential, _ = run_sequential_baseline(circuit, events, base_spec)
    points: list[PresimPoint] = []
    max_speedup = 1.0
    best: PresimPoint | None = None
    k = max_k
    while k >= 2:
        b1 = b_start
        while b1 < b_stop:
            part = partition_fn(netlist, k, b1)
            point = evaluate_partition(
                circuit, part, events, base_spec, config, sequential=sequential
            )
            points.append(point)
            if point.speedup > max_speedup:
                max_speedup = point.speedup
                best = point
            else:
                break
            b1 += b_step
        k -= 1
    if best is None:
        # nothing beat speedup 1.0: report the least-bad point anyway
        best = max(points, key=lambda p: p.speedup)
    return PresimStudy(points=points, best=best, runs=len(points))
