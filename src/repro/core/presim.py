"""Pre-simulation: choosing (k, b) by short trial runs (paper §3.4, §4.2).

A full gate-level run is far too expensive to repeat per candidate
partition, so the paper evaluates each (k, b) with a short random-vector
pre-simulation (10 000 vectors against the full run's 1 000 000) and
keeps the partition with the best speedup.  Two searches are provided:

* :func:`brute_force_presim` — every (k, b) combination (Tables 3/4);
* :func:`heuristic_presim` — the paper's Figure 3 pseudo-code: start
  from the maximum machine count, sweep b upward from 7.5 in steps of
  2.5, and abandon a k as soon as speedup stops improving.  (The
  figure's listing calls ``presimulation(k, b)`` with ``b`` never
  reassigned inside the loop — an obvious typo for the loop variable
  ``b1``, which is what we implement.)  The paper notes the heuristic
  "could be trapped in the local minimum"; the ablation benchmark
  quantifies exactly that against the brute-force sweep.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Callable, Sequence

from ..errors import ConfigError
from ..obs.recorder import NULL_RECORDER, Recorder
from ..obs.spans import export_telemetry, merge_telemetry, worker_telemetry
from ..sim.cluster import ClusterSpec, TimeWarpConfig
from ..sim.compiled import CompiledCircuit, compile_circuit
from ..sim.engine import SimulationReport, run_partitioned, run_sequential_baseline
from ..sim.events import InputEvent
from ..sim.sequential import SequentialSimulator
from ..verilog.netlist import Netlist
from .balance import PAPER_B_VALUES
from .batch_refine import validate_refiner
from .multiway import MultiwayResult, design_driven_partition
from .parallel_refine import resolve_workers

__all__ = [
    "PresimPoint",
    "PresimStudy",
    "PRESIM_ALGORITHMS",
    "evaluate_partition",
    "brute_force_presim",
    "heuristic_presim",
]


@dataclass
class PresimPoint:
    """One evaluated (k, b) combination.

    ``telemetry`` is the point's mini-recorder export (see
    :func:`repro.obs.spans.export_telemetry`) when the search ran with
    a recorder; the searches merge it into the driver's recorder only
    for points they actually *consume*, so the merged document is
    identical whether speculative parallel evaluation happened or not.
    """

    k: int
    b: float
    cut_size: int
    balanced: bool
    sim_time: float
    speedup: float
    messages: int
    rollbacks: int
    partition: MultiwayResult
    report: SimulationReport
    telemetry: dict | None = None


@dataclass
class PresimStudy:
    """Search outcome: every evaluated point plus the winner."""

    points: list[PresimPoint]
    best: PresimPoint
    runs: int

    def best_per_k(self) -> dict[int, PresimPoint]:
        """Highest-speedup point for each machine count (Table 4)."""
        out: dict[int, PresimPoint] = {}
        for p in self.points:
            cur = out.get(p.k)
            if cur is None or p.speedup > cur.speedup:
                out[p.k] = p
        return out


def evaluate_partition(
    circuit: CompiledCircuit,
    partition: MultiwayResult,
    events: Sequence[InputEvent],
    base_spec: ClusterSpec,
    config: TimeWarpConfig = TimeWarpConfig(),
    sequential=None,
    recorder: Recorder = NULL_RECORDER,
) -> PresimPoint:
    """Pre-simulate one partition on a k-machine virtual cluster."""
    clusters, lp_machine = partition.to_simulation()
    spec = replace(base_spec, num_machines=partition.k)
    report = run_partitioned(
        circuit,
        clusters,
        lp_machine,
        events,
        spec,
        config,
        sequential=sequential,
        recorder=recorder,
    )
    return PresimPoint(
        k=partition.k,
        b=partition.b,
        cut_size=partition.cut_size,
        balanced=partition.balanced,
        sim_time=report.parallel_wall_time,
        speedup=report.speedup,
        messages=report.messages,
        rollbacks=report.rollbacks,
        partition=partition,
        report=report,
    )


PartitionFn = Callable[[Netlist, int, float], MultiwayResult]

#: built-in partition backends selectable by name (``algorithm=``);
#: anything with .k/.b/.cut_size/.balanced/.to_simulation() works, so
#: the multilevel engine's result slots straight in
PRESIM_ALGORITHMS = ("design", "multilevel")


def _default_partitioner(
    seed: int,
    pairing: str,
    refine_workers: int | None = None,
    algorithm: str = "design",
    refiner: str = "fm",
) -> PartitionFn:
    if algorithm not in PRESIM_ALGORITHMS:
        raise ConfigError(
            f"unknown presim algorithm {algorithm!r}; "
            f"expected one of {PRESIM_ALGORITHMS}"
        )
    validate_refiner(refiner)
    if algorithm == "multilevel":
        from .multilevel import multilevel_flat_partition

        def fn(netlist: Netlist, k: int, b: float):
            return multilevel_flat_partition(
                netlist, k, b, seed=seed, workers=refine_workers,
                refiner=refiner,
            )

        return fn

    def fn(netlist: Netlist, k: int, b: float) -> MultiwayResult:
        return design_driven_partition(
            netlist, k, b, seed=seed, pairing=pairing, workers=refine_workers,
            refiner=refiner,
        )

    return fn


# -- parallel (k, b) fan-out ------------------------------------------------
#
# Every (k, b) candidate is an independent partition + pre-simulation,
# so the sweep fans out over a process pool the same way the pairwise
# refinement engine does (docs/parallelism.md): the expensive read-only
# inputs — netlist, stimulus, cost model and the *once-computed*
# sequential baseline — ship to each worker exactly once through the
# pool initializer, workers return finished PresimPoints, and the
# driver consumes them in submission (k, b) order.  Each point is
# deterministic on its own, so the merged study is bit-identical to the
# serial sweep at any worker count.

#: per-worker context installed by :func:`_init_presim_worker`
_WORKER_CTX: dict | None = None


def _evaluate_point(
    circuit: CompiledCircuit,
    partition_fn: "PartitionFn",
    netlist: Netlist,
    events: Sequence[InputEvent],
    base_spec: ClusterSpec,
    config: TimeWarpConfig,
    sequential,
    k: int,
    b: float,
    collect: bool,
) -> PresimPoint:
    """Partition + pre-simulate one (k, b) candidate.

    The single evaluation path for both the serial mapper and the pool
    workers: when ``collect`` is on, the point runs under its own
    mini-recorder — a ``presim.point`` span wrapping
    ``presim.partition`` and ``presim.simulate`` child spans, with the
    Time Warp counters of the trial run recorded inside — and the
    export rides back on ``PresimPoint.telemetry``.  Because the same
    mini-recorder is built wherever the point runs, merged telemetry
    cannot depend on the worker count.
    """
    if not collect:
        part = partition_fn(netlist, k, b)
        return evaluate_partition(circuit, part, events, base_spec, config,
                                  sequential=sequential)
    wrec = worker_telemetry()
    with wrec.phase("presim.point"):
        with wrec.phase("presim.partition"):
            part = partition_fn(netlist, k, b)
        with wrec.phase("presim.simulate"):
            point = evaluate_partition(circuit, part, events, base_spec,
                                       config, sequential=sequential,
                                       recorder=wrec)
    point.telemetry = export_telemetry(wrec)
    return point


def _init_presim_worker(
    netlist: Netlist,
    events: Sequence[InputEvent],
    base_spec: ClusterSpec,
    config: TimeWarpConfig,
    seed: int,
    pairing: str,
    refine_workers: int | None,
    algorithm: str,
    sequential: SequentialSimulator,
    collect: bool = False,
    refiner: str = "fm",
) -> None:
    global _WORKER_CTX
    _WORKER_CTX = {
        "netlist": netlist,
        "events": events,
        "base_spec": base_spec,
        "config": config,
        "partition_fn": _default_partitioner(
            seed, pairing, refine_workers, algorithm, refiner
        ),
        "circuit": compile_circuit(netlist),
        "sequential": sequential,
        "collect": collect,
    }


def _presim_point_task(kb: tuple[int, float]) -> PresimPoint:
    ctx = _WORKER_CTX
    assert ctx is not None, "presim worker used before initialization"
    k, b = kb
    return _evaluate_point(
        ctx["circuit"], ctx["partition_fn"], ctx["netlist"], ctx["events"],
        ctx["base_spec"], ctx["config"], ctx["sequential"], k, b,
        ctx["collect"],
    )


class _PointMapper:
    """Maps (k, b) combos to PresimPoints, serially or over a pool.

    The pool engages only when it can help *and* the semantics allow:
    more than one worker resolved, a picklable default partitioner (a
    custom ``partitioner`` callable stays in-process), and not inside a
    daemon worker (nested pools are forbidden; the sweep degrades to
    serial exactly like the refinement engine).  Results always come
    back in the order the combos were submitted.
    """

    def __init__(
        self,
        netlist: Netlist,
        events: Sequence[InputEvent],
        base_spec: ClusterSpec,
        config: TimeWarpConfig,
        seed: int,
        pairing: str,
        refine_workers: int | None,
        partitioner: PartitionFn | None,
        workers: int | None,
        circuit: CompiledCircuit,
        sequential: SequentialSimulator,
        algorithm: str = "design",
        collect: bool = False,
        refiner: str = "fm",
    ) -> None:
        self._serial_fn = partitioner or _default_partitioner(
            seed, pairing, refine_workers, algorithm, refiner
        )
        self._circuit = circuit
        self._netlist = netlist
        self._events = events
        self._base_spec = base_spec
        self._config = config
        self._sequential = sequential
        self._collect = collect
        n = resolve_workers(workers)
        if partitioner is not None or multiprocessing.current_process().daemon:
            n = 1
        self.workers = n
        self._pool: ProcessPoolExecutor | None = None
        if n > 1:
            self._pool = ProcessPoolExecutor(
                max_workers=n,
                initializer=_init_presim_worker,
                initargs=(netlist, events, base_spec, config, seed, pairing,
                          refine_workers, algorithm, sequential, collect,
                          refiner),
            )

    @property
    def parallel(self) -> bool:
        return self._pool is not None

    def one(self, k: int, b: float) -> PresimPoint:
        return _evaluate_point(
            self._circuit, self._serial_fn, self._netlist, self._events,
            self._base_spec, self._config, self._sequential, k, b,
            self._collect,
        )

    def map(self, combos: Sequence[tuple[int, float]]) -> list[PresimPoint]:
        if self._pool is not None and len(combos) > 1:
            return list(self._pool.map(_presim_point_task, combos))
        return [self.one(k, b) for k, b in combos]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None


def brute_force_presim(
    netlist: Netlist,
    events: Sequence[InputEvent],
    ks: Sequence[int] = (2, 3, 4),
    bs: Sequence[float] = PAPER_B_VALUES,
    base_spec: ClusterSpec = ClusterSpec(num_machines=1),
    config: TimeWarpConfig = TimeWarpConfig(),
    seed: int = 0,
    pairing: str = "gain",
    partitioner: PartitionFn | None = None,
    refine_workers: int | None = None,
    workers: int | None = None,
    algorithm: str = "design",
    refiner: str = "fm",
    recorder: Recorder = NULL_RECORDER,
) -> PresimStudy:
    """Evaluate every (k, b) combination; Tables 3 and 4's generator.

    ``refine_workers`` is forwarded to
    :func:`~repro.core.multiway.design_driven_partition` (ignored when a
    custom ``partitioner`` is supplied); any worker count yields the
    same partitions — see ``docs/parallelism.md``.

    ``algorithm`` selects the built-in partition backend per candidate:
    ``"design"`` (the paper's Figure-2 flow) or ``"multilevel"``
    (:func:`~repro.core.multilevel.multilevel_flat_partition`); ignored
    when a custom ``partitioner`` is supplied.  ``refiner`` picks the
    backend's per-level improvement engine (``"fm"`` or ``"batch"``,
    see ``docs/refinement.md``), likewise ignored with a custom
    ``partitioner``.

    ``workers`` fans the independent (k, b) candidates over a process
    pool (default: the ``REPRO_WORKERS`` policy of
    :func:`~repro.core.parallel_refine.resolve_workers`).  The
    sequential baseline is computed once and shipped to the workers;
    results are merged in (k, b) submission order, so the study —
    points, stats and chosen best — is identical at any worker count.

    ``recorder`` collects per-point worker telemetry (``presim.point``
    spans with the trial runs' Time Warp counters), merged in (k, b)
    order — the merged document is byte-identical at any ``workers``.
    """
    if not ks or not bs:
        raise ConfigError("ks and bs must be non-empty")
    circuit = compile_circuit(netlist)
    sequential, _ = run_sequential_baseline(circuit, events, base_spec,
                                            recorder=recorder)
    mapper = _PointMapper(
        netlist, events, base_spec, config, seed, pairing, refine_workers,
        partitioner, workers, circuit, sequential, algorithm,
        collect=recorder.enabled, refiner=refiner,
    )
    try:
        points = mapper.map([(k, b) for k in ks for b in bs])
    finally:
        mapper.close()
    for point in points:
        merge_telemetry(recorder, point.telemetry)
    best = max(points, key=lambda p: (p.speedup, -p.k, p.b))
    return PresimStudy(points=points, best=best, runs=len(points))


def heuristic_presim(
    netlist: Netlist,
    events: Sequence[InputEvent],
    max_k: int = 4,
    base_spec: ClusterSpec = ClusterSpec(num_machines=1),
    config: TimeWarpConfig = TimeWarpConfig(),
    seed: int = 0,
    pairing: str = "gain",
    partitioner: PartitionFn | None = None,
    refine_workers: int | None = None,
    b_start: float = 7.5,
    b_stop: float = 15.0,
    b_step: float = 2.5,
    workers: int | None = None,
    algorithm: str = "design",
    refiner: str = "fm",
    recorder: Recorder = NULL_RECORDER,
) -> PresimStudy:
    """The paper's heuristic search (Figure 3).

    Starts at the maximum number of processors ("sooner or later, no
    choice of b will overcome having too many processors"), sweeps b
    upward, abandons the b sweep on the first non-improving speedup,
    then decrements k.  Saves pre-simulation runs at the cost of
    possible local-minimum capture.  ``algorithm`` and ``refiner`` pick
    the built-in partition backend and its improvement engine per
    candidate exactly as in :func:`brute_force_presim`.

    With ``workers`` > 1 each k's whole b-row is evaluated
    speculatively in parallel, then walked in order applying the serial
    early-abandon rule; points past the abandon are discarded, so the
    recorded study (points, stats, best) is identical to the serial
    search — only wasted speculative work is traded for wall time.
    """
    if max_k < 2:
        raise ConfigError("heuristic presimulation needs max_k >= 2")
    circuit = compile_circuit(netlist)
    sequential, _ = run_sequential_baseline(circuit, events, base_spec,
                                            recorder=recorder)
    mapper = _PointMapper(
        netlist, events, base_spec, config, seed, pairing, refine_workers,
        partitioner, workers, circuit, sequential, algorithm,
        collect=recorder.enabled, refiner=refiner,
    )
    points: list[PresimPoint] = []
    max_speedup = 1.0
    best: PresimPoint | None = None
    try:
        k = max_k
        while k >= 2:
            row_bs: list[float] = []
            b1 = b_start
            while b1 < b_stop:
                row_bs.append(b1)
                b1 += b_step
            # parallel: evaluate the whole row speculatively, walk it
            # in order, drop everything past the abandon point.
            # serial: evaluate lazily — exactly the paper's loop.
            row = iter(
                mapper.map([(k, b) for b in row_bs]) if mapper.parallel
                else (mapper.one(k, b) for b in row_bs)
            )
            for point in row:
                points.append(point)
                # merge only points the serial walk would have run —
                # speculative extras past the abandon are dropped, so
                # the telemetry matches the serial search exactly
                merge_telemetry(recorder, point.telemetry)
                if point.speedup > max_speedup:
                    max_speedup = point.speedup
                    best = point
                else:
                    break  # abandon the row; speculative extras dropped
            k -= 1
    finally:
        mapper.close()
    if best is None:
        # nothing beat speedup 1.0: report the least-bad point anyway
        best = max(points, key=lambda p: p.speedup)
    return PresimStudy(points=points, best=best, runs=len(points))
