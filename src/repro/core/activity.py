"""Activity-based load metric — the paper's named future work.

The paper's conclusion: "Currently our load metric is the number of
gates, which is not entirely adequate ... An interesting extension of
the algorithm would be to make it responsive to changes in processor
loads."  The static half of that extension is implemented here: a
short profiling run of the sequential simulator counts how often each
gate actually evaluates, and those counts replace the gate-count vertex
weights, so the Formula-1 constraint balances *expected simulation
work* instead of area.

Usage::

    weights = profile_activity(netlist, events)
    clustering = Clustering.top_level(netlist, gate_weights=weights)
    result = design_driven_partition(clustering, k=4, b=7.5)
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..hypergraph.build import Clustering
from ..sim.compiled import compile_circuit
from ..sim.events import InputEvent
from ..sim.sequential import SequentialSimulator
from ..verilog.netlist import Netlist

__all__ = ["profile_activity", "activity_clustering"]


def profile_activity(
    netlist: Netlist,
    events: Sequence[InputEvent],
    smoothing: int = 1,
) -> np.ndarray:
    """Per-gate load weights from a profiling run.

    Returns ``smoothing + evaluations`` per gate (int64, all >= 1 so a
    never-active gate still counts as placeable weight).  The events
    should be a short representative stimulus — the same pre-simulation
    vectors the (k, b) search uses are a natural choice.
    """
    circuit = compile_circuit(netlist)
    sim = SequentialSimulator(circuit, record_activity=True)
    sim.add_inputs(events)
    stats = sim.run()
    assert stats.activity is not None
    return stats.activity.astype(np.int64) + int(smoothing)


def activity_clustering(
    netlist: Netlist,
    events: Sequence[InputEvent],
    smoothing: int = 1,
) -> Clustering:
    """Visible-node clustering weighted by profiled activity."""
    weights = profile_activity(netlist, events, smoothing=smoothing)
    return Clustering.top_level(netlist, gate_weights=weights)
