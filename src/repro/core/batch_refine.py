"""Batch data-parallel boundary refinement (``refiner="batch"``).

The heap-FM refiner (:mod:`repro.core.fm`) moves one vertex at a time:
every move is a heap pop, a state update and a neighbour gain refresh,
so the critical path is as long as the move sequence.  That is the
right trade at netlist granularity (hundreds of vertices) but memory-
bound at the 100k+ vertex scale the flat benchmarks run.  This module
is the data-parallel alternative on the same vectorized substrate
(design reference: GPU-resident refinement in "Hypergraph Partitioning
on GPU with Distinct Incident Hyperedges and Size Constraints",
PAPERS.md).  Each round is three vectorized steps:

1. **gather** — the cut boundary (every vertex on a λ>1 hyperedge,
   maintained incrementally as a per-vertex cut-edge degree) is scored
   through the fused
   :meth:`~repro.hypergraph.partition_state.PartitionState.move_gains_matrix`
   CSR kernel into ``(k, |boundary|)`` exact integer cut-gain and SOED
   matrices with no per-vertex Python work — *incrementally*: gains
   are cached per vertex and only the boundary slice whose incident
   edges were touched by the previous batches is re-scored
   (``part.batch.gathered`` counts the re-scored vertices);
2. **select** — a conflict-free move batch is chosen vectorially.
   Candidates (the lexicographically best (cut, SOED)-improving
   destination per vertex) are ranked by ``(-cut gain, -soed gain,
   vertex id)``; a scatter-min of ranks onto incident hyperedges keeps
   a candidate only when, on every edge it touches, it holds the best
   rank *or shares the rank-winner's destination* — so each hyperedge
   sees at most one destination move, which makes the round-start gain
   predictions a lower bound on the realized gain (same-destination
   groups are superadditive).  Formula-1 balance is then enforced by
   prefix-sum weight
   filters: per destination block, cumulative added weight (in rank
   order) may not exceed ``hi - w0[p]``; per source block, cumulative
   removed weight may not exceed ``w0[p] - lo`` — both against the
   round-start weights ``w0``, so the final weights provably stay
   inside ``[lo, hi]`` wherever they started inside it (and can only
   move *toward* the window where they started outside);
3. **apply** — the surviving batch lands in one
   :meth:`~repro.hypergraph.partition_state.PartitionState.move_batch`
   scatter, and the boundary is re-derived incrementally from the
   edges whose cut status flipped.

Greedy rounds repeat to a fixpoint with a no-improvement early-out;
every applied move strictly improves the lexicographic
(cut, connectivity) objective — positive cut gain, or zero cut gain
with positive SOED gain (peeling a spanned edge one block closer to
uncut, the standard plateau escape).  At the fixpoint the refiner
recovers FM's one missing power — crossing negative-gain valleys — in
batch form: it snapshots the state, *kicks* the least-damaging
non-improving batch through the same race and balance filters,
re-descends greedily (kicked vertices frozen for the first descent so
it reorganizes around the perturbation instead of undoing it), and
keeps the result only when the objective ends strictly better than the
snapshot, restoring it otherwise.  The cut is therefore monotone
non-increasing across the whole call, accepted kicks strictly decrease
the potential, and termination is guaranteed.  The refiner is
single-process and free of iteration-order ambiguity, so — unlike the
pairwise engine, which *earns* its determinism with snapshots and
ordered replay — any worker count trivially produces the identical
partition.  ``docs/refinement.md`` carries the full taxonomy,
correctness argument and decision guide.

Observability: ``part.batch.*`` counters under the
``partition.batch_refine`` phase (:mod:`repro.obs.registry`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ConfigError, PartitionError
from ..hypergraph.partition_state import PartitionState
from ..obs.recorder import NULL_RECORDER, Recorder

__all__ = [
    "REFINERS",
    "BatchRefineResult",
    "batch_refine",
    "cut_degrees",
    "validate_refiner",
]

#: selectable refinement modes (``refiner=`` / CLI ``--refiner``)
REFINERS = ("fm", "batch")

#: a kick perturbs the best ``1/_KICK_FRACTION`` of the boundary's
#: non-improving candidates (at least one vertex)
_KICK_FRACTION = 16


def validate_refiner(name: str) -> str:
    """Check a ``refiner=`` selector; returns it for chaining."""
    if name not in REFINERS:
        raise ConfigError(
            f"unknown refiner {name!r}; expected one of {REFINERS}"
        )
    return name


@dataclass(frozen=True)
class BatchRefineResult:
    """Outcome of one :func:`batch_refine` call.

    ``rounds`` counts gather/select/apply rounds that applied at least
    one move; ``moves`` the vertices moved (both exclude rolled-back
    kick explorations); ``gain`` the total realized cut decrease
    (``cut_before - cut_size``).
    """

    rounds: int
    moves: int
    gain: int
    cut_size: int


def cut_degrees(state: PartitionState) -> np.ndarray:
    """Per-vertex count of incident cut (λ>1) hyperedges.

    ``cut_degrees(state) > 0`` is the refinement boundary.  Built with
    one CSR gather + scatter-add over the cut edges' pins;
    :func:`batch_refine` maintains it incrementally afterwards from
    :meth:`~repro.hypergraph.partition_state.PartitionState.move_batch`'s
    flipped-edge report.
    """
    deg = np.zeros(state.hg.num_vertices, dtype=np.int64)
    cut_edges = np.flatnonzero(state.edge_lambda > 1)
    if len(cut_edges):
        pins, _ = state.hg.edges_pins(cut_edges)
        np.add.at(deg, pins, 1)
    return deg


def batch_refine(
    state: PartitionState,
    constraint,
    blocks: Sequence[int] | None = None,
    max_rounds: int = 1024,
    balance_fallback: bool = False,
    max_kicks: int = 8,
    recorder: Recorder = NULL_RECORDER,
) -> BatchRefineResult:
    """Refine ``state`` in place with data-parallel move batches.

    Parameters
    ----------
    state:
        The partition to improve; mutated in place.
    constraint:
        Anything with ``bounds(total_weight) -> (lo, hi)`` — a
        :class:`~repro.core.balance.BalanceConstraint` or the recursive
        splitter's subset window.  Only ``bounds`` is consulted.
    blocks:
        Optional block restriction: only vertices currently in these
        blocks move, and only into these blocks (the recursive
        splitter refines ``(0, 1)`` of a local 3-way state whose third
        block is frozen).  ``None`` means all ``state.k`` blocks.
    max_rounds:
        Safety cap on gather/select/apply rounds; the natural exit is
        the fixpoint (a round with no applicable (cut, soed)-improving
        move).
    balance_fallback:
        When True, a round whose every race survivor is rejected by the
        balance filter bans those (vertex, target) pairs and re-selects,
        so vertices fall back to their next-best improving destination
        instead of stalling (``part.batch.retries`` counts the
        re-selections).  Pays when the filter binds — heavy
        cluster-grade vertices against tight windows, i.e. coarse
        multilevel levels — and is off by default because on light-
        vertex boundaries a first-choice stall is almost always a
        genuine fixpoint and the retries are churn.
    max_kicks:
        At the greedy fixpoint, up to this many perturbation attempts:
        a snapshot is taken, the least-damaging non-improving batch is
        forced through (the batch analogue of FM's tentative negative-
        gain moves), the greedy descent re-runs (kicked vertices frozen
        for its first pass), and the snapshot is restored unless the
        lexicographic (cut, SOED) objective strictly improved.  ``0``
        disables the perturbation loop.
    recorder:
        Observability sink: ``part.batch.*`` counters inside a
        ``partition.batch_refine`` phase.  Never changes the result.

    The cut never increases (greedy moves strictly improve the
    lexicographic (cut, connectivity) objective, and a kick's
    exploration is rolled back unless it ends strictly better than the
    snapshot), and any block whose round-start weight satisfies its
    bound still satisfies it afterwards.  Deterministic — and trivially
    identical at any worker count, since no worker pool is involved.
    """
    with recorder.phase("partition.batch_refine"):
        result = _batch_refine(state, constraint, blocks, max_rounds,
                               balance_fallback, max_kicks, recorder)
    if recorder.enabled:
        recorder.incr("part.batch.rounds", result.rounds)
        recorder.incr("part.batch.moves", result.moves)
        recorder.incr("part.batch.gain", result.gain)
    return result


def _batch_refine(
    state: PartitionState,
    constraint,
    blocks: Sequence[int] | None,
    max_rounds: int,
    balance_fallback: bool,
    max_kicks: int,
    recorder: Recorder,
) -> BatchRefineResult:
    hg = state.hg
    targets = sorted(set(int(p) for p in blocks)) if blocks is not None \
        else list(range(state.k))
    if blocks is not None:
        for p in targets:
            if not (0 <= p < state.k):
                raise PartitionError(
                    f"batch_refine block {p} out of range [0,{state.k})"
                )
    cut_before = state.cut_size
    if len(targets) < 2 or hg.num_edges == 0:
        return BatchRefineResult(0, 0, 0, cut_before)
    targets_arr = np.asarray(targets, dtype=np.int64)
    lo, hi = constraint.bounds(hg.total_weight)
    cut_deg = cut_degrees(state)
    rounds = 0
    moves = 0
    floor = np.iinfo(np.int64).min // 4

    # incremental gather state: exact (T, n) cut-gain / SOED-gain
    # caches plus a staleness mask.  A vertex's gains can only change
    # when one of its incident edges' partition counts change, i.e.
    # when it is a pin of an edge touched by an applied batch — so
    # apply_batch marks exactly those pins stale and gather re-scores
    # only the stale part of the boundary.  Cached entries are the full
    # exact matrices (every target, not just spanned blocks), so both
    # the greedy descent and kick() read numbers identical to a full
    # re-gather — the determinism contract is untouched.
    tcount = len(targets)
    gain_cache = np.zeros((tcount, hg.num_vertices), dtype=np.int64)
    soed_cache = np.zeros((tcount, hg.num_vertices), dtype=np.int64)
    stale = np.ones(hg.num_vertices, dtype=bool)
    gather_chunk = 1 << 16  # bounds the (pins, T) transients at XL scale

    def race(cand_v: np.ndarray, cand_t: np.ndarray) -> np.ndarray:
        # conflict-free selection: scatter-min each candidate's rank
        # onto its incident hyperedges; a candidate survives only when,
        # on every one of its edges, it either holds the winning rank
        # or shares the winner's destination block.  Distinct
        # destinations on one hyperedge would invalidate each other's
        # gains, so at most one destination moves per edge — while
        # same-destination groups are superadditive (the target block
        # lands on the edge once, every emptied source still empties),
        # so the realized gain can only meet or beat the prediction,
        # whatever the prediction's sign
        n_cand = len(cand_v)
        edges, deg = hg.vertices_edges(cand_v)
        if not len(edges):
            return np.ones(n_cand, dtype=bool)
        rank_of = np.repeat(np.arange(n_cand, dtype=np.int64), deg)
        edge_best = np.full(hg.num_edges, n_cand, dtype=np.int64)
        np.minimum.at(edge_best, edges, rank_of)
        ok = cand_t[rank_of] == cand_t[edge_best[edges]]
        wins = np.zeros(n_cand, dtype=np.int64)
        np.add.at(wins, rank_of, ok)
        return wins == deg

    def balance_keep(sel_v: np.ndarray, sel_t: np.ndarray) -> np.ndarray:
        # prefix-sum weight filters in rank order against the current
        # weights w0.  Destinations may gain at most hi - w0[p];
        # sources may lose at most w0[p] - lo.  Together:
        # lo <= w0[p] - removed[p] <= w0[p] + added[p] - removed[p]
        #    = new w[p] <= w0[p] + added[p] <= hi
        # for every block that started inside the window (blocks that
        # started outside can only move toward it).
        sel_w = hg.vertex_weight[sel_v]
        w0 = state.part_weight
        keep = np.ones(len(sel_v), dtype=bool)
        for p in targets:
            dst = sel_t == p
            if dst.any():
                keep[dst] &= np.cumsum(sel_w[dst]) <= hi - w0[p]
        src_of = state.part[sel_v]
        for p in targets:
            src = keep & (src_of == p)
            if src.any():
                ok = np.cumsum(sel_w[src]) <= w0[p] - lo
                idx = np.flatnonzero(src)
                keep[idx[~ok]] = False
        return keep

    def apply_batch(sel_v: np.ndarray, sel_t: np.ndarray,
                    sel_g: np.ndarray, sel_s: np.ndarray) -> None:
        # one scatter, then re-derive the boundary from the edges whose
        # cut status flipped
        nonlocal rounds, moves
        soed_before = state.connectivity
        gain, touched, old_lam = state.move_batch(sel_v, sel_t)
        predicted = int(sel_g.sum())
        if gain < predicted:
            raise PartitionError(
                f"batch_refine gain bound violated: realized gain "
                f"{gain} < predicted {predicted} (conflict filter bug)"
            )
        if soed_before - state.connectivity < int(sel_s.sum()):
            raise PartitionError(
                "batch_refine soed gain bound violated "
                "(conflict filter bug)"
            )
        new_lam = state.edge_lambda[touched]
        if len(touched):
            # one gather serves both incremental structures: every pin
            # of a touched edge goes stale for the gain caches, and the
            # pins of edges whose cut status flipped (λ crossing 1)
            # adjust the boundary's cut-edge degrees
            pins, cnt = hg.edges_pins(touched)
            stale[pins] = True
            delta = ((old_lam == 1) & (new_lam > 1)).astype(np.int64) \
                - ((old_lam > 1) & (new_lam == 1)).astype(np.int64)
            flipped = delta != 0
            if flipped.any():
                np.add.at(cut_deg, pins[np.repeat(flipped, cnt)],
                          np.repeat(delta[flipped], cnt[flipped]))
        rounds += 1
        moves += len(sel_v)

    def gather(boundary: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        # boundary-restricted incremental gather: re-score only the
        # stale slice of the boundary with the fused
        # move_gains_matrix kernel (cut + SOED, all targets, one CSR
        # gather), serve the rest from the caches.  The first round
        # scores the whole boundary; later rounds only the pins of
        # edges the previous batches actually touched.
        need = boundary[stale[boundary]]
        for s in range(0, len(need), gather_chunk):
            chunk = need[s:s + gather_chunk]
            g, so = state.move_gains_matrix(chunk, targets_arr)
            gain_cache[:, chunk] = g
            soed_cache[:, chunk] = so
        stale[need] = False
        if recorder.enabled:
            recorder.incr("part.batch.gathered", len(need))
        return gain_cache[:, boundary], soed_cache[:, boundary]

    def current_boundary(frozen: np.ndarray | None = None) -> np.ndarray:
        boundary = np.flatnonzero(cut_deg > 0)
        if blocks is not None and len(boundary):
            boundary = boundary[np.isin(state.part[boundary], targets_arr)]
        if frozen is not None and len(boundary):
            boundary = boundary[~frozen[boundary]]
        return boundary

    def greedy(frozen: np.ndarray | None = None) -> None:
        # improving rounds (positive cut gain, or zero cut gain with
        # positive SOED gain) to a fixpoint
        nonlocal rounds
        while rounds < max_rounds:
            boundary = current_boundary(frozen)
            if not len(boundary):
                return
            if recorder.enabled:
                recorder.observe_max("part.batch.boundary", len(boundary))
            gain_mat, soed_mat = gather(boundary)
            # scale cut gains past the soed range so one argmax
            # resolves the lexicographic (cut, soed) objective; any
            # (vertex, target) pair the balance filter rejects in a
            # zero-move attempt is banned (score floored) and the
            # selection retried when balance_fallback is on
            big = 2 * int(np.abs(soed_mat).max(initial=0)) + 1
            score = gain_mat * big + soed_mat
            ar = np.arange(len(boundary))
            sel_v = np.empty(0, dtype=np.int64)
            first_attempt = True
            while True:
                # best unbanned destination per vertex (own block
                # scores (0, 0), so it can never win a strictly-
                # improving race; argmax takes the lowest target index
                # on ties)
                best_idx = np.argmax(score, axis=0)
                best_gain = gain_mat[best_idx, ar]
                best_soed = soed_mat[best_idx, ar]
                pos = ((best_gain > 0)
                       | ((best_gain == 0) & (best_soed > 0))) \
                    & (score[best_idx, ar] > floor)
                cand_b = np.flatnonzero(pos)
                cand_v = boundary[pos]
                cand_ti = best_idx[pos]
                cand_t = targets_arr[cand_ti]
                cand_g = best_gain[pos]
                cand_s = best_soed[pos]
                n_cand = len(cand_v)
                if recorder.enabled and first_attempt:
                    recorder.incr("part.batch.candidates", n_cand)
                first_attempt = False
                if not n_cand:
                    break  # fixpoint: no improving move exists
                # rank candidates: highest cut gain first, then highest
                # soed gain, lowest vertex id on ties — the
                # deterministic priority the edge race resolves by
                order = np.lexsort((cand_v, -cand_s, -cand_g))
                cand_b, cand_ti = cand_b[order], cand_ti[order]
                cand_v, cand_t = cand_v[order], cand_t[order]
                cand_g, cand_s = cand_g[order], cand_s[order]
                selected = race(cand_v, cand_t)
                if recorder.enabled:
                    recorder.incr("part.batch.conflicts",
                                  int(n_cand - selected.sum()))
                sel_v = cand_v[selected]
                sel_t = cand_t[selected]
                sel_g = cand_g[selected]
                sel_s = cand_s[selected]
                keep = balance_keep(sel_v, sel_t)
                if recorder.enabled:
                    recorder.incr("part.batch.balance_dropped",
                                  int(len(sel_v) - keep.sum()))
                sel_v, sel_t = sel_v[keep], sel_t[keep]
                sel_g, sel_s = sel_g[keep], sel_s[keep]
                if len(sel_v) or not balance_fallback:
                    break  # non-empty batch to apply, or no-retry mode
                # balance rejected every race survivor (the rank-0
                # winner included).  Ban exactly those (vertex, target)
                # pairs and re-select: the next attempt proposes each
                # vertex's next-best improving destination.  Each
                # attempt bans >= 1 of the <= k*|boundary| pairs, so
                # the retry loop terminates.  (keep is all-False here,
                # so the dropped set is exactly the race survivors)
                score[cand_ti[selected], cand_b[selected]] = floor
                if recorder.enabled:
                    recorder.incr("part.batch.retries")
            if not len(sel_v):
                return  # no balance-admissible improving batch
            apply_batch(sel_v, sel_t, sel_g, sel_s)

    def kick() -> np.ndarray | None:
        # perturbation: force the least-damaging non-improving batch —
        # each boundary vertex's best *other* block (own block masked
        # out), best `1/_KICK_FRACTION` of them by (cut, soed) score —
        # through the same race and balance filters.  The subsequent
        # greedy descent decides whether the valley led anywhere; the
        # caller rolls back when it did not.
        boundary = current_boundary()
        if not len(boundary):
            return None
        gain_mat, soed_mat = gather(boundary)
        big = 2 * int(np.abs(soed_mat).max(initial=0)) + 1
        score = gain_mat * big + soed_mat
        own = state.part[boundary]
        score[targets_arr[:, None] == own[None, :]] = floor
        best_idx = np.argmax(score, axis=0)
        ar = np.arange(len(boundary))
        valid = score[best_idx, ar] > floor
        cand_v = boundary[valid]
        cand_t = targets_arr[best_idx[valid]]
        cand_g = gain_mat[best_idx, ar][valid]
        cand_s = soed_mat[best_idx, ar][valid]
        if not len(cand_v):
            return None
        order = np.lexsort((cand_v, -cand_s, -cand_g))
        top = max(1, len(cand_v) // _KICK_FRACTION)
        order = order[:top]
        cand_v, cand_t = cand_v[order], cand_t[order]
        cand_g, cand_s = cand_g[order], cand_s[order]
        selected = race(cand_v, cand_t)
        sel_v, sel_t = cand_v[selected], cand_t[selected]
        sel_g, sel_s = cand_g[selected], cand_s[selected]
        keep = balance_keep(sel_v, sel_t)
        sel_v, sel_t = sel_v[keep], sel_t[keep]
        sel_g, sel_s = sel_g[keep], sel_s[keep]
        if not len(sel_v):
            return None
        apply_batch(sel_v, sel_t, sel_g, sel_s)
        frozen = np.zeros(hg.num_vertices, dtype=bool)
        frozen[sel_v] = True
        return frozen

    greedy()
    # perturbation loop: snapshot the fixpoint, kick the boundary into
    # a negative-gain valley, re-descend (kicked vertices frozen first,
    # so the descent reorganizes *around* the perturbation instead of
    # undoing it move-for-move, then unfrozen to settle), and keep the
    # result only if the lexicographic (cut, soed) objective strictly
    # improved — otherwise restore the snapshot and stop.  Every
    # accepted kick strictly decreases the potential, so this
    # terminates; max_kicks and max_rounds bound the exploration.
    for _ in range(max_kicks):
        if rounds >= max_rounds:
            break
        snap = state.snapshot()
        snap_key = (state.cut_size, state.connectivity)
        snap_cut_deg = cut_deg.copy()
        snap_rounds, snap_moves = rounds, moves
        if recorder.enabled:
            recorder.incr("part.batch.kicks")
        frozen = kick()
        if frozen is None:
            break
        greedy(frozen)
        greedy()
        if (state.cut_size, state.connectivity) >= snap_key:
            state.restore(snap)
            cut_deg = snap_cut_deg
            stale[:] = True  # caches describe the abandoned exploration
            rounds, moves = snap_rounds, snap_moves
            break
    return BatchRefineResult(rounds, moves, cut_before - state.cut_size,
                             state.cut_size)
