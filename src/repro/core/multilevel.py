"""Production multilevel k-way partitioner on the vectorized core.

The hMetis-style baseline (:mod:`repro.baselines.multilevel`) proved
the multilevel idea on this codebase but predates the vectorized
substrate: it recursively bisects induced sub-hypergraphs with its own
two-way FM and never touches :class:`PartitionState`, the obs recorder
or the parallel refinement engine.  This module is the production
rewrite — a *direct k-way* multilevel pipeline built entirely from the
repo's first-class machinery::

    coarsen      heavy-edge first-choice matching, weight-aware
                 (no cluster may exceed a balance-implied cap),
                 repeated until the stop size or the reduction stalls
    initial      greedy k-way candidates on the coarsest hypergraph
                 (LPT + seeded random fills), each refined, best kept
    uncoarsen    project the assignment through each level
                 (``assignment[mapping]`` — cut-exact, see
                 :func:`repro.hypergraph.build.project_hypergraph`)
                 and refine with tournament-scheduled pairwise FM

Every refinement round — at the coarsest level and at every
uncoarsening level — runs through
:class:`repro.core.parallel_refine.PairwiseRefiner`, so the engine
inherits the PR 3 determinism contract verbatim: any ``workers`` count
produces a **bit-identical** partition (snapshot + ordered move
replay over disjoint tournament pairs; see ``docs/parallelism.md``
and ``docs/multilevel.md`` for the invariance argument).

Design references (PAPERS.md): weight-aware matching caps follow
"Multilevel Hypergraph Partitioning with Vertex Weights Revisited";
the synchronous deterministic refinement rounds follow "Deterministic
Parallel Hypergraph Partitioning".

Observability: the engine reports ``part.ml.*`` counters (levels,
coarsest size, match totals, per-level cut maxima, refinement rounds,
uncoarsening gain) plus the shared ``part.pairing.*`` / ``part.fm.*``
/ ``part.refine.*`` families, under the phases ``partition.coarsen``,
``partition.initial`` and ``partition.uncoarsen``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import PartitionError
from ..hypergraph.build import flat_hypergraph, project_hypergraph
from ..hypergraph.hypergraph import Hypergraph
from ..hypergraph.partition_state import PartitionState
from ..obs.recorder import NULL_RECORDER, Recorder
from ..verilog.netlist import Netlist
from .balance import BalanceConstraint
from .batch_refine import batch_refine, validate_refiner
from .fm import rebalance_pair
from .parallel_refine import PairwiseRefiner, pairing_rounds

__all__ = [
    "MultilevelConfig",
    "MultilevelLevel",
    "MultilevelKwayResult",
    "coarsen_hypergraph",
    "multilevel_kway_partition",
    "direct_kway_partition",
    "multilevel_flat_partition",
]


@dataclass(frozen=True)
class MultilevelConfig:
    """Tuning knobs of the multilevel pipeline (all deterministic).

    ``coarsest_vertices`` / ``coarsest_per_part`` set the stop size:
    coarsening halts at ``max(coarsest_vertices, coarsest_per_part*k)``
    vertices.  ``min_reduction`` is the stall guard — a level that
    shrinks the vertex count by less than ``1 - min_reduction`` ends
    the hierarchy.  ``match_weight_fraction`` caps cluster growth:
    no match may create a vertex heavier than that fraction of the
    Formula-1 upper load bound, so the coarsest hypergraph always
    remains packable into a balanced k-way partition.
    """

    coarsest_vertices: int = 160
    coarsest_per_part: int = 24
    min_reduction: float = 0.95
    max_levels: int = 48
    match_weight_fraction: float = 0.5
    large_edge_limit: int = 48
    num_initial: int = 4
    max_fm_passes: int = 4
    max_rounds: int = 8
    #: batch refiner only: levels larger than this run the greedy
    #: descent without kick perturbation.  A kick re-runs the whole
    #: descent up to 8 times for a marginal cut polish — affordable at
    #: 100k vertices, minutes of wall at a million.  The threshold sits
    #: above every committed benchmark size, so results at or below
    #: 100k vertices are unchanged; the scale-ladder rungs above it
    #: trade that polish for a bounded wall.
    batch_kick_vertex_limit: int = 200_000

    def stop_size(self, k: int) -> int:
        return max(self.coarsest_vertices, self.coarsest_per_part * k)

    def max_cluster_weight(self, constraint: BalanceConstraint,
                           total_weight: int) -> int:
        _, hi = constraint.bounds(total_weight)
        return max(1, int(hi * self.match_weight_fraction))


@dataclass(frozen=True)
class MultilevelLevel:
    """One coarsening step: fine hypergraph, its contraction, the map.

    ``mapping[v]`` is the coarse vertex of fine vertex ``v``;
    projecting a coarse assignment down is ``assignment[mapping]``.
    ``max_cluster_weight`` records the matching cap in force, so the
    coarsening invariants are checkable per level (total vertex weight
    preserved, no *merged* cluster past the cap).
    """

    fine: Hypergraph
    coarse: Hypergraph
    mapping: np.ndarray
    max_cluster_weight: int
    matched_pairs: int
    match_score: float


@dataclass
class MultilevelKwayResult:
    """Final partition plus multilevel provenance.

    ``levels`` is the hierarchy depth (0 for the direct engine),
    ``level_cuts`` the cut after refining each uncoarsening level
    (finest last — its entry equals ``cut_size`` before any final
    repair).  ``gate_assignment``/``to_simulation`` make the result a
    drop-in partition backend wherever
    :class:`repro.core.multiway.MultiwayResult` is consumed, provided
    the hypergraph's vertices are gates (``flat_hypergraph``).
    """

    assignment: np.ndarray
    k: int
    b: float
    cut_size: int
    part_weights: np.ndarray
    balanced: bool
    levels: int
    coarse_vertices: int
    initial_cut: int
    refine_rounds: int
    level_cuts: list[int] = field(default_factory=list)
    history: list[str] = field(default_factory=list)

    def gate_assignment(self) -> np.ndarray:
        """Partition id per vertex (= per gate on a flat hypergraph)."""
        return self.assignment

    def to_simulation(self) -> tuple[list[list[int]], list[int]]:
        """(gate clusters, machine per cluster) for the Time Warp engine.

        One cluster per non-empty partition — the clustered Time Warp
        granularity a flat partition induces.
        """
        clusters: list[list[int]] = []
        machines: list[int] = []
        for p in range(self.k):
            members = np.flatnonzero(self.assignment == p)
            if members.size:
                clusters.append([int(g) for g in members])
                machines.append(p)
        return clusters, machines


# -- coarsening -------------------------------------------------------------


def _matching_candidates(
    hg: Hypergraph, large_edge_limit: int
) -> tuple[list[int], list[int], list[float]]:
    """Per-vertex heavy-edge candidate CSR: ``(ptr, neighbour, score)``.

    One vectorized pass over the whole level precomputes, for every
    vertex ``v``, its candidate neighbours (ascending ids) and their
    connectivity scores ``sum(w_e / (|e| - 1))`` over shared scoring
    edges — the quantities the matching loop's per-vertex dict used to
    rebuild from scratch at every visit.  Scores are independent of
    the visit order and of who is already matched (matched candidates
    are *filtered*, never re-scored), so hoisting them out of the loop
    is exact.

    Bit-identity of the float scores: the (owner, candidate) pair
    expansion enumerates incidences in the scalar loop's exact
    encounter order (incident edges ascending, pins ascending within
    each edge), the grouping ``lexsort`` is stable, and ``np.add.at``
    accumulates sequentially in index order — so every score is the
    same left-to-right float sum the dict accumulation produced.
    """
    n = hg.num_vertices
    sizes = np.diff(hg._edge_ptr)
    scoring = (sizes >= 2) & (sizes <= large_edge_limit)
    # same IEEE double as the scalar `edge_weight[e] / (size - 1)`
    edge_score = hg.edge_weight / np.maximum(sizes - 1, 1)

    # expand each (vertex, scoring edge) incidence to the edge's pins —
    # vertex-major, edges ascending per vertex, pins ascending per edge
    deg = np.diff(hg._vertex_ptr)
    owner = np.repeat(np.arange(n, dtype=np.int64), deg)
    inc_e = hg._vertex_pins
    keep = scoring[inc_e]
    owner = owner[keep]
    inc_e = inc_e[keep]
    cand, cnt = hg.edges_pins(inc_e)
    owner = np.repeat(owner, cnt)
    w = np.repeat(edge_score[inc_e], cnt)
    sel = cand != owner
    owner, cand, w = owner[sel], cand[sel], w[sel]

    # group by (owner, candidate): stable sort keeps encounter order
    # within each pair, np.add.at sums in that exact order
    order = np.lexsort((cand, owner))
    owner, cand, w = owner[order], cand[order], w[order]
    new = np.ones(len(owner), dtype=bool)
    new[1:] = (owner[1:] != owner[:-1]) | (cand[1:] != cand[:-1])
    gid = np.cumsum(new) - 1
    ngroups = int(gid[-1]) + 1 if len(gid) else 0
    score = np.zeros(ngroups, dtype=np.float64)
    np.add.at(score, gid, w)
    g_owner = owner[new]
    ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(g_owner, minlength=n), out=ptr[1:])
    return ptr.tolist(), cand[new].tolist(), score.tolist()


def _heavy_edge_matching(
    hg: Hypergraph,
    rng: np.random.Generator,
    max_weight: int,
    large_edge_limit: int,
) -> tuple[np.ndarray, int, float]:
    """One first-choice heavy-edge matching pass.

    Vertices are visited in a seeded random order; each unmatched
    vertex merges with the unmatched neighbour of strongest
    connectivity ``sum(w_e / (|e| - 1))`` over shared edges, lowest id
    on ties, skipping candidates whose merged weight would exceed
    ``max_weight``.  Edges wider than ``large_edge_limit`` carry no
    locality signal (clock/reset nets) and are ignored for *scoring*
    only — they still project and still count toward cuts.

    Candidate neighbours and scores are precomputed for the whole
    level in one vectorized pass (:func:`_matching_candidates`); the
    sequential visit loop only filters matched/over-weight candidates
    and takes the first maximum — ascending candidate ids and strict
    ``>`` keep the lowest id on ties, exactly the retained reference
    (:func:`_heavy_edge_matching_reference`, pinned bit-identical by
    ``tests/test_coarsen_vectorized.py``).

    Returns ``(mapping, matched_pairs, match_score)`` where ``mapping``
    numbers coarse vertices in fine-id order (deterministic).
    """
    n = hg.num_vertices
    vw = hg.vertex_weight_list
    cand_ptr, cand_u, cand_s = _matching_candidates(hg, large_edge_limit)

    match = [-1] * n
    matched_pairs = 0
    match_score = 0.0
    for v in rng.permutation(n).tolist():
        if match[v] != -1:
            continue
        best_u = -1
        best_score = 0.0
        wv = vw[v]
        for i in range(cand_ptr[v], cand_ptr[v + 1]):
            u = cand_u[i]
            if match[u] != -1 or wv + vw[u] > max_weight:
                continue
            s = cand_s[i]
            if s > best_score:
                best_score = s
                best_u = u
        if best_u != -1:
            match[v] = best_u
            match[best_u] = v
            matched_pairs += 1
            match_score += best_score
        else:
            match[v] = v

    # number clusters in fine-id order: each cluster's id is the rank
    # of its smallest member, which np.unique's sorted inverse yields
    # directly (rep[v] = min(v, partner))
    match_arr = np.asarray(match, dtype=np.int64)
    rep = np.minimum(np.arange(n, dtype=np.int64), match_arr)
    _, mapping = np.unique(rep, return_inverse=True)
    return mapping.astype(np.int64, copy=False), matched_pairs, match_score


def _edge_pin_lists(hg: Hypergraph) -> list[list[int]]:
    """Per-edge pin lists as plain Python ints (one bulk CSR gather).

    Reference-path utility only: the production matcher reads CSR
    slices directly, this feeds the retained scalar oracle below.
    """
    flat, counts = hg.edges_pins(np.arange(hg.num_edges, dtype=np.int64))
    flat_list = flat.tolist()
    out: list[list[int]] = []
    pos = 0
    for c in counts.tolist():
        out.append(flat_list[pos:pos + c])
        pos += c
    return out


def _heavy_edge_matching_reference(
    hg: Hypergraph,
    rng: np.random.Generator,
    max_weight: int,
    large_edge_limit: int,
) -> tuple[np.ndarray, int, float]:
    """Scalar dict-accumulation matching — the retained oracle.

    The pre-vectorization implementation, kept verbatim so the
    randomized bit-identity test can pin :func:`_heavy_edge_matching`
    (mapping, pair count and float score all exactly equal) against
    the original semantics across seeds and adversarial edge shapes.
    """
    n = hg.num_vertices
    vertex_weight = hg.vertex_weight_list
    edge_weight = hg.edge_weight_list
    vertex_edges = hg.vertex_edges_lists()
    pins_of = _edge_pin_lists(hg)

    match = [-1] * n
    matched_pairs = 0
    match_score = 0.0
    for v in rng.permutation(n).tolist():
        if match[v] != -1:
            continue
        scores: dict[int, float] = {}
        for e in vertex_edges[v]:
            pins = pins_of[e]
            size = len(pins)
            if size < 2 or size > large_edge_limit:
                continue
            w = edge_weight[e] / (size - 1)
            for u in pins:
                if u != v and match[u] == -1:
                    scores[u] = scores.get(u, 0.0) + w
        best_u = -1
        best_score = 0.0
        wv = vertex_weight[v]
        for u in sorted(scores):  # ascending ids: strict > keeps lowest tie
            if wv + vertex_weight[u] > max_weight:
                continue
            s = scores[u]
            if s > best_score:
                best_score = s
                best_u = u
        if best_u != -1:
            match[v] = best_u
            match[best_u] = v
            matched_pairs += 1
            match_score += best_score
        else:
            match[v] = v

    mapping = [-1] * n
    next_id = 0
    for v in range(n):
        if mapping[v] != -1:
            continue
        mapping[v] = next_id
        partner = match[v]
        if partner != v and mapping[partner] == -1:
            mapping[partner] = next_id
        next_id += 1
    return np.asarray(mapping, dtype=np.int64), matched_pairs, match_score


def coarsen_hypergraph(
    hg: Hypergraph,
    constraint: BalanceConstraint,
    seed: int = 0,
    config: MultilevelConfig | None = None,
    recorder: Recorder = NULL_RECORDER,
) -> tuple[Hypergraph, list[MultilevelLevel]]:
    """Build the coarsening hierarchy for a k-way run.

    Returns ``(coarsest hypergraph, levels finest-first)``.  Stops at
    the config's stop size, after ``max_levels``, or when a level
    shrinks less than the ``min_reduction`` stall guard.  The matching
    cap is fixed across levels at
    :meth:`MultilevelConfig.max_cluster_weight` — a fraction of the
    Formula-1 upper bound, so packability survives contraction.
    """
    cfg = config if config is not None else MultilevelConfig()
    target = cfg.stop_size(constraint.k)
    max_w = cfg.max_cluster_weight(constraint, hg.total_weight)
    rng = np.random.default_rng(seed)
    levels: list[MultilevelLevel] = []
    current = hg
    matched_pairs = 0
    match_score = 0.0
    for _ in range(cfg.max_levels):
        if current.num_vertices <= target:
            break
        mapping, pairs, score = _heavy_edge_matching(
            current, rng, max_w, cfg.large_edge_limit
        )
        coarse = project_hypergraph(current, mapping)
        if coarse.num_vertices >= current.num_vertices * cfg.min_reduction:
            break  # diminishing returns: stop the hierarchy here
        levels.append(MultilevelLevel(
            fine=current, coarse=coarse, mapping=mapping,
            max_cluster_weight=max_w, matched_pairs=pairs,
            match_score=score,
        ))
        matched_pairs += pairs
        match_score += score
        current = coarse
    if recorder.enabled:
        recorder.incr("part.ml.levels", len(levels))
        recorder.incr("part.ml.coarse_vertices", current.num_vertices)
        recorder.incr("part.ml.matched_pairs", matched_pairs)
        recorder.incr("part.ml.match_weight", round(match_score, 3))
        if current.num_vertices:
            recorder.observe_max(
                "part.ml.reduction",
                round(hg.num_vertices / current.num_vertices, 4),
            )
    return current, levels


# -- initial partition ------------------------------------------------------


def _greedy_fill(vertex_weight: list[int], k: int,
                 order: list[int]) -> np.ndarray:
    """Assign vertices in ``order`` to the currently lightest partition
    (lowest id on ties) — LPT when the order is heaviest-first."""
    loads = [0] * k
    assign = [0] * len(vertex_weight)
    for v in order:
        p = loads.index(min(loads))
        assign[v] = p
        loads[p] += vertex_weight[v]
    return np.asarray(assign, dtype=np.int64)


def _improve(
    state: PartitionState,
    constraint: BalanceConstraint,
    rounds_fn,
    engine: PairwiseRefiner,
    rng: np.random.Generator,
    cfg: MultilevelConfig,
    refiner: str = "fm",
    balance_fallback: bool = False,
    recorder: Recorder = NULL_RECORDER,
) -> int:
    """Refine to stability with the selected refiner.

    ``refiner="fm"``: tournament pairing + pairwise-FM rounds until a
    round yields no gain (the same stability loop as the direct
    multiway driver).  ``refiner="batch"``: the data-parallel
    whole-boundary refiner of :mod:`repro.core.batch_refine`, run to
    its fixpoint.  A batch round is one synchronous gather/select/apply
    step — far finer-grained than a pairing round — so the FM round cap
    does not apply; the refiner's own generous default cap backstops
    the natural fixpoint exit.  ``balance_fallback`` (batch only)
    forwards the next-best-destination retry mode; it defaults off —
    measured at 100k vertices, the retries buy a better coarsest cut
    but a worse final one (greedy churn), so only genuinely
    window-bound callers should enable it.
    """
    if refiner == "batch":
        kicks = 8 if state.hg.num_vertices <= cfg.batch_kick_vertex_limit \
            else 0
        return batch_refine(state, constraint,
                            balance_fallback=balance_fallback,
                            max_kicks=kicks,
                            recorder=recorder).rounds
    rounds = 0
    for _ in range(cfg.max_rounds):
        schedule = rounds_fn(state, rng)
        gain = 0
        for pair_round in schedule:
            gain += engine.refine_round(
                state, pair_round, constraint, max_passes=cfg.max_fm_passes,
            )
        rounds += 1
        if gain <= 0:
            break
    return rounds


def _repair(state: PartitionState, constraint: BalanceConstraint,
            recorder: Recorder) -> None:
    """Greedy heavy→light balance repair (driver-side, worker-count
    independent)."""
    lo, hi = constraint.bounds(state.hg.total_weight)
    for _ in range(2 * state.k):
        heavy = int(np.argmax(state.part_weight))
        light = int(np.argmin(state.part_weight))
        if heavy == light:
            break
        if state.part_weight[heavy] <= hi and state.part_weight[light] >= lo:
            break
        if rebalance_pair(state, heavy, light, constraint,
                          recorder=recorder) == 0:
            break


def _initial_partition(
    coarsest: Hypergraph,
    k: int,
    constraint: BalanceConstraint,
    cfg: MultilevelConfig,
    rounds_fn,
    engine: PairwiseRefiner,
    rng: np.random.Generator,
    recorder: Recorder,
    refiner: str = "fm",
) -> tuple[PartitionState, int]:
    """Best of ``num_initial`` greedy candidates on the coarsest level.

    Candidate 0 is the LPT fill (heaviest vertex first, lightest
    partition); the rest are greedy fills in seeded random orders.
    Every candidate is refined through the shared refiner (so the
    choice is made between *locally optimal* candidates) and the winner
    is the lexicographically best (balance violation, cut, index).
    """
    vertex_weight = coarsest.vertex_weight_list
    n = coarsest.num_vertices
    lpt = sorted(range(n), key=lambda v: (-vertex_weight[v], v))
    best: tuple[float, int, int] | None = None
    best_state: PartitionState | None = None
    rounds_total = 0
    for idx in range(max(1, cfg.num_initial)):
        order = lpt if idx == 0 else rng.permutation(n).tolist()
        state = PartitionState(
            coarsest, k, _greedy_fill(vertex_weight, k, order)
        )
        rounds_total += _improve(state, constraint, rounds_fn, engine,
                                 rng, cfg, refiner=refiner,
                                 recorder=recorder)
        _repair(state, constraint, recorder)
        key = (constraint.violation(state.part_weight), state.cut_size, idx)
        if best is None or key < best:
            best = key
            best_state = state
    assert best_state is not None
    return best_state, rounds_total


# -- the drivers ------------------------------------------------------------


def _validate(hg: Hypergraph, k: int) -> None:
    if k < 1:
        raise PartitionError(f"k must be >= 1, got {k}")
    if k > hg.num_vertices:
        raise PartitionError(
            f"cannot make {k} partitions from {hg.num_vertices} vertices"
        )


def multilevel_kway_partition(
    hg: Hypergraph,
    k: int,
    b: float,
    seed: int = 0,
    workers: int | None = None,
    recorder: Recorder = NULL_RECORDER,
    config: MultilevelConfig | None = None,
    refiner: str = "fm",
) -> MultilevelKwayResult:
    """Direct k-way multilevel partitioning of a hypergraph.

    Parameters
    ----------
    hg:
        Any weighted hypergraph (e.g. ``flat_hypergraph(netlist)``).
    k, b:
        Partition count and Formula-1 balance factor (percent).
    seed:
        Drives matching order and the random initial fills; fully
        deterministic for a fixed value.
    workers:
        Refinement worker processes
        (:mod:`repro.core.parallel_refine`); ``None`` consults
        ``REPRO_WORKERS``.  **Any** worker count produces a
        bit-identical partition — parallelism is a wall-time knob only
        (the determinism contract, ``docs/multilevel.md``).
    recorder:
        Observability sink: ``part.ml.*`` plus the shared pairing /
        FM / refine counter families and the ``partition.coarsen`` /
        ``partition.initial`` / ``partition.uncoarsen`` phases.  A
        recorder never changes the result.
    config:
        :class:`MultilevelConfig` overrides (stop size, matching cap,
        candidate and pass budgets).
    refiner:
        Per-level refiner: ``"fm"`` (tournament-paired heap FM through
        the parallel engine) or ``"batch"`` (the data-parallel
        whole-boundary refiner, :mod:`repro.core.batch_refine`) —
        see ``docs/refinement.md`` for the decision guide.  Both are
        deterministic at any ``workers`` count.
    """
    _validate(hg, k)
    validate_refiner(refiner)
    cfg = config if config is not None else MultilevelConfig()
    constraint = BalanceConstraint(k, b)
    rng = np.random.default_rng(seed)
    history: list[str] = []

    with recorder.phase("partition.coarsen"):
        coarsest, levels = coarsen_hypergraph(
            hg, constraint, seed=seed, config=cfg, recorder=recorder
        )
    history.append(
        f"coarsen: {hg.num_vertices} -> {coarsest.num_vertices} vertices "
        f"over {len(levels)} levels"
    )

    rounds_fn = pairing_rounds("exhaustive", recorder=recorder)
    engine = PairwiseRefiner(workers, recorder=recorder)
    refine_rounds = 0
    level_cuts: list[int] = []
    try:
        with recorder.phase("partition.initial"):
            state, initial_rounds = _initial_partition(
                coarsest, k, constraint, cfg, rounds_fn, engine, rng,
                recorder, refiner=refiner,
            )
        refine_rounds += initial_rounds
        initial_cut = state.cut_size
        history.append(
            f"initial: cut={initial_cut}, "
            f"loads={state.part_weight.tolist()}"
        )
        if recorder.enabled:
            recorder.incr("part.ml.initial_candidates",
                          max(1, cfg.num_initial))
            recorder.incr("part.ml.initial_cut", initial_cut)
            recorder.observe_max("part.ml.level_cut", initial_cut)
        with recorder.phase("partition.uncoarsen"):
            for level in reversed(levels):
                state = PartitionState(
                    level.fine, k, state.part[level.mapping]
                )
                refine_rounds += _improve(state, constraint, rounds_fn,
                                          engine, rng, cfg,
                                          refiner=refiner,
                                          recorder=recorder)
                _repair(state, constraint, recorder)
                level_cuts.append(state.cut_size)
                if recorder.enabled:
                    recorder.observe_max("part.ml.level_cut",
                                         state.cut_size)
                history.append(
                    f"level {level.fine.num_vertices}v: "
                    f"cut={state.cut_size}, "
                    f"loads={state.part_weight.tolist()}"
                )
        engine.record_summary()
    finally:
        engine.close()

    if recorder.enabled:
        recorder.incr("part.ml.refine_rounds", refine_rounds)
        recorder.incr("part.ml.uncoarsen_gain",
                      max(0, initial_cut - state.cut_size))
    return MultilevelKwayResult(
        assignment=state.part.copy(),
        k=k,
        b=b,
        cut_size=state.cut_size,
        part_weights=state.part_weight.copy(),
        balanced=constraint.satisfied(state.part_weight),
        levels=len(levels),
        coarse_vertices=coarsest.num_vertices,
        initial_cut=initial_cut,
        refine_rounds=refine_rounds,
        level_cuts=level_cuts,
        history=history,
    )


def direct_kway_partition(
    hg: Hypergraph,
    k: int,
    b: float,
    seed: int = 0,
    workers: int | None = None,
    recorder: Recorder = NULL_RECORDER,
    config: MultilevelConfig | None = None,
    refiner: str = "fm",
) -> MultilevelKwayResult:
    """Flat direct k-way partitioning — the no-hierarchy comparator.

    The same greedy LPT seeding and stability loop as the multilevel
    engine, applied once to the full hypergraph with no coarsening.
    This is what "direct multiway on a flat hypergraph" means in the
    decision guide (``docs/multilevel.md``) and in
    ``benchmarks/bench_multilevel.py``'s cut-at-equal-balance gate;
    the seeded move budget is identical, so any cut difference is
    attributable to the hierarchy alone.  ``refiner`` selects heap FM
    (``"fm"``) or the data-parallel batch refiner (``"batch"``) —
    ``benchmarks/bench_batch_refine.py`` uses exactly this switch to
    isolate the refiner as the only variable.
    """
    _validate(hg, k)
    validate_refiner(refiner)
    cfg = config if config is not None else MultilevelConfig()
    constraint = BalanceConstraint(k, b)
    rng = np.random.default_rng(seed)
    history: list[str] = []

    vertex_weight = hg.vertex_weight_list
    order = sorted(range(hg.num_vertices),
                   key=lambda v: (-vertex_weight[v], v))
    rounds_fn = pairing_rounds("exhaustive", recorder=recorder)
    engine = PairwiseRefiner(workers, recorder=recorder)
    try:
        with recorder.phase("partition.initial"):
            state = PartitionState(
                hg, k, _greedy_fill(vertex_weight, k, order)
            )
        initial_cut = state.cut_size
        history.append(
            f"LPT initial: cut={initial_cut}, "
            f"loads={state.part_weight.tolist()}"
        )
        with recorder.phase("partition.refine"):
            refine_rounds = _improve(state, constraint, rounds_fn, engine,
                                     rng, cfg, refiner=refiner,
                                     recorder=recorder)
        _repair(state, constraint, recorder)
        history.append(
            f"refined: cut={state.cut_size}, "
            f"loads={state.part_weight.tolist()}"
        )
        engine.record_summary()
    finally:
        engine.close()
    return MultilevelKwayResult(
        assignment=state.part.copy(),
        k=k,
        b=b,
        cut_size=state.cut_size,
        part_weights=state.part_weight.copy(),
        balanced=constraint.satisfied(state.part_weight),
        levels=0,
        coarse_vertices=hg.num_vertices,
        initial_cut=initial_cut,
        refine_rounds=refine_rounds,
        level_cuts=[state.cut_size],
        history=history,
    )


def multilevel_flat_partition(
    netlist: Netlist,
    k: int,
    b: float,
    seed: int = 0,
    workers: int | None = None,
    recorder: Recorder = NULL_RECORDER,
    config: MultilevelConfig | None = None,
    refiner: str = "fm",
) -> MultilevelKwayResult:
    """Multilevel k-way partition of a netlist's flat gate hypergraph.

    The netlist-facing adapter: vertices are gates, so the result's
    ``gate_assignment`` / ``to_simulation`` plug directly into the CLI,
    the pre-simulation sweeps and the Time Warp engine — the multilevel
    counterpart of :func:`repro.core.multiway.design_driven_partition`.
    ``refiner`` passes through to :func:`multilevel_kway_partition`.
    """
    return multilevel_kway_partition(
        flat_hypergraph(netlist), k, b, seed=seed, workers=workers,
        recorder=recorder, config=config, refiner=refiner,
    )
