"""The paper's contribution: design-driven multiway partitioning.

Public surface:

* :func:`design_driven_partition` — the full Figure-2 algorithm
  (cone initial partition → pairing + pairwise FM → super-gate
  flattening under the Formula-1 balance constraint).
* :class:`BalanceConstraint` — Formula 1, with the paper's (k, b) grid
  as :data:`PAPER_K_VALUES` / :data:`PAPER_B_VALUES`.
* :func:`cone_partition` — the concurrency-oriented initial partition.
* :func:`refine_pair` — pairwise FM with best-prefix rollback.
* :data:`PAIRING_STRATEGIES` — random / exhaustive / cut / gain.
* :class:`PairwiseRefiner` / :func:`tournament_rounds` /
  :func:`resolve_workers` — the deterministic process-parallel
  refinement engine (see ``docs/parallelism.md``).
* :func:`brute_force_presim` / :func:`heuristic_presim` — the (k, b)
  selection searches driven by short trial simulations.
* :func:`multilevel_kway_partition` / :func:`direct_kway_partition` /
  :func:`multilevel_flat_partition` — the production multilevel k-way
  engine and its flat comparator (see ``docs/multilevel.md``).
* :func:`batch_refine` / :data:`REFINERS` — the data-parallel boundary
  refiner selectable as ``refiner="batch"`` on every partition entry
  point (see ``docs/refinement.md``).
"""

from .balance import BalanceConstraint, PAPER_B_VALUES, PAPER_K_VALUES
from .batch_refine import (
    REFINERS,
    BatchRefineResult,
    batch_refine,
    cut_degrees,
    validate_refiner,
)
from .cone import cone_partition, input_cones, build_cluster_dag
from .fm import FMPassResult, refine_pair, rebalance_pair
from .pairing import PAIRING_STRATEGIES, pairing_strategy, estimate_pair_gain
from .parallel_refine import (
    PairwiseRefiner,
    pairing_rounds,
    resolve_workers,
    schedule_rounds,
    tournament_rounds,
)
from .multiway import MultiwayResult, design_driven_partition
from .multilevel import (
    MultilevelConfig,
    MultilevelKwayResult,
    MultilevelLevel,
    coarsen_hypergraph,
    direct_kway_partition,
    multilevel_flat_partition,
    multilevel_kway_partition,
)
from .presim import (
    PresimPoint,
    PresimStudy,
    evaluate_partition,
    brute_force_presim,
    heuristic_presim,
)
from .activity import profile_activity, activity_clustering
from .recursive import recursive_design_driven_partition
from .partition_io import (
    save_partition,
    load_partition,
    dumps_partition,
    loads_partition,
)

__all__ = [
    "BalanceConstraint",
    "PAPER_B_VALUES",
    "PAPER_K_VALUES",
    "REFINERS",
    "BatchRefineResult",
    "batch_refine",
    "cut_degrees",
    "validate_refiner",
    "cone_partition",
    "input_cones",
    "build_cluster_dag",
    "FMPassResult",
    "refine_pair",
    "rebalance_pair",
    "PAIRING_STRATEGIES",
    "pairing_strategy",
    "estimate_pair_gain",
    "PairwiseRefiner",
    "pairing_rounds",
    "resolve_workers",
    "schedule_rounds",
    "tournament_rounds",
    "MultiwayResult",
    "design_driven_partition",
    "MultilevelConfig",
    "MultilevelKwayResult",
    "MultilevelLevel",
    "coarsen_hypergraph",
    "direct_kway_partition",
    "multilevel_flat_partition",
    "multilevel_kway_partition",
    "PresimPoint",
    "PresimStudy",
    "evaluate_partition",
    "brute_force_presim",
    "heuristic_presim",
    "profile_activity",
    "activity_clustering",
    "recursive_design_driven_partition",
    "save_partition",
    "load_partition",
    "dumps_partition",
    "loads_partition",
]
