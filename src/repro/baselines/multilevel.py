"""Multilevel k-way hypergraph partitioner — the hMetis stand-in.

The paper compares against hMetis [Karypis, Aggarwal, Kumar, Shekhar]
run on the *flattened* netlist.  This is the same algorithm family
implemented from scratch:

1. **coarsen** — heavy-edge first-choice matching down to ~100 vertices;
2. **initial partition** — several random / region-growing bisections
   of the coarsest hypergraph, each FM-refined, best kept;
3. **uncoarsen** — project through the level stack, FM-refining the
   bisection at every level;
4. **k-way** — recursive bisection with proportional weight targets
   (supports any k, not only powers of two), each bisection given the
   UBfactor-style imbalance ``b`` of the paper's tables.

Entry points: :func:`multilevel_bisect` (one bisection) and
:func:`multilevel_partition` (k-way on any hypergraph, e.g.
``flat_hypergraph(netlist)``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import PartitionError
from ..hypergraph.hypergraph import Hypergraph
from ..hypergraph.metrics import hyperedge_cut, part_weights
from .coarsen import coarsen
from .fm2 import cut_of, fm_refine_bisection
from .initial import grow_bisection, random_bisection

__all__ = ["MultilevelResult", "multilevel_bisect", "multilevel_partition"]


@dataclass
class MultilevelResult:
    """k-way partition of a hypergraph by recursive multilevel bisection."""

    assignment: np.ndarray
    k: int
    b: float
    cut_size: int
    part_weights: np.ndarray


def multilevel_bisect(
    hg: Hypergraph,
    frac0: float = 0.5,
    ub: float = 5.0,
    seed: int = 0,
    num_initial: int = 8,
    coarsest: int = 96,
) -> np.ndarray:
    """Bisect ``hg`` into sides of ``frac0`` / ``1 - frac0`` weight.

    ``ub`` is the per-bisection imbalance in percent of *this
    hypergraph's* total weight (the hMetis UBfactor convention).
    Returns a 0/1 side array.
    """
    total = hg.total_weight
    t0 = frac0 * total
    slack = total * ub / 100.0
    bounds0 = (max(t0 - slack, 0.0), min(t0 + slack, float(total)))
    bounds1 = (max(total - t0 - slack, 0.0), min(total - t0 + slack, float(total)))

    coarsest_hg, levels = coarsen(hg, target_vertices=coarsest, seed=seed)
    rng = np.random.default_rng(seed + 0x5EED)

    # initial candidates on the coarsest hypergraph
    c_total = coarsest_hg.total_weight
    c_t0 = frac0 * c_total
    c_slack = c_total * ub / 100.0
    c_b0 = (max(c_t0 - c_slack, 0.0), c_t0 + c_slack)
    c_b1 = (max(c_total - c_t0 - c_slack, 0.0), c_total - c_t0 + c_slack)
    best_side: np.ndarray | None = None
    best_cut = None
    for trial in range(num_initial):
        if trial % 2 == 0:
            side = grow_bisection(coarsest_hg, c_t0, rng)
        else:
            side = random_bisection(coarsest_hg, c_t0, rng)
        fm_refine_bisection(coarsest_hg, side, c_b0, c_b1)
        cut = cut_of(coarsest_hg, side)
        if best_cut is None or cut < best_cut:
            best_cut = cut
            best_side = side.copy()
    assert best_side is not None
    side = best_side

    # uncoarsen with refinement at each level
    for level in reversed(levels):
        side = side[level.mapping]
        lt = level.fine.total_weight
        lt0 = frac0 * lt
        ls = lt * ub / 100.0
        fm_refine_bisection(
            level.fine,
            side,
            (max(lt0 - ls, 0.0), lt0 + ls),
            (max(lt - lt0 - ls, 0.0), lt - lt0 + ls),
        )
    return side


def multilevel_partition(
    hg: Hypergraph,
    k: int,
    b: float,
    seed: int = 0,
    num_initial: int = 8,
) -> MultilevelResult:
    """k-way partition by recursive multilevel bisection.

    ``b`` plays the role of hMetis's UBfactor: each bisection may
    deviate from its proportional split by ``b`` percent.  Odd k is
    handled with proportional targets (e.g. 3 → 1/3 + recursive 2).
    """
    if k < 1:
        raise PartitionError(f"k must be >= 1, got {k}")
    if k > hg.num_vertices:
        raise PartitionError(
            f"cannot make {k} partitions from {hg.num_vertices} vertices"
        )
    assignment = np.zeros(hg.num_vertices, dtype=np.int64)
    _recursive(hg, np.arange(hg.num_vertices), k, 0, b, seed, num_initial, assignment)
    return MultilevelResult(
        assignment=assignment,
        k=k,
        b=b,
        cut_size=hyperedge_cut(hg, assignment),
        part_weights=part_weights(hg, assignment, k),
    )


def _recursive(
    root: Hypergraph,
    vertices: np.ndarray,
    k: int,
    first_part: int,
    b: float,
    seed: int,
    num_initial: int,
    assignment: np.ndarray,
) -> None:
    if k == 1:
        assignment[vertices] = first_part
        return
    sub, back = _induced(root, vertices)
    k0 = k // 2
    frac0 = k0 / k
    side = multilevel_bisect(
        sub, frac0=frac0, ub=b, seed=seed, num_initial=num_initial
    )
    left = vertices[side == 0]
    right = vertices[side == 1]
    if len(left) == 0 or len(right) == 0:
        # degenerate split (tiny inputs): fall back to a weight split
        order = vertices[np.argsort(-root.vertex_weight[vertices])]
        left, right = order[::2], order[1::2]
    _recursive(root, left, k0, first_part, b, seed * 31 + 1, num_initial, assignment)
    _recursive(
        root, right, k - k0, first_part + k0, b, seed * 31 + 2, num_initial, assignment
    )


def _induced(
    hg: Hypergraph, vertices: np.ndarray
) -> tuple[Hypergraph, np.ndarray]:
    """Sub-hypergraph induced by a vertex subset.

    Hyperedges are restricted to their pins inside the subset; the
    restriction keeps edges with two or more surviving pins (standard
    recursive-bisection semantics — pins already split off no longer
    contribute to this subproblem's cut).
    """
    index = {int(v): i for i, v in enumerate(vertices)}
    edges: list[list[int]] = []
    weights: list[int] = []
    seen_edges: set[int] = set()
    for v in vertices:
        for e in hg.vertex_edges(int(v)):
            e = int(e)
            if e in seen_edges:
                continue
            seen_edges.add(e)
            pins = [index[int(u)] for u in hg.edge_vertices(e) if int(u) in index]
            if len(pins) >= 2:
                edges.append(pins)
                weights.append(int(hg.edge_weight[e]))
    sub = Hypergraph.from_edges(
        hg.vertex_weight[vertices].tolist(), edges, weights
    )
    return sub, vertices
