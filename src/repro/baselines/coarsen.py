"""Coarsening phase of the multilevel baseline (hMetis-style).

"During the coarsening phase, a sequence of successively smaller
hypergraphs is constructed" [Karypis et al. 1999].  We implement the
first-choice / heavy-edge flavour: vertices are visited in random
order and greedily merged with the unmatched neighbour sharing the
strongest connectivity, scored as ``sum(w_e / (|e| - 1))`` over shared
hyperedges — the classic hyperedge-to-pairwise weight heuristic.
Merged pin lists are deduplicated and parallel edges accumulate weight,
so the coarse hypergraph preserves cut structure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hypergraph.hypergraph import Hypergraph

__all__ = ["CoarseLevel", "coarsen_once", "coarsen"]


@dataclass
class CoarseLevel:
    """One coarsening step: the finer hypergraph and the fine→coarse map."""

    fine: Hypergraph
    mapping: np.ndarray  # fine vertex id -> coarse vertex id


_LARGE_EDGE_LIMIT = 48


def coarsen_once(
    hg: Hypergraph,
    rng: np.random.Generator,
    max_vertex_weight: int,
) -> tuple[Hypergraph, np.ndarray]:
    """One heavy-edge matching pass; returns (coarse hg, mapping).

    Hyperedges with more than ``_LARGE_EDGE_LIMIT`` pins are ignored
    for *matching* (standard hMetis practice): a clock or reset net
    touching tens of thousands of gates carries no locality signal and
    would make scoring quadratic in its size.  Such edges still project
    into the coarse hypergraph and still count toward cuts.
    """
    n = hg.num_vertices
    order = rng.permutation(n)
    match = np.full(n, -1, dtype=np.int64)

    for v in order:
        if match[v] != -1:
            continue
        scores: dict[int, float] = {}
        for e in hg.vertex_edges(int(v)):
            pins = hg.edge_vertices(int(e))
            if len(pins) < 2 or len(pins) > _LARGE_EDGE_LIMIT:
                continue
            w = float(hg.edge_weight[e]) / (len(pins) - 1)
            for u in pins:
                u = int(u)
                if u != v and match[u] == -1:
                    scores[u] = scores.get(u, 0.0) + w
        best_u = -1
        best_score = 0.0
        wv = int(hg.vertex_weight[v])
        for u, s in scores.items():
            if wv + int(hg.vertex_weight[u]) > max_vertex_weight:
                continue
            if s > best_score or (s == best_score and (best_u == -1 or u < best_u)):
                best_score = s
                best_u = u
        if best_u != -1:
            match[v] = best_u
            match[best_u] = int(v)
        else:
            match[v] = int(v)

    # number coarse vertices
    mapping = np.full(n, -1, dtype=np.int64)
    next_id = 0
    for v in range(n):
        if mapping[v] != -1:
            continue
        mapping[v] = next_id
        partner = int(match[v])
        if partner != v and mapping[partner] == -1:
            mapping[partner] = next_id
        next_id += 1

    coarse_weights = np.zeros(next_id, dtype=np.int64)
    np.add.at(coarse_weights, mapping, hg.vertex_weight)

    # project edges, dedupe identical pin sets
    edge_acc: dict[tuple[int, ...], int] = {}
    for e in range(hg.num_edges):
        pins = tuple(sorted({int(mapping[u]) for u in hg.edge_vertices(e)}))
        if len(pins) < 2:
            continue
        edge_acc[pins] = edge_acc.get(pins, 0) + int(hg.edge_weight[e])
    edges = list(edge_acc.keys())
    weights = [edge_acc[e] for e in edges]
    coarse = Hypergraph.from_edges(coarse_weights.tolist(), edges, weights)
    return coarse, mapping


def coarsen(
    hg: Hypergraph,
    target_vertices: int = 96,
    seed: int = 0,
    min_reduction: float = 0.9,
    max_levels: int = 32,
) -> tuple[Hypergraph, list[CoarseLevel]]:
    """Coarsen until ``target_vertices`` or the reduction stalls.

    Returns the coarsest hypergraph and the level stack (finest first);
    projecting a coarse partition back walks the stack in reverse.
    """
    rng = np.random.default_rng(seed)
    levels: list[CoarseLevel] = []
    current = hg
    # cap cluster weight so one coarse vertex can't exceed a bisection side
    max_w = max(1, int(np.ceil(hg.total_weight / max(target_vertices // 3, 2))))
    for _ in range(max_levels):
        if current.num_vertices <= target_vertices:
            break
        coarse, mapping = coarsen_once(current, rng, max_w)
        if coarse.num_vertices >= current.num_vertices * min_reduction:
            break  # diminishing returns
        levels.append(CoarseLevel(fine=current, mapping=mapping))
        current = coarse
    return current, levels
