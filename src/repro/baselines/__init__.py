"""Baseline partitioners the paper compares against (or that ground it).

* :func:`multilevel_partition` — from-scratch hMetis-style multilevel
  k-way partitioner (coarsen / initial / uncoarsen+FM / recursive
  bisection); the paper ran hMetis on the flattened netlist.
* :func:`multilevel_bisect` — one multilevel bisection.
* :func:`random_partition` — seeded balanced random floor.
"""

from .multilevel import MultilevelResult, multilevel_bisect, multilevel_partition
from .random_partition import random_partition
from .fm2 import cut_of, fm_refine_bisection
from .coarsen import coarsen, coarsen_once, CoarseLevel
from .initial import grow_bisection, random_bisection

__all__ = [
    "MultilevelResult",
    "multilevel_bisect",
    "multilevel_partition",
    "random_partition",
    "cut_of",
    "fm_refine_bisection",
    "coarsen",
    "coarsen_once",
    "CoarseLevel",
    "grow_bisection",
    "random_bisection",
]
