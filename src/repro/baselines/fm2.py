"""Two-way FM refinement for the multilevel baseline.

A self-contained Fiduccia–Mattheyses bisection refiner over a raw
(hypergraph, 0/1 assignment) pair with *asymmetric* side bounds —
recursive bisection splits into unequal targets (e.g. 1/3 vs 2/3 for
k=3), which the k-way :mod:`repro.core.fm` machinery does not need to
support.  Used at every uncoarsening level of the hMetis-style
baseline.

This is the textbook implementation: incremental delta-gain updates on
the four critical-edge transitions (not gain recomputation), a lazy
max-heap seeded with boundary vertices only, best-prefix rollback per
pass, and a stall cutoff so a settled fine-level pass costs O(boundary)
rather than O(n).
"""

from __future__ import annotations

import heapq

import numpy as np

from ..hypergraph.hypergraph import Hypergraph

__all__ = ["cut_of", "fm_refine_bisection"]


def cut_of(hg: Hypergraph, side: np.ndarray) -> int:
    """Weighted cut of a bisection (0/1 assignment)."""
    cut = 0
    for e in range(hg.num_edges):
        pins = hg.edge_vertices(e)
        s0 = side[pins[0]]
        if (side[pins] != s0).any():
            cut += int(hg.edge_weight[e])
    return cut


def fm_refine_bisection(
    hg: Hypergraph,
    side: np.ndarray,
    bounds0: tuple[float, float],
    bounds1: tuple[float, float],
    max_passes: int = 6,
    stall_limit: int | None = None,
) -> int:
    """Refine a bisection in place; returns the total cut improvement.

    ``bounds0``/``bounds1`` are (min, max) weight windows per side.
    Standard FM: per pass every vertex moves at most once, highest gain
    first under the weight windows, and the pass rolls back to its best
    prefix; passes repeat until one fails to improve.  ``stall_limit``
    aborts a pass after that many consecutive non-improving moves
    (default: ``max(64, n // 16)``).
    """
    n = hg.num_vertices
    if n == 0:
        return 0
    if stall_limit is None:
        stall_limit = max(64, n // 16)
    vertex_weight = hg.vertex_weight

    # per-edge pin count on each side (CSR-vectorized)
    edge_ptr = hg._edge_ptr
    edge_pins = hg._edge_pins
    sizes = np.diff(edge_ptr)
    if hg.num_edges:
        ones = np.add.reduceat(side[edge_pins], edge_ptr[:-1]).astype(np.int64)
        ones[sizes == 0] = 0
    else:
        ones = np.zeros(0, dtype=np.int64)
    zeros = sizes - ones
    side_weight = np.zeros(2, dtype=np.int64)
    np.add.at(side_weight, side, vertex_weight)

    gains = np.zeros(n, dtype=np.int64)
    counts = (zeros, ones)

    def init_gains() -> list[int]:
        """Recompute all gains (vectorized); returns boundary vertices.

        Per pin: +w when the pin is alone on its side of a cut edge
        (moving it uncuts the edge), -w when its edge is uncut with
        more than one pin (moving it cuts the edge).
        """
        gains[:] = 0
        if hg.num_edges == 0:
            return []
        w = hg.edge_weight
        sizes_of_pin = np.repeat(sizes, sizes)
        c0_of_pin = np.repeat(zeros, sizes)
        c1_of_pin = np.repeat(ones, sizes)
        w_of_pin = np.repeat(w, sizes)
        pin_side = side[edge_pins]
        own = np.where(pin_side == 1, c1_of_pin, c0_of_pin)
        other = sizes_of_pin - own
        contrib = np.zeros(len(edge_pins), dtype=np.int64)
        contrib[(own == 1) & (other > 0)] += w_of_pin[(own == 1) & (other > 0)]
        uncut = (other == 0) & (sizes_of_pin > 1)
        contrib[uncut] -= w_of_pin[uncut]
        np.add.at(gains, edge_pins, contrib)
        boundary_mask = (c0_of_pin > 0) & (c1_of_pin > 0)
        return np.unique(edge_pins[boundary_mask]).tolist()

    total = 0
    for _ in range(max_passes):
        boundary = init_gains()
        stamp = np.zeros(n, dtype=np.int64)
        locked = np.zeros(n, dtype=bool)
        heap: list[tuple[int, int, int]] = [
            (-int(gains[v]), v, 0) for v in boundary
        ]
        heapq.heapify(heap)
        in_heap = np.zeros(n, dtype=bool)
        in_heap[boundary] = True

        def bump(u: int, delta: int) -> None:
            gains[u] += delta
            if locked[u]:
                return
            stamp[u] += 1
            heapq.heappush(heap, (-int(gains[u]), u, int(stamp[u])))
            in_heap[u] = True

        moves: list[int] = []
        cum = best = best_idx = 0
        stalled = 0
        while heap and stalled < stall_limit:
            neg_g, v, st = heapq.heappop(heap)
            if locked[v] or st != stamp[v]:
                continue
            s = int(side[v])
            wv = int(vertex_weight[v])
            dst_lo, dst_hi = bounds1 if s == 0 else bounds0
            src_lo = (bounds0 if s == 0 else bounds1)[0]
            if side_weight[1 - s] + wv > dst_hi or side_weight[s] - wv < src_lo:
                locked[v] = True
                continue
            locked[v] = True
            # FM critical-edge gain updates around the move of v: s -> 1-s
            for e in hg.vertex_edges(v):
                e = int(e)
                if sizes[e] < 2:
                    continue
                w = int(hg.edge_weight[e])
                from_c = counts[s]
                to_c = counts[1 - s]
                pins = hg.edge_vertices(e)
                if to_c[e] == 0:
                    for u in pins:
                        if not locked[u]:
                            bump(int(u), w)
                elif to_c[e] == 1:
                    for u in pins:
                        if side[u] == 1 - s and not locked[u]:
                            bump(int(u), -w)
                            break
                from_c[e] -= 1
                to_c[e] += 1
                if from_c[e] == 0:
                    for u in pins:
                        if not locked[u]:
                            bump(int(u), -w)
                elif from_c[e] == 1:
                    for u in pins:
                        if side[u] == s and int(u) != v and not locked[u]:
                            bump(int(u), w)
                            break
            side_weight[s] -= wv
            side_weight[1 - s] += wv
            side[v] = 1 - s
            gains[v] = -gains[v]
            moves.append(v)
            cum += -neg_g
            if cum > best:
                best = cum
                best_idx = len(moves)
                stalled = 0
            else:
                stalled += 1

        # roll back past the best prefix (raw flips; counts rebuilt by
        # init_gains at the top of the next pass)
        for v in reversed(moves[best_idx:]):
            s = int(side[v])
            for e in hg.vertex_edges(v):
                counts[s][int(e)] -= 1
                counts[1 - s][int(e)] += 1
            side_weight[s] -= int(vertex_weight[v])
            side_weight[1 - s] += int(vertex_weight[v])
            side[v] = 1 - s
        total += best
        if best <= 0:
            break
    return total
