"""Initial bipartition of the coarsest hypergraph.

hMetis computes several random bisections of the coarsest graph and
keeps the best after refinement.  Two seeders are provided: random
balanced assignment, and greedy hyperedge-aware region growing (start
from a random vertex, absorb the most-connected frontier vertex until
the target weight is reached) — region growing usually lands far below
random and gives FM a better basin.
"""

from __future__ import annotations

import numpy as np

from ..hypergraph.hypergraph import Hypergraph

__all__ = ["random_bisection", "grow_bisection"]


def random_bisection(
    hg: Hypergraph,
    target0: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Random assignment filling side 0 to ``target0`` total weight."""
    side = np.ones(hg.num_vertices, dtype=np.int64)
    order = rng.permutation(hg.num_vertices)
    acc = 0
    for v in order:
        wv = int(hg.vertex_weight[v])
        if acc + wv <= target0 or acc == 0:
            side[v] = 0
            acc += wv
        if acc >= target0:
            break
    return side


def grow_bisection(
    hg: Hypergraph,
    target0: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Greedy region growing: side 0 absorbs the most-connected
    frontier vertex until it reaches the target weight."""
    n = hg.num_vertices
    side = np.ones(n, dtype=np.int64)
    start = int(rng.integers(n))
    side[start] = 0
    acc = int(hg.vertex_weight[start])
    # connectivity of each outside vertex to the grown region
    conn = np.zeros(n, dtype=np.float64)
    in_region = np.zeros(n, dtype=bool)
    in_region[start] = True

    def absorb(v: int) -> None:
        for e in hg.vertex_edges(v):
            pins = hg.edge_vertices(int(e))
            if len(pins) < 2:
                continue
            w = float(hg.edge_weight[e]) / (len(pins) - 1)
            for u in pins:
                if not in_region[u]:
                    conn[u] += w

    absorb(start)
    while acc < target0:
        candidates = np.flatnonzero(~in_region)
        if len(candidates) == 0:
            break
        best = candidates[np.argmax(conn[candidates])]
        if conn[best] == 0.0:
            best = candidates[int(rng.integers(len(candidates)))]
        v = int(best)
        side[v] = 0
        in_region[v] = True
        acc += int(hg.vertex_weight[v])
        conn[v] = 0.0
        absorb(v)
    return side
