"""Random balanced partitioner — the floor every heuristic must beat."""

from __future__ import annotations

import numpy as np

from ..errors import PartitionError
from ..hypergraph.hypergraph import Hypergraph

__all__ = ["random_partition"]


def random_partition(
    hg: Hypergraph, k: int, seed: int = 0
) -> np.ndarray:
    """Seeded random assignment, greedily weight-balanced.

    Vertices are shuffled and each is placed on the currently lightest
    partition — random cut structure, near-perfect balance.
    """
    if k < 1 or k > hg.num_vertices:
        raise PartitionError(f"invalid k={k} for {hg.num_vertices} vertices")
    rng = np.random.default_rng(seed)
    order = rng.permutation(hg.num_vertices)
    assignment = np.zeros(hg.num_vertices, dtype=np.int64)
    load = np.zeros(k, dtype=np.int64)
    for v in order:
        p = int(np.argmin(load))
        assignment[v] = p
        load[p] += int(hg.vertex_weight[v])
    return assignment
