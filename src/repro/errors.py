"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers embedding the library can catch a single base class.  Subsystems
raise the most specific subclass available; messages always carry enough
context (names, line numbers, partition ids) to diagnose the failure
without a debugger.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class VerilogError(ReproError):
    """Base class for errors in the Verilog front end."""


class LexError(VerilogError):
    """Raised when the lexer meets a character it cannot tokenize.

    Carries the 1-based ``line`` and ``column`` of the offending input.
    """

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ParseError(VerilogError):
    """Raised when the parser meets an unexpected token.

    Carries the 1-based ``line`` and ``column`` of the offending token.
    """

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ElaborationError(VerilogError):
    """Raised when a parsed design cannot be elaborated into a netlist.

    Typical causes: references to undefined modules, port-width
    mismatches, multiply-driven nets, or missing top-level modules.
    """


class NetlistError(ReproError):
    """Raised for structural violations in a netlist (e.g. dangling pins)."""


class HypergraphError(ReproError):
    """Raised for invalid hypergraph construction or mutation."""


class PartitionError(ReproError):
    """Raised when a partitioning request cannot be satisfied.

    For example: more partitions than vertices, or a balance constraint
    that no assignment can meet even after full flattening.
    """


class SimulationError(ReproError):
    """Raised for invalid simulation configuration or internal invariant
    violations in the sequential or Time Warp kernels."""


class ConfigError(ReproError):
    """Raised for invalid experiment / benchmark configuration values."""


class MetricsError(ReproError):
    """Raised when a metrics document fails schema validation
    (see :mod:`repro.obs.metrics` and ``docs/observability.md``)."""


class TraceError(ReproError):
    """Raised when a kernel trace dump cannot be parsed or analyzed
    (see :mod:`repro.obs.analyze` and ``docs/observability.md``)."""
