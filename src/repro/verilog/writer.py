"""Verilog emitters.

Two writers are provided:

* :func:`write_source` — pretty-print a parsed/constructed
  :class:`~repro.verilog.ast.Source` back to Verilog text.  Together
  with the parser this gives a lossless round trip for the supported
  subset (used heavily by the property-based tests).
* :func:`write_netlist_verilog` — emit an elaborated (flat)
  :class:`~repro.verilog.netlist.Netlist` as a single structural
  module.  Hierarchical net/gate names contain dots, so they are
  emitted as escaped identifiers (``\\u_acs.sum[3]``), which the lexer
  accepts back.
"""

from __future__ import annotations

import io

from . import ast
from .netlist import CONST0, CONST1, CONSTX, Netlist

__all__ = ["write_source", "write_module", "write_netlist_verilog", "format_expr"]

_SAFE_FIRST = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_SAFE_REST = _SAFE_FIRST | set("0123456789$")

_VERILOG_KEYWORDS = {
    "module", "endmodule", "input", "output", "inout", "wire", "assign",
    "supply0", "supply1", "and", "or", "nand", "nor", "xor", "xnor",
    "not", "buf", "dff", "dffr", "dffe",
}


def _ident(name: str) -> str:
    """Emit a (possibly escaped) identifier."""
    ok = (
        bool(name)
        and name[0] in _SAFE_FIRST
        and all(c in _SAFE_REST for c in name)
        and name not in _VERILOG_KEYWORDS
    )
    return name if ok else f"\\{name} "


def format_expr(expr: ast.Expr) -> str:
    """Render a connection expression to Verilog text."""
    if isinstance(expr, ast.Identifier):
        return _ident(expr.name)
    if isinstance(expr, ast.BitSelect):
        return f"{_ident(expr.name)}[{expr.index}]"
    if isinstance(expr, ast.PartSelect):
        return f"{_ident(expr.name)}[{expr.msb}:{expr.lsb}]"
    if isinstance(expr, ast.Concat):
        return "{" + ", ".join(format_expr(i) for i in expr.items) + "}"
    if isinstance(expr, ast.Literal):
        chars = {0: "0", 1: "1", 2: "x"}
        msb_first = "".join(chars[b] for b in reversed(expr.bits))
        return f"{len(expr.bits)}'b{msb_first}"
    if isinstance(expr, ast.Unconnected):
        return ""
    raise TypeError(f"cannot format {expr!r}")


def _range_txt(rng: ast.Range | None) -> str:
    return "" if rng is None else f"[{rng.msb}:{rng.lsb}] "


def write_module(module: ast.Module, out: io.StringIO) -> None:
    """Emit one module definition."""
    ports = ", ".join(_ident(p) for p in module.port_order)
    out.write(f"module {_ident(module.name)} ({ports});\n")
    for pname in module.port_order:
        decl = module.port_decls.get(pname)
        if decl is not None:
            out.write(f"  {decl.direction} {_range_txt(decl.range)}{_ident(decl.name)};\n")
    for decl in module.net_decls.values():
        if decl.name in module.port_decls:
            continue
        out.write(f"  {decl.kind} {_range_txt(decl.range)}{_ident(decl.name)};\n")
    for a in module.assigns:
        out.write(f"  assign {format_expr(a.lhs)} = {format_expr(a.rhs)};\n")
    for g in module.gates:
        terms = ", ".join(format_expr(t) for t in g.terminals)
        name = f" {_ident(g.name)}" if g.name else ""
        out.write(f"  {g.gtype}{name} ({terms});\n")
    for inst in module.instances:
        if inst.named is not None:
            conns = ", ".join(
                f".{_ident(p)}({format_expr(e)})" for p, e in inst.named
            )
        else:
            conns = ", ".join(format_expr(e) for e in (inst.positional or ()))
        out.write(
            f"  {_ident(inst.module_name)} {_ident(inst.instance_name)} ({conns});\n"
        )
    out.write("endmodule\n")


def write_source(source: ast.Source) -> str:
    """Emit a whole source file."""
    out = io.StringIO()
    for module in source.modules.values():
        write_module(module, out)
        out.write("\n")
    return out.getvalue()


def write_netlist_verilog(netlist: Netlist) -> str:
    """Emit a flat elaborated netlist as one structural Verilog module.

    Constants are materialized as ``supply0``/``supply1`` nets; CONSTX
    appears as an undriven wire (which simulates as X, matching its
    semantics).  The output parses back through
    :func:`repro.verilog.parser.parse_source`.
    """
    out = io.StringIO()
    names = [_netname(netlist, nid) for nid in range(netlist.num_nets)]
    ports = [names[n] for n in netlist.inputs] + [names[n] for n in netlist.outputs]
    out.write(f"module {_ident(netlist.top)} ({', '.join(_ident(p) for p in ports)});\n")
    for nid in netlist.inputs:
        out.write(f"  input {_ident(names[nid])};\n")
    for nid in netlist.outputs:
        out.write(f"  output {_ident(names[nid])};\n")
    io_nets = set(netlist.inputs) | set(netlist.outputs)
    used = _used_nets(netlist)
    for nid in sorted(used - io_nets):
        if nid == CONST0:
            out.write(f"  supply0 {_ident(names[nid])};\n")
        elif nid == CONST1:
            out.write(f"  supply1 {_ident(names[nid])};\n")
        else:
            out.write(f"  wire {_ident(names[nid])};\n")
    for gate in netlist.gates:
        terms = ", ".join(
            _ident(names[n]) for n in (gate.output, *gate.inputs)
        )
        out.write(f"  {gate.gtype} {_ident(gate.name)} ({terms});\n")
    out.write("endmodule\n")
    return out.getvalue()


def _netname(netlist: Netlist, nid: int) -> str:
    if nid == CONST0:
        return "_const0"
    if nid == CONST1:
        return "_const1"
    if nid == CONSTX:
        return "_constx"
    return netlist.net_names[nid]


def _used_nets(netlist: Netlist) -> set[int]:
    used: set[int] = set()
    for gate in netlist.gates:
        used.add(gate.output)
        used.update(gate.inputs)
    return used
