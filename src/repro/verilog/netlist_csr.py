"""Array-native elaborated netlist (the streamed construction target).

:class:`~repro.verilog.netlist.Netlist` models every gate as a frozen
dataclass and every net's sink list as a Python list — the right shape
for hierarchy-aware partitioning and named diagnostics, but at the
paper's true ~1.2 M-gate scale the per-gate objects alone cost
gigabytes and minutes.  :class:`NetlistCSR` is the flat alternative:
the same elaborated circuit as five arrays (gate type codes, gate
output nets, a CSR input-pin list, primary I/O id vectors) with **no
per-gate Python objects at all**.  The streamed circuit generators
(:mod:`repro.circuits.stream`) emit it directly, and the hypergraph
and simulation substrates consume it without ever materializing the
object model; a small-config equivalence test proves the two paths
describe the same circuit gate-for-gate
(``tests/test_stream_circuits.py``).

Net and gate ids are dense integers exactly as in :class:`Netlist`,
with the three constant nets pinned at ids 0..2.  Construction-side
arrays may arrive int32 (:func:`repro.hypergraph.dtypes.index_dtype`);
the frozen object widens them once so every downstream vectorized
kernel sees the int64 it expects.
"""

from __future__ import annotations

import numpy as np

from ..errors import NetlistError
from .netlist import CONST0, CONST1, CONSTX, _NUM_CONST_NETS

__all__ = ["ChunkedIntArray", "NetlistCSR"]


class ChunkedIntArray:
    """Append-only int accumulator with bounded-size chunks.

    The streamed builders accumulate pin and gate arrays whose final
    length is unknown up front.  Growing one ``np.ndarray`` by
    repeated ``concatenate`` is O(n^2); collecting Python lists costs
    ~28 bytes per int.  This accumulator appends into preallocated
    fixed-size chunks (``chunk`` elements each) and concatenates
    exactly once at :meth:`freeze` — peak transient memory is the
    result plus one chunk, and every element is stored at ``dtype``
    width throughout.
    """

    def __init__(self, dtype: np.dtype, chunk: int = 1 << 18) -> None:
        if chunk < 1:
            raise ValueError(f"chunk size must be >= 1, got {chunk}")
        self.dtype = np.dtype(dtype)
        self.chunk = int(chunk)
        self._full: list[np.ndarray] = []
        self._head = np.empty(self.chunk, dtype=self.dtype)
        self._fill = 0
        self._len = 0

    def __len__(self) -> int:
        return self._len

    def extend(self, values: np.ndarray) -> None:
        """Append a 1-D array (copied into the chunks at ``dtype``)."""
        values = np.ascontiguousarray(values).reshape(-1)
        pos = 0
        remaining = len(values)
        while remaining:
            space = self.chunk - self._fill
            take = remaining if remaining < space else space
            self._head[self._fill:self._fill + take] = \
                values[pos:pos + take]
            self._fill += take
            pos += take
            remaining -= take
            if self._fill == self.chunk:
                self._full.append(self._head)
                self._head = np.empty(self.chunk, dtype=self.dtype)
                self._fill = 0
        self._len += len(values)

    def append(self, value: int) -> None:
        """Append one scalar."""
        if self._fill == self.chunk:
            self._full.append(self._head)
            self._head = np.empty(self.chunk, dtype=self.dtype)
            self._fill = 0
        self._head[self._fill] = value
        self._fill += 1
        self._len += 1

    def freeze(self) -> np.ndarray:
        """Concatenate the chunks into one array (single use)."""
        parts = self._full + [self._head[:self._fill]]
        out = np.concatenate(parts) if len(parts) > 1 \
            else parts[0].copy()
        self._full = []
        self._head = np.empty(0, dtype=self.dtype)
        self._fill = 0
        return out


class NetlistCSR:
    """Flat array form of an elaborated netlist.

    Attributes
    ----------
    top:
        Top module name (diagnostic only).
    gate_types:
        Tuple of primitive names; ``gate_code[g]`` indexes it.
    gate_code:
        ``(num_gates,)`` small-int array of type codes.
    gate_output:
        ``(num_gates,)`` int64 output net id per gate.
    pin_ptr / pin_net:
        CSR input-pin list: gate ``g`` reads nets
        ``pin_net[pin_ptr[g]:pin_ptr[g + 1]]`` in primitive pin order
        (``dff``: d, clk — the same convention as :class:`Netlist`).
    inputs / outputs:
        Primary I/O net ids in port declaration order (int64).
    num_nets:
        Total net count including the three constants.
    """

    __slots__ = (
        "top", "gate_types", "gate_code", "gate_output",
        "pin_ptr", "pin_net", "inputs", "outputs", "num_nets",
    )

    def __init__(
        self,
        top: str,
        gate_types: tuple[str, ...],
        gate_code: np.ndarray,
        gate_output: np.ndarray,
        pin_ptr: np.ndarray,
        pin_net: np.ndarray,
        inputs: np.ndarray,
        outputs: np.ndarray,
        num_nets: int,
    ) -> None:
        self.top = top
        self.gate_types = tuple(gate_types)
        self.gate_code = np.ascontiguousarray(gate_code)
        self.gate_output = np.ascontiguousarray(gate_output, dtype=np.int64)
        self.pin_ptr = np.ascontiguousarray(pin_ptr, dtype=np.int64)
        self.pin_net = np.ascontiguousarray(pin_net, dtype=np.int64)
        self.inputs = np.ascontiguousarray(inputs, dtype=np.int64)
        self.outputs = np.ascontiguousarray(outputs, dtype=np.int64)
        self.num_nets = int(num_nets)
        self.validate()

    @classmethod
    def from_netlist(cls, netlist) -> "NetlistCSR":
        """Lower an object-model :class:`Netlist` to arrays.

        One Python pass over the gates — meant for tests and for
        feeding mid-scale parsed circuits into the array-native
        consumers, not for the million-gate path (which never builds
        the object model in the first place).
        """
        gtypes: list[str] = []
        type_code: dict[str, int] = {}
        n = netlist.num_gates
        code = np.empty(n, dtype=np.int16)
        out = np.empty(n, dtype=np.int64)
        counts = np.empty(n, dtype=np.int64)
        pins: list[int] = []
        for gate in netlist.gates:
            c = type_code.get(gate.gtype)
            if c is None:
                c = type_code[gate.gtype] = len(gtypes)
                gtypes.append(gate.gtype)
            code[gate.gid] = c
            out[gate.gid] = gate.output
            counts[gate.gid] = len(gate.inputs)
            pins.extend(gate.inputs)
        ptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, dtype=np.int64, out=ptr[1:])
        return cls(
            top=netlist.top,
            gate_types=tuple(gtypes),
            gate_code=code,
            gate_output=out,
            pin_ptr=ptr,
            pin_net=np.array(pins, dtype=np.int64),
            inputs=np.array(netlist.inputs, dtype=np.int64),
            outputs=np.array(netlist.outputs, dtype=np.int64),
            num_nets=netlist.num_nets,
        )

    # -- queries ---------------------------------------------------------

    @property
    def num_gates(self) -> int:
        """Number of primitive gates/cells."""
        return len(self.gate_code)

    @property
    def num_pins(self) -> int:
        """Total gate input-pin count."""
        return len(self.pin_net)

    def gate_type(self, gid: int) -> str:
        """Primitive name of gate ``gid``."""
        return self.gate_types[int(self.gate_code[gid])]

    def gate_inputs(self, gid: int) -> np.ndarray:
        """Input net ids of gate ``gid`` in pin order (view)."""
        return self.pin_net[self.pin_ptr[gid]:self.pin_ptr[gid + 1]]

    def gate_name(self, gid: int) -> str:
        """Synthetic stable gate name (the streamed path carries no
        hierarchical name strings — that is the point)."""
        return f"g{gid}"

    def validate(self) -> None:
        """Structural sanity checks; raises :class:`NetlistError`.

        The array analogue of :meth:`Netlist.validate` plus the
        single-driver rule (cheap here: one ``np.unique`` over the
        output array instead of a per-gate wiring pass).
        """
        n_gates = self.num_gates
        if len(self.gate_output) != n_gates:
            raise NetlistError("gate_output length mismatch")
        if len(self.pin_ptr) != n_gates + 1:
            raise NetlistError("pin_ptr length mismatch")
        if len(self.pin_net) != (int(self.pin_ptr[-1]) if n_gates else 0):
            raise NetlistError("pin_net length does not match pin_ptr")
        if n_gates and (np.diff(self.pin_ptr) < 0).any():
            raise NetlistError("pin_ptr is not monotone")
        if n_gates:
            if int(self.gate_code.min()) < 0 or \
                    int(self.gate_code.max()) >= len(self.gate_types):
                raise NetlistError("gate_code outside the gate_types table")
            if int(self.gate_output.min()) < _NUM_CONST_NETS:
                bad = int(np.argmax(self.gate_output < _NUM_CONST_NETS))
                raise NetlistError(f"gate {bad} drives a constant net")
            if int(self.gate_output.max()) >= self.num_nets:
                raise NetlistError("gate output net id out of range")
            if len(np.unique(self.gate_output)) != n_gates:
                raise NetlistError("two gates drive the same net")
        if len(self.pin_net) and (
            int(self.pin_net.min()) < 0
            or int(self.pin_net.max()) >= self.num_nets
        ):
            raise NetlistError("gate input net id out of range")
        for label, ids in (("input", self.inputs), ("output", self.outputs)):
            if len(ids) and (
                int(ids.min()) < 0 or int(ids.max()) >= self.num_nets
            ):
                raise NetlistError(f"primary {label} net id out of range")
        if len(self.inputs):
            driven = np.isin(self.inputs, self.gate_output)
            if driven.any():
                bad = int(self.inputs[np.argmax(driven)])
                raise NetlistError(
                    f"primary input net {bad} is also driven by a gate"
                )
            if np.isin(self.inputs,
                       (CONST0, CONST1, CONSTX)).any():
                raise NetlistError("a primary input is a constant net")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"NetlistCSR(top={self.top!r}, gates={self.num_gates}, "
            f"nets={self.num_nets}, pins={self.num_pins}, "
            f"inputs={len(self.inputs)}, outputs={len(self.outputs)})"
        )
