"""Gate primitive library.

The gate-level subset of Verilog this library targets is the output of
logic synthesis: combinational gate primitives (``and``, ``or``,
``nand``, ``nor``, ``xor``, ``xnor``, ``not``, ``buf``) plus sequential
cells.  Synthesized netlists express flip-flops as technology cells;
we provide built-in cell modules ``dff`` (q, d, clk), ``dffr``
(q, d, clk, rst — synchronous active-high reset) and ``dffe``
(q, d, clk, en) that the elaborator recognizes without a source
definition, mirroring how DVS consumed vvp's ``.functor`` records.

Combinational primitives follow the Verilog connection convention: the
**first terminal is the output**, the remaining terminals are inputs.
``and/or/nand/nor/xor/xnor`` accept 2+ inputs; ``not``/``buf`` accept
exactly one input (multi-output forms of not/buf are normalized away by
the parser into one gate per output).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "COMBINATIONAL_GATES",
    "SEQUENTIAL_CELLS",
    "GateSpec",
    "gate_spec",
    "is_combinational",
    "is_sequential",
    "is_gate_type",
]


@dataclass(frozen=True)
class GateSpec:
    """Static description of a primitive gate or built-in cell.

    Attributes
    ----------
    name:
        Primitive keyword (``"nand"``) or cell name (``"dff"``).
    min_inputs / max_inputs:
        Inclusive input-arity bounds; ``max_inputs`` of ``None`` means
        unbounded (variadic primitives).
    sequential:
        True for state-holding cells (flip-flops).
    input_names:
        For sequential cells, the fixed input pin order after the
        output ``q`` (e.g. ``("d", "clk")``).
    """

    name: str
    min_inputs: int
    max_inputs: int | None
    sequential: bool = False
    input_names: tuple[str, ...] = ()


COMBINATIONAL_GATES: dict[str, GateSpec] = {
    "and": GateSpec("and", 2, None),
    "nand": GateSpec("nand", 2, None),
    "or": GateSpec("or", 2, None),
    "nor": GateSpec("nor", 2, None),
    "xor": GateSpec("xor", 2, None),
    "xnor": GateSpec("xnor", 2, None),
    "not": GateSpec("not", 1, 1),
    "buf": GateSpec("buf", 1, 1),
}

SEQUENTIAL_CELLS: dict[str, GateSpec] = {
    "dff": GateSpec("dff", 2, 2, sequential=True, input_names=("d", "clk")),
    "dffr": GateSpec("dffr", 3, 3, sequential=True, input_names=("d", "clk", "rst")),
    "dffe": GateSpec("dffe", 3, 3, sequential=True, input_names=("d", "clk", "en")),
}

_ALL = {**COMBINATIONAL_GATES, **SEQUENTIAL_CELLS}


def gate_spec(name: str) -> GateSpec:
    """Look up the :class:`GateSpec` for a primitive/cell name."""
    return _ALL[name]


def is_combinational(name: str) -> bool:
    """True if ``name`` is a combinational gate primitive."""
    return name in COMBINATIONAL_GATES


def is_sequential(name: str) -> bool:
    """True if ``name`` is a built-in sequential cell."""
    return name in SEQUENTIAL_CELLS


def is_gate_type(name: str) -> bool:
    """True if ``name`` is any recognized primitive or built-in cell."""
    return name in _ALL
