r"""Tokenizer for the structural gate-level Verilog subset.

Handles identifiers (including escaped ``\foo`` identifiers emitted by
synthesis tools), sized/unsized numeric literals (``8'hFF``, ``1'b0``,
``42``), punctuation, line (``//``) and block (``/* */``) comments, and
compiler directives (backtick lines are skipped — timescale directives
are irrelevant to a unit-delay model).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..errors import LexError

__all__ = ["Token", "tokenize", "KEYWORDS"]

KEYWORDS = frozenset(
    {
        "module",
        "endmodule",
        "input",
        "output",
        "inout",
        "wire",
        "assign",
        "supply0",
        "supply1",
    }
)

_PUNCT = (
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
    ",",
    ";",
    ":",
    "=",
    ".",
    "#",
)

_IDENT_START = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_$")
_IDENT_CONT = _IDENT_START | frozenset("0123456789")
_DIGITS = frozenset("0123456789")


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``kind`` is one of ``"ident"``, ``"keyword"``, ``"number"``,
    ``"sized_number"``, a punctuation string, or ``"eof"``.  For
    ``sized_number`` the ``value`` keeps the raw literal text (e.g.
    ``"4'b10x1"``); parsing of the base/bits happens in the parser so
    error positions are preserved.
    """

    kind: str
    value: str
    line: int
    column: int


def tokenize(text: str) -> list[Token]:
    """Tokenize Verilog source text; raises :class:`LexError` on
    unrecognized characters."""
    return list(_tokens(text))


def _tokens(text: str) -> Iterator[Token]:
    i = 0
    n = len(text)
    line = 1
    col = 1

    def advance(k: int) -> None:
        nonlocal i, line, col
        for _ in range(k):
            if text[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        c = text[i]
        if c in " \t\r\n":
            advance(1)
            continue
        if text.startswith("//", i):
            j = text.find("\n", i)
            advance((j - i) if j != -1 else (n - i))
            continue
        if text.startswith("/*", i):
            j = text.find("*/", i + 2)
            if j == -1:
                raise LexError("unterminated block comment", line, col)
            advance(j + 2 - i)
            continue
        if c == "`":
            # compiler directive: skip to end of line
            j = text.find("\n", i)
            advance((j - i) if j != -1 else (n - i))
            continue
        if c == "\\":
            # escaped identifier: up to the next whitespace
            j = i + 1
            while j < n and text[j] not in " \t\r\n":
                j += 1
            if j == i + 1:
                raise LexError("empty escaped identifier", line, col)
            tok = Token("ident", text[i + 1 : j], line, col)
            advance(j - i)
            yield tok
            continue
        if c in _IDENT_START:
            j = i
            while j < n and text[j] in _IDENT_CONT:
                j += 1
            word = text[i:j]
            kind = "keyword" if word in KEYWORDS else "ident"
            tok = Token(kind, word, line, col)
            advance(j - i)
            yield tok
            continue
        if c in _DIGITS or c == "'":
            # number: [size]'[base]digits  or plain decimal
            j = i
            while j < n and (text[j] in _DIGITS or text[j] == "_"):
                j += 1
            if j < n and text[j] == "'":
                j += 1
                if j < n and text[j] in "sS":
                    j += 1
                if j >= n or text[j] not in "bBoOdDhH":
                    raise LexError("malformed based literal", line, col)
                j += 1
                while j < n and (text[j] in _IDENT_CONT or text[j] == "?"):
                    j += 1
                tok = Token("sized_number", text[i:j], line, col)
            else:
                tok = Token("number", text[i:j].replace("_", ""), line, col)
            advance(j - i)
            yield tok
            continue
        if c in _PUNCT:
            tok = Token(c, c, line, col)
            advance(1)
            yield tok
            continue
        raise LexError(f"unexpected character {c!r}", line, col)
    yield Token("eof", "", line, col)
