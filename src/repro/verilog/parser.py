"""Recursive-descent parser for the structural gate-level Verilog subset.

Entry point: :func:`parse_source` (text → :class:`~repro.verilog.ast.Source`).

The grammar (EBNF, terminals quoted)::

    source        := { module }
    module        := "module" ident "(" [ port_list ] ")" ";" { item } "endmodule"
    port_list     := ident { "," ident }
    item          := port_decl | net_decl | gate_inst | assign | module_inst
    port_decl     := ("input"|"output"|"inout") [ range ] ident { "," ident } ";"
    net_decl      := ("wire"|"supply0"|"supply1") [ range ] ident { "," ident } ";"
    range         := "[" number ":" number "]"
    gate_inst     := gate_type [ delay ] gate_body { "," gate_body } ";"
    gate_body     := [ ident ] "(" expr { "," expr } ")"
    delay         := "#" ( number | "(" number { "," number } ")" )
    module_inst   := ident inst_body { "," inst_body } ";"
    inst_body     := ident "(" connections ")"
    connections   := expr { "," expr }              (positional)
                   | named_conn { "," named_conn }  (named)
    named_conn    := "." ident "(" [ expr ] ")"
    assign        := "assign" lvalue "=" expr ";"
    expr          := concat | primary
    concat        := "{" expr { "," expr } "}"
    primary       := ident [ "[" number [ ":" number ] "]" ] | literal

Delays are parsed and discarded (the simulation model is unit-delay, as
in the paper).  Multi-output ``buf``/``not`` forms are normalized into
one gate per output.
"""

from __future__ import annotations

from pathlib import Path

from ..errors import ParseError
from . import ast
from .lexer import Token, tokenize
from .primitives import COMBINATIONAL_GATES, SEQUENTIAL_CELLS, is_gate_type

__all__ = ["parse_source", "parse_file", "parse_literal_bits"]

_NET_KINDS = ("wire", "supply0", "supply1")


def parse_source(text: str) -> ast.Source:
    """Parse Verilog source text into a :class:`~repro.verilog.ast.Source`."""
    return _Parser(tokenize(text)).parse()


def parse_file(path: str | Path) -> ast.Source:
    """Parse a Verilog file."""
    return parse_source(Path(path).read_text())


def parse_literal_bits(raw: str, line: int = 0, col: int = 0) -> tuple[int, ...]:
    """Decode a Verilog literal into LSB-first bits (0/1/2 for x/z).

    ``raw`` may be sized+based (``4'b10x1``), based without size
    (``'hff``), or plain decimal (``13`` → minimal width).
    """
    text = raw.replace("_", "")
    if "'" not in text:
        value = int(text)
        if value == 0:
            return (0,)
        bits = []
        while value:
            bits.append(value & 1)
            value >>= 1
        return tuple(bits)
    size_txt, rest = text.split("'", 1)
    rest = rest.lstrip("sS")
    if not rest:
        raise ParseError(f"malformed literal {raw!r}", line, col)
    base_ch = rest[0].lower()
    digits = rest[1:]
    if not digits:
        raise ParseError(f"literal {raw!r} has no digits", line, col)
    per_digit = {"b": 1, "o": 3, "h": 4, "d": 0}[base_ch]
    bits: list[int] = []
    if base_ch == "d":
        value = int(digits)
        while value:
            bits.append(value & 1)
            value >>= 1
        if not bits:
            bits = [0]
    else:
        for ch in reversed(digits.lower()):
            if ch in "xz?":
                bits.extend([2] * per_digit)
            else:
                try:
                    value = int(ch, 16 if base_ch == "h" else 8 if base_ch == "o" else 2)
                except ValueError:
                    raise ParseError(f"bad digit {ch!r} in literal {raw!r}", line, col)
                for i in range(per_digit):
                    bits.append((value >> i) & 1)
    if size_txt:
        size = int(size_txt)
        if len(bits) < size:
            # pad with 0, or with x if the MSB digit was x/z
            pad = bits[-1] if bits and bits[-1] == 2 else 0
            bits.extend([pad] * (size - len(bits)))
        bits = bits[:size]
    return tuple(bits)


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._toks = tokens
        self._pos = 0

    # -- token helpers ----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        return self._toks[min(self._pos + offset, len(self._toks) - 1)]

    def _next(self) -> Token:
        tok = self._toks[self._pos]
        if tok.kind != "eof":
            self._pos += 1
        return tok

    def _expect(self, kind: str, what: str | None = None) -> Token:
        tok = self._next()
        if tok.kind != kind:
            raise ParseError(
                f"expected {what or kind!r}, found {tok.value or tok.kind!r}",
                tok.line,
                tok.column,
            )
        return tok

    def _expect_keyword(self, word: str) -> Token:
        tok = self._next()
        if tok.kind != "keyword" or tok.value != word:
            raise ParseError(
                f"expected {word!r}, found {tok.value or tok.kind!r}",
                tok.line,
                tok.column,
            )
        return tok

    def _at_keyword(self, word: str) -> bool:
        tok = self._peek()
        return tok.kind == "keyword" and tok.value == word

    # -- grammar ------------------------------------------------------------

    def parse(self) -> ast.Source:
        source = ast.Source()
        while self._peek().kind != "eof":
            source.add(self._module())
        return source

    def _module(self) -> ast.Module:
        self._expect_keyword("module")
        name = self._expect("ident", "module name").value
        module = ast.Module(name=name)
        if self._peek().kind == "(":
            self._next()
            if self._peek().kind != ")":
                module.port_order.append(self._expect("ident", "port name").value)
                while self._peek().kind == ",":
                    self._next()
                    module.port_order.append(self._expect("ident", "port name").value)
            self._expect(")")
        self._expect(";")
        while not self._at_keyword("endmodule"):
            tok = self._peek()
            if tok.kind == "eof":
                raise ParseError("unexpected end of file inside module", tok.line, tok.column)
            self._item(module)
        self._next()  # endmodule
        return module

    def _item(self, module: ast.Module) -> None:
        tok = self._peek()
        if tok.kind == "keyword" and tok.value in ("input", "output", "inout"):
            self._port_decl(module)
        elif tok.kind == "keyword" and tok.value in _NET_KINDS:
            self._net_decl(module)
        elif tok.kind == "keyword" and tok.value == "assign":
            self._assign(module)
        elif tok.kind == "ident" and is_gate_type(tok.value):
            self._gate_inst(module)
        elif tok.kind == "ident":
            self._module_inst(module)
        else:
            raise ParseError(
                f"unexpected token {tok.value or tok.kind!r} in module body",
                tok.line,
                tok.column,
            )

    def _range(self) -> ast.Range:
        self._expect("[")
        msb = int(self._expect("number", "range msb").value)
        self._expect(":")
        lsb = int(self._expect("number", "range lsb").value)
        self._expect("]")
        return ast.Range(msb, lsb)

    def _port_decl(self, module: ast.Module) -> None:
        direction = self._next().value
        rng = self._range() if self._peek().kind == "[" else None
        while True:
            tok = self._expect("ident", "port name")
            decl = ast.PortDecl(direction, tok.value, rng)
            if tok.value in module.port_decls:
                raise ParseError(f"duplicate port declaration {tok.value!r}", tok.line, tok.column)
            module.port_decls[tok.value] = decl
            if tok.value not in module.port_order:
                # ANSI-less style: allow decls for ports not in header only
                # if the header was empty (legacy tools sometimes omit it).
                if module.port_order:
                    raise ParseError(
                        f"port {tok.value!r} not in module header", tok.line, tok.column
                    )
                module.port_order.append(tok.value)
            if self._peek().kind == ",":
                self._next()
                continue
            break
        self._expect(";")

    def _net_decl(self, module: ast.Module) -> None:
        kind = self._next().value
        rng = self._range() if self._peek().kind == "[" else None
        while True:
            tok = self._expect("ident", "net name")
            module.net_decls[tok.value] = ast.NetDecl(tok.value, rng, kind)
            if self._peek().kind == ",":
                self._next()
                continue
            break
        self._expect(";")

    def _assign(self, module: ast.Module) -> None:
        tok = self._next()  # 'assign'
        lhs = self._expr()
        self._expect("=")
        rhs = self._expr()
        self._expect(";")
        module.assigns.append(ast.Assign(lhs, rhs, line=tok.line))

    def _delay(self) -> None:
        """Parse and discard a delay spec ``#n`` or ``#(a[,b[,c]])``."""
        self._next()  # '#'
        if self._peek().kind == "(":
            self._next()
            self._expect("number", "delay value")
            while self._peek().kind == ",":
                self._next()
                self._expect("number", "delay value")
            self._expect(")")
        else:
            self._expect("number", "delay value")

    def _gate_inst(self, module: ast.Module) -> None:
        head = self._next()
        gtype = head.value
        if self._peek().kind == "#":
            self._delay()
        while True:
            name: str | None = None
            if self._peek().kind == "ident":
                name = self._next().value
            tok = self._expect("(")
            terms: list[ast.Expr] = [self._expr()]
            while self._peek().kind == ",":
                self._next()
                terms.append(self._expr())
            self._expect(")")
            self._check_gate_arity(gtype, terms, tok)
            if gtype in ("buf", "not") and len(terms) > 2:
                # multi-output form: last terminal is the input
                for i, out in enumerate(terms[:-1]):
                    gname = f"{name}_{i}" if name else None
                    module.gates.append(
                        ast.GateInst(gtype, gname, (out, terms[-1]), line=tok.line)
                    )
            else:
                module.gates.append(
                    ast.GateInst(gtype, name, tuple(terms), line=tok.line)
                )
            if self._peek().kind == ",":
                self._next()
                continue
            break
        self._expect(";")

    def _check_gate_arity(self, gtype: str, terms: list[ast.Expr], tok: Token) -> None:
        spec = COMBINATIONAL_GATES.get(gtype) or SEQUENTIAL_CELLS[gtype]
        n_in = len(terms) - 1
        if gtype in ("buf", "not"):
            if n_in < 1:
                raise ParseError(f"{gtype} needs an output and an input", tok.line, tok.column)
            return
        if n_in < spec.min_inputs or (
            spec.max_inputs is not None and n_in > spec.max_inputs
        ):
            raise ParseError(
                f"{gtype} gate has {n_in} inputs, expected "
                f"{spec.min_inputs}"
                + ("" if spec.max_inputs == spec.min_inputs else "+"),
                tok.line,
                tok.column,
            )

    def _module_inst(self, module: ast.Module) -> None:
        head = self._next()
        module_name = head.value
        if self._peek().kind == "#":
            self._delay()
        while True:
            inst_tok = self._expect("ident", "instance name")
            self._expect("(")
            positional: tuple[ast.Expr, ...] | None = None
            named: tuple[tuple[str, ast.Expr], ...] | None = None
            if self._peek().kind == ".":
                conns: list[tuple[str, ast.Expr]] = []
                while True:
                    self._expect(".")
                    pname = self._expect("ident", "port name").value
                    self._expect("(")
                    if self._peek().kind == ")":
                        expr: ast.Expr = ast.Unconnected()
                    else:
                        expr = self._expr()
                    self._expect(")")
                    conns.append((pname, expr))
                    if self._peek().kind == ",":
                        self._next()
                        continue
                    break
                named = tuple(conns)
            elif self._peek().kind == ")":
                positional = ()
            else:
                exprs: list[ast.Expr] = [self._expr()]
                while self._peek().kind == ",":
                    self._next()
                    exprs.append(self._expr())
                positional = tuple(exprs)
            self._expect(")")
            module.instances.append(
                ast.ModuleInst(
                    module_name,
                    inst_tok.value,
                    positional=positional,
                    named=named,
                    line=inst_tok.line,
                )
            )
            if self._peek().kind == ",":
                self._next()
                continue
            break
        self._expect(";")

    def _expr(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind == "{":
            self._next()
            items: list[ast.Expr] = [self._expr()]
            while self._peek().kind == ",":
                self._next()
                items.append(self._expr())
            self._expect("}")
            return ast.Concat(tuple(items))
        if tok.kind in ("number", "sized_number"):
            self._next()
            return ast.Literal(parse_literal_bits(tok.value, tok.line, tok.column))
        if tok.kind == "ident":
            self._next()
            if self._peek().kind == "[":
                self._next()
                first = int(self._expect("number", "index").value)
                if self._peek().kind == ":":
                    self._next()
                    second = int(self._expect("number", "index").value)
                    self._expect("]")
                    return ast.PartSelect(tok.value, first, second)
                self._expect("]")
                return ast.BitSelect(tok.value, first)
            return ast.Identifier(tok.value)
        raise ParseError(
            f"expected expression, found {tok.value or tok.kind!r}",
            tok.line,
            tok.column,
        )
