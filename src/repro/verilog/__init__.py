"""Structural gate-level Verilog front end.

The pipeline mirrors DVS's vvp-based front end (paper Figure 4)::

    text --tokenize/parse--> Source (AST)
         --elaborate------> Netlist (flat, hierarchy-annotated)

Public surface:

* :func:`parse_source` / :func:`parse_file` — text → AST.
* :func:`elaborate` — AST → flat bit-level :class:`Netlist` retaining
  the instance hierarchy (the design-driven partitioner's raw input).
* :func:`compile_verilog` — one-call text → Netlist convenience.
* :class:`NetlistBuilder` — programmatic netlist construction.
* :func:`write_source` / :func:`write_netlist_verilog` — emitters.
"""

from .ast import Source, Module
from .lexer import tokenize
from .parser import parse_source, parse_file
from .elaborate import elaborate, find_top_module, NetlistBuilder
from .netlist import Netlist, Gate, HierNode, CONST0, CONST1, CONSTX
from .writer import write_source, write_netlist_verilog
from .optimize import OptStats, optimize_netlist
from .primitives import (
    COMBINATIONAL_GATES,
    SEQUENTIAL_CELLS,
    gate_spec,
    is_combinational,
    is_sequential,
    is_gate_type,
)

__all__ = [
    "Source",
    "Module",
    "tokenize",
    "parse_source",
    "parse_file",
    "elaborate",
    "find_top_module",
    "compile_verilog",
    "NetlistBuilder",
    "Netlist",
    "Gate",
    "HierNode",
    "CONST0",
    "CONST1",
    "CONSTX",
    "write_source",
    "write_netlist_verilog",
    "OptStats",
    "optimize_netlist",
    "COMBINATIONAL_GATES",
    "SEQUENTIAL_CELLS",
    "gate_spec",
    "is_combinational",
    "is_sequential",
    "is_gate_type",
]


def compile_verilog(text: str, top: str | None = None) -> Netlist:
    """Parse and elaborate Verilog source text in one call."""
    return elaborate(parse_source(text), top=top)
