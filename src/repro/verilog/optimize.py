"""Netlist optimization passes.

Synthesized netlists — and especially *generated* ones — carry slack:
gates with constant inputs, buffer chains, logic that no output ever
observes.  Three classic passes clean it up while provably preserving
observable behaviour (the test suite checks simulation equivalence on
random stimuli):

* **constant propagation** — a gate whose inputs are known folds to a
  constant (controlling values count: ``and(x, 0) = 0`` even with x
  unknown);
* **buffer collapse** — ``buf`` gates become net aliases;
* **dead-gate elimination** — gates from which no primary output is
  reachable are dropped (flip-flops are only state worth keeping if
  something observable reads them).

The optimizer returns a new :class:`Netlist`; the input is untouched.
Hierarchy annotations survive (surviving gates keep their paths).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..errors import NetlistError
from .netlist import CONST0, CONST1, CONSTX, HierNode, Netlist
from .primitives import is_sequential

__all__ = ["OptStats", "optimize_netlist"]


@dataclass
class OptStats:
    """What each pass removed."""

    const_folded: int = 0
    buffers_collapsed: int = 0
    dead_removed: int = 0
    gates_before: int = 0
    gates_after: int = 0

    def summary(self) -> str:
        return (
            f"{self.gates_before} -> {self.gates_after} gates "
            f"({self.const_folded} const-folded, "
            f"{self.buffers_collapsed} buffers collapsed, "
            f"{self.dead_removed} dead)"
        )


_CONTROLLING = {  # gate type -> (controlling input value, folded output)
    "and": (0, 0),
    "nand": (0, 1),
    "or": (1, 1),
    "nor": (1, 0),
}

_NEUTRAL_FOLD = {  # all-known fold handled generically below
    "and": lambda vals: int(all(vals)),
    "nand": lambda vals: 1 - int(all(vals)),
    "or": lambda vals: int(any(vals)),
    "nor": lambda vals: 1 - int(any(vals)),
    "xor": lambda vals: sum(vals) % 2,
    "xnor": lambda vals: 1 - sum(vals) % 2,
    "not": lambda vals: 1 - vals[0],
    "buf": lambda vals: vals[0],
}


def optimize_netlist(netlist: Netlist) -> tuple[Netlist, OptStats]:
    """Run all passes; returns (optimized netlist, statistics)."""
    stats = OptStats(gates_before=netlist.num_gates)

    # resolution state over the ORIGINAL net ids
    const: dict[int, int] = {CONST0: 0, CONST1: 1}
    alias: dict[int, int] = {}

    def resolve(nid: int) -> int:
        while nid in alias:
            nid = alias[nid]
        return nid

    def value_of(nid: int) -> int | None:
        return const.get(resolve(nid))

    # -- pass 1: constant propagation + buffer collapse (to fixpoint) ----
    changed = True
    folded: set[int] = set()  # gate ids replaced by constants/aliases
    while changed:
        changed = False
        for gate in netlist.gates:
            if gate.gid in folded or is_sequential(gate.gtype):
                continue
            in_vals = [value_of(n) for n in gate.inputs]
            out = resolve(gate.output)
            if gate.gtype == "buf":
                src = resolve(gate.inputs[0])
                v = const.get(src)
                if v is not None:
                    const[out] = v
                    stats.const_folded += 1
                else:
                    alias[out] = src
                    stats.buffers_collapsed += 1
                folded.add(gate.gid)
                changed = True
                continue
            if all(v is not None for v in in_vals):
                const[out] = _NEUTRAL_FOLD[gate.gtype](in_vals)  # type: ignore[arg-type]
                folded.add(gate.gid)
                stats.const_folded += 1
                changed = True
                continue
            ctrl = _CONTROLLING.get(gate.gtype)
            if ctrl is not None and ctrl[0] in in_vals:
                const[out] = ctrl[1]
                folded.add(gate.gid)
                stats.const_folded += 1
                changed = True

    # -- pass 2: dead-gate elimination (reverse reachability from POs) ---
    driver_of: dict[int, int] = {}
    for gate in netlist.gates:
        if gate.gid not in folded:
            driver_of[resolve(gate.output)] = gate.gid
    live: set[int] = set()
    frontier: deque[int] = deque()
    for po in netlist.outputs:
        gid = driver_of.get(resolve(po))
        if gid is not None and gid not in live:
            live.add(gid)
            frontier.append(gid)
    while frontier:
        gid = frontier.popleft()
        for nid in netlist.gates[gid].inputs:
            src = driver_of.get(resolve(nid))
            if src is not None and src not in live:
                live.add(src)
                frontier.append(src)

    # -- rebuild ------------------------------------------------------------
    out = Netlist(netlist.top)
    net_map: dict[int, int] = {CONST0: CONST0, CONST1: CONST1, CONSTX: CONSTX}

    def remap(nid: int) -> int:
        nid = resolve(nid)
        v = const.get(nid)
        if v is not None:
            return CONST0 if v == 0 else CONST1
        mapped = net_map.get(nid)
        if mapped is None:
            mapped = out.add_net(netlist.net_name(nid))
            net_map[nid] = mapped
        return mapped

    # hierarchy skeleton first so gate paths can attach
    def clone_tree(src: HierNode, dst: HierNode) -> None:
        for name, child in src.children.items():
            node = HierNode(name=name, module=child.module, path=child.path)
            dst.children[name] = node
            clone_tree(child, node)

    clone_tree(netlist.hierarchy, out.hierarchy)

    kept = 0
    for gate in netlist.gates:
        if gate.gid in folded:
            continue
        if gate.gid not in live:
            stats.dead_removed += 1
            continue
        out.add_gate(
            gate.gtype,
            gate.name,
            gate.path,
            tuple(remap(n) for n in gate.inputs),
            remap(gate.output),
        )
        kept += 1

    for po in netlist.inputs:
        mapped = remap(po)
        if mapped in (CONST0, CONST1, CONSTX):
            raise NetlistError(
                f"primary input {netlist.net_name(po)!r} folded to a constant"
            )
        out.inputs.append(mapped)
    out.outputs.extend(remap(po) for po in netlist.outputs)
    out.finalize()
    stats.gates_after = kept
    return out, stats
