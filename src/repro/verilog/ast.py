"""Abstract syntax tree for the structural gate-level Verilog subset.

The subset covers what logic synthesis emits:

* module definitions with a port header, ``input/output/inout``
  declarations (scalar or vectored), and ``wire`` declarations;
* gate primitive instantiations (``nand g1 (y, a, b);``), optionally
  with a delay spec (``#1``) which is accepted and ignored (the
  simulator imposes the paper's unit-delay model);
* hierarchical module instantiations with positional or named
  connections;
* continuous ``assign`` statements whose right-hand side is a simple
  expression (identifier, select, concatenation, literal) — synthesis
  tools emit these as buffers/aliases.

Expressions are deliberately minimal: this is a *netlist* language, not
behavioural Verilog.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Expr",
    "Identifier",
    "BitSelect",
    "PartSelect",
    "Concat",
    "Literal",
    "Unconnected",
    "Range",
    "PortDecl",
    "NetDecl",
    "GateInst",
    "ModuleInst",
    "Assign",
    "Module",
    "Source",
]


class Expr:
    """Base class for connection expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class Identifier(Expr):
    """A scalar or full-vector net reference, e.g. ``sum``."""

    name: str


@dataclass(frozen=True)
class BitSelect(Expr):
    """A single-bit select, e.g. ``sum[3]``."""

    name: str
    index: int


@dataclass(frozen=True)
class PartSelect(Expr):
    """A contiguous slice, e.g. ``sum[7:4]`` (msb:lsb)."""

    name: str
    msb: int
    lsb: int


@dataclass(frozen=True)
class Concat(Expr):
    """A concatenation ``{a, b[3:0], 1'b0}`` — leftmost item is MSB."""

    items: tuple[Expr, ...]


@dataclass(frozen=True)
class Literal(Expr):
    """A numeric literal resolved to explicit bits.

    ``bits`` is LSB-first; each element is 0, 1, or 2 (unknown/x).
    """

    bits: tuple[int, ...]


@dataclass(frozen=True)
class Unconnected(Expr):
    """An explicitly unconnected port position (``.q()`` or empty slot)."""


@dataclass(frozen=True)
class Range:
    """A declared vector range ``[msb:lsb]``."""

    msb: int
    lsb: int

    @property
    def width(self) -> int:
        return abs(self.msb - self.lsb) + 1

    def bit_indices(self) -> list[int]:
        """Declared bit indices, least-significant first.

        The right bound of the declaration is the least significant
        bit: ``[7:0]`` yields ``[0, 1, ..., 7]`` and ``[0:7]`` yields
        ``[7, 6, ..., 0]``.
        """
        if self.msb >= self.lsb:
            return list(range(self.lsb, self.msb + 1))
        return list(range(self.lsb, self.msb - 1, -1))


@dataclass(frozen=True)
class PortDecl:
    """``input/output/inout [range] name;``"""

    direction: str  # "input" | "output" | "inout"
    name: str
    range: Range | None = None


@dataclass(frozen=True)
class NetDecl:
    """``wire [range] name;`` (also covers supply0/supply1 as kind)."""

    name: str
    range: Range | None = None
    kind: str = "wire"


@dataclass(frozen=True)
class GateInst:
    """A primitive gate instantiation; terminals are output-first."""

    gtype: str
    name: str | None
    terminals: tuple[Expr, ...]
    line: int = 0


@dataclass(frozen=True)
class ModuleInst:
    """A hierarchical module instantiation.

    Exactly one of ``positional`` / ``named`` is non-None.
    """

    module_name: str
    instance_name: str
    positional: tuple[Expr, ...] | None = None
    named: tuple[tuple[str, Expr], ...] | None = None
    line: int = 0


@dataclass(frozen=True)
class Assign:
    """``assign lhs = rhs;`` — a structural alias/buffer."""

    lhs: Expr
    rhs: Expr
    line: int = 0


@dataclass
class Module:
    """One Verilog module definition."""

    name: str
    port_order: list[str] = field(default_factory=list)
    port_decls: dict[str, PortDecl] = field(default_factory=dict)
    net_decls: dict[str, NetDecl] = field(default_factory=dict)
    gates: list[GateInst] = field(default_factory=list)
    instances: list[ModuleInst] = field(default_factory=list)
    assigns: list[Assign] = field(default_factory=list)

    def width_of(self, name: str) -> int:
        """Declared bit width of a port or net (1 if scalar)."""
        decl = self.port_decls.get(name) or self.net_decls.get(name)
        if decl is None or decl.range is None:
            return 1
        return decl.range.width

    def range_of(self, name: str) -> Range | None:
        """Declared range of a port or net, or None for scalars."""
        decl = self.port_decls.get(name) or self.net_decls.get(name)
        return None if decl is None else decl.range


@dataclass
class Source:
    """A parsed source file: an ordered collection of module defs."""

    modules: dict[str, Module] = field(default_factory=dict)

    def add(self, module: Module) -> None:
        self.modules[module.name] = module
