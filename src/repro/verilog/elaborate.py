"""Elaboration: hierarchical AST → flat bit-level :class:`Netlist`.

Elaboration walks the instance tree of the top module, allocating one
*temporary* net id per declared bit in every scope, then merging nets
that Verilog declares equal — port connections and continuous
``assign`` aliases — with a union-find.  Once the whole tree is
processed, net groups are canonicalized (constants win their groups),
compacted to dense ids, and single-driver rules are enforced while the
final :class:`~repro.verilog.netlist.Netlist` is assembled.

This two-phase approach (allocate + union, then compact) keeps the
recursive walk simple: a scope never needs to know whether its local
wire will eventually be identified with a parent net three levels up.
"""

from __future__ import annotations

from ..errors import ElaborationError
from . import ast
from .netlist import CONST0, CONST1, CONSTX, HierNode, Netlist
from .primitives import gate_spec, is_gate_type

__all__ = ["elaborate", "find_top_module", "NetlistBuilder"]


class _UnionFind:
    """Path-halving union-find over dense integer ids."""

    def __init__(self) -> None:
        self.parent: list[int] = []

    def make(self) -> int:
        nid = len(self.parent)
        self.parent.append(nid)
        return nid

    def find(self, x: int) -> int:
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            # keep the smaller root so constant ids (0..2) always win
            if ra < rb:
                self.parent[rb] = ra
            else:
                self.parent[ra] = rb


def find_top_module(source: ast.Source) -> str:
    """Infer the top module: the unique module never instantiated.

    Raises :class:`ElaborationError` if zero or several candidates
    exist (the caller should then name the top explicitly).
    """
    instantiated: set[str] = set()
    for module in source.modules.values():
        for inst in module.instances:
            instantiated.add(inst.module_name)
    candidates = [name for name in source.modules if name not in instantiated]
    if len(candidates) == 1:
        return candidates[0]
    if not candidates:
        raise ElaborationError("no top-level module (instantiation cycle?)")
    raise ElaborationError(
        f"ambiguous top module, candidates: {', '.join(sorted(candidates))}"
    )


def elaborate(source: ast.Source, top: str | None = None) -> Netlist:
    """Elaborate ``source`` into a flat :class:`Netlist`.

    Parameters
    ----------
    source:
        Parsed module definitions.
    top:
        Name of the top module; inferred with :func:`find_top_module`
        when omitted.
    """
    if top is None:
        top = find_top_module(source)
    if top not in source.modules:
        raise ElaborationError(f"top module {top!r} not defined")
    return _Elaborator(source).run(top)


class _Elaborator:
    _MAX_DEPTH = 200

    def __init__(self, source: ast.Source) -> None:
        self.source = source
        self.uf = _UnionFind()
        self.net_name: list[str] = []
        # temp gates: (gtype, hier name, path, input temp ids, output temp id)
        self.gates: list[tuple[str, str, tuple[str, ...], tuple[int, ...], int]] = []
        self.top_inputs: list[int] = []
        self.top_outputs: list[int] = []

    # -- temp net allocation ------------------------------------------------

    def _new_net(self, name: str) -> int:
        nid = self.uf.make()
        self.net_name.append(name)
        return nid

    def run(self, top: str) -> Netlist:
        # constants occupy temp ids 0..2 so union-find roots favour them
        for cname in ("const0", "const1", "constx"):
            self._new_net(cname)
        netlist = Netlist(top)
        module = self.source.modules[top]
        root = netlist.hierarchy
        root.module = top
        scope = self._instantiate(module, (), root, bindings=None, depth=0)
        for pname in module.port_order:
            decl = module.port_decls.get(pname)
            if decl is None:
                raise ElaborationError(
                    f"top module port {pname!r} has no direction declaration"
                )
            bits = scope[pname]
            if decl.direction == "input":
                self.top_inputs.extend(bits)
            elif decl.direction == "output":
                self.top_outputs.extend(bits)
            else:
                raise ElaborationError(
                    f"top-level inout port {pname!r} is not supported"
                )
        return self._compact(netlist)

    # -- recursive instantiation ------------------------------------------

    def _instantiate(
        self,
        module: ast.Module,
        path: tuple[str, ...],
        hier: HierNode,
        bindings: dict[str, list[int]] | None,
        depth: int,
    ) -> dict[str, list[int]]:
        """Elaborate one module instance; returns its name→bits scope.

        ``bindings`` maps port names to parent net bit lists (None for
        the top module, whose ports become primary I/O).
        """
        if depth > self._MAX_DEPTH:
            raise ElaborationError(
                f"instance nesting deeper than {self._MAX_DEPTH} "
                f"(recursive instantiation of {module.name!r}?)"
            )
        prefix = ".".join(path)
        scope: dict[str, list[int]] = {}

        def declare(name: str, rng: ast.Range | None) -> list[int]:
            width = 1 if rng is None else rng.width
            if width == 1:
                bits = [self._new_net(f"{prefix}.{name}" if prefix else name)]
            else:
                bits = [
                    self._new_net(
                        f"{prefix}.{name}[{idx}]" if prefix else f"{name}[{idx}]"
                    )
                    for idx in rng.bit_indices()
                ]
            scope[name] = bits
            return bits

        for pname, pdecl in module.port_decls.items():
            declare(pname, pdecl.range)
        for nname, ndecl in module.net_decls.items():
            if nname in scope:
                continue  # `wire` redeclaration of a port
            bits = declare(nname, ndecl.range)
            if ndecl.kind == "supply0":
                for b in bits:
                    self.uf.union(b, CONST0)
            elif ndecl.kind == "supply1":
                for b in bits:
                    self.uf.union(b, CONST1)

        # bind ports to parent nets
        if bindings is not None:
            for pname, parent_bits in bindings.items():
                pdecl = module.port_decls.get(pname)
                if pdecl is None:
                    raise ElaborationError(
                        f"module {module.name!r} has no port {pname!r} "
                        f"(instance {prefix or module.name})"
                    )
                local_bits = scope[pname]
                if len(parent_bits) != len(local_bits):
                    raise ElaborationError(
                        f"width mismatch on port {pname!r} of {prefix or module.name}: "
                        f"connected {len(parent_bits)} bits to {len(local_bits)}-bit port"
                    )
                for lb, pb in zip(local_bits, parent_bits):
                    self.uf.union(lb, pb)

        # continuous assigns are aliases
        for assign in module.assigns:
            lhs = self._resolve(assign.lhs, scope, module, prefix, assign.line)
            rhs = self._resolve(assign.rhs, scope, module, prefix, assign.line)
            if len(lhs) != len(rhs):
                raise ElaborationError(
                    f"assign width mismatch in {module.name} line {assign.line}: "
                    f"{len(lhs)} vs {len(rhs)} bits"
                )
            for lb, rb in zip(lhs, rhs):
                self.uf.union(lb, rb)

        # primitive gates
        unnamed = 0
        for gate in module.gates:
            if gate.name is None:
                gname = f"_g{unnamed}"
                unnamed += 1
            else:
                gname = gate.name
            hier_name = f"{prefix}.{gname}" if prefix else gname
            terms = [
                self._resolve(t, scope, module, prefix, gate.line)
                for t in gate.terminals
            ]
            for i, bits in enumerate(terms):
                if len(bits) != 1:
                    raise ElaborationError(
                        f"terminal {i} of gate {hier_name!r} is "
                        f"{len(bits)} bits wide; gate pins are scalar"
                    )
            out = terms[0][0]
            ins = tuple(t[0] for t in terms[1:])
            self.gates.append((gate.gtype, hier_name, path, ins, out))

        # child instances
        for inst in module.instances:
            if is_gate_type(inst.module_name):
                raise ElaborationError(
                    f"{inst.module_name!r} shadows a primitive name"
                )
            child_def = self.source.modules.get(inst.module_name)
            if child_def is None:
                raise ElaborationError(
                    f"module {inst.module_name!r} (instance "
                    f"{prefix + '.' if prefix else ''}{inst.instance_name}) is not defined"
                )
            child_bindings = self._connection_bindings(
                inst, child_def, scope, module, prefix
            )
            if inst.instance_name in hier.children:
                raise ElaborationError(
                    f"duplicate instance name {inst.instance_name!r} in "
                    f"{prefix or module.name}"
                )
            child_node = HierNode(
                name=inst.instance_name,
                module=inst.module_name,
                path=path + (inst.instance_name,),
            )
            hier.children[inst.instance_name] = child_node
            self._instantiate(
                child_def,
                path + (inst.instance_name,),
                child_node,
                child_bindings,
                depth + 1,
            )
        return scope

    def _connection_bindings(
        self,
        inst: ast.ModuleInst,
        child: ast.Module,
        scope: dict[str, list[int]],
        module: ast.Module,
        prefix: str,
    ) -> dict[str, list[int]]:
        """Resolve an instance's connections to port-name → parent-bit map."""
        bindings: dict[str, list[int]] = {}

        def bind(pname: str, expr: ast.Expr) -> None:
            if isinstance(expr, ast.Unconnected):
                pdecl = child.port_decls.get(pname)
                if pdecl is not None and pdecl.direction == "input":
                    width = child.width_of(pname)
                    bindings[pname] = [CONSTX] * width
                # unconnected outputs simply stay local to the child
                return
            bindings[pname] = self._resolve(expr, scope, module, prefix, inst.line)

        if inst.named is not None:
            seen: set[str] = set()
            for pname, expr in inst.named:
                if pname in seen:
                    raise ElaborationError(
                        f"port {pname!r} connected twice on instance "
                        f"{inst.instance_name!r}"
                    )
                seen.add(pname)
                bind(pname, expr)
        else:
            positional = inst.positional or ()
            if len(positional) > len(child.port_order):
                raise ElaborationError(
                    f"instance {inst.instance_name!r} of {child.name!r} has "
                    f"{len(positional)} connections for {len(child.port_order)} ports"
                )
            for pname, expr in zip(child.port_order, positional):
                bind(pname, expr)
        return bindings

    def _resolve(
        self,
        expr: ast.Expr,
        scope: dict[str, list[int]],
        module: ast.Module,
        prefix: str,
        line: int,
    ) -> list[int]:
        """Expression → list of temp net ids, LSB first."""
        where = f"{module.name}{' (' + prefix + ')' if prefix else ''} line {line}"
        if isinstance(expr, ast.Identifier):
            bits = scope.get(expr.name)
            if bits is None:
                # implicit scalar wire (legal Verilog for undeclared nets)
                bits = [self._new_net(f"{prefix}.{expr.name}" if prefix else expr.name)]
                scope[expr.name] = bits
            return bits
        if isinstance(expr, ast.BitSelect):
            bits = scope.get(expr.name)
            if bits is None:
                raise ElaborationError(f"undeclared vector {expr.name!r} in {where}")
            rng = module.range_of(expr.name)
            if rng is None:
                raise ElaborationError(
                    f"bit-select on scalar net {expr.name!r} in {where}"
                )
            indices = rng.bit_indices()
            try:
                pos = indices.index(expr.index)
            except ValueError:
                raise ElaborationError(
                    f"index {expr.index} out of range for {expr.name!r} in {where}"
                )
            return [bits[pos]]
        if isinstance(expr, ast.PartSelect):
            bits = scope.get(expr.name)
            rng = module.range_of(expr.name)
            if bits is None or rng is None:
                raise ElaborationError(
                    f"part-select on undeclared/scalar net {expr.name!r} in {where}"
                )
            indices = rng.bit_indices()
            try:
                lo = indices.index(expr.lsb)
                hi = indices.index(expr.msb)
            except ValueError:
                raise ElaborationError(
                    f"part-select [{expr.msb}:{expr.lsb}] out of range for "
                    f"{expr.name!r} in {where}"
                )
            if lo > hi:
                raise ElaborationError(
                    f"reversed part-select [{expr.msb}:{expr.lsb}] on "
                    f"{expr.name!r} in {where}"
                )
            return bits[lo : hi + 1]
        if isinstance(expr, ast.Concat):
            out: list[int] = []
            # Verilog concatenation lists MSB first; bit order is LSB
            # first, so append items right-to-left.
            for item in reversed(expr.items):
                out.extend(self._resolve(item, scope, module, prefix, line))
            return out
        if isinstance(expr, ast.Literal):
            return [(CONST0, CONST1, CONSTX)[b] for b in expr.bits]
        if isinstance(expr, ast.Unconnected):
            raise ElaborationError(f"empty expression in {where}")
        raise ElaborationError(f"unsupported expression {expr!r} in {where}")

    # -- compaction ----------------------------------------------------------

    def _compact(self, netlist: Netlist) -> Netlist:
        """Canonicalize net groups, build the final dense netlist."""
        n_temp = len(self.uf.parent)
        root_to_final: dict[int, int] = {}
        final_of = [0] * n_temp

        # constants first: their roots are themselves (smallest-root union)
        for cid in (CONST0, CONST1, CONSTX):
            root = self.uf.find(cid)
            if root != cid:
                raise ElaborationError("constant nets were merged together")
            root_to_final[cid] = cid

        used_roots: list[int] = []
        for t in range(n_temp):
            root = self.uf.find(t)
            if root not in root_to_final:
                root_to_final[root] = -1  # placeholder, numbered below
                used_roots.append(root)

        # pick a representative name per root: shortest, tie-break lexical
        best_name: dict[int, str] = {}
        for t in range(n_temp):
            root = self.uf.find(t)
            if root < 3:
                continue
            name = self.net_name[t]
            cur = best_name.get(root)
            if cur is None or (len(name), name) < (len(cur), cur):
                best_name[root] = name

        for root in used_roots:
            root_to_final[root] = netlist.add_net(best_name[root])
        for t in range(n_temp):
            final_of[t] = root_to_final[self.uf.find(t)]

        for gtype, name, path, ins, out in self.gates:
            netlist.add_gate(
                gtype,
                name,
                path,
                tuple(final_of[i] for i in ins),
                final_of[out],
            )

        for t in self.top_inputs:
            nid = final_of[t]
            if nid in (CONST0, CONST1, CONSTX):
                raise ElaborationError(
                    "a primary input is tied to a constant net"
                )
            netlist.inputs.append(nid)
        netlist.outputs.extend(final_of[t] for t in self.top_outputs)
        netlist.finalize()
        return netlist


class NetlistBuilder:
    """Programmatic netlist construction for tests and generators.

    A thin convenience wrapper over :class:`Netlist` that manages net
    names and optional hierarchy grouping without going through Verilog
    text.  Example::

        nb = NetlistBuilder("toy")
        a, b = nb.input("a"), nb.input("b")
        y = nb.net("y")
        nb.gate("nand", (a, b), y)
        nb.output_net(y)
        netlist = nb.build()
    """

    def __init__(self, top: str) -> None:
        self._netlist = Netlist(top)
        self._unnamed = 0
        self._built = False

    def net(self, name: str | None = None) -> int:
        """Create a fresh net (auto-named ``_n<i>`` when unnamed)."""
        if name is None:
            name = f"_n{self._unnamed}"
            self._unnamed += 1
        return self._netlist.add_net(name)

    def input(self, name: str) -> int:
        """Create a primary-input net."""
        nid = self._netlist.add_net(name)
        self._netlist.inputs.append(nid)
        return nid

    def output_net(self, nid: int) -> None:
        """Mark an existing net as a primary output."""
        self._netlist.outputs.append(nid)

    def gate(
        self,
        gtype: str,
        inputs: tuple[int, ...] | list[int],
        output: int,
        name: str | None = None,
        path: tuple[str, ...] = (),
    ) -> int:
        """Add a gate; ``path`` places it in the hierarchy tree."""
        spec = gate_spec(gtype)
        n_in = len(inputs)
        if n_in < spec.min_inputs or (
            spec.max_inputs is not None and n_in > spec.max_inputs
        ):
            raise ElaborationError(
                f"{gtype} gate with {n_in} inputs (spec: {spec.min_inputs}"
                f"..{spec.max_inputs if spec.max_inputs is not None else 'inf'})"
            )
        if name is None:
            name = f"_g{len(self._netlist.gates)}"
        hier_name = ".".join((*path, name))
        self._ensure_path(path)
        return self._netlist.add_gate(gtype, hier_name, path, tuple(inputs), output)

    def dff(self, d: int, clk: int, q: int, name: str | None = None,
            path: tuple[str, ...] = ()) -> int:
        """Shorthand for a D flip-flop cell."""
        return self.gate("dff", (d, clk), q, name=name, path=path)

    def _ensure_path(self, path: tuple[str, ...]) -> None:
        node = self._netlist.hierarchy
        for i, name in enumerate(path):
            if name not in node.children:
                node.children[name] = HierNode(
                    name=name, module=f"_m_{name}", path=path[: i + 1]
                )
            node = node.children[name]

    def build(self) -> Netlist:
        """Finalize and return the netlist (single use)."""
        if self._built:
            raise ElaborationError("NetlistBuilder.build() called twice")
        self._built = True
        self._netlist.finalize()
        return self._netlist
