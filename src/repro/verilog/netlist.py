"""Elaborated netlist model.

Elaboration flattens a hierarchical Verilog design into bit-level nets
and primitive gates, but **retains the hierarchy** in two places:

* every gate records its *instance path* — the tuple of instance names
  from the top module down to the gate's enclosing module instance; and
* a :class:`HierNode` tree mirrors the instance hierarchy, letting the
  design-driven partitioner treat any subtree as a *super-gate* and
  later flatten it one level at a time (paper §3.2).

Net ids and gate ids are dense integers.  Three distinguished constant
nets (``const0``, ``const1``, ``constx``) are always present at ids
0..2 so constant connections never need special-casing downstream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..errors import NetlistError

__all__ = [
    "CONST0",
    "CONST1",
    "CONSTX",
    "Gate",
    "HierNode",
    "Netlist",
]

CONST0 = 0
CONST1 = 1
CONSTX = 2
_NUM_CONST_NETS = 3


@dataclass(frozen=True)
class Gate:
    """A primitive gate or sequential cell in the elaborated netlist.

    Attributes
    ----------
    gid:
        Dense gate id.
    gtype:
        Primitive name (``"nand"``, ``"dff"``, ...).
    name:
        Full hierarchical name, e.g. ``"u_acs3.u_cmp.g7"``.
    path:
        Instance path (tuple of instance names, empty for top-level
        gates); ``name`` always starts with ``".".join(path)``.
    inputs:
        Input net ids in primitive pin order (for ``dff``: d, clk).
    output:
        Output net id.
    """

    gid: int
    gtype: str
    name: str
    path: tuple[str, ...]
    inputs: tuple[int, ...]
    output: int


@dataclass
class HierNode:
    """One node of the elaborated instance tree.

    The root represents the top module; each child represents one
    module instance.  ``gate_ids`` holds only the gates *directly*
    inside this node (not in sub-instances); ``total_gates`` counts the
    whole subtree and is the super-gate weight used by the partitioner.
    """

    name: str
    module: str
    path: tuple[str, ...]
    children: dict[str, "HierNode"] = field(default_factory=dict)
    gate_ids: list[int] = field(default_factory=list)
    total_gates: int = 0

    def subtree_gates(self) -> list[int]:
        """All gate ids in this subtree (own + descendants)."""
        out = list(self.gate_ids)
        for child in self.children.values():
            out.extend(child.subtree_gates())
        return out

    def walk(self) -> Iterator["HierNode"]:
        """Depth-first iterator over this subtree, self first."""
        yield self
        for child in self.children.values():
            yield from child.walk()

    def find(self, path: tuple[str, ...]) -> "HierNode":
        """Node at ``path`` relative to this node."""
        node = self
        for name in path:
            node = node.children[name]
        return node


class Netlist:
    """Flat, bit-level elaborated netlist with hierarchy annotations.

    Constructed by :func:`repro.verilog.elaborate.elaborate`; circuit
    generators may also build one directly through
    :class:`repro.verilog.elaborate.NetlistBuilder`.
    """

    def __init__(self, top: str) -> None:
        self.top = top
        self.net_names: list[str] = ["const0", "const1", "constx"]
        self.gates: list[Gate] = []
        #: primary input net ids (bit-level), in port declaration order
        self.inputs: list[int] = []
        #: primary output net ids (bit-level), in port declaration order
        self.outputs: list[int] = []
        #: driver gate id per net (-1 = undriven / primary input / constant)
        self.net_driver: list[int] = [-1, -1, -1]
        #: sink gate ids per net
        self.net_sinks: list[list[int]] = [[], [], []]
        self.hierarchy = HierNode(name=top, module=top, path=())

    # -- construction (used by the elaborator) ---------------------------

    def add_net(self, name: str) -> int:
        """Register a new bit-level net; returns its dense id."""
        nid = len(self.net_names)
        self.net_names.append(name)
        self.net_driver.append(-1)
        self.net_sinks.append([])
        return nid

    def add_gate(
        self,
        gtype: str,
        name: str,
        path: tuple[str, ...],
        inputs: tuple[int, ...],
        output: int,
    ) -> int:
        """Register a gate, wiring driver/sink indices; returns gate id."""
        gid = len(self.gates)
        if self.net_driver[output] != -1:
            raise NetlistError(
                f"net {self.net_names[output]!r} driven by both gate "
                f"{self.gates[self.net_driver[output]].name!r} and {name!r}"
            )
        if output < _NUM_CONST_NETS:
            raise NetlistError(f"gate {name!r} drives a constant net")
        gate = Gate(gid, gtype, name, path, tuple(inputs), output)
        self.gates.append(gate)
        self.net_driver[output] = gid
        for i in inputs:
            self.net_sinks[i].append(gid)
        return gid

    def finalize(self) -> None:
        """Compute subtree gate counts and run structural checks."""
        for node in self.hierarchy.walk():
            node.gate_ids.clear()
        for gate in self.gates:
            self.hierarchy.find(gate.path).gate_ids.append(gate.gid)

        def _count(node: HierNode) -> int:
            node.total_gates = len(node.gate_ids) + sum(
                _count(c) for c in node.children.values()
            )
            return node.total_gates

        _count(self.hierarchy)
        self.validate()

    # -- queries -----------------------------------------------------------

    @property
    def num_nets(self) -> int:
        """Number of nets, including the three constants."""
        return len(self.net_names)

    @property
    def num_gates(self) -> int:
        """Number of primitive gates/cells."""
        return len(self.gates)

    def net_name(self, nid: int) -> str:
        """Full hierarchical name of net ``nid``."""
        return self.net_names[nid]

    def driver_of(self, nid: int) -> int:
        """Gate id driving net ``nid`` (-1 if input/constant/undriven)."""
        return self.net_driver[nid]

    def sinks_of(self, nid: int) -> list[int]:
        """Gate ids reading net ``nid``."""
        return self.net_sinks[nid]

    def sequential_gates(self) -> list[Gate]:
        """All state-holding cells (dff variants)."""
        from .primitives import is_sequential

        return [g for g in self.gates if is_sequential(g.gtype)]

    def validate(self) -> None:
        """Structural sanity checks; raises :class:`NetlistError`.

        Checks that every gate input net exists and that no primary
        input is also driven by a gate.
        """
        for gate in self.gates:
            for nid in (*gate.inputs, gate.output):
                if not (0 <= nid < self.num_nets):
                    raise NetlistError(f"gate {gate.name!r} references bad net {nid}")
        for nid in self.inputs:
            if self.net_driver[nid] != -1:
                raise NetlistError(
                    f"primary input {self.net_names[nid]!r} is also driven by gate "
                    f"{self.gates[self.net_driver[nid]].name!r}"
                )

    def undriven_nets(self) -> list[int]:
        """Net ids with no driver that are read by some gate and are not
        primary inputs or constants (these simulate as X forever)."""
        pi = set(self.inputs)
        out = []
        for nid in range(_NUM_CONST_NETS, self.num_nets):
            if self.net_driver[nid] == -1 and nid not in pi and self.net_sinks[nid]:
                out.append(nid)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Netlist(top={self.top!r}, gates={self.num_gates}, "
            f"nets={self.num_nets}, inputs={len(self.inputs)}, "
            f"outputs={len(self.outputs)})"
        )
