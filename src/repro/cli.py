"""Command-line interface: ``python -m repro <command>``.

Commands mirror the library's pipeline so the whole flow is scriptable
without writing Python:

* ``circuits`` — list the generated workload registry
* ``generate`` — emit a registry circuit as Verilog text
* ``info`` — compile a Verilog file, report size and hierarchy
* ``partition`` — partition a design (design-driven / multilevel / random)
* ``simulate`` — sequential reference simulation with random vectors
* ``psim`` — partition + parallel (Time Warp) simulation with speedup
* ``search`` — pre-simulation (k, b) selection, brute force or heuristic
* ``obs`` — trace analysis & regression gates: ``report`` / ``diff`` /
  ``hotspots`` / ``timeline`` / ``selfcheck`` over ``--trace`` /
  ``--metrics`` artifacts

``--metrics`` runs record under a span-capable recorder, so their
documents carry a ``spans`` timeline (one lane per worker process) that
``obs timeline`` exports as Chrome-trace JSON for Perfetto; add
``--sample-resources`` to quarantine peak RSS / CPU readings in the
``host_timings`` channel.  See docs/observability.md.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from . import __version__
from .errors import ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Design-driven multiway partitioning for parallel "
        "gate-level Verilog simulation (Li & Tropper, ICPP 2008).",
    )
    p.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("circuits", help="list generated workload circuits")

    g = sub.add_parser("generate", help="emit a registry circuit as Verilog")
    g.add_argument("name")

    i = sub.add_parser("info", help="compile a Verilog file and report stats")
    i.add_argument("file", type=Path)
    i.add_argument("--top", default=None)
    i.add_argument("--tree", action="store_true", help="print the instance tree")
    i.add_argument("--stats", action="store_true",
                   help="structural analysis (depth, locality, fanout)")

    pa = sub.add_parser("partition", help="partition a design")
    pa.add_argument("file", type=Path)
    pa.add_argument("-k", type=int, default=2, help="number of partitions")
    pa.add_argument("-b", type=float, default=10.0, help="balance factor (%%)")
    pa.add_argument("--top", default=None)
    pa.add_argument("--seed", type=int, default=0)
    pa.add_argument(
        "--algorithm",
        choices=("design", "multilevel", "random"),
        default="design",
    )
    pa.add_argument("--pairing", default="gain",
                    choices=("random", "exhaustive", "cut", "gain"))
    pa.add_argument("--refiner", choices=("fm", "batch"), default="fm",
                    help="refinement engine: heap FM or the data-parallel "
                         "batch refiner (design and multilevel algorithms; "
                         "see docs/refinement.md)")
    pa.add_argument("--refine-workers", type=int, default=None,
                    metavar="N",
                    help="refinement worker processes (design and "
                         "multilevel algorithms; default: REPRO_WORKERS env "
                         "or serial); any value yields bit-identical "
                         "partitions — see docs/parallelism.md")
    pa.add_argument("--assignment-out", type=Path, default=None,
                    help="write '<gate name> <partition>' lines here")
    pa.add_argument("--save", type=Path, default=None,
                    help="save the partition as reusable JSON "
                         "(design algorithm only)")
    pa.add_argument("--metrics", type=Path, default=None, metavar="PATH",
                    help="write a schema-versioned metrics JSON document "
                         "(part.* counters + spans timeline; see "
                         "docs/observability.md)")
    pa.add_argument("--sample-resources", action="store_true",
                    help="sample /proc on a background thread while "
                         "partitioning (peak RSS, CPU, child processes); "
                         "readings land in the host_timings channel")

    o = sub.add_parser("optimize", help="constant-prop + dead-gate cleanup")
    o.add_argument("file", type=Path)
    o.add_argument("--top", default=None)
    o.add_argument("-o", "--output", type=Path, default=None,
                   help="write the optimized flat Verilog here")

    s = sub.add_parser("simulate", help="sequential reference simulation")
    s.add_argument("file", type=Path)
    s.add_argument("--top", default=None)
    s.add_argument("--vectors", type=int, default=100)
    s.add_argument("--seed", type=int, default=0)

    ps = sub.add_parser("psim", help="partition + parallel Time Warp simulation")
    ps.add_argument("file", type=Path)
    ps.add_argument("-k", type=int, default=2)
    ps.add_argument("-b", type=float, default=10.0)
    ps.add_argument("--top", default=None)
    ps.add_argument("--vectors", type=int, default=100)
    ps.add_argument("--seed", type=int, default=0)
    ps.add_argument("--aggressive", action="store_true",
                    help="classic aggressive cancellation instead of lazy")
    ps.add_argument("--partition", type=Path, default=None,
                    help="reuse a partition saved with 'partition --save'")
    ps.add_argument("--refine-workers", type=int, default=None,
                    metavar="N",
                    help="refinement worker processes for the partitioning "
                         "step (default: REPRO_WORKERS env or serial); "
                         "never changes the partition or the simulation")
    ps.add_argument("--refiner", choices=("fm", "batch"), default="fm",
                    help="refinement engine for the partitioning step "
                         "(see docs/refinement.md)")
    ps.add_argument("--conservative", action="store_true",
                    help="idealized conservative mode (no rollbacks)")
    ps.add_argument("--metrics", type=Path, default=None, metavar="PATH",
                    help="write a schema-versioned metrics JSON document "
                         "(part.*/tw.*/seq.* counters + spans timeline; "
                         "see docs/observability.md)")
    ps.add_argument("--sample-resources", action="store_true",
                    help="sample /proc on a background thread during the "
                         "run (peak RSS, CPU, child processes); readings "
                         "land in the host_timings channel")
    ps.add_argument("--trace", type=Path, default=None, metavar="PATH",
                    help="dump the kernel's bounded event trace as JSONL "
                         "(exec/send/rollback/gvt/migrate events)")
    ps.add_argument("--trace-capacity", type=int, default=65536,
                    help="event-trace ring-buffer size (default: 65536; "
                         "oldest events drop first)")
    ps.add_argument("--progress", action="store_true",
                    help="print a throttled live status line to stderr "
                         "(GVT, events/sec, rollback rate); never "
                         "changes results")

    sw = sub.add_parser("sweep", help="full (k, b) grid, optionally "
                                      "across processes")
    sw.add_argument("file", type=Path)
    sw.add_argument("--top", default=None)
    sw.add_argument("--ks", default="2,3,4",
                    help="comma-separated machine counts")
    sw.add_argument("--bs", default="2.5,5,7.5,10,12.5,15",
                    help="comma-separated balance factors")
    sw.add_argument("--vectors", type=int, default=40)
    sw.add_argument("--seed", type=int, default=1)
    sw.add_argument("--workers", type=int, default=None,
                    help="grid process count (default: REPRO_WORKERS env "
                         "or serial)")
    sw.add_argument("--refine-workers", type=int, default=1,
                    metavar="N",
                    help="refinement workers inside each grid cell "
                         "(default: 1; parallel grid cells always refine "
                         "serially — nested pools are not allowed)")
    sw.add_argument("--algorithm", choices=("design", "multilevel"),
                    default="design",
                    help="partition backend per grid cell "
                         "(default: design)")
    sw.add_argument("--refiner", choices=("fm", "batch"), default="fm",
                    help="refinement engine per grid cell "
                         "(see docs/refinement.md)")
    sw.add_argument("--metrics-out", type=Path, default=None, metavar="PATH",
                    help="write the grid as a schema-versioned metrics "
                         "JSON document (kind=sweep, with per-cell "
                         "telemetry merged in deterministic grid order)")
    sw.add_argument("--sample-resources", action="store_true",
                    help="sample /proc on a background thread during the "
                         "sweep (peak RSS, CPU, child processes); readings "
                         "land in the host_timings channel")

    se = sub.add_parser("search", help="pre-simulation (k, b) selection")
    se.add_argument("file", type=Path)
    se.add_argument("--top", default=None)
    se.add_argument("--max-k", type=int, default=4)
    se.add_argument("--vectors", type=int, default=50)
    se.add_argument("--seed", type=int, default=0)
    se.add_argument("--heuristic", action="store_true",
                    help="use the paper's Figure-3 search")
    se.add_argument("--algorithm", choices=("design", "multilevel"),
                    default="design",
                    help="partition backend per (k, b) candidate "
                         "(default: design)")
    se.add_argument("--refiner", choices=("fm", "batch"), default="fm",
                    help="refinement engine per candidate partition "
                         "(see docs/refinement.md)")
    se.add_argument("--refine-workers", type=int, default=None,
                    metavar="N",
                    help="refinement worker processes per candidate "
                         "partition (default: REPRO_WORKERS env or serial)")
    se.add_argument("--presim-workers", type=int, default=None,
                    metavar="N",
                    help="worker processes fanning out the (k, b) "
                         "candidates; any count yields the identical "
                         "study (default: REPRO_WORKERS env or serial)")
    se.add_argument("--metrics", type=Path, default=None, metavar="PATH",
                    help="write the study as a schema-versioned metrics "
                         "JSON document (kind=sweep, one row per "
                         "evaluated point, per-point telemetry merged)")
    se.add_argument("--sample-resources", action="store_true",
                    help="sample /proc on a background thread during the "
                         "search (peak RSS, CPU, child processes); "
                         "readings land in the host_timings channel")

    ob = sub.add_parser("obs", help="trace analysis & regression gates")
    obsub = ob.add_subparsers(dest="obs_command", required=True)

    orp = obsub.add_parser(
        "report", help="full run diagnosis from a trace (+ metrics)")
    orp.add_argument("trace", type=Path, help="JSONL trace (psim --trace)")
    orp.add_argument("metrics", type=Path, nargs="?", default=None,
                     help="metrics JSON of the same run (psim --metrics)")
    orp.add_argument("--top", type=int, default=5,
                     help="hotspot ranking length (default: 5)")

    od = obsub.add_parser(
        "diff", help="compare two metrics documents; optionally gate")
    od.add_argument("old", type=Path, help="baseline metrics JSON")
    od.add_argument("new", type=Path, help="candidate metrics JSON")
    od.add_argument("--threshold", action="append", default=[],
                    metavar="NAME=FRACTION",
                    help="per-metric relative regression threshold "
                         "(repeatable), e.g. tw.rollbacks=0.25")
    od.add_argument("--default-threshold", type=float, default=None,
                    metavar="FRACTION",
                    help="threshold for metrics without an override "
                         "(default: 0.10)")
    od.add_argument("--fail-on-regression", action="store_true",
                    help="exit non-zero when any metric regressed "
                         "past its threshold")
    od.add_argument("--json", action="store_true",
                    help="print the machine-readable verdict instead "
                         "of the text report")

    oh = obsub.add_parser(
        "hotspots", help="rank LPs by rollback concentration")
    oh.add_argument("trace", type=Path, help="JSONL trace (psim --trace)")
    oh.add_argument("--top", type=int, default=10,
                    help="ranking length (default: 10)")

    ot = obsub.add_parser(
        "timeline",
        help="export a metrics document's spans as Chrome-trace JSON "
             "(open in Perfetto or chrome://tracing)")
    ot.add_argument("metrics", type=Path,
                    help="metrics JSON carrying a spans field (any "
                         "--metrics run records one)")
    ot.add_argument("-o", "--output", type=Path, default=None,
                    metavar="PATH",
                    help="trace output path (default: metrics path with "
                         "a .trace.json suffix)")

    obsub.add_parser(
        "selfcheck",
        help="fast smoke test of every analyzer, the span layer and "
             "the timeline exporter on built-in artifacts")
    return p


def _load(args) -> "object":
    """Resolve the ``file`` argument to a netlist.

    Three spellings: a Verilog path (parsed through the full front
    end), ``circuit:NAME`` (the text registry, still parsed), or
    ``stream:NAME`` (the array-native registry — returns a
    :class:`~repro.verilog.netlist_csr.NetlistCSR` with no Verilog
    text round-trip; the only practical route to the million-gate
    scale-ladder circuits like ``stream:viterbi-xl``).
    """
    from .verilog import compile_verilog

    spec = str(args.file)
    if spec.startswith("circuit:"):
        from .circuits import load_circuit

        return load_circuit(spec[len("circuit:"):])
    if spec.startswith("stream:"):
        from .circuits import load_stream_circuit

        return load_stream_circuit(spec[len("stream:"):])
    text = args.file.read_text()
    return compile_verilog(text, top=args.top)


def _stamp() -> str:
    """Wall-clock provenance for metrics documents — the only
    non-deterministic field they carry (see docs/observability.md)."""
    from datetime import datetime, timezone

    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def _start_sampler(args):
    """Begin /proc resource sampling when ``--sample-resources`` asked
    for it; returns the running sampler or None."""
    if not getattr(args, "sample_resources", False):
        return None
    from .obs import ResourceSampler

    sampler = ResourceSampler()
    sampler.start()
    return sampler


def _finish_sampler(sampler, recorder, out) -> None:
    """Stop the sampler, quarantine its readings as host values on
    ``recorder`` (a no-op for the null recorder) and print a one-line
    summary — host numbers never enter the deterministic counters."""
    if sampler is None:
        return
    sampler.stop()
    sampler.record_into(recorder)
    vals = sampler.as_host_values()
    out.write(f"resources : peak_rss={vals['obs.sampler.peak_rss_kb']:.0f} kB "
              f"cpu={vals['obs.sampler.cpu_seconds']:.2f} s "
              f"children(peak)={vals['obs.sampler.children.peak']:.0f}\n")


def _cmd_circuits(args, out) -> int:
    from .circuits import available_circuits, load_circuit

    for name in available_circuits():
        netlist = load_circuit(name)
        out.write(
            f"{name:16s} {netlist.num_gates:>7d} gates "
            f"{len(netlist.hierarchy.children):>4d} instances\n"
        )
    return 0


def _cmd_generate(args, out) -> int:
    from .circuits import circuit_source

    out.write(circuit_source(args.name))
    return 0


def _cmd_info(args, out) -> int:
    from .verilog.netlist_csr import NetlistCSR

    netlist = _load(args)
    if isinstance(netlist, NetlistCSR):
        out.write(f"top module : {netlist.top}\n")
        out.write(f"gates      : {netlist.num_gates}\n")
        out.write(f"nets       : {netlist.num_nets}\n")
        out.write(f"pins       : {netlist.num_pins}\n")
        out.write(f"inputs     : {len(netlist.inputs)}\n")
        out.write(f"outputs    : {len(netlist.outputs)}\n")
        out.write("form       : array-native (no hierarchy/name strings)\n")
        return 0
    out.write(f"top module : {netlist.top}\n")
    out.write(f"gates      : {netlist.num_gates}\n")
    out.write(f"nets       : {netlist.num_nets}\n")
    out.write(f"inputs     : {len(netlist.inputs)}\n")
    out.write(f"outputs    : {len(netlist.outputs)}\n")
    out.write(f"flip-flops : {len(netlist.sequential_gates())}\n")
    out.write(f"instances  : {len(netlist.hierarchy.children)} (top level)\n")
    undriven = netlist.undriven_nets()
    if undriven:
        out.write(f"undriven   : {len(undriven)} nets (simulate as X)\n")
    if args.stats:
        from .hypergraph import analyze_netlist

        out.write("\n" + analyze_netlist(netlist).summary() + "\n")
    if args.tree:
        for node in netlist.hierarchy.walk():
            indent = "  " * len(node.path)
            out.write(f"{indent}{node.name} [{node.module}] "
                      f"{node.total_gates} gates\n")
    return 0


def _cmd_partition(args, out) -> int:
    from .verilog.netlist_csr import NetlistCSR

    netlist = _load(args)
    if args.save is not None and args.algorithm != "design":
        print("error: --save requires --algorithm design", file=sys.stderr)
        return 1
    if isinstance(netlist, NetlistCSR) and args.algorithm == "design":
        print("error: --algorithm design needs the hierarchical object "
              "model; stream: circuits carry none (use multilevel or "
              "random)", file=sys.stderr)
        return 1
    recorder = None
    if args.metrics is not None:
        from .obs import SpanRecorder

        recorder = SpanRecorder()
    sampler = _start_sampler(args)
    if args.algorithm == "design":
        from .core import design_driven_partition
        from .obs import NULL_RECORDER

        r = design_driven_partition(
            netlist, k=args.k, b=args.b, seed=args.seed, pairing=args.pairing,
            workers=args.refine_workers, refiner=args.refiner,
            recorder=recorder if recorder is not None else NULL_RECORDER,
        )
        cut, loads = r.cut_size, r.part_weights.tolist()
        out.write(f"algorithm : design-driven (pairing={args.pairing}, "
                  f"refiner={args.refiner})\n")
        out.write(f"balanced  : {r.balanced} (flatten steps: {r.flatten_steps})\n")
        gate_assignment = r.gate_assignment()
        if args.save is not None:
            from .core import save_partition

            save_partition(r, args.save)
            out.write(f"saved      {args.save}\n")
    elif args.algorithm == "multilevel":
        from .core import multilevel_flat_partition
        from .obs import NULL_RECORDER

        r = multilevel_flat_partition(
            netlist, args.k, args.b, seed=args.seed,
            workers=args.refine_workers, refiner=args.refiner,
            recorder=recorder if recorder is not None else NULL_RECORDER,
        )
        cut, loads = r.cut_size, r.part_weights.tolist()
        gate_assignment = r.gate_assignment()
        out.write("algorithm : multilevel (coarsen + k-way FM uncoarsening)\n")
        out.write(f"balanced  : {r.balanced} "
                  f"(levels: {r.levels}, coarsest: {r.coarse_vertices})\n")
    else:
        from .baselines import random_partition
        from .hypergraph import flat_hypergraph
        from .hypergraph.metrics import hyperedge_cut
        from .hypergraph.metrics import part_weights as pw

        hg = flat_hypergraph(netlist)
        gate_assignment = random_partition(hg, args.k, seed=args.seed)
        cut = hyperedge_cut(hg, gate_assignment)
        loads = pw(hg, gate_assignment, args.k).tolist()
        out.write(f"algorithm : {args.algorithm} (flat netlist)\n")
    _finish_sampler(sampler, recorder, out)
    out.write(f"k={args.k} b={args.b}\n")
    out.write(f"cut size  : {cut}\n")
    out.write(f"loads     : {loads}\n")
    if args.assignment_out is not None:
        if isinstance(netlist, NetlistCSR):
            # streamed circuits carry no name strings; g<gid> is stable
            lines = [
                f"{netlist.gate_name(g)} {int(p)}"
                for g, p in enumerate(gate_assignment)
            ]
        else:
            lines = [
                f"{netlist.gates[g].name} {int(p)}"
                for g, p in enumerate(gate_assignment)
            ]
        args.assignment_out.write_text("\n".join(lines) + "\n")
        out.write(f"wrote      {args.assignment_out}\n")
    if args.metrics is not None:
        from .obs import metrics_document, write_metrics

        counters = {"part.cut_size": int(cut)}
        if args.algorithm in ("design", "multilevel"):
            counters["part.balanced"] = int(r.balanced)
        doc = metrics_document(
            "partition",
            kind="partition",
            params={"file": str(args.file), "algorithm": args.algorithm,
                    "k": args.k, "b": args.b, "seed": args.seed,
                    "pairing": args.pairing, "refiner": args.refiner},
            counters=counters,
            recorder=recorder,
            generated_at=_stamp(),
            include_host_timings=True,
        )
        write_metrics(args.metrics, doc)
        out.write(f"metrics    {args.metrics}\n")
    return 0


def _cmd_optimize(args, out) -> int:
    from .verilog import optimize_netlist, write_netlist_verilog

    netlist = _load(args)
    optimized, stats = optimize_netlist(netlist)
    out.write(stats.summary() + "\n")
    if args.output is not None:
        args.output.write_text(write_netlist_verilog(optimized))
        out.write(f"wrote {args.output}\n")
    return 0


def _cmd_simulate(args, out) -> int:
    from .circuits import random_vectors
    from .sim import SequentialSimulator, compile_circuit
    from .sim.logic import value_name

    netlist = _load(args)
    events = random_vectors(netlist, args.vectors, seed=args.seed)
    sim = SequentialSimulator(compile_circuit(netlist))
    sim.add_inputs(events)
    stats = sim.run()
    out.write(f"vectors      : {args.vectors}\n")
    out.write(f"gate events  : {stats.gate_evals}\n")
    out.write(f"net events   : {stats.net_events}\n")
    out.write(f"end time     : {stats.end_time}\n")
    values = "".join(value_name(v) for v in reversed(sim.output_values()))
    out.write(f"final outputs: {values} (MSB first)\n")
    return 0


def _cmd_psim(args, out) -> int:
    from .circuits import random_vectors
    from .core import design_driven_partition
    from .obs import NULL_RECORDER
    from .sim import ClusterSpec, TimeWarpConfig, compile_circuit, run_partitioned

    recorder = NULL_RECORDER
    if args.metrics is not None:
        from .obs import SpanRecorder

        recorder = SpanRecorder()
    trace = None
    if args.trace is not None:
        from .errors import ConfigError
        from .obs import TraceBuffer

        if args.trace_capacity < 1:
            raise ConfigError(
                f"--trace-capacity must be >= 1, got {args.trace_capacity}"
            )
        trace = TraceBuffer(capacity=args.trace_capacity)
    progress = None
    if args.progress:
        from .obs import ProgressHeartbeat

        progress = ProgressHeartbeat()  # stderr, throttled

    netlist = _load(args)
    events = random_vectors(netlist, args.vectors, seed=args.seed)
    sampler = _start_sampler(args)
    if args.partition is not None:
        from .core import load_partition

        part = load_partition(args.partition, netlist)
        k = part.k
        out.write(f"loaded partition {args.partition} (k={k}, b={part.b})\n")
    else:
        part = design_driven_partition(netlist, k=args.k, b=args.b,
                                       seed=args.seed,
                                       workers=args.refine_workers,
                                       refiner=args.refiner,
                                       recorder=recorder)
        k = args.k
    clusters, machines = part.to_simulation()
    report = run_partitioned(
        compile_circuit(netlist), clusters, machines, events,
        ClusterSpec(num_machines=k),
        TimeWarpConfig(
            lazy_cancellation=not args.aggressive,
            conservative=args.conservative,
        ),
        recorder=recorder,
        trace=trace,
        progress=progress,
    )
    if progress is not None:
        progress.close()
    _finish_sampler(sampler, recorder, out)
    out.write(f"k={k} b={part.b} cut={part.cut_size} "
              f"balanced={part.balanced}\n")
    out.write(f"sequential time : {report.sequential_wall_time:.6f} s (modeled)\n")
    out.write(f"parallel time   : {report.parallel_wall_time:.6f} s (modeled)\n")
    out.write(f"speedup         : {report.speedup:.2f}\n")
    out.write(f"messages        : {report.messages} "
              f"(+{report.anti_messages} anti)\n")
    out.write(f"rollbacks       : {report.rollbacks} "
              f"({report.rolled_back_events} events undone)\n")
    out.write(f"verified        : {report.verified}\n")
    if args.metrics is not None:
        from .obs import metrics_document, write_metrics

        doc = metrics_document(
            "psim",
            kind="run",
            params={"file": str(args.file), "k": k, "b": part.b,
                    "vectors": args.vectors, "seed": args.seed,
                    "refiner": args.refiner,
                    "lazy_cancellation": not args.aggressive,
                    "conservative": args.conservative},
            counters={"part.cut_size": part.cut_size,
                      "part.balanced": int(part.balanced)},
            recorder=recorder,
            generated_at=_stamp(),
            include_host_timings=True,
        )
        write_metrics(args.metrics, doc)
        out.write(f"metrics         : {args.metrics}\n")
    if trace is not None:
        written = trace.dump(args.trace)
        dropped = f" ({trace.dropped} dropped)" if trace.dropped else ""
        out.write(f"trace           : {args.trace} "
                  f"({written} events{dropped})\n")
    return 0


def _cmd_sweep(args, out) -> int:
    from .bench import format_table, run_presim_grid
    from .obs import NULL_RECORDER

    recorder = NULL_RECORDER
    if args.metrics_out is not None:
        from .obs import SpanRecorder

        recorder = SpanRecorder()
    source = args.file.read_text()
    ks = tuple(int(x) for x in args.ks.split(","))
    bs = tuple(float(x) for x in args.bs.split(","))
    sampler = _start_sampler(args)
    cells = run_presim_grid(
        source, ks=ks, bs=bs, n_vectors=args.vectors, seed=args.seed,
        top=args.top, workers=args.workers,
        refine_workers=args.refine_workers,
        algorithm=args.algorithm,
        refiner=args.refiner,
        recorder=recorder,
    )
    _finish_sampler(sampler, recorder, out)
    out.write(format_table(
        ["k", "b", "cut", "balanced", "time (s)", "speedup", "msgs",
         "rollbacks"],
        [[c.k, c.b, c.cut_size, c.balanced, f"{c.sim_time:.6f}",
          f"{c.speedup:.2f}", c.messages, c.rollbacks] for c in cells],
        title=f"(k, b) sweep: {args.file} ({args.vectors} vectors)",
    ) + "\n")
    best = max(cells, key=lambda c: c.speedup)
    out.write(f"\nbest: k={best.k} b={best.b} speedup={best.speedup:.2f}\n")
    if args.metrics_out is not None:
        from .obs import metrics_document, write_metrics

        doc = metrics_document(
            "sweep",
            kind="sweep",
            params={"file": str(args.file), "ks": args.ks, "bs": args.bs,
                    "vectors": args.vectors, "seed": args.seed,
                    "algorithm": args.algorithm, "refiner": args.refiner},
            counters={"bench.rows": len(cells)},
            rows=[c.to_row() for c in cells],
            recorder=recorder,
            generated_at=_stamp(),
            include_host_timings=True,
        )
        write_metrics(args.metrics_out, doc)
        out.write(f"metrics: {args.metrics_out}\n")
    return 0


def _cmd_search(args, out) -> int:
    from .circuits import random_vectors
    from .core import brute_force_presim, heuristic_presim
    from .obs import NULL_RECORDER

    recorder = NULL_RECORDER
    if args.metrics is not None:
        from .obs import SpanRecorder

        recorder = SpanRecorder()
    netlist = _load(args)
    events = random_vectors(netlist, args.vectors, seed=args.seed)
    sampler = _start_sampler(args)
    if args.heuristic:
        study = heuristic_presim(netlist, events, max_k=args.max_k,
                                 seed=args.seed,
                                 refine_workers=args.refine_workers,
                                 workers=args.presim_workers,
                                 algorithm=args.algorithm,
                                 refiner=args.refiner,
                                 recorder=recorder)
    else:
        study = brute_force_presim(
            netlist, events, ks=tuple(range(2, args.max_k + 1)),
            seed=args.seed, refine_workers=args.refine_workers,
            workers=args.presim_workers, algorithm=args.algorithm,
            refiner=args.refiner, recorder=recorder,
        )
    _finish_sampler(sampler, recorder, out)
    for p in study.points:
        out.write(f"k={p.k} b={p.b:<5} cut={p.cut_size:<6} "
                  f"time={p.sim_time:.6f}s speedup={p.speedup:.2f}\n")
    best = study.best
    out.write(f"\nbest: k={best.k} b={best.b} "
              f"(speedup {best.speedup:.2f}, {study.runs} runs)\n")
    if args.metrics is not None:
        from .obs import metrics_document, write_metrics

        doc = metrics_document(
            "search",
            kind="sweep",
            params={"file": str(args.file), "max_k": args.max_k,
                    "vectors": args.vectors, "seed": args.seed,
                    "heuristic": args.heuristic,
                    "algorithm": args.algorithm,
                    "refiner": args.refiner},
            counters={"bench.rows": len(study.points),
                      "bench.best_k": best.k, "bench.best_b": best.b},
            rows=[{"k": p.k, "b": p.b, "cut": p.cut_size,
                   "balanced": p.balanced, "sim_time": p.sim_time,
                   "speedup": p.speedup, "messages": p.messages,
                   "rollbacks": p.rollbacks} for p in study.points],
            recorder=recorder,
            generated_at=_stamp(),
            include_host_timings=True,
        )
        write_metrics(args.metrics, doc)
        out.write(f"metrics: {args.metrics}\n")
    return 0


def _parse_thresholds(pairs: list[str]) -> dict[str, float]:
    """Parse repeated ``--threshold NAME=FRACTION`` arguments."""
    from .errors import ConfigError

    out: dict[str, float] = {}
    for pair in pairs:
        name, sep, value = pair.partition("=")
        if not sep or not name:
            raise ConfigError(
                f"--threshold expects NAME=FRACTION, got {pair!r}")
        try:
            out[name] = float(value)
        except ValueError:
            raise ConfigError(
                f"--threshold {name}: {value!r} is not a number") from None
    return out


def _cmd_obs_report(args, out) -> int:
    from .obs import analyze_run, load_trace, read_metrics

    events = load_trace(args.trace)
    metrics = read_metrics(args.metrics) if args.metrics is not None else None
    out.write(analyze_run(events, metrics, top=args.top).render())
    return 0


def _cmd_obs_diff(args, out) -> int:
    import json as _json

    from .obs import DEFAULT_THRESHOLD, diff_metrics, read_metrics

    result = diff_metrics(
        read_metrics(args.old),
        read_metrics(args.new),
        thresholds=_parse_thresholds(args.threshold),
        default_threshold=(args.default_threshold
                           if args.default_threshold is not None
                           else DEFAULT_THRESHOLD),
    )
    if args.json:
        out.write(_json.dumps(result.verdict(), indent=2, sort_keys=True)
                  + "\n")
    else:
        out.write(result.render())
    if args.fail_on_regression and result.has_regressions:
        return 1
    return 0


def _cmd_obs_hotspots(args, out) -> int:
    from .obs import load_trace, rollback_hotspots

    hotspots = rollback_hotspots(load_trace(args.trace), top=args.top)
    if not hotspots:
        out.write("no rollbacks in trace\n")
        return 0
    out.write(f"{'lp':>5} {'part':>5} {'rollbacks':>10} {'share':>7} "
              f"{'undone':>7} {'antis':>6} {'depth':>6}\n")
    for h in hotspots:
        out.write(f"{h.lp:>5} {h.partition:>5} {h.rollbacks:>10} "
                  f"{h.share:>6.1%} {h.undone:>7} {h.antis:>6} "
                  f"{h.max_depth:>6}\n")
    return 0


def _cmd_obs_timeline(args, out) -> int:
    from .obs import read_metrics, write_chrome_trace

    doc = read_metrics(args.metrics)
    output = args.output
    if output is None:
        output = args.metrics.with_suffix(".trace.json")
    write_chrome_trace(output, doc)
    spans = doc.get("spans", [])
    lanes = {row["lane"] for row in spans}
    out.write(f"timeline: {output} ({len(spans)} spans, "
              f"{len(lanes)} lanes)\n")
    return 0


def _cmd_obs_selfcheck(args, out) -> int:
    """Exercise every analyzer on built-in synthetic artifacts.

    A fast, dependency-free smoke path (also run by the test suite):
    each check uses a hand-built trace or document with a known answer,
    so a failure localizes the broken analyzer immediately.
    """
    from .errors import ReproError
    from .obs import (
        TraceBuffer,
        analyze_run,
        diff_metrics,
        gvt_progress,
        message_locality,
        metrics_document,
        parse_trace,
        reconstruct_cascades,
        rollback_hotspots,
    )

    checks = 0

    def check(label: str, ok: bool) -> None:
        nonlocal checks
        if not ok:
            raise ReproError(f"obs selfcheck failed: {label}")
        checks += 1

    buf = TraceBuffer()
    buf.emit("send", src_machine=0, dst_machine=1, src_lp=0, dst_lp=1,
             src_partition=0, dst_partition=1, net=3, recv_time=10,
             sign=1, uid=7, local=False, wall=0.1)
    buf.emit("send", src_machine=1, dst_machine=1, src_lp=1, dst_lp=2,
             src_partition=1, dst_partition=1, net=4, recv_time=11,
             sign=-1, uid=3, local=True, wall=0.2)
    buf.emit("rollback", machine=1, lp=1, partition=1, straggler_vt=10,
             straggler_src=0, src_partition=0, straggler_uid=7, sign=1,
             restored_to=8, undone=5, antis=1, depth=2, wall=0.2)
    buf.emit("rollback", machine=1, lp=2, partition=1, straggler_vt=11,
             straggler_src=1, src_partition=1, straggler_uid=3, sign=-1,
             restored_to=9, undone=2, antis=0, depth=1, wall=0.3)
    buf.emit("gvt", round=1, gvt=5, checkpoint_bytes=64)
    buf.emit("gvt", round=2, gvt=5, checkpoint_bytes=64)
    buf.emit("gvt", round=3, gvt=9, checkpoint_bytes=48)
    events = parse_trace(buf.to_jsonl())

    cascades = reconstruct_cascades(events)
    check("cascade count", len(cascades) == 1)
    check("cascade shape", (cascades[0].depth, cascades[0].width,
                            cascades[0].culprit_lp) == (2, 1, 0))
    hotspots = rollback_hotspots(events)
    check("hotspot ranking", [h.lp for h in hotspots] == [1, 2])
    loc = message_locality(events)
    check("locality matrix", loc.counts == ((0, 1), (0, 0))
          and loc.anti_messages == 1)
    gvt = gvt_progress(events)
    check("gvt stalls", len(gvt.stalls) == 1
          and gvt.stalls[0].rounds == 1)

    doc = metrics_document(
        "selfcheck", kind="custom",
        counters={"tw.rollbacks": 4, "tw.processed_events": 100,
                  "tw.committed_events": 90})
    check("identity diff is empty", not diff_metrics(doc, doc).deltas)
    doctored = {**doc, "counters": {**doc["counters"], "tw.rollbacks": 5}}
    check("inflated rollbacks regress",
          diff_metrics(doc, doctored).has_regressions)
    check("report is deterministic",
          analyze_run(events, doc).render() == analyze_run(
              parse_trace(buf.to_jsonl()), doc).render())

    # --- span layer: nesting, merge, validation, timeline export ---
    from .errors import MetricsError
    from .obs import (
        SpanRecorder,
        chrome_trace,
        export_telemetry,
        merge_telemetry,
        validate_spans,
    )

    tick = iter(x * 0.5 for x in range(100))
    wall = iter(x / 10.0 for x in range(100))
    srec = SpanRecorder(clock=lambda: next(tick),
                        span_clock=lambda: next(wall))
    with srec.phase("sweep.cell"):
        with srec.phase("presim.partition"):
            pass
        # a worker-side mini-recorder, exported and merged back the way
        # the pool paths do it; its wall clock sits inside the driver's
        # open presim.simulate window so containment holds
        wwall = iter([0.32, 0.38])
        wrec = SpanRecorder(clock=lambda: 0.0,
                            span_clock=lambda: next(wwall),
                            lane="worker-1")
        with wrec.phase("refine.pair"):
            wrec.incr("part.fm.moves", 2)
        payload = export_telemetry(wrec)
        with srec.phase("presim.simulate"):
            merge_telemetry(srec, payload)
    rows = srec.span_rows()
    validate_spans(rows)
    scounters = srec.as_counters()
    check("span count", scounters["obs.span.count"] == 4)
    check("span nesting depth", scounters["obs.span.depth.max"] == 3)
    check("merged worker counter", scounters["part.fm.moves"] == 2)
    check("adopted span keeps its lane and gains a parent",
          any(r["lane"] == "worker-1" and r["parent"] is not None
              for r in rows))
    try:
        validate_spans([{"sid": 1, "parent": 99, "name": "x",
                         "lane": "main", "t0": 0.0, "t1": 1.0}])
        orphan_rejected = False
    except MetricsError:
        orphan_rejected = True
    check("orphan span rejected", orphan_rejected)

    sdoc = metrics_document("selfcheck", kind="custom", recorder=srec)
    trace_json = chrome_trace(sdoc)
    slices = [e for e in trace_json["traceEvents"] if e.get("ph") == "X"]
    check("timeline slice per span", len(slices) == len(rows))
    check("timeline lane per worker",
          len({e["tid"] for e in slices}) == 2)

    small = TraceBuffer(capacity=2)
    for r in range(3):
        small.emit("gvt", round=r, gvt=r, checkpoint_bytes=0)
    check("ring drop counter", small.dropped == 1)
    devents = parse_trace(small.to_jsonl())
    check("dropped inferred from surviving seqs",
          analyze_run(devents).trace_dropped == 1)
    ddoc = metrics_document(
        "selfcheck", kind="custom",
        counters={"obs.trace.dropped": small.dropped})
    check("report flags truncation",
          "trace truncated" in analyze_run(devents, ddoc).render())

    out.write(f"obs selfcheck: ok ({checks} checks)\n")
    return 0


_OBS_COMMANDS = {
    "report": _cmd_obs_report,
    "diff": _cmd_obs_diff,
    "hotspots": _cmd_obs_hotspots,
    "timeline": _cmd_obs_timeline,
    "selfcheck": _cmd_obs_selfcheck,
}


def _cmd_obs(args, out) -> int:
    return _OBS_COMMANDS[args.obs_command](args, out)


_COMMANDS = {
    "circuits": _cmd_circuits,
    "generate": _cmd_generate,
    "info": _cmd_info,
    "partition": _cmd_partition,
    "optimize": _cmd_optimize,
    "simulate": _cmd_simulate,
    "psim": _cmd_psim,
    "sweep": _cmd_sweep,
    "search": _cmd_search,
    "obs": _cmd_obs,
}


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args, out)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
