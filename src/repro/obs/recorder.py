"""Metric recorders: the write side of the observability layer.

Instrumented code (the partitioner, the Time Warp kernel, the bench
harness) talks to a :class:`Recorder` and never decides *whether*
anything is recorded — that choice belongs to the caller, who passes
either the shared :data:`NULL_RECORDER` (every method is a ``pass``;
instrumentation costs one attribute call) or a :class:`MetricsRecorder`
that accumulates counters, maxima and phase statistics for export via
:mod:`repro.obs.metrics`.

Determinism contract
--------------------
Counters, maxima and phase *call counts* may only be fed modeled or
structural quantities (event counts, cut sizes, modeled seconds), so
two runs with identical inputs produce identical values — the property
the determinism tests pin.  Host wall-clock durations are quarantined
in a separate ``host_seconds`` channel that the canonical JSON dump
excludes by default (see :func:`repro.obs.metrics.metrics_document`).

Metric names are dotted lowercase paths (``tw.rollbacks``,
``part.fm.moves``); the well-known ones are listed in
:data:`repro.obs.registry.METRIC_REGISTRY` and documented in
``docs/observability.md``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Recorder", "NullRecorder", "MetricsRecorder", "PhaseStats",
           "NULL_RECORDER"]


@dataclass
class PhaseStats:
    """Accumulated statistics of one named phase.

    ``calls`` is deterministic (it counts phase entries); ``host_seconds``
    is host wall time and therefore excluded from deterministic dumps.
    """

    calls: int = 0
    host_seconds: float = 0.0


class Recorder:
    """Base interface; every method is a no-op.

    Subclasses override what they care about.  The interface is
    deliberately tiny — three verbs cover the whole codebase:

    * :meth:`incr` — add to a monotone counter;
    * :meth:`observe_max` — track the maximum of a quantity;
    * :meth:`phase` — context manager bracketing one named phase
      (counts entries; a :class:`MetricsRecorder` also accumulates
      host wall time for profiling, outside the deterministic core).
    """

    __slots__ = ()

    #: False for the null recorder — lets hot loops skip building
    #: expensive arguments (``if rec.enabled: rec.incr(...)``).
    enabled = False

    def incr(self, name: str, value: int | float = 1) -> None:
        """Add ``value`` to counter ``name`` (creating it at 0)."""

    def observe_max(self, name: str, value: int | float) -> None:
        """Record ``value`` if it exceeds the current maximum of ``name``."""

    def phase(self, name: str) -> "_PhaseContext":
        """Context manager entering phase ``name``."""
        return _NULL_PHASE


class _PhaseContext:
    """Null phase context (shared singleton)."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_PHASE = _PhaseContext()


class NullRecorder(Recorder):
    """The zero-cost-when-off recorder: every method inherited, all no-ops.

    Use the module-level :data:`NULL_RECORDER` singleton rather than
    constructing new instances.
    """

    __slots__ = ()


#: Shared no-op recorder — the default for every instrumented function.
NULL_RECORDER = NullRecorder()


class _TimedPhase:
    __slots__ = ("_recorder", "_name", "_t0")

    def __init__(self, recorder: "MetricsRecorder", name: str) -> None:
        self._recorder = recorder
        self._name = name
        self._t0 = 0.0

    def __enter__(self):
        self._t0 = self._recorder._clock()
        return self

    def __exit__(self, *exc):
        dt = self._recorder._clock() - self._t0
        stats = self._recorder.phases.setdefault(self._name, PhaseStats())
        stats.calls += 1
        stats.host_seconds += dt
        return False


class MetricsRecorder(Recorder):
    """Accumulating recorder backing the metrics JSON export.

    Parameters
    ----------
    clock:
        Callable returning seconds, used only for the non-deterministic
        ``host_seconds`` of phases; defaults to
        :func:`time.perf_counter`.  Tests inject a fake clock.
    """

    __slots__ = ("counters", "maxima", "phases", "host_values", "_clock")

    enabled = True

    def __init__(self, clock=time.perf_counter) -> None:
        #: monotone counters, name -> value
        self.counters: dict[str, int | float] = {}
        #: running maxima, name -> value
        self.maxima: dict[str, int | float] = {}
        #: phase statistics, name -> PhaseStats
        self.phases: dict[str, PhaseStats] = {}
        #: free-form host-dependent values (resource-sampler output,
        #: worker wall seconds) — quarantined with phase host seconds
        #: in the ``host_timings`` channel, never in counters
        self.host_values: dict[str, float] = {}
        self._clock = clock

    def incr(self, name: str, value: int | float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def observe_max(self, name: str, value: int | float) -> None:
        cur = self.maxima.get(name)
        if cur is None or value > cur:
            self.maxima[name] = value

    def phase(self, name: str) -> _TimedPhase:
        return _TimedPhase(self, name)

    def record_host(self, name: str, value: float) -> None:
        """Record one host-dependent value (RSS, CPU seconds, worker
        wall) under ``name``.  Host values share the quarantined
        ``host_timings`` export channel with phase wall seconds and are
        never part of the deterministic counter view."""
        self.host_values[name] = float(value)

    def absorb_phase(self, name: str, calls: int, host_seconds: float) -> None:
        """Fold externally-accumulated phase statistics (a worker
        mini-recorder's) into this recorder — the merge primitive
        :func:`repro.obs.spans.merge_telemetry` uses."""
        stats = self.phases.setdefault(name, PhaseStats())
        stats.calls += calls
        stats.host_seconds += host_seconds

    # -- export -----------------------------------------------------------

    def as_counters(self) -> dict[str, int | float]:
        """Deterministic flat view: counters, maxima (suffixed
        ``.max``) and phase call counts (suffixed ``.calls``), merged
        into one sorted mapping — the shape
        :func:`repro.obs.metrics.metrics_document` consumes."""
        out: dict[str, int | float] = dict(self.counters)
        for name, v in self.maxima.items():
            out[f"{name}.max"] = v
        for name, stats in self.phases.items():
            out[f"{name}.calls"] = stats.calls
        return dict(sorted(out.items()))

    def host_timings(self) -> dict[str, float]:
        """Host wall seconds per phase plus any :meth:`record_host`
        values — profiling only, never part of the deterministic
        metrics dump."""
        out = {name: stats.host_seconds for name, stats in self.phases.items()}
        out.update(self.host_values)
        return dict(sorted(out.items()))
