"""Chrome-trace / Perfetto timeline export for span trees.

Converts the ``spans`` channel of a metrics document (built by
:class:`repro.obs.spans.SpanRecorder`) into the Chrome Trace Event JSON
object format — loadable in https://ui.perfetto.dev or
``chrome://tracing``.  Each span becomes one complete (``"X"``) event;
lanes (the driver's ``main`` plus one ``worker-N`` per pool process)
become named threads of a single ``repro`` process, so worker activity
renders as parallel tracks under the driver's span tree.

The exporter is read-only and host-facing: it consumes the *volatile*
``spans`` field, so timeline output is expected to differ between runs
(wall timestamps) even when the deterministic document body is
byte-identical.  CLI entry point: ``repro obs timeline metrics.json -o
trace.json``.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..errors import MetricsError
from .spans import validate_spans

__all__ = ["chrome_trace", "write_chrome_trace"]

#: Chrome trace events use microsecond timestamps
_US = 1_000_000.0


def _lane_order(rows: list[dict]) -> list[str]:
    """Lanes in first-appearance order, ``main`` always first (tid 0)."""
    lanes: list[str] = []
    for row in rows:
        lane = row["lane"]
        if lane not in lanes:
            lanes.append(lane)
    if "main" in lanes:
        lanes.remove("main")
        lanes.insert(0, "main")
    return lanes


def chrome_trace(doc: dict) -> dict:
    """Build a Chrome-trace object from a metrics document with spans.

    Returns ``{"traceEvents": [...]}`` — metadata (``"M"``) events
    naming the process and one thread per lane, followed by one
    complete (``"X"``) event per span with ``ts``/``dur`` in
    microseconds relative to the earliest span start.  Raises
    :class:`~repro.errors.MetricsError` when the document carries no
    spans (run the producing command with ``--metrics`` on a
    span-capable build, e.g. ``repro psim``/``partition``/``sweep``).
    """
    rows = doc.get("spans")
    if not rows:
        raise MetricsError(
            f"metrics document {doc.get('name')!r} has no spans — "
            f"re-run the producing command with --metrics to capture a "
            f"span tree, then export its timeline")
    validate_spans(rows)
    lanes = _lane_order(rows)
    tid = {lane: i for i, lane in enumerate(lanes)}
    name = doc.get("name", "repro")
    events: list[dict] = [{
        "ph": "M", "name": "process_name", "pid": 1, "tid": 0,
        "args": {"name": f"repro:{name}"},
    }]
    for lane in lanes:
        events.append({
            "ph": "M", "name": "thread_name", "pid": 1, "tid": tid[lane],
            "args": {"name": lane},
        })
        events.append({
            "ph": "M", "name": "thread_sort_index", "pid": 1,
            "tid": tid[lane], "args": {"sort_index": tid[lane]},
        })
    t_origin = min(row["t0"] for row in rows)
    for row in rows:
        events.append({
            "ph": "X",
            "name": row["name"],
            "cat": "span",
            "pid": 1,
            "tid": tid[row["lane"]],
            "ts": round((row["t0"] - t_origin) * _US, 3),
            "dur": round((row["t1"] - row["t0"]) * _US, 3),
            "args": {"sid": row["sid"], "parent": row["parent"]},
        })
    return {"traceEvents": events,
            "displayTimeUnit": "ms",
            "metadata": {"source": "repro obs timeline",
                         "document": name}}


def write_chrome_trace(path: str | Path, doc: dict) -> Path:
    """Export ``doc``'s spans to ``path`` as Chrome-trace JSON."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(doc), indent=1) + "\n")
    return path
