"""Trace analyzers: turn a kernel trace into a diagnosis.

PR 1's :class:`~repro.obs.trace.TraceBuffer` records *what happened*;
this module answers the paper's diagnostic questions (§4.3, Figures
5–7): which LP caused the rollbacks, how far did the cascade spread,
how much of the message traffic crossed the cut the partitioner
predicted, and did GVT actually make progress.

All analyzers are pure functions over a list of trace-event dicts (one
per JSONL line, as parsed by :func:`load_trace` / :func:`parse_trace`)
and return frozen dataclasses, so analysing the same trace twice gives
identical — and, downstream, byte-identical — results.  Every metric
name an analyzer cross-references is listed in
:data:`REFERENCED_METRICS` and must exist in
:mod:`repro.obs.registry` (enforced by the test suite).

Cascade reconstruction exploits two kernel invariants
(``repro.sim.timewarp``):

1. every ``rollback`` event names its culprit message exactly
   (``straggler_src``/``straggler_uid``/``sign``), matching the
   ``send`` event that carried it; and
2. the anti-messages a rollback injects are routed *immediately before*
   its own ``rollback`` event is emitted, so a rollback with ``antis=n``
   owns precisely the ``n`` anti ``send`` events at sequence numbers
   ``seq-n .. seq-1``.

An anti-induced rollback whose triggering anti falls inside that block
is therefore a *child* of the rollback that injected it; chaining the
links yields the cascade tree.  Anti-messages flushed outside a
rollback (lazy cancellation's deferred residue) have no owning
rollback, so rollbacks they trigger start their own cascade — which is
exactly the decoupling lazy cancellation buys.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from ..errors import TraceError
from .trace import TRACE_EVENT_KINDS

__all__ = [
    "load_trace",
    "parse_trace",
    "trace_dropped",
    "Hotspot",
    "rollback_hotspots",
    "Cascade",
    "reconstruct_cascades",
    "LocalityMatrix",
    "message_locality",
    "StallInterval",
    "GvtProgress",
    "gvt_progress",
    "REFERENCED_METRICS",
    "GVT_DONE",
]

#: the kernel's "everything committed" GVT sentinel (see ``_gvt_round``)
GVT_DONE = 1 << 62

#: registry metric names the analyzers and reports cross-reference;
#: the test suite asserts each is registered (no docs/analyzer drift)
REFERENCED_METRICS = (
    "obs.trace.dropped",
    "part.cut_size",
    "tw.anti_messages_sent",
    "tw.committed_events",
    "tw.gvt_rounds",
    "tw.messages_sent",
    "tw.processed_events",
    "tw.rollbacks",
    "tw.rolled_back_events",
    "tw.speedup",
    "tw.straggler_depth.max",
    "tw.wall_time",
)


# ---------------------------------------------------------------------------
# Loading


def parse_trace(text: str) -> list[dict]:
    """Parse a JSONL trace string into event dicts (seq order).

    Raises :class:`~repro.errors.TraceError` on malformed lines or
    unknown event kinds — a trace that does not parse is a bug, not a
    condition to analyze around.
    """
    events: list[dict] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceError(f"trace line {lineno} is not valid JSON: {exc}") from exc
        if not isinstance(doc, dict):
            raise TraceError(f"trace line {lineno}: expected an object, "
                             f"got {type(doc).__name__}")
        kind = doc.get("kind")
        if kind not in TRACE_EVENT_KINDS:
            raise TraceError(f"trace line {lineno}: unknown event kind {kind!r}")
        if not isinstance(doc.get("seq"), int):
            raise TraceError(f"trace line {lineno}: missing integer 'seq'")
        events.append(doc)
    return events


def load_trace(path: str | Path) -> list[dict]:
    """Load a JSONL trace dump (``TraceBuffer.dump`` output) from disk."""
    return parse_trace(Path(path).read_text())


def trace_dropped(events: list[dict]) -> int:
    """Events the bounded ring evicted before this trace was dumped.

    Sequence numbers are assigned from 0 at emit time and survive
    eviction, so the first surviving event's ``seq`` *is* the eviction
    count — the trace-only fallback when no metrics document carries
    the authoritative ``obs.trace.dropped`` counter.
    """
    return events[0]["seq"] if events else 0


def _by_kind(events: list[dict], kind: str) -> list[dict]:
    return [e for e in events if e["kind"] == kind]


# ---------------------------------------------------------------------------
# Rollback hotspots


@dataclass(frozen=True)
class Hotspot:
    """Rollback concentration of one LP.

    ``partition`` is the LP's static partition (-1 for pre-enrichment
    traces without the field); ``share`` is this LP's fraction of all
    rollback episodes in the trace.
    """

    lp: int
    partition: int
    rollbacks: int
    undone: int
    antis: int
    max_depth: int
    share: float


def rollback_hotspots(events: list[dict], top: int | None = None) -> list[Hotspot]:
    """Rank LPs by rollback count (ties: undone events, then LP id).

    A distribution dominated by one or two LPs means a hot partition
    boundary (a producer/consumer pair split across machines); a flat
    distribution points at systemic over-optimism instead (compare
    ``tw.rollbacks`` against ``tw.processed_events``).
    """
    per_lp: dict[int, dict] = {}
    total = 0
    for e in _by_kind(events, "rollback"):
        total += 1
        acc = per_lp.setdefault(e["lp"], {
            "partition": e.get("partition", -1),
            "rollbacks": 0, "undone": 0, "antis": 0, "max_depth": 0,
        })
        acc["rollbacks"] += 1
        acc["undone"] += e.get("undone", 0)
        acc["antis"] += e.get("antis", 0)
        acc["max_depth"] = max(acc["max_depth"], e.get("depth", 0))
    ranked = sorted(
        per_lp.items(),
        key=lambda kv: (-kv[1]["rollbacks"], -kv[1]["undone"], kv[0]),
    )
    if top is not None:
        ranked = ranked[:top]
    return [
        Hotspot(
            lp=lp,
            partition=acc["partition"],
            rollbacks=acc["rollbacks"],
            undone=acc["undone"],
            antis=acc["antis"],
            max_depth=acc["max_depth"],
            share=acc["rollbacks"] / total,
        )
        for lp, acc in ranked
    ]


# ---------------------------------------------------------------------------
# Cascade reconstruction


@dataclass(frozen=True)
class Cascade:
    """One reconstructed rollback cascade.

    ``depth`` counts rollback *levels* (a lone rollback has depth 1);
    ``width`` is the largest number of rollbacks at any level; ``size``
    the total rollbacks in the tree.  ``culprit_lp`` is the sender of
    the root's straggler — the LP (or -1 for the environment) whose
    late message started the chain; ``culprit_partition`` its static
    partition.
    """

    root_seq: int
    culprit_lp: int
    culprit_partition: int
    depth: int
    width: int
    size: int
    lps: tuple[int, ...]
    rollback_seqs: tuple[int, ...]


def reconstruct_cascades(events: list[dict]) -> list[Cascade]:
    """Group the trace's rollbacks into causal cascade trees.

    Returns cascades sorted by size (desc), then root sequence number —
    deterministic for a deterministic trace.  See the module docstring
    for the linkage rule and its lazy-cancellation caveat.
    """
    rollbacks = _by_kind(events, "rollback")
    if not rollbacks:
        return []
    # anti-send seq -> (src_lp, uid, dst_lp) for parent lookup
    anti_sends = {
        e["seq"]: e
        for e in _by_kind(events, "send")
        if e.get("sign", 1) < 0
    }
    # (src_lp, uid, dst_lp) -> anti-send seqs, ascending
    anti_index: dict[tuple[int, int, int], list[int]] = {}
    for seq, e in sorted(anti_sends.items()):
        key = (e.get("src_lp", -1), e.get("uid", -1), e.get("dst_lp", -1))
        anti_index.setdefault(key, []).append(seq)
    # rollback ownership blocks: rollback at seq s with antis=n owns
    # anti sends at seq s-n .. s-1
    owner_of_send: dict[int, int] = {}
    for r in rollbacks:
        n = r.get("antis", 0)
        for s in range(r["seq"] - n, r["seq"]):
            if s in anti_sends:
                owner_of_send[s] = r["seq"]

    parent: dict[int, int] = {}  # rollback seq -> parent rollback seq
    by_seq = {r["seq"]: r for r in rollbacks}
    for r in rollbacks:
        if r.get("sign", 1) >= 0:
            continue  # positive straggler: cascade root by definition
        key = (r.get("straggler_src", -1), r.get("straggler_uid", -1), r["lp"])
        for send_seq in anti_index.get(key, ()):
            if send_seq >= r["seq"]:
                break  # the triggering send precedes the rollback
            owner = owner_of_send.get(send_seq)
            if owner is not None and owner != r["seq"]:
                parent[r["seq"]] = owner  # latest matching owner wins

    children: dict[int, list[int]] = {}
    for child, par in parent.items():
        children.setdefault(par, []).append(child)
    roots = [r["seq"] for r in rollbacks if r["seq"] not in parent]

    cascades = []
    for root in roots:
        levels: list[list[int]] = [[root]]
        while levels[-1]:
            nxt = sorted(s for seq in levels[-1] for s in children.get(seq, ()))
            if not nxt:
                break
            levels.append(nxt)
        members = [s for level in levels for s in level]
        root_ev = by_seq[root]
        cascades.append(Cascade(
            root_seq=root,
            culprit_lp=root_ev.get("straggler_src", -1),
            culprit_partition=root_ev.get("src_partition", -1),
            depth=len(levels),
            width=max(len(level) for level in levels),
            size=len(members),
            lps=tuple(sorted({by_seq[s]["lp"] for s in members})),
            rollback_seqs=tuple(members),
        ))
    cascades.sort(key=lambda c: (-c.size, c.root_seq))
    return cascades


# ---------------------------------------------------------------------------
# Message locality


@dataclass(frozen=True)
class LocalityMatrix:
    """Inter-partition positive-message traffic.

    ``counts[i][j]`` is the number of positive messages sent from
    partition ``i`` to partition ``j`` (environment stimulus, src -1,
    is excluded).  The diagonal is intra-partition traffic that a
    perfect placement keeps off the network; compare
    ``remote_messages`` against the partitioner's ``part.cut_size``
    prediction.  ``anti_messages`` counts cancellations separately
    (``tw.anti_messages_sent`` territory).
    """

    k: int
    counts: tuple[tuple[int, ...], ...]
    anti_messages: int

    @property
    def total_messages(self) -> int:
        return sum(sum(row) for row in self.counts)

    @property
    def local_messages(self) -> int:
        return sum(self.counts[i][i] for i in range(self.k))

    @property
    def remote_messages(self) -> int:
        return self.total_messages - self.local_messages

    @property
    def local_fraction(self) -> float:
        total = self.total_messages
        return self.local_messages / total if total else 1.0


def message_locality(events: list[dict], by: str = "partition") -> LocalityMatrix:
    """Build the k×k message matrix from ``send`` events.

    ``by='partition'`` groups by the static partition the LP was
    assigned to (falls back to machine ids for pre-enrichment traces);
    ``by='machine'`` groups by the host machine at send time — the two
    differ exactly when dynamic migration moved LPs.
    """
    if by not in ("partition", "machine"):
        raise TraceError(f"message_locality: by must be 'partition' or "
                         f"'machine', got {by!r}")
    pairs: list[tuple[int, int, int]] = []  # (src, dst, sign)
    antis = 0
    for e in _by_kind(events, "send"):
        if e.get("src_lp", -1) < 0:
            continue  # environment stimulus is not partition traffic
        if by == "partition":
            src = e.get("src_partition", e.get("src_machine", 0))
            dst = e.get("dst_partition", e.get("dst_machine", 0))
        else:
            src = e.get("src_machine", 0)
            dst = e.get("dst_machine", 0)
        if e.get("sign", 1) < 0:
            antis += 1
            continue
        pairs.append((src, dst, 1))
    k = max((max(s, d) for s, d, _ in pairs), default=-1) + 1
    counts = [[0] * k for _ in range(k)]
    for s, d, _ in pairs:
        counts[s][d] += 1
    return LocalityMatrix(
        k=k,
        counts=tuple(tuple(row) for row in counts),
        anti_messages=antis,
    )


# ---------------------------------------------------------------------------
# GVT progress


@dataclass(frozen=True)
class StallInterval:
    """A maximal run of GVT rounds with no estimate advance.

    ``rounds`` counts the zero-advance steps (``end_round -
    start_round``); the estimate was stuck at ``gvt`` from
    ``start_round`` through ``end_round`` inclusive.
    """

    start_round: int
    end_round: int
    gvt: int

    @property
    def rounds(self) -> int:
        return self.end_round - self.start_round


@dataclass(frozen=True)
class GvtProgress:
    """GVT advance statistics of one run.

    ``advance_rate`` is virtual-time ticks gained per GVT round over
    the observed window (the ``tw.gvt_rounds`` cadence); ``stalls``
    lists every window where the estimate failed to move — the
    signature of a rollback echo (see the `throttle` trace events and
    ``docs/kernel.md`` §4).
    """

    rounds: int
    first_gvt: int | None
    final_gvt: int | None
    completed: bool
    advance_rate: float
    stalls: tuple[StallInterval, ...]

    @property
    def longest_stall(self) -> int:
        return max((s.rounds for s in self.stalls), default=0)


def gvt_progress(events: list[dict]) -> GvtProgress:
    """Analyze the ``gvt`` event stream for advance rate and stalls.

    The kernel's completion sentinel (GVT = 2^62, "everything
    committed") marks the run complete and is excluded from rate and
    stall computation.
    """
    samples = [(e.get("round", i + 1), e.get("gvt", 0))
               for i, e in enumerate(_by_kind(events, "gvt"))]
    completed = any(g >= GVT_DONE for _, g in samples)
    finite = [(r, g) for r, g in samples if g < GVT_DONE]
    if not finite:
        return GvtProgress(rounds=len(samples), first_gvt=None, final_gvt=None,
                           completed=completed, advance_rate=0.0, stalls=())
    stalls: list[StallInterval] = []
    start_round, start_gvt = finite[0]
    prev_round, prev_gvt = finite[0]
    for r, g in finite[1:]:
        if g > prev_gvt:
            if prev_round > start_round:
                stalls.append(StallInterval(start_round, prev_round, start_gvt))
            start_round, start_gvt = r, g
        prev_round, prev_gvt = r, g
    if prev_round > start_round:
        stalls.append(StallInterval(start_round, prev_round, start_gvt))
    first = finite[0][1]
    final = finite[-1][1]
    span = finite[-1][0] - finite[0][0]
    rate = (final - first) / span if span > 0 else 0.0
    return GvtProgress(
        rounds=len(samples),
        first_gvt=first,
        final_gvt=final,
        completed=completed,
        advance_rate=rate,
        stalls=tuple(stalls),
    )
