"""Metric name registry: every well-known counter in one place.

Names are dotted lowercase paths grouped by subsystem prefix —
``part.*`` for the partitioner, ``tw.*`` for the Time Warp kernel,
``seq.*`` for the sequential baseline, ``bench.*`` for harness-level
quantities.  Two derived suffixes are conventions, not separate
registrations: ``<name>.max`` (a running maximum recorded via
:meth:`~repro.obs.recorder.Recorder.observe_max`) and
``<phase>.calls`` (phase entry counts).

The registry is documentation-with-teeth: ``docs/observability.md``
renders it, and the test suite asserts that every counter the
instrumented code emits is registered here (or is a derived suffix of a
registered name), so a metric cannot silently drift out of the docs.
"""

from __future__ import annotations

__all__ = [
    "METRIC_REGISTRY",
    "PHASE_REGISTRY",
    "HOST_VALUE_REGISTRY",
    "TRACE_FIELD_REGISTRY",
    "is_registered",
    "trace_fields",
]

#: counter / maximum names -> one-line meaning
METRIC_REGISTRY: dict[str, str] = {
    # -- partitioner (repro.core) -----------------------------------------
    "part.cone.cones": "input cones discovered by cone partitioning",
    "part.cone.roots": "clusters fed directly by a primary input",
    "part.cone.orphan_vertices": "vertices unreachable from any input, packed last",
    "part.pairing.rounds": "pairing rounds requested by the multiway driver",
    "part.pairing.pairs": "partition pairs handed to FM across all rounds",
    "part.fm.passes": "FM passes executed (all pairs, all rounds)",
    "part.fm.moves": "vertex moves retained after best-prefix rollback",
    "part.fm.gain": "total realized cut gain across all FM passes",
    "part.fm.rebalance_moves": "vertices moved by balance repair (rebalance_pair)",
    "part.refine.rounds": "conflict-free pair rounds executed by the refinement engine",
    "part.refine.tasks": "pair-refinement tasks executed (one FM pair each)",
    "part.core.lambda_hits": "edge λ-cache reads serving incremental gain/move queries",
    "part.core.gain_batches": "batch move_gains() queries answered by the vectorized core",
    "part.core.gain_batch_vertices": "total vertices evaluated across batch gain queries",
    "part.core.boundary_batches": "vectorized pair-boundary extractions (pairing + FM fills)",
    "part.batch.rounds": "gather/select/apply rounds executed by batch refinement",
    "part.batch.moves": "vertex moves applied by batch refinement",
    "part.batch.gain": "total realized cut gain of applied move batches",
    "part.batch.candidates": "positive-gain move candidates across all batch rounds",
    "part.batch.conflicts": "candidates dropped by the one-destination-per-hyperedge race",
    "part.batch.balance_dropped": "candidates dropped by the prefix-sum weight filters",
    "part.batch.boundary": "boundary vertices gathered in one round (use .max)",
    "part.batch.gathered": "stale boundary vertices re-scored by the incremental gather",
    "part.batch.retries": "balance-stalled re-selections with next-best destinations",
    "part.batch.kicks": "perturbation attempts at the greedy fixpoint (rollback on no gain)",
    "part.ml.levels": "coarsening levels built by the multilevel engine",
    "part.ml.coarse_vertices": "vertex count of the coarsest hypergraph",
    "part.ml.matched_pairs": "heavy-edge matches accepted across all coarsening levels",
    "part.ml.match_weight": "summed heavy-edge connectivity absorbed by accepted matches",
    "part.ml.reduction": "finest/coarsest vertex-count ratio of the hierarchy (use .max)",
    "part.ml.initial_candidates": "coarsest-level initial k-way candidates evaluated",
    "part.ml.initial_cut": "cut of the winning coarsest-level initial partition",
    "part.ml.level_cut": "cut after refining one level (use .max for the hierarchy peak)",
    "part.ml.refine_rounds": "pairing+FM improvement rounds across all multilevel levels",
    "part.ml.uncoarsen_gain": "cut improvement realized during uncoarsening refinement",
    "part.build.gates": "gates (hypergraph vertices) seen by the streamed build",
    "part.build.nets": "nets (constants included) seen by the streamed build",
    "part.build.pins": "gate input pins consumed by the streamed build",
    "part.build.edges": "hyperedges kept (nets touching >= 2 distinct gates)",
    "part.build.edge_pins": "pin incidences stored in the hyperedge CSR",
    "part.flatten.steps": "super-gates flattened to meet Formula 1",
    "part.redistribute.calls": "load-redistribution repairs attempted",
    "part.rounds": "pairing+FM improvement rounds until stability",
    "part.cut_size": "final hyperedge cut of the partition",
    "part.balanced": "1 when Formula 1 was met, else 0",
    # -- Time Warp kernel (repro.sim) -------------------------------------
    "tw.messages_sent": "positive inter-machine messages transmitted",
    "tw.anti_messages_sent": "anti-messages transmitted (cancellations)",
    "tw.env_messages": "stimulus messages pre-loaded from the environment LP",
    "tw.processed_events": "gate events processed (including later-undone work)",
    "tw.committed_events": "gate events surviving rollback (== sequential count)",
    "tw.rollbacks": "rollback episodes across all LPs",
    "tw.rolled_back_events": "gate events undone by rollbacks",
    "tw.straggler_depth": "virtual-time depth of a straggler below LP time (use .max)",
    "tw.gvt_rounds": "GVT computation / fossil-collection rounds",
    "tw.migrations": "dynamic LP migrations between machines",
    "tw.peak_checkpoint_bytes": "peak total checkpoint memory across LPs",
    "tw.wall_time": "modeled parallel wall time (max machine clock, seconds)",
    "tw.speedup": "modeled sequential wall over modeled parallel wall",
    # -- vectorized gate-eval kernel (repro.sim.logic) ---------------------
    "sim.kernel.batches": "affected-gate batches evaluated by the vectorized kernel",
    "sim.kernel.batch_gates": "combinational gate evals done by the vectorized kernel",
    "sim.kernel.scalar_gates": "combinational gate evals done on the scalar fast path",
    # -- sequential baseline ----------------------------------------------
    "seq.gate_evals": "gate events of the sequential reference run",
    "seq.wall_time": "modeled sequential wall time (seconds)",
    # -- streamed circuit construction (repro.circuits.stream) -------------
    "circ.gates": "gates emitted by the array-native circuit generator",
    "circ.nets": "nets allocated by the array-native circuit generator",
    "circ.pins": "gate input pins emitted by the array-native generator",
    "circ.stamps": "template instances stamped by the array-native generator",
    # -- bench harness ----------------------------------------------------
    "bench.rows": "result rows produced by the benchmark",
    "bench.best_k": "winning machine count selected by a (k, b) search",
    "bench.best_b": "winning balance factor selected by a (k, b) search",
    "bench.shape_checks_passed": "qualitative paper claims that held",
    "bench.shape_checks_failed": "qualitative paper claims that failed",
    "bench.brute_force_runs": "pre-simulation cells evaluated by brute force",
    "bench.heuristic_runs": "cells the Figure-3 heuristic actually ran",
    "bench.runs_saved": "pre-simulation runs the heuristic avoided",
    "bench.speedup_gap": "brute-force best speedup minus heuristic best",
    # -- observability self-metrics (repro.obs) ----------------------------
    "obs.trace.dropped": "oldest trace events evicted by ring-buffer wrap",
    "obs.span.count": "completed spans in the merged span tree (all lanes)",
    "obs.span.depth": "deepest span nesting in the merged tree (use .max)",
}

#: phase names (recorded as "<name>.calls" in counter views and as host
#: wall seconds in the opt-in host_timings channel)
PHASE_REGISTRY: dict[str, str] = {
    "partition.coarsen": "multilevel heavy-edge coarsening (all levels)",
    "partition.initial": "initial partition construction (cone, random, "
                         "or coarsest-level greedy candidates)",
    "partition.uncoarsen": "multilevel projection + per-level refinement",
    "partition.refine": "one pairing + pairwise-FM improvement cycle",
    "partition.batch_refine": "one batch data-parallel refinement call, "
                              "gather to fixpoint",
    "partition.flatten": "super-gate flattening + assignment carry-over",
    "partition.rebalance": "load redistribution / final balance repair",
    "refine.pair": "one pairwise-FM task (driver or pool worker lane)",
    "presim.point": "one pre-simulation (k, b) grid point, end to end",
    "presim.partition": "the partitioning step of one pre-sim point",
    "presim.simulate": "the Time Warp step of one pre-sim point",
    "sweep.cell": "one bench-grid cell (parse, partition, simulate)",
    "tw.load": "stimulus/event loading before the Time Warp main loop",
    "tw.run": "the Time Warp main loop, load to termination",
    "tw.verify": "committed-state verification against the oracle",
    "seq.run": "the sequential reference simulation",
}


#: host-only value names (recorded via
#: :meth:`~repro.obs.recorder.MetricsRecorder.record_host`, exported in
#: the quarantined ``host_timings`` channel).  These are intentionally
#: *not* accepted by :func:`is_registered`: they must never appear in
#: the deterministic counter body, and the test suite pins that.
HOST_VALUE_REGISTRY: dict[str, str] = {
    "part.refine.workers": "refinement worker processes resolved for the run",
    "part.refine.ideal_speedup": "structural speedup bound: tasks / "
                                 "critical-path slots at this worker count",
    "part.refine.utilization": "fraction of worker slots kept busy across "
                               "pair rounds",
    "obs.sampler.peak_rss_kb": "peak resident set size (VmHWM) sampled, kB",
    "obs.sampler.cpu_seconds": "user+system CPU of the process and reaped "
                               "children at the last sample",
    "obs.sampler.children.peak": "peak live worker child processes observed",
    "obs.sampler.samples": "resource-sampler polls taken during the run",
}


#: trace event payload fields per kind — the executable form of the
#: "Trace format" table in ``docs/observability.md``.  The kernel may
#: only emit registered fields and the analyzers
#: (:mod:`repro.obs.analyze`) may only read registered fields; the
#: test suite pins both directions, so emitters, analyzers and docs
#: cannot drift apart.
TRACE_FIELD_REGISTRY: dict[str, dict[str, str]] = {
    "exec": {
        "machine": "host machine id at execution time",
        "lp": "executing LP id",
        "partition": "the LP's static partition (pre-migration)",
        "vt": "virtual time of the executed batch",
        "evals": "gate events the batch processed",
        "sends": "messages the batch emitted",
        "wall": "sender machine modeled wall seconds after the batch",
    },
    "send": {
        "src_machine": "sending machine id",
        "dst_machine": "receiving machine id",
        "src_lp": "sending LP id (-1 = environment stimulus)",
        "dst_lp": "receiving LP id",
        "src_partition": "sender's static partition (-1 = environment)",
        "dst_partition": "receiver's static partition",
        "net": "boundary net the message carries",
        "recv_time": "virtual receive time",
        "sign": "+1 positive message, -1 anti-message",
        "uid": "sender-serial message uid (annihilation key)",
        "local": "1 when src and dst machine coincide",
        "wall": "sender machine modeled wall seconds at send",
    },
    "rollback": {
        "machine": "host machine id of the victim LP",
        "lp": "victim LP id",
        "partition": "victim's static partition",
        "straggler_vt": "receive time of the culprit message",
        "straggler_src": "culprit sender LP (-1 = environment)",
        "src_partition": "culprit sender's static partition",
        "straggler_uid": "culprit message uid (links to its send event)",
        "sign": "+1 straggler, -1 anti-message induced",
        "restored_to": "virtual time of the restored checkpoint",
        "undone": "gate events the rollback undid",
        "antis": "anti-messages the rollback injected",
        "depth": "straggler depth below the LP's local virtual time",
        "wall": "victim machine modeled wall seconds after the rollback",
    },
    "gvt": {
        "round": "GVT round number",
        "gvt": "new GVT estimate (2^62 = everything committed)",
        "checkpoint_bytes": "total checkpoint memory after the sweep",
    },
    "migrate": {
        "lp": "migrated LP id",
        "src_machine": "machine the LP left",
        "dst_machine": "machine the LP joined",
        "forwarded": "queued arrivals re-routed with the LP",
    },
    "throttle": {
        "engaged": "1 when the emergency clamp engaged, 0 on release",
        "gvt": "GVT estimate at the transition",
        "stalled_rounds": "consecutive no-advance rounds observed",
    },
}


def trace_fields(kind: str) -> frozenset[str]:
    """The registered payload fields of one trace event kind."""
    return frozenset(TRACE_FIELD_REGISTRY[kind])


def is_registered(name: str) -> bool:
    """Whether ``name`` is a registered metric, a registered phase's
    ``.calls`` counter, or a registered metric's ``.max`` maximum."""
    if name in METRIC_REGISTRY:
        return True
    if name.endswith(".max") and name[:-4] in METRIC_REGISTRY:
        return True
    if name.endswith(".calls") and name[:-6] in PHASE_REGISTRY:
        return True
    return False
