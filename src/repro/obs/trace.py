"""Bounded, deterministic event tracing for the Time Warp kernel.

A :class:`TraceBuffer` is a ring buffer of structured events the engine
emits at its decision points (batch execution, message routing,
rollbacks, GVT rounds, migrations).  It exists to answer the question
the aggregate counters cannot: *why did this run roll back?*  A dump is
a JSONL stream ordered by emission sequence number, which — because the
kernel itself is deterministic — is bit-identical across runs with the
same inputs.

Determinism contract: events carry only modeled quantities (virtual
times, modeled wall seconds, LP/machine ids, serials) — never host
time.  The buffer is bounded (default 65 536 events); once full, the
oldest events are dropped and ``dropped`` counts them, so tracing a
long run costs bounded memory and the *tail* of the trace — where a
rollback cascade ends — is always retained.

The event vocabulary is documented in ``docs/observability.md`` and
mirrored in :data:`TRACE_EVENT_KINDS`.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

__all__ = ["TraceEvent", "TraceBuffer", "TRACE_EVENT_KINDS"]


#: kind -> one-line meaning (the trace format registry)
TRACE_EVENT_KINDS: dict[str, str] = {
    "exec": "one LP executed one timestamp batch",
    "send": "a message was routed between machines (sign -1 = anti)",
    "rollback": "a straggler or anti-message rolled an LP back",
    "gvt": "one GVT round completed (new estimate + fossil sweep)",
    "migrate": "an LP moved between machines (dynamic load balancing)",
    "throttle": "the GVT-stall emergency throttle engaged or released",
}


@dataclass(frozen=True)
class TraceEvent:
    """One trace record.

    Attributes
    ----------
    seq:
        Emission sequence number (monotone across the run, including
        dropped events — gaps reveal ring-buffer eviction).
    kind:
        One of :data:`TRACE_EVENT_KINDS`.
    fields:
        Kind-specific payload; modeled quantities only.
    """

    seq: int
    kind: str
    fields: dict

    def to_json(self) -> str:
        """Canonical single-line JSON (sorted keys, no whitespace)."""
        doc = {"seq": self.seq, "kind": self.kind, **self.fields}
        return json.dumps(doc, sort_keys=True, separators=(",", ":"))


class TraceBuffer:
    """Bounded ring buffer of :class:`TraceEvent` records.

    Parameters
    ----------
    capacity:
        Maximum retained events; older events are evicted first.

    Pass an instance to :class:`~repro.sim.timewarp.TimeWarpEngine`
    (or ``run_partitioned(..., trace=...)``) to capture a kernel trace;
    ``None`` (the default everywhere) keeps tracing fully disabled at
    zero cost.
    """

    __slots__ = ("capacity", "_events", "_seq", "dropped")

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self._seq = 0
        #: events evicted by the ring bound
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def emit(self, kind: str, **fields) -> None:
        """Append one event (oldest evicted when full)."""
        if kind not in TRACE_EVENT_KINDS:
            raise ValueError(
                f"unknown trace event kind {kind!r}; "
                f"known: {', '.join(sorted(TRACE_EVENT_KINDS))}"
            )
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(TraceEvent(self._seq, kind, fields))
        self._seq += 1

    def events(self, kind: str | None = None) -> list[TraceEvent]:
        """Retained events, optionally filtered by kind."""
        if kind is None:
            return list(self._events)
        return [e for e in self._events if e.kind == kind]

    def to_jsonl(self) -> str:
        """The retained events as a JSONL string (one event per line,
        newline-terminated, canonical key order — byte-identical across
        identical runs and to what :meth:`dump` writes)."""
        return "".join(e.to_json() + "\n" for e in self._events)

    def dump(self, path: str | Path) -> int:
        """Write the JSONL trace to ``path``; returns events written."""
        Path(path).write_text(self.to_jsonl())
        return len(self._events)
