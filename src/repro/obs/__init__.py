"""repro.obs — the unified observability layer.

One subsystem owns every measurement concern of the reproduction:

* :mod:`repro.obs.recorder` — counters, maxima and phase timers behind
  a :class:`Recorder` interface; :data:`NULL_RECORDER` makes all
  instrumentation zero-cost when off.
* :mod:`repro.obs.trace` — a bounded, deterministic event ring buffer
  (:class:`TraceBuffer`) the Time Warp kernel can dump as JSONL to
  debug rollback cascades.
* :mod:`repro.obs.metrics` — schema-versioned JSON metrics documents:
  build (:func:`metrics_document`), validate (:func:`validate_metrics`),
  canonical write/read, and :func:`strip_volatile` for byte-exact
  determinism comparisons.
* :mod:`repro.obs.registry` — the metric-name registry rendered in
  ``docs/observability.md`` and enforced by the test suite.

Design rules (enforced by tests):

1. **Zero cost when off** — every instrumented function defaults to
   :data:`NULL_RECORDER`/no trace; results are bit-identical with
   observability on or off.
2. **Deterministic** — counters, traces and metric JSON carry modeled
   or structural quantities only; ``generated_at`` (and the opt-in
   ``host_timings``) are the sole wall-clock fields, stamped outside
   the deterministic core.

Quickstart::

    from repro.obs import MetricsRecorder, TraceBuffer, metrics_document

    rec, trace = MetricsRecorder(), TraceBuffer()
    report = run_partitioned(..., recorder=rec, trace=trace)
    doc = metrics_document("my_run", kind="run", recorder=rec)
    trace.dump("trace.jsonl")
"""

from .recorder import (
    Recorder,
    NullRecorder,
    MetricsRecorder,
    PhaseStats,
    NULL_RECORDER,
)
from .trace import TraceBuffer, TraceEvent, TRACE_EVENT_KINDS
from .metrics import (
    METRICS_SCHEMA_VERSION,
    MetricsError,
    metrics_document,
    validate_metrics,
    dumps_metrics,
    write_metrics,
    read_metrics,
    strip_volatile,
)
from .registry import METRIC_REGISTRY, PHASE_REGISTRY, is_registered

__all__ = [
    "Recorder",
    "NullRecorder",
    "MetricsRecorder",
    "PhaseStats",
    "NULL_RECORDER",
    "TraceBuffer",
    "TraceEvent",
    "TRACE_EVENT_KINDS",
    "METRICS_SCHEMA_VERSION",
    "MetricsError",
    "metrics_document",
    "validate_metrics",
    "dumps_metrics",
    "write_metrics",
    "read_metrics",
    "strip_volatile",
    "METRIC_REGISTRY",
    "PHASE_REGISTRY",
    "is_registered",
]
