"""repro.obs — the unified observability layer.

One subsystem owns every measurement concern of the reproduction:

* :mod:`repro.obs.recorder` — counters, maxima and phase timers behind
  a :class:`Recorder` interface; :data:`NULL_RECORDER` makes all
  instrumentation zero-cost when off.
* :mod:`repro.obs.trace` — a bounded, deterministic event ring buffer
  (:class:`TraceBuffer`) the Time Warp kernel can dump as JSONL to
  debug rollback cascades.
* :mod:`repro.obs.metrics` — schema-versioned JSON metrics documents:
  build (:func:`metrics_document`), validate (:func:`validate_metrics`),
  canonical write/read, and :func:`strip_volatile` for byte-exact
  determinism comparisons.
* :mod:`repro.obs.registry` — the metric-name and trace-field
  registries rendered in ``docs/observability.md`` and enforced by the
  test suite.
* :mod:`repro.obs.analyze` — trace analyzers: rollback hotspots,
  cascade reconstruction, message-locality matrix, GVT progress.
* :mod:`repro.obs.report` — :func:`analyze_run` packaging every
  analyzer into a deterministic markdown :class:`RunReport`.
* :mod:`repro.obs.diffing` — :func:`diff_metrics` run comparison and
  the CI regression gate (thresholds per registry name).
* :mod:`repro.obs.progress` — :class:`ProgressHeartbeat`, the
  throttled live status line for long Time Warp runs (off by default).
* :mod:`repro.obs.spans` — hierarchical span trees over the phase API
  (:class:`SpanRecorder`) and the worker-telemetry export/merge
  protocol that keeps parallel runs byte-identical to serial ones.
* :mod:`repro.obs.timeline` — Chrome-trace/Perfetto export of a
  document's span tree (``repro obs timeline``), one track per lane.
* :mod:`repro.obs.sampler` — :class:`ResourceSampler`, a background
  ``/proc`` poller (peak RSS, CPU, children) whose values land in the
  quarantined host channel only.

Design rules (enforced by tests):

1. **Zero cost when off** — every instrumented function defaults to
   :data:`NULL_RECORDER`/no trace; results are bit-identical with
   observability on or off.
2. **Deterministic** — counters, traces and metric JSON carry modeled
   or structural quantities only; ``generated_at`` (and the opt-in
   ``host_timings``) are the sole wall-clock fields, stamped outside
   the deterministic core.

Quickstart::

    from repro.obs import MetricsRecorder, TraceBuffer, metrics_document

    rec, trace = MetricsRecorder(), TraceBuffer()
    report = run_partitioned(..., recorder=rec, trace=trace)
    doc = metrics_document("my_run", kind="run", recorder=rec)
    trace.dump("trace.jsonl")
"""

from .recorder import (
    Recorder,
    NullRecorder,
    MetricsRecorder,
    PhaseStats,
    NULL_RECORDER,
)
from .trace import TraceBuffer, TraceEvent, TRACE_EVENT_KINDS
from .metrics import (
    METRICS_SCHEMA_VERSION,
    VOLATILE_FIELDS,
    MetricsError,
    metrics_document,
    validate_metrics,
    dumps_metrics,
    write_metrics,
    read_metrics,
    strip_volatile,
    counters_view,
    metrics_equal,
)
from .registry import (
    METRIC_REGISTRY,
    PHASE_REGISTRY,
    HOST_VALUE_REGISTRY,
    TRACE_FIELD_REGISTRY,
    is_registered,
    trace_fields,
)
from .spans import (
    Span,
    SpanRecorder,
    worker_lane,
    worker_telemetry,
    export_telemetry,
    merge_telemetry,
    validate_spans,
    span_depths,
)
from .timeline import chrome_trace, write_chrome_trace
from .sampler import ResourceSampler
from .analyze import (
    GVT_DONE,
    REFERENCED_METRICS,
    Cascade,
    GvtProgress,
    Hotspot,
    LocalityMatrix,
    StallInterval,
    TraceError,
    gvt_progress,
    load_trace,
    message_locality,
    parse_trace,
    reconstruct_cascades,
    rollback_hotspots,
)
from .report import RunReport, analyze_run
from .diffing import (
    DEFAULT_THRESHOLD,
    DEFAULT_THRESHOLDS,
    HIGHER_IS_BETTER,
    NEUTRAL_METRICS,
    DiffResult,
    MetricDelta,
    diff_metrics,
    gate_directories,
)
from .progress import ProgressHeartbeat

__all__ = [
    "Recorder",
    "NullRecorder",
    "MetricsRecorder",
    "PhaseStats",
    "NULL_RECORDER",
    "TraceBuffer",
    "TraceEvent",
    "TRACE_EVENT_KINDS",
    "METRICS_SCHEMA_VERSION",
    "VOLATILE_FIELDS",
    "MetricsError",
    "metrics_document",
    "validate_metrics",
    "dumps_metrics",
    "write_metrics",
    "read_metrics",
    "strip_volatile",
    "counters_view",
    "metrics_equal",
    "METRIC_REGISTRY",
    "PHASE_REGISTRY",
    "HOST_VALUE_REGISTRY",
    "TRACE_FIELD_REGISTRY",
    "is_registered",
    "trace_fields",
    # spans / timeline / sampler
    "Span",
    "SpanRecorder",
    "worker_lane",
    "worker_telemetry",
    "export_telemetry",
    "merge_telemetry",
    "validate_spans",
    "span_depths",
    "chrome_trace",
    "write_chrome_trace",
    "ResourceSampler",
    # analysis
    "GVT_DONE",
    "REFERENCED_METRICS",
    "TraceError",
    "load_trace",
    "parse_trace",
    "Hotspot",
    "rollback_hotspots",
    "Cascade",
    "reconstruct_cascades",
    "LocalityMatrix",
    "message_locality",
    "StallInterval",
    "GvtProgress",
    "gvt_progress",
    "RunReport",
    "analyze_run",
    # diffing / regression gate
    "DEFAULT_THRESHOLD",
    "DEFAULT_THRESHOLDS",
    "HIGHER_IS_BETTER",
    "NEUTRAL_METRICS",
    "MetricDelta",
    "DiffResult",
    "diff_metrics",
    "gate_directories",
    # progress
    "ProgressHeartbeat",
]
