"""Hierarchical spans and cross-process worker telemetry.

PR 1's :class:`~repro.obs.recorder.MetricsRecorder` keeps *flat* phase
totals — enough for "how long did refinement take" but blind to
structure (which phase contained which) and to the worker processes the
repo now fans work out to (`repro.core.parallel_refine` pair tasks,
`repro.core.presim` grid cells, `repro.bench.parallel` sweep shards).
This module adds both without touching the flat contract:

* :class:`SpanRecorder` — a drop-in :class:`MetricsRecorder` subclass
  whose :meth:`~SpanRecorder.phase` context manager *additionally*
  maintains a span tree: every phase entry opens a :class:`Span` whose
  parent is the innermost open span, so nested ``recorder.phase()``
  calls become parent links.  Flat phase totals, counters and maxima
  behave exactly as before — existing callers see no difference.
* :func:`worker_telemetry` / :func:`export_telemetry` /
  :func:`merge_telemetry` — the cross-process protocol: a pool task
  creates a mini-recorder on its own lane, instruments its work, and
  returns :func:`export_telemetry`'s plain-dict payload with its
  result; the driver folds payloads back with :func:`merge_telemetry`
  **in deterministic task-index order**, re-basing span ids and
  attaching worker roots under the driver's innermost open span.
* :func:`validate_spans` — the span-tree invariants (ids strictly
  increasing, parents resolve to earlier spans, child intervals inside
  their parent within a clock-skew tolerance) enforced by
  ``repro obs selfcheck`` and the test suite.

Determinism contract
--------------------
Span *structure* — names, parent links, per-name counts — is purely a
function of the instrumented control flow, so the merged telemetry of a
parallel run is structurally identical at any worker count (the same
per-task mini-recorder is created whether a task runs in-process or in
a pool worker).  Span *timestamps* are host wall clock
(:func:`time.time`, comparable across processes on one host) and live
in the volatile ``spans`` channel of a metrics document, which
:func:`repro.obs.metrics.strip_volatile` removes — so the canonical
dump stays byte-identical across worker counts while the timeline
exporter (:mod:`repro.obs.timeline`) still gets real per-lane timings.
"""

from __future__ import annotations

import multiprocessing
import re
import time
from dataclasses import dataclass

from ..errors import MetricsError
from .recorder import MetricsRecorder, Recorder

__all__ = [
    "Span",
    "SpanRecorder",
    "worker_lane",
    "worker_telemetry",
    "export_telemetry",
    "merge_telemetry",
    "validate_spans",
    "span_depths",
]

#: default tolerance (seconds) for cross-process interval containment —
#: workers stamp spans with their own ``time.time()`` calls, so parent
#: and child clocks can disagree by scheduler-quantum noise
DEFAULT_SKEW_TOLERANCE = 0.010


@dataclass
class Span:
    """One bracketed interval of the span tree.

    ``sid`` is the open-order index (list position in the recorder),
    ``parent`` the sid of the enclosing span (``None`` for roots),
    ``lane`` the process lane that executed it (``"main"`` for the
    driver, ``"worker-N"`` for pool processes), and ``t0``/``t1`` are
    host wall-clock seconds (``t1`` is ``None`` while the span is
    open).
    """

    sid: int
    parent: int | None
    name: str
    lane: str
    t0: float
    t1: float | None = None

    def to_row(self) -> dict:
        """The metrics-document ``spans`` entry (scalar dict)."""
        return {"sid": self.sid, "parent": self.parent, "name": self.name,
                "lane": self.lane, "t0": self.t0, "t1": self.t1}


class _SpanPhase:
    """Phase context that opens/closes a span and keeps the flat
    accounting of the plain :class:`MetricsRecorder` phase."""

    __slots__ = ("_recorder", "_name", "_t0", "_span")

    def __init__(self, recorder: "SpanRecorder", name: str) -> None:
        self._recorder = recorder
        self._name = name
        self._t0 = 0.0
        self._span: Span | None = None

    def __enter__(self):
        rec = self._recorder
        self._t0 = rec._clock()
        self._span = rec._open_span(self._name)
        return self

    def __exit__(self, *exc):
        rec = self._recorder
        rec._close_span(self._span)
        rec.absorb_phase(self._name, 1, rec._clock() - self._t0)
        return False


class SpanRecorder(MetricsRecorder):
    """A :class:`MetricsRecorder` that also builds a span tree.

    Parameters
    ----------
    clock:
        Seconds source for the flat ``host_seconds`` phase totals
        (defaults to :func:`time.perf_counter`, as before).
    span_clock:
        Seconds source for span timestamps.  Defaults to
        :func:`time.time` — an epoch clock shared by every process on
        the host, so driver and worker spans land on one comparable
        timeline.  Tests inject fake clocks for exact trees.
    lane:
        This recorder's lane label; the driver uses ``"main"``, pool
        tasks use :func:`worker_lane`.
    """

    __slots__ = ("spans", "lane", "_stack", "_span_clock")

    def __init__(self, clock=time.perf_counter, span_clock=time.time,
                 lane: str = "main") -> None:
        super().__init__(clock=clock)
        #: every span ever opened, in open order (sid == list index)
        self.spans: list[Span] = []
        self.lane = lane
        self._stack: list[Span] = []
        self._span_clock = span_clock

    # -- span mechanics ---------------------------------------------------

    def phase(self, name: str) -> _SpanPhase:
        return _SpanPhase(self, name)

    def _open_span(self, name: str) -> Span:
        parent = self._stack[-1].sid if self._stack else None
        span = Span(sid=len(self.spans), parent=parent, name=name,
                    lane=self.lane, t0=self._span_clock())
        self.spans.append(span)
        self._stack.append(span)
        return span

    def _close_span(self, span: Span) -> None:
        span.t1 = self._span_clock()
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        else:  # pragma: no cover - phases are context managers, so
            # mismatched exits only happen on generator abuse
            self._stack = [s for s in self._stack if s is not span]

    @property
    def current_span(self) -> Span | None:
        """The innermost open span (merge-attachment point)."""
        return self._stack[-1] if self._stack else None

    def adopt_spans(self, rows: list[dict]) -> None:
        """Graft exported span rows (a worker payload's) into this
        tree: ids are re-based to fresh sids in row order and worker
        roots become children of the innermost open span, so the merged
        tree has no orphans.  Caller guarantees deterministic call
        order (task-index order)."""
        attach = self.current_span.sid if self._stack else None
        remap: dict[int, int] = {}
        for row in rows:
            old = row["sid"]
            parent = row["parent"]
            span = Span(
                sid=len(self.spans),
                parent=remap[parent] if parent is not None else attach,
                name=row["name"],
                lane=row["lane"],
                t0=row["t0"],
                t1=row["t1"],
            )
            self.spans.append(span)
            remap[old] = span.sid

    # -- export -----------------------------------------------------------

    def span_rows(self) -> list[dict]:
        """Completed spans as metrics-document rows (open spans are
        skipped — at export time, after the instrumented run, every
        span should be closed)."""
        closed = {s.sid for s in self.spans if s.t1 is not None}
        return [s.to_row() for s in self.spans
                if s.t1 is not None
                and (s.parent is None or s.parent in closed)]

    def as_counters(self) -> dict[str, int | float]:
        """Flat deterministic view, extended with the structural span
        quantities ``obs.span.count`` (completed spans, driver + merged
        worker lanes) and ``obs.span.depth.max`` (deepest nesting) —
        both functions of control flow only, identical at any worker
        count."""
        out = super().as_counters()
        rows = self.span_rows()
        if rows:
            out["obs.span.count"] = len(rows)
            out["obs.span.depth.max"] = max(span_depths(rows).values())
        return dict(sorted(out.items()))


def worker_lane() -> str:
    """The current process's lane label.

    The driver process reports ``"main"``; pool workers map their
    multiprocessing process name (``ForkProcess-3``,
    ``SpawnProcess-12``) to a stable ``worker-N`` label — one lane per
    worker process, the timeline exporter's track key.
    """
    proc = multiprocessing.current_process()
    if proc.name == "MainProcess":
        return "main"
    match = re.search(r"(\d+)$", proc.name)
    return f"worker-{match.group(1)}" if match else proc.name


def worker_telemetry(lane: str | None = None) -> SpanRecorder:
    """A mini-recorder for one pool task (lane defaults to
    :func:`worker_lane`)."""
    return SpanRecorder(lane=lane if lane is not None else worker_lane())


def export_telemetry(recorder: SpanRecorder) -> dict:
    """Flatten a mini-recorder into a plain picklable payload that
    rides back with the task result.

    Shape::

        {"counters": {...}, "maxima": {...},
         "phases": {name: [calls, host_seconds]},
         "spans": [{"sid": ..., "parent": ..., ...}, ...]}
    """
    return {
        "counters": dict(recorder.counters),
        "maxima": dict(recorder.maxima),
        "phases": {name: [stats.calls, stats.host_seconds]
                   for name, stats in recorder.phases.items()},
        "spans": recorder.span_rows(),
    }


def merge_telemetry(recorder: Recorder, payload: dict | None) -> None:
    """Fold one task's exported payload into the driver's recorder.

    Counters and phase call counts sum, maxima take the running max —
    so totals equal what a serial in-process run records — and spans
    are grafted under the driver's innermost open span (span-capable
    recorders only; a plain :class:`MetricsRecorder` merges the flat
    channels and drops the tree).  Callers must invoke this in
    task-index order: that order is what makes the merged document
    byte-identical at any worker count.
    """
    if payload is None or not recorder.enabled:
        return
    for name, value in payload.get("counters", {}).items():
        recorder.incr(name, value)
    for name, value in payload.get("maxima", {}).items():
        recorder.observe_max(name, value)
    if isinstance(recorder, MetricsRecorder):
        for name, (calls, host_seconds) in payload.get("phases", {}).items():
            recorder.absorb_phase(name, calls, host_seconds)
    if isinstance(recorder, SpanRecorder):
        recorder.adopt_spans(payload.get("spans", []))


def span_depths(rows: list[dict]) -> dict[int, int]:
    """Nesting depth per sid (roots at 1); assumes parents precede
    children, as :func:`validate_spans` enforces."""
    depths: dict[int, int] = {}
    for row in rows:
        parent = row["parent"]
        depths[row["sid"]] = 1 if parent is None else depths[parent] + 1
    return depths


def validate_spans(rows: list[dict], *,
                   tolerance: float = DEFAULT_SKEW_TOLERANCE) -> list[dict]:
    """Check the span-tree invariants; returns ``rows`` on success.

    * sids strictly increase (open order is list order);
    * every parent resolves to an *earlier* span — no orphans, no
      cycles, children open after their parents;
    * intervals are well-formed (``t1 >= t0``) and each child interval
      lies inside its parent's within ``tolerance`` seconds (worker
      clocks are the host's epoch clock, but independent ``time.time``
      calls can disagree by scheduler noise).

    Raises :class:`~repro.errors.MetricsError` naming the first
    offending span.
    """
    last_sid = -1
    by_sid: dict[int, dict] = {}
    for i, row in enumerate(rows):
        sid = row.get("sid")
        if not isinstance(sid, int) or sid <= last_sid:
            raise MetricsError(
                f"span[{i}]: sid {sid!r} does not increase past {last_sid}")
        last_sid = sid
        parent = row.get("parent")
        if parent is not None and parent not in by_sid:
            raise MetricsError(
                f"span[{i}] (sid {sid}): orphan — parent {parent!r} is not "
                f"an earlier span")
        t0, t1 = row.get("t0"), row.get("t1")
        if not isinstance(t0, (int, float)) or not isinstance(t1, (int, float)):
            raise MetricsError(
                f"span[{i}] (sid {sid}): t0/t1 must be numbers, "
                f"got {t0!r}/{t1!r}")
        if t1 < t0:
            raise MetricsError(
                f"span[{i}] (sid {sid}): t1 {t1} precedes t0 {t0}")
        if parent is not None:
            pt = by_sid[parent]
            if t0 < pt["t0"] - tolerance or t1 > pt["t1"] + tolerance:
                raise MetricsError(
                    f"span[{i}] (sid {sid}, {row.get('name')!r}): interval "
                    f"[{t0}, {t1}] escapes parent {parent} "
                    f"[{pt['t0']}, {pt['t1']}] beyond tolerance {tolerance}")
        by_sid[sid] = row
    return rows
