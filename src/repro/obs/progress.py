"""Throttled live progress heartbeat for long Time Warp runs.

A :class:`ProgressHeartbeat` is the interactive counterpart of the
:class:`~repro.obs.recorder.Recorder` family: instrumented code calls
it unconditionally cheap (one ``None`` check in the engine), it decides
on its own whether anything is printed, and — like every observability
hook — attaching one never changes simulation results, because it only
*reads* the kernel's counters.

The engine calls :meth:`update` once per GVT round with modeled
quantities (GVT estimate, processed events, rollbacks, modeled wall
seconds).  The heartbeat throttles output by *host* time so a fast run
prints at most one line and a long run prints roughly one line per
``min_interval`` seconds; host time is confined to the display side and
never flows back into the simulation, preserving the determinism
contract of ``docs/observability.md``.

Off by default everywhere: ``TimeWarpEngine(..., progress=None)`` and
``repro psim`` without ``--progress`` stay silent.
"""

from __future__ import annotations

import sys
import time

__all__ = ["ProgressHeartbeat"]


class ProgressHeartbeat:
    """Print a throttled one-line simulation status per GVT round.

    Parameters
    ----------
    stream:
        Where lines go; defaults to ``sys.stderr`` so heartbeats never
        mix into machine-readable stdout.
    min_interval:
        Minimum host seconds between lines (default 1.0).  ``0`` prints
        on every update — useful in tests.
    clock:
        Host clock used only for throttling and the events/sec rate;
        defaults to :func:`time.perf_counter`.  Tests inject a fake.
    """

    def __init__(self, stream=None, min_interval: float = 1.0,
                 clock=time.perf_counter) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self.min_interval = float(min_interval)
        self._clock = clock
        self._last_host: float | None = None
        self._last_processed = 0
        #: lines printed (tests assert throttling with this)
        self.lines = 0

    def update(self, *, gvt: int, rounds: int, processed: int,
               rollbacks: int, wall: float) -> None:
        """Record one GVT-round snapshot; prints when due."""
        now = self._clock()
        if self._last_host is not None:
            elapsed = now - self._last_host
            if elapsed < self.min_interval:
                return
            rate = (processed - self._last_processed) / elapsed if elapsed > 0 else 0.0
        else:
            rate = 0.0
        rollback_pct = 100.0 * rollbacks / processed if processed else 0.0
        gvt_str = "done" if gvt >= (1 << 62) else str(gvt)
        self._stream.write(
            f"tw: gvt={gvt_str} round={rounds} events={processed} "
            f"({rate:,.0f} ev/s) rollbacks={rollbacks} "
            f"({rollback_pct:.1f}%) wall={wall:.4f}s\n"
        )
        flush = getattr(self._stream, "flush", None)
        if flush is not None:
            flush()
        self.lines += 1
        self._last_host = now
        self._last_processed = processed

    def close(self) -> None:
        """Finish the heartbeat (no-op placeholder for symmetry with
        stream-owning callers; kept so CLI code reads naturally)."""
