"""Schema-versioned metrics documents: the JSON read/write side.

Every machine-readable result this repository produces — bench outputs
(``benchmarks/out/BENCH_<name>.json``), CLI ``--metrics`` dumps, sweep
exports — is one *metrics document*: a plain JSON object validated by
:func:`validate_metrics` against schema version
:data:`METRICS_SCHEMA_VERSION`.  The schema is documented for humans in
``docs/observability.md``; this module is its executable form (no
external jsonschema dependency).

Document shape (version 1)::

    {
      "schema_version": 1,
      "name":         "table3_presim",          # required, non-empty
      "kind":         "bench",                  # bench | run | partition | sweep | custom
      "generated_at": "2026-08-06T12:00:00Z",   # or null; the ONLY
                                                #   non-deterministic field
      "params":   {"circuit": "viterbi-single", "seed": 1},   # scalars
      "counters": {"tw.rollbacks": 12, "part.cut_size": 77},  # numbers
      "rows":   [{"k": 2, "b": 7.5, "cut": 33}, ...],         # optional
      "series": {"b=2.5": [1, 2, 3], ...},                    # optional
      "host_timings": {"partition.fm": 0.8}                   # optional,
                                                #   excluded by default
    }

Determinism: with the same inputs and seed, every field except
``generated_at`` (and the opt-in ``host_timings``) must be identical
run to run; :func:`strip_volatile` removes exactly those two so tests
and the freshness gate can compare documents byte-for-byte after
:func:`dumps_metrics` (canonical form: sorted keys, two-space indent,
trailing newline).
"""

from __future__ import annotations

import json
from pathlib import Path

from ..errors import MetricsError
from .recorder import MetricsRecorder

__all__ = [
    "METRICS_SCHEMA_VERSION",
    "VOLATILE_FIELDS",
    "metrics_document",
    "validate_metrics",
    "dumps_metrics",
    "write_metrics",
    "read_metrics",
    "strip_volatile",
    "counters_view",
    "metrics_equal",
]

#: current metrics document schema version (bump on breaking change)
METRICS_SCHEMA_VERSION = 1

#: the host-dependent fields excluded from every cross-run comparison:
#: ``generated_at`` is a wall-clock stamp, ``host_timings`` holds host
#: wall seconds, and ``spans`` carries wall-clock span intervals (the
#: timeline channel) — all differ between identical runs.  Anything
#: comparing documents (``strip_volatile``, ``metrics_equal``,
#: ``repro.obs.diffing``) must go through this list, never hard-code it.
#: Span *structure* stays comparable through the deterministic
#: ``obs.span.count`` / ``obs.span.depth.max`` counters.
VOLATILE_FIELDS = ("generated_at", "host_timings", "spans")

_SCALAR = (str, int, float, bool, type(None))
_KINDS = ("bench", "run", "partition", "sweep", "custom")


def metrics_document(
    name: str,
    *,
    kind: str = "bench",
    params: dict | None = None,
    counters: dict | None = None,
    rows: list[dict] | None = None,
    series: dict[str, list] | None = None,
    recorder: MetricsRecorder | None = None,
    generated_at: str | None = None,
    include_host_timings: bool = False,
) -> dict:
    """Assemble and validate one metrics document.

    Parameters
    ----------
    name:
        Document name; benches use their output stem (the JSON lands in
        ``BENCH_<name>.json``).
    kind:
        One of ``bench``, ``run``, ``partition``, ``sweep``, ``custom``.
    params:
        Input parameters that determine the result (circuit, seed, k,
        b, ...) — scalar values only.
    counters:
        Deterministic named numbers; merged over ``recorder``'s view
        when both are given (explicit counters win).
    rows / series:
        Optional tabular / figure payloads.
    recorder:
        A :class:`~repro.obs.recorder.MetricsRecorder` whose counters,
        maxima and phase call counts are folded into ``counters`` (and,
        when ``include_host_timings``, its host wall times into
        ``host_timings``).  A span-capable recorder
        (:class:`~repro.obs.spans.SpanRecorder`) additionally
        contributes its completed span tree as the volatile ``spans``
        field — the :mod:`repro.obs.timeline` exporter's input.
    generated_at:
        Timestamp string stamped by the caller *outside* the
        deterministic core; ``None`` omits wall-clock provenance.

    Returns the validated document (a plain dict, ready for
    :func:`write_metrics`).
    """
    merged: dict[str, int | float] = {}
    if recorder is not None:
        merged.update(recorder.as_counters())
    if counters:
        merged.update(counters)
    doc: dict = {
        "schema_version": METRICS_SCHEMA_VERSION,
        "name": name,
        "kind": kind,
        "generated_at": generated_at,
        "params": dict(sorted((params or {}).items())),
        "counters": dict(sorted(merged.items())),
    }
    if rows is not None:
        doc["rows"] = rows
    if series is not None:
        doc["series"] = {k: list(v) for k, v in sorted(series.items())}
    if include_host_timings and recorder is not None:
        doc["host_timings"] = recorder.host_timings()
    span_rows = getattr(recorder, "span_rows", None)
    if span_rows is not None:
        spans = span_rows()
        if spans:
            doc["spans"] = spans
    validate_metrics(doc)
    return doc


def _fail(path: str, message: str) -> None:
    raise MetricsError(f"invalid metrics document at {path}: {message}")


def validate_metrics(doc: object) -> dict:
    """Validate a metrics document; returns it on success.

    Raises :class:`~repro.errors.MetricsError` with a field path on the
    first violation — the error message is the debugging surface, so it
    always names what was found.
    """
    if not isinstance(doc, dict):
        _fail("$", f"expected an object, got {type(doc).__name__}")
    version = doc.get("schema_version")
    if version != METRICS_SCHEMA_VERSION:
        _fail("$.schema_version",
              f"expected {METRICS_SCHEMA_VERSION}, got {version!r}")
    name = doc.get("name")
    if not isinstance(name, str) or not name:
        _fail("$.name", f"expected a non-empty string, got {name!r}")
    kind = doc.get("kind")
    if kind not in _KINDS:
        _fail("$.kind", f"expected one of {_KINDS}, got {kind!r}")
    if "generated_at" not in doc:
        _fail("$.generated_at", "missing (use null when not stamped)")
    gen = doc["generated_at"]
    if gen is not None and not isinstance(gen, str):
        _fail("$.generated_at", f"expected string or null, got {gen!r}")
    params = doc.get("params")
    if not isinstance(params, dict):
        _fail("$.params", f"expected an object, got {type(params).__name__}")
    for k, v in params.items():
        if not isinstance(v, _SCALAR):
            _fail(f"$.params.{k}", f"expected a scalar, got {type(v).__name__}")
    counters = doc.get("counters")
    if not isinstance(counters, dict):
        _fail("$.counters", f"expected an object, got {type(counters).__name__}")
    for k, v in counters.items():
        if isinstance(v, bool) or not isinstance(v, (int, float)):
            _fail(f"$.counters.{k}",
                  f"expected a number, got {type(v).__name__}")
    if "rows" in doc:
        rows = doc["rows"]
        if not isinstance(rows, list):
            _fail("$.rows", f"expected a list, got {type(rows).__name__}")
        for i, row in enumerate(rows):
            if not isinstance(row, dict):
                _fail(f"$.rows[{i}]",
                      f"expected an object, got {type(row).__name__}")
            for k, v in row.items():
                if not isinstance(v, _SCALAR):
                    _fail(f"$.rows[{i}].{k}",
                          f"expected a scalar, got {type(v).__name__}")
    if "series" in doc:
        series = doc["series"]
        if not isinstance(series, dict):
            _fail("$.series", f"expected an object, got {type(series).__name__}")
        for k, vs in series.items():
            if not isinstance(vs, list):
                _fail(f"$.series.{k}",
                      f"expected a list, got {type(vs).__name__}")
            for i, v in enumerate(vs):
                if isinstance(v, bool) or not isinstance(v, (int, float)):
                    _fail(f"$.series.{k}[{i}]",
                          f"expected a number, got {type(v).__name__}")
    if "host_timings" in doc:
        timings = doc["host_timings"]
        if not isinstance(timings, dict):
            _fail("$.host_timings",
                  f"expected an object, got {type(timings).__name__}")
        for k, v in timings.items():
            if isinstance(v, bool) or not isinstance(v, (int, float)):
                _fail(f"$.host_timings.{k}",
                      f"expected a number, got {type(v).__name__}")
    if "spans" in doc:
        spans = doc["spans"]
        if not isinstance(spans, list):
            _fail("$.spans", f"expected a list, got {type(spans).__name__}")
        span_keys = {"sid", "parent", "name", "lane", "t0", "t1"}
        for i, span in enumerate(spans):
            if not isinstance(span, dict):
                _fail(f"$.spans[{i}]",
                      f"expected an object, got {type(span).__name__}")
            if set(span) != span_keys:
                _fail(f"$.spans[{i}]",
                      f"expected exactly keys {sorted(span_keys)}, "
                      f"got {sorted(span)}")
            if not isinstance(span["sid"], int) or isinstance(span["sid"], bool):
                _fail(f"$.spans[{i}].sid",
                      f"expected an int, got {span['sid']!r}")
            parent = span["parent"]
            if parent is not None and (
                    not isinstance(parent, int) or isinstance(parent, bool)):
                _fail(f"$.spans[{i}].parent",
                      f"expected an int or null, got {parent!r}")
            for key in ("name", "lane"):
                if not isinstance(span[key], str) or not span[key]:
                    _fail(f"$.spans[{i}].{key}",
                          f"expected a non-empty string, got {span[key]!r}")
            for key in ("t0", "t1"):
                v = span[key]
                if isinstance(v, bool) or not isinstance(v, (int, float)):
                    _fail(f"$.spans[{i}].{key}",
                          f"expected a number, got {v!r}")
    known = {"schema_version", "name", "kind", "generated_at", "params",
             "counters", "rows", "series", "host_timings", "spans"}
    extra = set(doc) - known
    if extra:
        _fail("$", f"unknown fields {sorted(extra)}")
    return doc


def dumps_metrics(doc: dict) -> str:
    """Canonical serialization: validated, sorted keys, two-space
    indent, trailing newline — byte-identical for identical documents."""
    validate_metrics(doc)
    return json.dumps(doc, sort_keys=True, indent=2) + "\n"


def write_metrics(path: str | Path, doc: dict) -> Path:
    """Validate ``doc`` and write it canonically to ``path``."""
    path = Path(path)
    path.write_text(dumps_metrics(doc))
    return path


def read_metrics(path: str | Path) -> dict:
    """Load and validate a metrics document from ``path``."""
    try:
        doc = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise MetricsError(f"{path} is not valid JSON: {exc}") from exc
    return validate_metrics(doc)


def strip_volatile(doc: dict) -> dict:
    """Copy of ``doc`` with its non-deterministic fields neutralized:
    every :data:`VOLATILE_FIELDS` entry removed, then ``generated_at``
    normalized to null (the key stays so the result still validates).
    This is the form determinism tests, the freshness gate and the
    regression gate (:mod:`repro.obs.diffing`) compare."""
    out = {k: v for k, v in doc.items() if k not in VOLATILE_FIELDS}
    out["generated_at"] = None
    return out


def counters_view(doc: dict) -> dict[str, int | float]:
    """Diff-safe accessor: the document's counters as a fresh plain
    dict, independent of the document object and guaranteed free of
    volatile content (counters never hold host quantities by schema
    rule; this accessor is the single read path the regression gate
    uses, so that guarantee is enforced in one place)."""
    counters = doc.get("counters")
    if not isinstance(counters, dict):
        raise MetricsError(
            f"invalid metrics document at $.counters: expected an object, "
            f"got {type(counters).__name__}"
        )
    return dict(counters)


def metrics_equal(a: dict, b: dict) -> bool:
    """Whether two documents are equal for cross-run purposes — i.e.
    byte-identical after :func:`strip_volatile` + :func:`dumps_metrics`
    (so ``host_timings`` and ``generated_at`` never break equality)."""
    return dumps_metrics(strip_volatile(a)) == dumps_metrics(strip_volatile(b))
