"""Run comparison and the regression gate.

Two schema-v1 metrics documents (:mod:`repro.obs.metrics`) with the
same params describe the same experiment; because every counter is
deterministic, *any* difference between them is a behavioural change.
:func:`diff_metrics` computes per-metric relative deltas and classifies
each as an improvement, a regression, or neutral, using the badness
direction tables below; :class:`DiffResult` renders a deterministic
report and a machine-readable verdict so CI can fail on, e.g., a >10 %
``tw.rollbacks`` or ``part.cut_size`` regression
(``repro obs diff --fail-on-regression``, or
``benchmarks/make_experiments_md.py --check --baseline DIR``).

Direction tables: most registered counters are *work* or *overhead*
(rollbacks, messages, cut size, wall time) — more is worse.
:data:`HIGHER_IS_BETTER` lists the exceptions (speedup, balance,
passed checks); :data:`NEUTRAL_METRICS` lists quantities fixed by the
workload or purely descriptive (committed events, row counts), which
are reported but never gate.  Every name in these tables must exist in
:mod:`repro.obs.registry` — the test suite enforces it.

Volatile fields (``generated_at``, ``host_timings``) never participate:
both documents pass through
:func:`repro.obs.metrics.strip_volatile` first, so two runs of the
same code always diff empty (the ``diff_metrics(x, x) == []``
property the tests pin).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from ..errors import MetricsError
from .metrics import counters_view, read_metrics, strip_volatile

__all__ = [
    "HIGHER_IS_BETTER",
    "NEUTRAL_METRICS",
    "DEFAULT_THRESHOLD",
    "DEFAULT_THRESHOLDS",
    "MetricDelta",
    "DiffResult",
    "diff_metrics",
    "gate_directories",
]

#: registered metrics where a larger value is the *good* direction
HIGHER_IS_BETTER = frozenset({
    "tw.speedup",
    "part.balanced",
    "bench.shape_checks_passed",
    "bench.runs_saved",
    "part.fm.gain",
    "part.ml.uncoarsen_gain",
})

#: registered metrics fixed by the workload or purely descriptive —
#: reported when they change (a changed workload is worth seeing) but
#: never counted as regressions
NEUTRAL_METRICS = frozenset({
    "bench.rows",
    "bench.brute_force_runs",
    "bench.heuristic_runs",
    "seq.gate_evals",
    "seq.wall_time",
    "tw.committed_events",
    "tw.env_messages",
    "part.cone.cones",
    "part.cone.roots",
    "part.cone.orphan_vertices",
    # partition-core instrumentation: counts of work *done by* the
    # vectorized bookkeeping — descriptive throughput quantities, not
    # quality signals; deterministic for a fixed seed so they diff
    # byte-for-byte but never gate
    "part.core.lambda_hits",
    "part.core.gain_batches",
    "part.core.gain_batch_vertices",
    "part.core.boundary_batches",
    # multilevel hierarchy shape: fixed by the workload + config, not
    # quality signals (part.ml.initial_cut / level_cut / refine_rounds
    # stay directional and gate normally)
    "part.ml.levels",
    "part.ml.coarse_vertices",
    "part.ml.matched_pairs",
    "part.ml.match_weight",
    "part.ml.reduction",
    "part.ml.initial_candidates",
})

#: default relative-delta gate: a directional metric moving more than
#: this fraction in its bad direction is a regression
DEFAULT_THRESHOLD = 0.10

#: per-name threshold overrides (looser gates for noisy quantities);
#: names must be registered
DEFAULT_THRESHOLDS: dict[str, float] = {
    # checkpoint memory tracks peak footprint — spiky under small
    # scheduling shifts, gate loosely
    "tw.peak_checkpoint_bytes": 0.25,
    # straggler depth is a maximum, inherently jumpy
    "tw.straggler_depth.max": 0.50,
}


@dataclass(frozen=True)
class MetricDelta:
    """One changed counter.

    ``rel_delta`` is ``(new - old) / |old|``, or ``None`` when the old
    value is zero (any appearance from zero in the bad direction
    regresses regardless of threshold).  ``direction`` is ``"better"``,
    ``"worse"`` or ``"neutral"``; ``regressed`` is ``direction ==
    "worse"`` past the metric's threshold.
    """

    name: str
    old: float
    new: float
    abs_delta: float
    rel_delta: float | None
    direction: str
    threshold: float
    regressed: bool

    def describe(self) -> str:
        """One deterministic report line."""
        rel = f"{self.rel_delta:+.1%}" if self.rel_delta is not None else "new!=0"
        flag = {"worse": "REGRESSED" if self.regressed else "worse",
                "better": "better", "neutral": "neutral"}[self.direction]
        return (f"{self.name}: {_fmt(self.old)} -> {_fmt(self.new)} "
                f"({rel}, {flag})")


def _fmt(v: float) -> str:
    return f"{v:g}"


@dataclass(frozen=True)
class DiffResult:
    """Everything :func:`diff_metrics` found.

    ``deltas`` holds only *changed* counters; identical documents give
    an empty tuple.  ``added``/``removed`` are counters present in only
    one document; ``param_changes`` lists params that differ — when
    non-empty, the two documents describe different experiments and the
    deltas should be read with that in mind.
    """

    old_name: str
    new_name: str
    deltas: tuple[MetricDelta, ...]
    added: tuple[str, ...]
    removed: tuple[str, ...]
    param_changes: tuple[str, ...]

    @property
    def regressions(self) -> tuple[MetricDelta, ...]:
        return tuple(d for d in self.deltas if d.regressed)

    @property
    def has_regressions(self) -> bool:
        return bool(self.regressions)

    @property
    def improvements(self) -> tuple[MetricDelta, ...]:
        return tuple(d for d in self.deltas if d.direction == "better")

    def verdict(self) -> dict:
        """Machine-readable summary (JSON-serializable) for CI."""
        return {
            "old": self.old_name,
            "new": self.new_name,
            "changed": len(self.deltas),
            "added": list(self.added),
            "removed": list(self.removed),
            "param_changes": list(self.param_changes),
            "regressions": [d.name for d in self.regressions],
            "improvements": [d.name for d in self.improvements],
            "ok": not self.has_regressions,
        }

    def render(self) -> str:
        """Deterministic plain-text report."""
        lines = [f"metrics diff: {self.old_name} -> {self.new_name}"]
        if self.param_changes:
            lines.append("  params differ: " + ", ".join(self.param_changes)
                         + " (comparing different experiments?)")
        if not self.deltas and not self.added and not self.removed:
            lines.append("  no deltas: documents are identical "
                         "(modulo volatile fields)")
            return "\n".join(lines) + "\n"
        for d in self.deltas:
            lines.append("  " + d.describe())
        for name in self.added:
            lines.append(f"  {name}: (absent) -> present")
        for name in self.removed:
            lines.append(f"  {name}: present -> (absent)")
        n_reg = len(self.regressions)
        lines.append(f"  {len(self.deltas)} changed, {n_reg} regression"
                     + ("" if n_reg == 1 else "s"))
        return "\n".join(lines) + "\n"


def diff_metrics(
    old: dict,
    new: dict,
    *,
    thresholds: dict[str, float] | None = None,
    default_threshold: float = DEFAULT_THRESHOLD,
) -> DiffResult:
    """Compare two metrics documents counter by counter.

    Parameters
    ----------
    old / new:
        Validated schema-v1 documents (volatile fields are stripped
        here, callers need not bother).
    thresholds:
        Per-name relative-threshold overrides, layered over
        :data:`DEFAULT_THRESHOLDS` then :data:`DEFAULT_THRESHOLD`.
    """
    old = strip_volatile(old)
    new = strip_volatile(new)
    merged_thresholds = dict(DEFAULT_THRESHOLDS)
    if thresholds:
        merged_thresholds.update(thresholds)
    old_c = counters_view(old)
    new_c = counters_view(new)
    deltas: list[MetricDelta] = []
    for name in sorted(set(old_c) & set(new_c)):
        o, n = old_c[name], new_c[name]
        if o == n:
            continue
        abs_delta = n - o
        rel = abs_delta / abs(o) if o != 0 else None
        if name in NEUTRAL_METRICS:
            direction = "neutral"
        elif (n > o) != (name in HIGHER_IS_BETTER):
            direction = "worse"
        else:
            direction = "better"
        threshold = merged_thresholds.get(name, default_threshold)
        regressed = direction == "worse" and (
            rel is None or abs(rel) > threshold
        )
        deltas.append(MetricDelta(
            name=name, old=o, new=n, abs_delta=abs_delta, rel_delta=rel,
            direction=direction, threshold=threshold, regressed=regressed,
        ))
    params_old = old.get("params", {})
    params_new = new.get("params", {})
    param_changes = tuple(sorted(
        k for k in set(params_old) | set(params_new)
        if params_old.get(k) != params_new.get(k)
    ))
    return DiffResult(
        old_name=old.get("name", "?"),
        new_name=new.get("name", "?"),
        deltas=tuple(deltas),
        added=tuple(sorted(set(new_c) - set(old_c))),
        removed=tuple(sorted(set(old_c) - set(new_c))),
        param_changes=param_changes,
    )


def gate_directories(
    baseline_dir: str | Path,
    current_dir: str | Path,
    *,
    pattern: str = "BENCH_*.json",
    thresholds: dict[str, float] | None = None,
    default_threshold: float = DEFAULT_THRESHOLD,
) -> tuple[list[str], bool]:
    """Regression-gate every metrics document in ``current_dir`` against
    its same-named baseline in ``baseline_dir``.

    Returns ``(messages, ok)``: one message per regressed metric,
    invalid document, or document missing a baseline counterpart
    (missing baselines are reported but do not fail the gate — new
    benchmarks are not regressions).  ``ok`` is False iff any metric
    regressed or a document failed validation.
    """
    baseline_dir, current_dir = Path(baseline_dir), Path(current_dir)
    messages: list[str] = []
    ok = True
    for cur_path in sorted(current_dir.glob(pattern)):
        base_path = baseline_dir / cur_path.name
        if not base_path.exists():
            messages.append(f"{cur_path.name}: no baseline (new benchmark?)")
            continue
        try:
            base = read_metrics(base_path)
            cur = read_metrics(cur_path)
        except MetricsError as exc:
            messages.append(str(exc))
            ok = False
            continue
        result = diff_metrics(base, cur, thresholds=thresholds,
                              default_threshold=default_threshold)
        for d in result.regressions:
            messages.append(f"{cur_path.name}: {d.describe()}")
            ok = False
    return messages, ok
