"""Run reports: a trace + metrics document rendered as a diagnosis.

:func:`analyze_run` drives every analyzer in :mod:`repro.obs.analyze`
over one run's artifacts (the JSONL trace and, optionally, its metrics
document) and packages the results as a :class:`RunReport`, whose
:meth:`~RunReport.render` produces a deterministic markdown report:
identical inputs give byte-identical text, so a report can itself be
golden-tested or diffed between runs.

The report speaks the registry's language — every quantity it names is
a ``docs/observability.md`` metric (``tw.rollbacks``,
``part.cut_size``, ...) or trace field, so a reader can jump from any
line of the report to the definition of what it measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .analyze import (
    Cascade,
    GvtProgress,
    Hotspot,
    LocalityMatrix,
    gvt_progress,
    message_locality,
    reconstruct_cascades,
    rollback_hotspots,
    trace_dropped,
)
from .metrics import counters_view, strip_volatile

__all__ = ["RunReport", "analyze_run"]

#: counters surfaced in the report's summary table, in render order
_SUMMARY_COUNTERS = (
    "tw.processed_events",
    "tw.committed_events",
    "tw.rollbacks",
    "tw.rolled_back_events",
    "tw.messages_sent",
    "tw.anti_messages_sent",
    "tw.gvt_rounds",
    "tw.straggler_depth.max",
    "tw.wall_time",
    "tw.speedup",
    "part.cut_size",
    "obs.trace.dropped",
)


@dataclass
class RunReport:
    """Everything :func:`analyze_run` derived from one run.

    ``commit_efficiency`` is committed over processed events (1.0 means
    no work was ever rolled back); ``None`` when no metrics document
    was supplied and the trace alone cannot recover totals (a bounded
    ring may have evicted early events).
    """

    name: str
    params: dict
    counters: dict
    trace_events: int
    hotspots: list[Hotspot] = field(default_factory=list)
    cascades: list[Cascade] = field(default_factory=list)
    locality: LocalityMatrix | None = None
    gvt: GvtProgress | None = None
    commit_efficiency: float | None = None
    #: events the bounded ring evicted before the dump — from the
    #: metrics document's ``obs.trace.dropped`` counter when available,
    #: else inferred from the first surviving sequence number
    trace_dropped: int = 0

    def render(self) -> str:
        """Deterministic markdown report (byte-identical for identical
        inputs)."""
        lines = [f"# Run report: {self.name}", ""]
        if self.params:
            lines.append("params: " + ", ".join(
                f"{k}={v}" for k, v in sorted(self.params.items())) )
            lines.append("")
        lines.append(f"trace events analyzed: {self.trace_events}")
        if self.trace_dropped:
            lines.append("")
            lines.append(
                f"**WARNING: trace truncated** — the bounded ring evicted "
                f"{self.trace_dropped} oldest event(s) "
                f"(`obs.trace.dropped`); trace-derived tables below "
                f"undercount the run's start (raise `--trace-capacity`)")
        lines.append("")

        if self.counters:
            lines += ["## Counters", "", "| metric | value |", "|---|---|"]
            for name in _SUMMARY_COUNTERS:
                if name in self.counters:
                    lines.append(f"| `{name}` | {self.counters[name]:g} |")
            lines.append("")
        if self.commit_efficiency is not None:
            lines.append(f"commit efficiency (`tw.committed_events` / "
                         f"`tw.processed_events`): "
                         f"{self.commit_efficiency:.4f}")
            lines.append("")

        lines.append("## Rollback hotspots")
        lines.append("")
        if self.hotspots:
            lines += ["| lp | partition | rollbacks | share | undone | "
                      "antis | max depth |",
                      "|---|---|---|---|---|---|---|"]
            for h in self.hotspots:
                lines.append(
                    f"| {h.lp} | {h.partition} | {h.rollbacks} | "
                    f"{h.share:.1%} | {h.undone} | {h.antis} | "
                    f"{h.max_depth} |")
        else:
            lines.append("no rollbacks in trace (`tw.rollbacks` "
                         "territory is clean)")
        lines.append("")

        lines.append("## Rollback cascades")
        lines.append("")
        if self.cascades:
            lines += ["| root seq | culprit lp | culprit partition | depth "
                      "| width | size | lps |",
                      "|---|---|---|---|---|---|---|"]
            for c in self.cascades:
                lps = ",".join(str(lp) for lp in c.lps)
                lines.append(
                    f"| {c.root_seq} | {c.culprit_lp} | "
                    f"{c.culprit_partition} | {c.depth} | {c.width} | "
                    f"{c.size} | {lps} |")
        else:
            lines.append("no cascades reconstructed")
        lines.append("")

        lines.append("## Message locality (positive messages, "
                     "by partition)")
        lines.append("")
        loc = self.locality
        if loc is not None and loc.k > 0:
            header = "| src \\ dst | " + " | ".join(
                str(j) for j in range(loc.k)) + " |"
            lines += [header, "|---" * (loc.k + 1) + "|"]
            for i, row in enumerate(loc.counts):
                lines.append(f"| {i} | " + " | ".join(
                    str(v) for v in row) + " |")
            lines.append("")
            lines.append(
                f"local {loc.local_messages} / total {loc.total_messages} "
                f"({loc.local_fraction:.1%} local), "
                f"{loc.remote_messages} remote "
                f"(`tw.messages_sent` territory; compare against the "
                f"partitioner's `part.cut_size`), "
                f"{loc.anti_messages} antis")
        else:
            lines.append("no inter-LP messages in trace")
        lines.append("")

        lines.append("## GVT progress")
        lines.append("")
        g = self.gvt
        if g is not None and g.rounds:
            done = "yes" if g.completed else "no"
            lines.append(
                f"rounds {g.rounds} (`tw.gvt_rounds`), first GVT "
                f"{g.first_gvt}, final {g.final_gvt}, completed {done}, "
                f"advance rate {g.advance_rate:.3f} ticks/round")
            if g.stalls:
                lines.append("")
                lines.append("stall windows (no GVT advance):")
                for s in g.stalls:
                    lines.append(
                        f"- rounds {s.start_round}-{s.end_round} "
                        f"({s.rounds} stalled) at gvt={s.gvt}")
            else:
                lines.append("no stall windows")
        else:
            lines.append("no gvt events in trace")
        lines.append("")
        return "\n".join(lines)


def analyze_run(
    events: list[dict],
    metrics: dict | None = None,
    *,
    top: int = 5,
) -> RunReport:
    """Run every analyzer over one run's trace (and optional metrics).

    Parameters
    ----------
    events:
        Parsed trace events (:func:`repro.obs.analyze.load_trace`).
    metrics:
        The run's metrics document, for totals the bounded trace cannot
        carry (volatile fields are ignored here, so reports are
        byte-identical across re-runs).
    top:
        Hotspot ranking length.
    """
    name = "trace"
    params: dict = {}
    counters: dict = {}
    commit_efficiency = None
    dropped = trace_dropped(events)
    if metrics is not None:
        doc = strip_volatile(metrics)
        name = doc.get("name", name)
        params = dict(doc.get("params", {}))
        counters = counters_view(doc)
        processed = counters.get("tw.processed_events")
        committed = counters.get("tw.committed_events")
        if processed:
            commit_efficiency = committed / processed if committed is not None else None
        # the counter is authoritative when the run recorded it — the
        # seq-gap inference only covers metrics-less traces
        if "obs.trace.dropped" in counters:
            dropped = int(counters["obs.trace.dropped"])
    return RunReport(
        name=name,
        params=params,
        counters=counters,
        trace_events=len(events),
        hotspots=rollback_hotspots(events, top=top),
        cascades=reconstruct_cascades(events),
        locality=message_locality(events),
        gvt=gvt_progress(events),
        commit_efficiency=commit_efficiency,
        trace_dropped=dropped,
    )
