"""Background resource sampler: peak RSS, CPU seconds, child count.

Long psim/partition/sweep runs fork worker pools and build large CSR
arrays; the ROADMAP's million-gate ladder needs peak-RSS-per-rung
gating.  :class:`ResourceSampler` polls ``/proc/self/status`` (with a
:mod:`resource`-module fallback off Linux) on a daemon thread while the
instrumented work runs, then deposits its aggregates into a recorder's
**host-value channel** via
:meth:`~repro.obs.recorder.MetricsRecorder.record_host` — so sampled
values land in the quarantined ``host_timings`` export and can never
contaminate the deterministic counter body (the same rule phase wall
seconds follow).

Sampled names (registered in
:data:`repro.obs.registry.HOST_VALUE_REGISTRY`):

* ``obs.sampler.peak_rss_kb`` — peak resident set (VmHWM) in kB;
* ``obs.sampler.cpu_seconds`` — user+system CPU of this process and
  its reaped children;
* ``obs.sampler.children.peak`` — peak live multiprocessing children
  observed (worker pools);
* ``obs.sampler.samples`` — poll count (sampling coverage indicator).

Usage::

    with ResourceSampler() as sampler:
        ... run the work ...
    sampler.record_into(recorder)   # -> host_timings channel
"""

from __future__ import annotations

import multiprocessing
import os
import threading

__all__ = ["ResourceSampler"]

_PROC_STATUS = "/proc/self/status"


def _read_rss_kb() -> float:
    """Current peak RSS in kB — VmHWM from /proc, else getrusage."""
    try:
        with open(_PROC_STATUS) as fh:
            for line in fh:
                if line.startswith("VmHWM:"):
                    return float(line.split()[1])
    except OSError:
        pass
    try:  # pragma: no cover - non-Linux fallback
        import resource
        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # ru_maxrss is kB on Linux, bytes on macOS
        return float(peak) / (1024.0 if os.uname().sysname == "Darwin" else 1.0)
    except Exception:  # pragma: no cover
        return 0.0


def _read_cpu_seconds() -> float:
    """User+system CPU seconds of this process and reaped children."""
    t = os.times()
    return t.user + t.system + t.children_user + t.children_system


class ResourceSampler:
    """Poll host resource usage on a background daemon thread.

    Parameters
    ----------
    interval:
        Seconds between polls (default 50 ms — coarse enough to be
        invisible in profiles, fine enough to catch worker-pool spikes).

    Use as a context manager (or ``start()``/``stop()``).  Aggregates
    are maxima/latest values, so a sampler that never got a chance to
    poll (very short work) still reports one final sample taken at
    ``stop()``.
    """

    def __init__(self, interval: float = 0.05) -> None:
        self.interval = float(interval)
        self.peak_rss_kb = 0.0
        self.cpu_seconds = 0.0
        self.peak_children = 0
        self.samples = 0
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle --------------------------------------------------------

    def _sample_once(self) -> None:
        self.peak_rss_kb = max(self.peak_rss_kb, _read_rss_kb())
        self.cpu_seconds = max(self.cpu_seconds, _read_cpu_seconds())
        self.peak_children = max(self.peak_children,
                                 len(multiprocessing.active_children()))
        self.samples += 1

    def _run(self) -> None:
        while not self._stop_event.wait(self.interval):
            self._sample_once()

    def start(self) -> "ResourceSampler":
        if self._thread is not None:
            raise RuntimeError("ResourceSampler already started")
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-resource-sampler", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> "ResourceSampler":
        if self._thread is not None:
            self._stop_event.set()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._sample_once()  # guarantee at least one sample
        return self

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False

    # -- export -----------------------------------------------------------

    def as_host_values(self) -> dict[str, float]:
        """The sampled aggregates under their registered host names."""
        return {
            "obs.sampler.peak_rss_kb": self.peak_rss_kb,
            "obs.sampler.cpu_seconds": self.cpu_seconds,
            "obs.sampler.children.peak": float(self.peak_children),
            "obs.sampler.samples": float(self.samples),
        }

    def record_into(self, recorder) -> None:
        """Deposit aggregates into ``recorder``'s host-value channel
        (no-op for the null recorder)."""
        record = getattr(recorder, "record_host", None)
        if record is None:
            return
        for name, value in self.as_host_values().items():
            record(name, value)
