"""Simulation-substrate speed study: vectorized kernel vs pre-PR path.

The fast simulation substrate (docs/performance.md, "Simulation
kernel") claims a large host-wall win with **bit-identical** results.
This module keeps the complete pre-optimization simulation stack
runnable — the NumPy-scalar fold-table gate evaluator, the dict-backed
:class:`LegacyClusterLP` (per-gate ``eval_gate_coded`` over a
``_net_loc`` dict, dict ``pending_out`` last-sent filter, dict-sized
checkpoint accounting) and the lazy ready-heap scheduler of
:class:`LegacyTimeWarpEngine` — so the speedup is measured against the
real old code, not a strawman, exactly like
:class:`repro.bench.partition_speed.LegacyPartitionState` does for the
partition core.

``sim_speed_study`` runs the same pre-simulation (k, b) sweep through
both stacks over one shared set of partitions and asserts every
structural quantity (committed events, messages, rollbacks, modeled
walls, chosen best) is identical before reporting the wall ratio; the
shared sha256 ``digest`` over the canonical per-point rows is the
golden hash the tests pin.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import time
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from ..circuits import circuit_source, random_vectors
from ..core.multiway import design_driven_partition
from ..errors import SimulationError
from ..sim.cluster import ClusterSpec, TimeWarpConfig
from ..sim.compiled import CompiledCircuit, compile_circuit
from ..sim.engine import run_partitioned, run_sequential_baseline
from ..sim.events import Message
from ..sim.logic import GATE_CODES
from ..sim.sequential import SequentialSimulator, SeqStats, _dff_next
from ..sim.timewarp import TimeWarpEngine
from ..verilog import compile_verilog

__all__ = [
    "LegacyClusterLP",
    "LegacySequentialSimulator",
    "LegacyTimeWarpEngine",
    "SimSweepStats",
    "run_sim_sweep",
    "sim_speed_study",
    "smoke_sim_study",
]

_DFF = GATE_CODES["dff"]

# -- pre-PR gate evaluation -------------------------------------------------
#
# The old eval_gate_coded folded through NumPy 3x3 tables with scalar
# indexing per input — reproduced verbatim (the current one folds
# through plain tuples and batches through eval_gates_batch).

_V0, _V1, _VX = 0, 1, 2


def _and2(a: int, b: int) -> int:
    if a == _V0 or b == _V0:
        return _V0
    if a == _VX or b == _VX:
        return _VX
    return _V1


def _or2(a: int, b: int) -> int:
    if a == _V1 or b == _V1:
        return _V1
    if a == _VX or b == _VX:
        return _VX
    return _V0


def _xor2(a: int, b: int) -> int:
    if a == _VX or b == _VX:
        return _VX
    return a ^ b


_NOT = (_V1, _V0, _VX)
_AND_T = np.array([[_and2(a, b) for b in range(3)] for a in range(3)], dtype=np.int8)
_OR_T = np.array([[_or2(a, b) for b in range(3)] for a in range(3)], dtype=np.int8)
_XOR_T = np.array([[_xor2(a, b) for b in range(3)] for a in range(3)], dtype=np.int8)
_LEGACY_FOLDS = {
    GATE_CODES["and"]: (_AND_T, False),
    GATE_CODES["nand"]: (_AND_T, True),
    GATE_CODES["or"]: (_OR_T, False),
    GATE_CODES["nor"]: (_OR_T, True),
    GATE_CODES["xor"]: (_XOR_T, False),
    GATE_CODES["xnor"]: (_XOR_T, True),
}


def legacy_eval_gate_coded(code: int, values) -> int:
    """The pre-PR combinational gate evaluator (NumPy scalar folds)."""
    if code == 6:  # buf
        return values[0]
    if code == 7:  # not
        return _NOT[values[0]]
    table, inv = _LEGACY_FOLDS[code]
    acc = values[0]
    for v in values[1:]:
        acc = int(table[acc, v])
    return _NOT[acc] if inv else acc


# -- pre-PR sequential simulator --------------------------------------------


class LegacySequentialSimulator(SequentialSimulator):
    """The pre-PR sequential hot loop: NumPy scalar reads per pin, one
    ``eval_gate_coded`` call per gate, no batching and no list mirrors.
    State layout is inherited, only :meth:`run` is the old code."""

    def run(self, until: int | None = None) -> SeqStats:
        values = self.values
        circuit = self.circuit
        stats = self.stats
        activity = stats.activity
        while self._heap:
            t = self._heap[0]
            if until is not None and t >= until:
                break
            heapq.heappop(self._heap)
            changes = self._agenda.pop(t)
            self.now = t
            old: dict[int, int] = {}
            affected: dict[int, None] = {}
            for net, value in changes.items():
                cur = int(values[net])
                if cur == value:
                    continue
                old[net] = cur
                values[net] = value
                stats.net_events += 1
                for gid in circuit.net_sinks[net]:
                    affected[gid] = None
            if not old:
                continue
            if self.record_changes:
                for net in old:
                    self.change_log.append((t, net, int(values[net])))
            stats.end_time = t
            for gid in affected:
                stats.gate_evals += 1
                if activity is not None:
                    activity[gid] += 1
                code = int(circuit.gate_code[gid])
                pins = circuit.gate_inputs[gid]
                out_net = int(circuit.gate_output[gid])
                if code < _DFF:
                    new = legacy_eval_gate_coded(
                        code, [int(values[p]) for p in pins]
                    )
                    self.schedule(t + 1, out_net, new)
                else:
                    q = _dff_next(code, pins, values, old, int(values[out_net]))
                    if q is not None:
                        self.schedule(t + 1, out_net, q)
            for observer in self.observers:
                observer(t)
        return stats


# -- pre-PR cluster LP ------------------------------------------------------


class _LegacyCheckpoint:
    __slots__ = ("vt", "values", "agenda", "heap", "pending_out")

    def __init__(self, vt, values, agenda, heap, pending_out) -> None:
        self.vt = vt
        self.values = values
        self.agenda = agenda
        self.heap = heap
        self.pending_out = pending_out

    def nbytes(self) -> int:
        return (
            self.values.nbytes
            + 32 * sum(len(s) + 1 for s in self.agenda.values())
            + 8 * len(self.heap)
            + 32 * len(self.pending_out)
        )


def _msg_sort_key(m: Message) -> tuple[int, int, int]:
    return (m.recv_time, m.src_lp, m.uid)


def _send_key(m: Message) -> tuple[int, int, int]:
    return (m.send_time, m.net, m.dst_lp)


class LegacyClusterLP:
    """Verbatim pre-PR cluster LP: ``_net_loc`` dict lookups and a
    Python list comprehension per gate in the hot loop, a dict-backed
    ``pending_out`` last-sent filter, dict-entry checkpoint accounting,
    and ``next_pending_vt`` derived on every call (no cache)."""

    def __init__(
        self,
        lid: int,
        circuit: CompiledCircuit,
        gate_ids: Sequence[int],
        checkpoint_interval: int = 8,
        lazy: bool = True,
        name: str | None = None,
        record_changes: bool = False,
    ) -> None:
        self.lid = lid
        self.name = name or f"lp{lid}"
        self.circuit = circuit
        self.gate_ids = tuple(sorted(gate_ids))
        self.checkpoint_interval = checkpoint_interval
        self.lazy = lazy

        local_nets: set[int] = set()
        for gid in self.gate_ids:
            local_nets.update(circuit.gate_inputs[gid])
            local_nets.add(int(circuit.gate_output[gid]))
        self._net_list = sorted(local_nets)
        self._net_loc = {n: i for i, n in enumerate(self._net_list)}

        sinks: list[list[int]] = [[] for _ in self._net_list]
        for gid in self.gate_ids:
            for n in circuit.gate_inputs[gid]:
                sinks[self._net_loc[n]].append(gid)
        self._local_sinks = tuple(tuple(s) for s in sinks)

        self.out_dests: dict[int, tuple[int, ...]] = {}
        self.values = circuit.initial_values[self._net_list].copy()
        self._agenda: dict[int, dict[int, int]] = {}
        self._heap: list[int] = []
        self._pending_out: dict[int, int] = {}
        self.lvt = -1
        self._in_msgs: list[Message] = []
        self._in_keys: list[tuple[int, int, int]] = []
        self._next_idx = 0
        self._out_log: list[Message] = []
        self._batch_log: list[tuple[int, int]] = []
        self.record_changes = record_changes
        self._change_log: list[tuple[int, int, int]] = []
        self._checkpoints: list[_LegacyCheckpoint] = []
        self._batches_since_ckpt = 0
        self._uid = 0
        self._unconfirmed: dict[tuple[int, int, int], Message] = {}
        self._deferred_antis: list[Message] = []
        self._orphan_antis: dict[tuple[int, int], Message] = {}
        self._save_checkpoint()

    def local_value(self, net: int) -> int:
        return int(self.values[self._net_loc[net]])

    def has_net(self, net: int) -> bool:
        return net in self._net_loc

    def next_pending_vt(self) -> int | None:
        t_int: int | None = self._heap[0] if self._heap else None
        t_in: int | None = (
            self._in_msgs[self._next_idx].recv_time
            if self._next_idx < len(self._in_msgs)
            else None
        )
        if t_int is None:
            return t_in
        if t_in is None:
            return t_int
        return min(t_int, t_in)

    def checkpoint_bytes(self) -> int:
        return sum(c.nbytes() for c in self._checkpoints)

    def min_unconfirmed_recv_time(self) -> int | None:
        times = [m.recv_time for m in self._unconfirmed.values()]
        times.extend(m.recv_time for m in self._deferred_antis)
        return min(times) if times else None

    def insert_positive(self, msg: Message):
        orphan = self._orphan_antis.pop((msg.uid, msg.src_lp), None)
        if orphan is not None:
            return None
        rollback = None
        if msg.recv_time <= self.lvt:
            rollback = self._rollback_to(msg.recv_time)
        self._insort(msg)
        return rollback

    def insert_anti(self, msg: Message):
        rollback = None
        if msg.recv_time <= self.lvt:
            rollback = self._rollback_to(msg.recv_time)
        idx = self._find_twin(msg)
        if idx is None:
            self._orphan_antis[(msg.uid, msg.src_lp)] = msg
            return rollback
        del self._in_msgs[idx]
        del self._in_keys[idx]
        if idx < self._next_idx:  # pragma: no cover - defensive
            self._next_idx -= 1
        return rollback

    def _insort(self, msg: Message) -> None:
        key = _msg_sort_key(msg)
        idx = bisect_right(self._in_keys, key)
        self._in_msgs.insert(idx, msg)
        self._in_keys.insert(idx, key)
        if idx < self._next_idx:  # pragma: no cover - defensive
            raise SimulationError(f"{self.name}: insert into processed region")

    def _find_twin(self, anti: Message) -> int | None:
        key = _msg_sort_key(anti)
        lo = bisect_left(self._in_keys, key)
        if lo < len(self._in_msgs):
            twin = self._in_msgs[lo]
            if (
                twin.uid == anti.uid
                and twin.src_lp == anti.src_lp
                and twin.recv_time == anti.recv_time
                and twin.sign == 1
            ):
                return lo
        return None

    def execute_batch(self):
        from ..sim.lp import BatchResult

        T = self.next_pending_vt()
        if T is None:
            raise SimulationError(f"{self.name}: execute_batch with no work")
        if T <= self.lvt:  # pragma: no cover - defensive
            raise SimulationError(f"{self.name}: batch not after lvt")
        changes: dict[int, int] = {}
        if self._heap and self._heap[0] == T:
            heapq.heappop(self._heap)
            changes.update(self._agenda.pop(T))
        while (
            self._next_idx < len(self._in_msgs)
            and self._in_msgs[self._next_idx].recv_time == T
        ):
            msg = self._in_msgs[self._next_idx]
            changes[self._net_loc[msg.net]] = msg.value
            self._next_idx += 1

        values = self.values
        circuit = self.circuit
        old: dict[int, int] = {}
        affected: dict[int, None] = {}
        for loc, value in changes.items():
            cur = int(values[loc])
            if cur == value:
                continue
            old[self._net_list[loc]] = cur
            values[loc] = value
            if self.record_changes:
                self._change_log.append((T, self._net_list[loc], value))
            for gid in self._local_sinks[loc]:
                affected[gid] = None

        sends: list[Message] = []
        n_evals = 0
        if old:
            view = _LegacyLPValueView(values, self._net_loc)
            for gid in affected:
                n_evals += 1
                code = int(circuit.gate_code[gid])
                pins = circuit.gate_inputs[gid]
                out_net = int(circuit.gate_output[gid])
                if code < _DFF:
                    new = legacy_eval_gate_coded(
                        code, [int(values[self._net_loc[p]]) for p in pins]
                    )
                else:
                    out_loc = self._net_loc[out_net]
                    q = _dff_next(code, pins, view, old, int(values[out_loc]))
                    if q is None:
                        continue
                    new = q
                self._schedule(T + 1, out_net, new)
                dests = self.out_dests.get(out_net)
                if dests and new != self._pending_out.get(
                    out_net, int(circuit.initial_values[out_net])
                ):
                    self._pending_out[out_net] = new
                    for dst in dests:
                        msg = self._emit(T, T + 1, out_net, new, dst)
                        if msg is not None:
                            sends.append(msg)
        self.lvt = T
        self._batch_log.append((T, n_evals))
        self._out_log.extend(sends)
        self._batches_since_ckpt += 1
        if self._batches_since_ckpt >= self.checkpoint_interval:
            self._save_checkpoint()
        return BatchResult(T, n_evals, sends)

    def _emit(self, send_time, recv_time, net, value, dst):
        prev = self._unconfirmed.pop((send_time, net, dst), None)
        if prev is not None:
            if prev.value == value:
                self._out_log.append(prev)
                return None
            self._deferred_antis.append(prev.anti())
        msg = Message(
            recv_time=recv_time,
            net=net,
            value=value,
            src_lp=self.lid,
            dst_lp=dst,
            send_time=send_time,
            uid=self._uid,
        )
        self._uid += 1
        return msg

    def flush_unconfirmed(self, before_vt: int | None = None) -> list[Message]:
        out: list[Message] = []
        if self._unconfirmed:
            keep: dict[tuple[int, int, int], Message] = {}
            for key, msg in self._unconfirmed.items():
                if before_vt is None or msg.send_time < before_vt:
                    out.append(msg.anti())
                else:
                    keep[key] = msg
            self._unconfirmed = keep
        if self._deferred_antis:
            out.extend(self._deferred_antis)
            self._deferred_antis = []
        return out

    def _schedule(self, time: int, net: int, value: int) -> None:
        slot = self._agenda.get(time)
        if slot is None:
            slot = {}
            self._agenda[time] = slot
            heapq.heappush(self._heap, time)
        slot[self._net_loc[net]] = value

    def _save_checkpoint(self) -> None:
        self._checkpoints.append(
            _LegacyCheckpoint(
                self.lvt,
                self.values.copy(),
                {t: dict(s) for t, s in self._agenda.items()},
                list(self._heap),
                dict(self._pending_out),
            )
        )
        self._batches_since_ckpt = 0

    def _rollback_to(self, straggler_vt: int):
        from ..sim.lp import RollbackResult

        cp = None
        while self._checkpoints:
            cand = self._checkpoints[-1]
            if cand.vt < straggler_vt:
                cp = cand
                break
            self._checkpoints.pop()
        if cp is None:  # pragma: no cover - fossil collection keeps one
            raise SimulationError(f"{self.name}: no checkpoint")
        self.values = cp.values.copy()
        self._agenda = {t: dict(s) for t, s in cp.agenda.items()}
        self._heap = list(cp.heap)
        self._pending_out = dict(cp.pending_out)
        self.lvt = cp.vt
        self._batches_since_ckpt = 0
        self._next_idx = bisect_right(self._in_keys, (cp.vt, 1 << 62, 1 << 62))

        antis: list[Message] = []
        keep: list[Message] = []
        for msg in self._out_log:
            if msg.send_time <= cp.vt:
                keep.append(msg)
            elif self.lazy or msg.send_time < straggler_vt:
                self._unconfirmed[_send_key(msg)] = msg
            else:
                antis.append(msg.anti())
        self._out_log = keep

        undone = 0
        while self._batch_log and self._batch_log[-1][0] > cp.vt:
            undone += self._batch_log.pop()[1]
        if self.record_changes:
            while self._change_log and self._change_log[-1][0] > cp.vt:
                self._change_log.pop()
        return RollbackResult(antis, undone, cp.vt)

    def fossil_collect(self, gvt: int) -> None:
        keep_from = 0
        for i, cp in enumerate(self._checkpoints):
            if cp.vt < gvt:
                keep_from = i
        if keep_from > 0:
            del self._checkpoints[:keep_from]
        floor = self._checkpoints[0].vt
        cut = bisect_right(self._in_keys, (floor, 1 << 62, 1 << 62))
        cut = min(cut, self._next_idx)
        if cut:
            del self._in_msgs[:cut]
            del self._in_keys[:cut]
            self._next_idx -= cut
        self._out_log = [m for m in self._out_log if m.send_time > floor]
        self._batch_log = [b for b in self._batch_log if b[0] > floor]


class _LegacyLPValueView:
    __slots__ = ("_values", "_loc")

    def __init__(self, values: np.ndarray, loc: dict[int, int]) -> None:
        self._values = values
        self._loc = loc

    def __getitem__(self, net: int) -> int:
        return int(self._values[self._loc[net]])


# -- pre-PR engine scheduling -----------------------------------------------


class LegacyTimeWarpEngine(TimeWarpEngine):
    """The pre-PR engine scheduler: per-machine lazy ready-heaps whose
    stale (next_vt, lid) entries are validated against
    ``next_pending_vt()`` on every pop, plus the lazy global ready-heap
    of conservative mode.  Only the scheduling methods differ; the main
    loop, delivery, GVT and cost model are inherited."""

    lp_class = LegacyClusterLP

    def _has_ready_work(self, m) -> bool:
        while m.ready:
            vt, lid = m.ready[0]
            if self.lp_machine[lid] != m.mid:
                heapq.heappop(m.ready)
                continue
            actual = self.lps[lid].next_pending_vt()
            if actual is None or actual != vt:
                heapq.heappop(m.ready)
                if actual is not None:
                    heapq.heappush(m.ready, (actual, lid))
                continue
            return self._eligible(vt)
        return False

    def _refresh_ready(self, m) -> None:
        for lid in m.lp_ids:
            vt = self.lps[lid].next_pending_vt()
            if vt is not None:
                heapq.heappush(m.ready, (vt, lid))
                if self._conservative:
                    heapq.heappush(self._global_ready, (vt, lid))

    def _pop_ready_lp(self, m) -> int | None:
        while m.ready:
            vt, lid = m.ready[0]
            if self.lp_machine[lid] != m.mid:
                heapq.heappop(m.ready)
                continue
            actual = self.lps[lid].next_pending_vt()
            if actual is None:
                heapq.heappop(m.ready)
                continue
            if actual != vt:
                heapq.heappop(m.ready)
                heapq.heappush(m.ready, (actual, lid))
                continue
            if not self._eligible(vt):
                return None
            heapq.heappop(m.ready)
            return lid
        return None

    def _mark_ready(self, lp) -> None:
        vt = lp.next_pending_vt()
        if vt is not None:
            m = self.machines[self.lp_machine[lp.lid]]
            heapq.heappush(m.ready, (vt, lp.lid))
            if self._conservative:
                heapq.heappush(self._global_ready, (vt, lp.lid))

    def _global_ready_min(self) -> int | None:
        heap = self._global_ready
        while heap:
            vt, lid = heap[0]
            actual = self.lps[lid].next_pending_vt()
            if actual is None or actual != vt:
                heapq.heappop(heap)
                if actual is not None:
                    heapq.heappush(heap, (actual, lid))
                continue
            return vt
        return None


# -- the speed study --------------------------------------------------------


@dataclass
class SimSweepStats:
    """Structural outcome of one pre-simulation (k, b) sweep plus its
    host wall.  Everything except ``host_seconds`` (and the kernel
    counters, which only the vectorized path increments) is
    deterministic and must be identical across implementations —
    :func:`sim_speed_study` asserts it; ``digest`` is the golden hash
    over the canonical per-point rows."""

    impl: str
    best_k: int
    best_b: float
    committed_events: int
    processed_events: int
    messages: int
    anti_messages: int
    rollbacks: int
    rolled_back_events: int
    seq_gate_evals: int
    points: list[dict] = field(default_factory=list)
    digest: str = ""
    host_seconds: float = 0.0
    kernel_batches: int = 0
    kernel_batch_gates: int = 0
    kernel_scalar_gates: int = 0


def run_sim_sweep(
    impl: str = "vectorized",
    circuit_name: str = "viterbi-single",
    vectors: int = 40,
    ks: Sequence[int] = (2, 3, 4),
    bs: Sequence[float] = (7.5, 12.5),
    seed: int = 1,
    gvt_interval: int = 64,
) -> SimSweepStats:
    """One pre-simulation sweep through the chosen simulation stack.

    The candidate partitions are computed up front (the partitioner is
    shared and outside this study's scope) and only the simulation —
    sequential baseline plus one Time Warp run per (k, b) — is timed.
    """
    if impl == "vectorized":
        engine_cls, seq_cls = TimeWarpEngine, SequentialSimulator
    elif impl == "legacy":
        engine_cls, seq_cls = LegacyTimeWarpEngine, LegacySequentialSimulator
    else:
        raise ValueError(f"unknown impl {impl!r}")
    netlist = compile_verilog(circuit_source(circuit_name))
    events = random_vectors(netlist, vectors, seed=seed)
    combos = [(k, b) for k in ks for b in bs]
    partitions = [
        design_driven_partition(netlist, k, b, seed=seed) for k, b in combos
    ]
    circuit = compile_circuit(netlist)
    config = TimeWarpConfig(gvt_interval=gvt_interval)
    base_spec = ClusterSpec(num_machines=1)

    t0 = time.perf_counter()
    seq = seq_cls(circuit)
    seq.add_inputs(events)
    seq_stats = seq.run()
    rows: list[dict] = []
    totals = SimSweepStats(
        impl=impl, best_k=0, best_b=0.0, committed_events=0,
        processed_events=0, messages=0, anti_messages=0, rollbacks=0,
        rolled_back_events=0, seq_gate_evals=seq_stats.gate_evals,
    )
    best_key: tuple | None = None
    for (k, b), part in zip(combos, partitions):
        clusters, lp_machine = part.to_simulation()
        spec = replace(base_spec, num_machines=k)
        engine = engine_cls(circuit, clusters, lp_machine, spec, config)
        engine.load_inputs(events)
        stats = engine.run()
        seq_wall = seq_stats.gate_evals * spec.event_cost
        speedup = seq_wall / stats.wall_time if stats.wall_time > 0 else 0.0
        rows.append({
            "k": k, "b": b, "cut": part.cut_size,
            "committed": stats.committed_events,
            "processed": stats.processed_events,
            "messages": stats.messages,
            "antis": stats.anti_messages,
            "rollbacks": stats.rollbacks,
            "undone": stats.rolled_back_events,
            "gvt_rounds": stats.gvt_rounds,
            "straggler_depth": stats.max_straggler_depth,
            "wall": repr(stats.wall_time),
            "machine_walls": [repr(m.wall_time) for m in stats.machines],
            "speedup": repr(speedup),
        })
        totals.committed_events += stats.committed_events
        totals.processed_events += stats.processed_events
        totals.messages += stats.messages
        totals.anti_messages += stats.anti_messages
        totals.rollbacks += stats.rollbacks
        totals.rolled_back_events += stats.rolled_back_events
        totals.kernel_batches += stats.kernel_batches
        totals.kernel_batch_gates += stats.kernel_batch_gates
        totals.kernel_scalar_gates += stats.kernel_scalar_gates
        # the presim winner rule: best speedup, fewest machines, then b
        key = (speedup, -k, b)
        if best_key is None or key > best_key:
            best_key = key
            totals.best_k, totals.best_b = k, b
    totals.host_seconds = time.perf_counter() - t0
    totals.points = rows
    totals.digest = hashlib.sha256(
        json.dumps(rows, sort_keys=True).encode()
    ).hexdigest()
    return totals


def sim_speed_study(
    circuit_name: str = "viterbi-single",
    vectors: int = 40,
    ks: Sequence[int] = (2, 3, 4),
    bs: Sequence[float] = (7.5, 12.5),
    seed: int = 1,
    gvt_interval: int = 64,
) -> tuple[SimSweepStats, SimSweepStats]:
    """Run the sweep through both stacks; assert structural identity.

    Returns ``(fast, slow)``; after the parity assertions the wall
    ratio ``slow.host_seconds / fast.host_seconds`` is a pure
    like-for-like measurement of the simulation substrate.
    """
    kwargs = dict(circuit_name=circuit_name, vectors=vectors, ks=ks, bs=bs,
                  seed=seed, gvt_interval=gvt_interval)
    fast = run_sim_sweep("vectorized", **kwargs)
    slow = run_sim_sweep("legacy", **kwargs)
    assert fast.points == slow.points, "structural rows diverge"
    assert fast.digest == slow.digest, "golden digest diverges"
    assert (fast.best_k, fast.best_b) == (slow.best_k, slow.best_b)
    for name in ("committed_events", "processed_events", "messages",
                 "anti_messages", "rollbacks", "rolled_back_events",
                 "seq_gate_evals"):
        if getattr(fast, name) != getattr(slow, name):  # pragma: no cover
            raise AssertionError(f"{name} diverges between implementations")
    return fast, slow


def smoke_sim_study() -> tuple[SimSweepStats, SimSweepStats]:
    """Tier-1-sized study: same parity assertions, miniature workload
    (no wall-ratio claim — too small to time meaningfully)."""
    return sim_speed_study(
        circuit_name="viterbi-test", vectors=10, ks=(2, 3), bs=(7.5,),
        gvt_interval=32,
    )
