"""Experiment runners: one function per table / figure of the paper.

Each runner takes an :class:`ExperimentConfig` (circuit, vector counts,
cost model), computes the data behind one paper artifact, and returns a
structured result that the benchmark scripts print via
:mod:`repro.bench.tables` and the EXPERIMENTS.md generator consumes.

Scaling: the paper simulates a 1.2 M-gate netlist with 10 k pre-sim /
1 M full-run vectors on real hardware; the reproduction uses the
scaled Viterbi (thousands of gates) with a matching pre-sim:full ratio.
Absolute cut sizes and times scale with the circuit; who-wins
relationships and trends are the reproduction target.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from ..baselines import multilevel_partition
from ..circuits import load_circuit, random_vectors
from ..core import (
    PAPER_B_VALUES,
    PAPER_K_VALUES,
    PresimStudy,
    brute_force_presim,
    design_driven_partition,
    evaluate_partition,
    heuristic_presim,
)
from ..hypergraph import flat_hypergraph
from ..sim import ClusterSpec, TimeWarpConfig, compile_circuit, run_sequential_baseline
from ..verilog.netlist import Netlist

__all__ = [
    "ExperimentConfig",
    "CutRow",
    "table1_cutsize_design",
    "table2_cutsize_multilevel",
    "table3_presim",
    "table4_best_partitions",
    "table5_full_sim",
    "fig5_simulation_time",
    "fig6_fig7_messages_rollbacks",
    "heuristic_vs_brute_force",
]


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared knobs for all experiment runners."""

    circuit: str = "viterbi-single"
    ks: tuple[int, ...] = PAPER_K_VALUES
    bs: tuple[float, ...] = PAPER_B_VALUES
    presim_vectors: int = 40
    full_vectors: int = 400
    seed: int = 1
    pairing: str = "gain"
    spec: ClusterSpec = ClusterSpec(num_machines=1)
    tw: TimeWarpConfig = TimeWarpConfig()


@dataclass
class CutRow:
    """One row of Table 1 / Table 2."""

    k: int
    b: float
    cut: int
    balanced: bool = True
    extra: dict = field(default_factory=dict)


@lru_cache(maxsize=8)
def _netlist(circuit: str) -> Netlist:
    return load_circuit(circuit)


def _partition(cfg: ExperimentConfig, netlist: Netlist, k: int, b: float):
    return design_driven_partition(
        netlist, k=k, b=b, seed=cfg.seed, pairing=cfg.pairing
    )


# -- Table 1 -----------------------------------------------------------------


def table1_cutsize_design(cfg: ExperimentConfig) -> list[CutRow]:
    """Hyperedge cut of the design-driven algorithm over the (k, b) grid."""
    netlist = _netlist(cfg.circuit)
    rows = []
    for k in cfg.ks:
        for b in cfg.bs:
            r = _partition(cfg, netlist, k, b)
            rows.append(
                CutRow(
                    k=k,
                    b=b,
                    cut=r.cut_size,
                    balanced=r.balanced,
                    extra={"flatten_steps": r.flatten_steps},
                )
            )
    return rows


# -- Table 2 -----------------------------------------------------------------


def table2_cutsize_multilevel(cfg: ExperimentConfig) -> list[CutRow]:
    """Hyperedge cut of the hMetis-style multilevel partitioner on the
    flattened netlist, same grid.

    ``balanced`` records whether the result happens to meet the global
    Formula-1 constraint — recursive bisection only bounds each split's
    imbalance, so tight b with odd k can compound past it.
    """
    from ..core.balance import BalanceConstraint

    netlist = _netlist(cfg.circuit)
    hg = flat_hypergraph(netlist)
    rows = []
    for k in cfg.ks:
        for b in cfg.bs:
            r = multilevel_partition(hg, k, b, seed=cfg.seed)
            rows.append(
                CutRow(
                    k=k,
                    b=b,
                    cut=r.cut_size,
                    balanced=BalanceConstraint(k, b).satisfied(r.part_weights),
                )
            )
    return rows


# -- Table 3 / Table 4 ----------------------------------------------------------


def table3_presim(cfg: ExperimentConfig) -> PresimStudy:
    """Pre-simulation time and speedup for every (k, b)."""
    netlist = _netlist(cfg.circuit)
    events = random_vectors(netlist, cfg.presim_vectors, seed=cfg.seed)
    return brute_force_presim(
        netlist,
        events,
        ks=cfg.ks,
        bs=cfg.bs,
        base_spec=cfg.spec,
        config=cfg.tw,
        seed=cfg.seed,
        pairing=cfg.pairing,
    )


def table4_best_partitions(study: PresimStudy) -> dict[int, object]:
    """Best (by pre-sim speedup) partition per k — Table 4's rows."""
    return study.best_per_k()


# -- Table 5 / Figure 5 ----------------------------------------------------------


@dataclass
class FullSimRow:
    """One row of Table 5: the winning partition of each k, full run."""

    k: int
    b: float
    cut: int
    sim_time: float
    speedup: float
    messages: int
    rollbacks: int


def table5_full_sim(
    cfg: ExperimentConfig, study: PresimStudy
) -> tuple[list[FullSimRow], float]:
    """Full-length simulation of each k's pre-simulation winner.

    Returns the rows and the sequential full-run wall time.
    """
    netlist = _netlist(cfg.circuit)
    events = random_vectors(netlist, cfg.full_vectors, seed=cfg.seed + 1)
    circuit = compile_circuit(netlist)
    sequential, seq_wall = run_sequential_baseline(circuit, events, cfg.spec)
    rows: list[FullSimRow] = []
    for k, point in sorted(study.best_per_k().items()):
        full = evaluate_partition(
            circuit,
            point.partition,
            events,
            cfg.spec,
            cfg.tw,
            sequential=sequential,
        )
        rows.append(
            FullSimRow(
                k=k,
                b=point.b,
                cut=point.cut_size,
                sim_time=full.sim_time,
                speedup=full.speedup,
                messages=full.messages,
                rollbacks=full.rollbacks,
            )
        )
    return rows, seq_wall


def fig5_simulation_time(
    cfg: ExperimentConfig, study: PresimStudy
) -> tuple[list[int], list[float]]:
    """Figure 5: simulation time vs machine count, including k=1."""
    rows, seq_wall = table5_full_sim(cfg, study)
    xs = [1] + [r.k for r in rows]
    ys = [seq_wall] + [r.sim_time for r in rows]
    return xs, ys


# -- Figures 6 and 7 ---------------------------------------------------------------


def fig6_fig7_messages_rollbacks(
    study: PresimStudy,
) -> tuple[dict[float, list[int]], dict[float, list[int]], list[int]]:
    """Message and rollback counts vs machines, one series per b.

    Returns (messages_by_b, rollbacks_by_b, machine_counts).
    """
    ks = sorted({p.k for p in study.points})
    bs = sorted({p.b for p in study.points})
    messages: dict[float, list[int]] = {b: [] for b in bs}
    rollbacks: dict[float, list[int]] = {b: [] for b in bs}
    index = {(p.k, p.b): p for p in study.points}
    for b in bs:
        for k in ks:
            p = index[(k, b)]
            messages[b].append(p.messages)
            rollbacks[b].append(p.rollbacks)
    return messages, rollbacks, ks


# -- heuristic pre-simulation ------------------------------------------------------


@dataclass
class HeuristicComparison:
    """Heuristic (Fig 3) vs brute-force search outcome."""

    brute: PresimStudy
    heuristic: PresimStudy

    @property
    def runs_saved(self) -> int:
        return self.brute.runs - self.heuristic.runs

    @property
    def speedup_gap(self) -> float:
        """Best brute-force speedup minus the heuristic's pick."""
        return self.brute.best.speedup - self.heuristic.best.speedup


def heuristic_vs_brute_force(
    cfg: ExperimentConfig, brute: PresimStudy | None = None
) -> HeuristicComparison:
    """Quantify the paper's §3.4 trade-off (runs saved vs quality)."""
    netlist = _netlist(cfg.circuit)
    events = random_vectors(netlist, cfg.presim_vectors, seed=cfg.seed)
    if brute is None:
        brute = table3_presim(cfg)
    heur = heuristic_presim(
        netlist,
        events,
        max_k=max(cfg.ks),
        base_spec=cfg.spec,
        config=cfg.tw,
        seed=cfg.seed,
        pairing=cfg.pairing,
    )
    return HeuristicComparison(brute=brute, heuristic=heur)
