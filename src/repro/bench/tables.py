"""Plain-text table and series formatting for the experiment harness.

Every benchmark prints its rows in the same layout as the paper's
tables so measured-vs-paper comparison is a visual diff; figures are
rendered as aligned number series (one line per curve) — an honest
terminal-grade stand-in for the paper's plots.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_series", "format_kv"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned text table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[object]],
    title: str | None = None,
) -> str:
    """Render figure data as one aligned line per curve."""
    headers = [x_label] + [_fmt(x) for x in x_values]
    rows = [[name, *values] for name, values in series.items()]
    return format_table(headers, rows, title=title)


def format_kv(pairs: dict[str, object], title: str | None = None) -> str:
    """Render key/value diagnostics."""
    width = max((len(k) for k in pairs), default=0)
    lines = [title] if title else []
    for k, v in pairs.items():
        lines.append(f"{k.ljust(width)} : {_fmt(v)}")
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)
