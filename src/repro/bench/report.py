"""Paper-vs-measured reporting helpers.

The paper's numbers are embedded here as constants so every benchmark
can print its measured rows next to the original ones, and the
EXPERIMENTS.md generator can assemble the full comparison document.
Absolute values are not comparable (the paper ran a 1.2 M-gate netlist
on real 2001 hardware; we run a scaled netlist on a modeled cluster) —
the comparisons that matter are trends and ratios, which
:func:`shape_checks` evaluates mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "PAPER_TABLE5",
    "PAPER_SEQ_TIME_PRESIM",
    "PAPER_SEQ_TIME_FULL",
    "ShapeCheck",
    "shape_checks_cutsize",
    "shape_checks_speedup",
    "shape_check_counters",
]

#: Table 1 — design-driven cut size: {(k, b): cut}
PAPER_TABLE1 = {
    (2, 2.5): 2428, (2, 5.0): 1827, (2, 7.5): 905, (2, 10.0): 633,
    (2, 12.5): 598, (2, 15.0): 513,
    (3, 2.5): 2930, (3, 5.0): 2227, (3, 7.5): 1230, (3, 10.0): 894,
    (3, 12.5): 863, (3, 15.0): 790,
    (4, 2.5): 3230, (4, 5.0): 2326, (4, 7.5): 1433, (4, 10.0): 979,
    (4, 12.5): 935, (4, 15.0): 887,
}

#: Table 2 — hMetis cut size on the flattened netlist
PAPER_TABLE2 = {
    (2, 2.5): 2675, (2, 5.0): 2673, (2, 7.5): 2673, (2, 10.0): 2669,
    (2, 12.5): 2668, (2, 15.0): 2665,
    (3, 2.5): 2932, (3, 5.0): 2932, (3, 7.5): 2931, (3, 10.0): 2935,
    (3, 12.5): 2931, (3, 15.0): 2927,
    (4, 2.5): 3195, (4, 5.0): 3195, (4, 7.5): 3191, (4, 10.0): 3191,
    (4, 12.5): 3191, (4, 15.0): 3191,
}

#: Table 3 — pre-simulation {(k, b): (sim_time_s, speedup)}
PAPER_TABLE3 = {
    (2, 2.5): (61.79, 0.62), (2, 5.0): (41.86, 0.93), (2, 7.5): (30.65, 1.27),
    (2, 10.0): (25.78, 1.51), (2, 12.5): (23.59, 1.65), (2, 15.0): (29.72, 1.31),
    (3, 2.5): (56.42, 0.69), (3, 5.0): (39.72, 0.98), (3, 7.5): (28.87, 1.35),
    (3, 10.0): (21.50, 1.81), (3, 12.5): (22.37, 1.74), (3, 15.0): (25.44, 1.53),
    (4, 2.5): (88.47, 0.44), (4, 5.0): (42.78, 0.91), (4, 7.5): (19.86, 1.96),
    (4, 10.0): (24.80, 1.57), (4, 12.5): (21.04, 1.85), (4, 15.0): (24.18, 1.61),
}

#: Table 4 — best (k -> (b, cut, time, speedup)) from pre-simulation
PAPER_TABLE4 = {
    2: (12.5, 598, 23.59, 1.65),
    3: (10.0, 894, 21.50, 1.81),
    4: (7.5, 1463, 19.86, 1.96),
}

#: Table 5 — full simulation (k -> (b, cut, time, speedup))
PAPER_TABLE5 = {
    2: (12.5, 598, 2201.98, 1.65),
    3: (10.0, 894, 2033.35, 1.79),
    4: (7.5, 1463, 1905.60, 1.91),
}

PAPER_SEQ_TIME_PRESIM = 38.93
PAPER_SEQ_TIME_FULL = 3639.70


@dataclass
class ShapeCheck:
    """One mechanically checkable qualitative claim."""

    name: str
    passed: bool
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        mark = "PASS" if self.passed else "FAIL"
        return f"[{mark}] {self.name}: {self.detail}"


def shape_check_counters(checks: list[ShapeCheck]) -> dict[str, int]:
    """Fold shape-check outcomes into the registered ``bench.*``
    counters for a metrics document (see :mod:`repro.obs.registry`)."""
    passed = sum(1 for c in checks if c.passed)
    return {
        "bench.shape_checks_passed": passed,
        "bench.shape_checks_failed": len(checks) - passed,
    }


def shape_checks_cutsize(
    design: dict[tuple[int, float], int],
    multilevel: dict[tuple[int, float], int],
    design_balanced: dict[tuple[int, float], bool] | None = None,
    multilevel_balanced: dict[tuple[int, float], bool] | None = None,
) -> list[ShapeCheck]:
    """The qualitative claims of Tables 1-2 against measured cuts.

    A reproduction caveat is baked in here: the paper's hMetis numbers
    (nearly flat in b, 4.5x above the design-driven cut everywhere) are
    not what a *well-implemented* multilevel baseline produces at
    laptop scale — with standard large-net handling it matches the
    hierarchy-aware cut on small circuits and only falls behind as the
    module count grows (see the paper-scale benchmark).  The checks
    below encode the claims that are robust to baseline quality:
    competitiveness in aggregate, the design algorithm's own b/k
    trends, a strict win at the largest machine count, and Formula-1
    feasibility (which recursive-bisection UBfactors do not guarantee).
    """
    checks = []
    ks = sorted({k for k, _ in design})
    bs = sorted({b for _, b in design})
    # 1. never meaningfully worse than the flat baseline in aggregate
    d_sum = sum(design.values())
    m_sum = sum(multilevel.values())
    checks.append(
        ShapeCheck(
            "design-driven cut competitive with multilevel-on-flat (aggregate)",
            d_sum <= 1.1 * m_sum,
            f"sum(design)={d_sum} vs sum(multilevel)={m_sum}",
        )
    )
    # 2. design-driven cut shrinks from tightest to loosest b per k
    mono = all(design[(k, bs[-1])] <= design[(k, bs[0])] for k in ks)
    checks.append(
        ShapeCheck(
            "relaxing b reduces the design-driven cut",
            mono,
            ", ".join(
                f"k={k}: {design[(k, bs[0])]} -> {design[(k, bs[-1])]}" for k in ks
            ),
        )
    )
    # 3. cut grows with k at fixed b (middle of the grid)
    mid_b = bs[len(bs) // 2]
    grow = all(
        design[(ks[i], mid_b)] <= design[(ks[i + 1], mid_b)]
        for i in range(len(ks) - 1)
    )
    checks.append(
        ShapeCheck(
            "more partitions cut more nets (fixed b)",
            grow,
            ", ".join(f"k={k}: {design[(k, mid_b)]}" for k in ks),
        )
    )
    # 4. at the largest machine count — where the paper reports its
    #    headline speedup — the design-driven cut wins in aggregate
    kmax = ks[-1]
    d_kmax = sum(design[(kmax, b)] for b in bs)
    m_kmax = sum(multilevel[(kmax, b)] for b in bs)
    checks.append(
        ShapeCheck(
            f"design-driven wins in aggregate at k={kmax}",
            d_kmax <= m_kmax,
            f"k={kmax}: design {d_kmax} vs multilevel {m_kmax}",
        )
    )
    # 5. feasibility (when balance data is available): the design
    #    algorithm meets Formula 1 on the whole grid; the flat
    #    baseline's per-bisection UBfactor compounds and can miss it
    if design_balanced is not None:
        ok = all(design_balanced.values())
        viol = (
            sum(not v for v in multilevel_balanced.values())
            if multilevel_balanced is not None
            else 0
        )
        checks.append(
            ShapeCheck(
                "design-driven meets Formula 1 everywhere",
                ok,
                f"design violations: {sum(not v for v in design_balanced.values())}, "
                f"multilevel violations: {viol}",
            )
        )
    return checks


def shape_checks_speedup(
    speedups: dict[tuple[int, float], float],
) -> list[ShapeCheck]:
    """The qualitative claims of Tables 3-5 against measured speedups."""
    checks = []
    ks = sorted({k for k, _ in speedups})
    bs = sorted({b for _, b in speedups})
    best = max(speedups.values())
    best_kb = max(speedups, key=speedups.get)
    checks.append(
        ShapeCheck(
            "best speedup achieved at the largest machine count",
            best_kb[0] == max(ks),
            f"best {best:.2f} at (k={best_kb[0]}, b={best_kb[1]})",
        )
    )
    tight_worst = all(
        speedups[(k, bs[0])] <= max(speedups[(k, b)] for b in bs) for k in ks
    )
    checks.append(
        ShapeCheck(
            "tightest b never optimal",
            tight_worst and all(
                min(speedups[(k, b)] for b in bs) == speedups[(k, bs[0])]
                or speedups[(k, bs[0])] <= speedups[(k, bs[2])]
                for k in ks
            ),
            ", ".join(f"k={k}@b={bs[0]}: {speedups[(k, bs[0])]:.2f}" for k in ks),
        )
    )
    per_k_best = {k: max(speedups[(k, b)] for b in bs) for k in ks}
    checks.append(
        ShapeCheck(
            "per-k best speedup non-decreasing in k",
            all(per_k_best[ks[i]] <= per_k_best[ks[i + 1]] + 0.05
                for i in range(len(ks) - 1)),
            ", ".join(f"k={k}: {v:.2f}" for k, v in per_k_best.items()),
        )
    )
    return checks
