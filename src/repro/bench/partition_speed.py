"""Partition-core speed study: vectorized vs legacy bookkeeping.

The PR that introduced the λ-cached, batch-gain partition core
(``docs/performance.md``) claims a large wall-clock win with
**bit-identical** results.  This module makes that claim measurable and
regression-gateable:

* :class:`LegacyPartitionState` and :func:`legacy_refine_pair` preserve
  the pre-optimization implementation — per-pin Python ``recompute``,
  per-edge ``(counts > 0).sum()`` spanning scans, per-call neighbor-set
  rebuilds, scalar heap fills — as an executable baseline;
* :func:`run_sweep` drives one full exhaustive refinement sweep (every
  tournament pair once) through either implementation and returns the
  **structural** outcome (cut trajectory, realized gain, moves, passes)
  plus the host wall;
* :func:`speed_study` runs both implementations on the same synthetic
  circuit-shaped hypergraph and asserts the structural outcomes are
  identical — the wall-clock ratio is then a pure like-for-like
  measurement.

Structural quantities are deterministic for a fixed seed and feed the
``--baseline`` regression gate; host walls stay in the quarantined
``host_timings`` channel, as everywhere else
(:mod:`repro.obs.metrics`).  ``benchmarks/bench_partition_speed.py``
runs the paper-scale configuration (~50k vertices); the tier-1 suite
runs the same study in smoke form (:func:`smoke_study`).
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass

import numpy as np

from ..core.balance import BalanceConstraint
from ..core.fm import refine_pair
from ..core.pairing import estimate_pair_gain
from ..core.parallel_refine import tournament_rounds
from ..errors import PartitionError
from ..hypergraph import Hypergraph, PartitionState

__all__ = [
    "LegacyPartitionState",
    "legacy_refine_pair",
    "legacy_estimate_pair_gain",
    "SweepStats",
    "synthetic_hypergraph",
    "run_sweep",
    "speed_study",
    "smoke_study",
]


def synthetic_hypergraph(
    num_vertices: int,
    num_edges: int,
    seed: int = 0,
    min_pins: int = 2,
    max_pins: int = 4,
    span: int = 64,
) -> Hypergraph:
    """Deterministic circuit-shaped hypergraph for speed studies.

    Nets are local: each edge picks a base vertex and sinks within
    ``span`` positions of it, mimicking the bounded-fanout locality of
    synthesized netlists (a uniformly random hypergraph has no
    refinable structure).  Unit vertex and edge weights.
    """
    rng = np.random.default_rng(seed)
    sizes = rng.integers(min_pins, max_pins + 1, size=num_edges)
    bases = rng.integers(0, num_vertices, size=num_edges)
    edges = []
    for e in range(num_edges):
        offsets = rng.integers(1, span + 1, size=int(sizes[e]) - 1)
        pins = np.concatenate(([bases[e]], (bases[e] + offsets) % num_vertices))
        edges.append(pins.tolist())
    return Hypergraph.from_edges([1] * num_vertices, edges)


# -- the pre-optimization implementation, kept runnable ---------------------


class LegacyPartitionState:
    """The partition bookkeeping as it was before the vectorized core.

    Interface-compatible with :class:`~repro.hypergraph.PartitionState`
    for everything the FM kernel touches, with the original costs:
    ``recompute`` walks every pin in Python, ``move`` and ``move_gain``
    rediscover each edge's spanned-partition count with an O(k)
    ``(counts > 0).sum()`` scan.  Exists so the speed benchmark measures
    a real artifact, not a guess about the past.
    """

    def __init__(self, hg: Hypergraph, k: int, assignment) -> None:
        if k < 1:
            raise PartitionError(f"k must be >= 1, got {k}")
        self.hg = hg
        self.k = k
        self.part = np.asarray(assignment, dtype=np.int64).copy()
        self.recompute()

    def recompute(self) -> None:
        hg = self.hg
        self.part_weight = np.zeros(self.k, dtype=np.int64)
        np.add.at(self.part_weight, self.part, hg.vertex_weight)
        self.edge_part_count = np.zeros((hg.num_edges, self.k), dtype=np.int64)
        for e in range(hg.num_edges):
            for v in hg.edge_vertices(e):
                self.edge_part_count[e, self.part[v]] += 1
        spanned = (self.edge_part_count > 0).sum(axis=1)
        cut_mask = spanned > 1
        self._cut = int(hg.edge_weight[cut_mask].sum())
        self._soed = int((hg.edge_weight * np.maximum(spanned - 1, 0)).sum())

    @property
    def cut_size(self) -> int:
        return self._cut

    @property
    def connectivity(self) -> int:
        return self._soed

    def part_of(self, v: int) -> int:
        return int(self.part[v])

    def move_gain(self, v: int, to_part: int) -> int:
        frm = int(self.part[v])
        if frm == to_part:
            return 0
        gain = 0
        hg = self.hg
        for e in hg.vertex_edges(v):
            counts = self.edge_part_count[e]
            w = int(hg.edge_weight[e])
            spanned = int((counts > 0).sum())
            leaves_empty = counts[frm] == 1
            enters_new = counts[to_part] == 0
            new_spanned = spanned - (1 if leaves_empty else 0) + (1 if enters_new else 0)
            was_cut = spanned > 1
            now_cut = new_spanned > 1
            if was_cut and not now_cut:
                gain += w
            elif now_cut and not was_cut:
                gain -= w
        return gain

    def move(self, v: int, to_part: int) -> int:
        frm = int(self.part[v])
        if to_part == frm:
            return 0
        hg = self.hg
        gain = 0
        soed_delta = 0
        for e in hg.vertex_edges(v):
            counts = self.edge_part_count[e]
            w = int(hg.edge_weight[e])
            spanned = int((counts > 0).sum())
            counts[frm] -= 1
            counts[to_part] += 1
            new_spanned = spanned
            if counts[frm] == 0:
                new_spanned -= 1
            if counts[to_part] == 1:
                new_spanned += 1
            if spanned > 1 and new_spanned == 1:
                gain += w
            elif spanned == 1 and new_spanned > 1:
                gain -= w
            soed_delta += w * (new_spanned - spanned)
        wv = int(hg.vertex_weight[v])
        self.part_weight[frm] -= wv
        self.part_weight[to_part] += wv
        self.part[v] = to_part
        self._cut -= gain
        self._soed += soed_delta
        return gain


def legacy_estimate_pair_gain(state, a: int, b: int) -> int:
    """Pre-optimization :func:`repro.core.pairing.estimate_pair_gain`:
    Python set-building boundary walk plus a per-vertex gain loop."""
    hg = state.hg
    boundary: set[int] = set()
    mask = (state.edge_part_count[:, a] > 0) & (state.edge_part_count[:, b] > 0)
    for e in np.nonzero(mask)[0]:
        for v in hg.edge_vertices(int(e)):
            if state.part[v] in (a, b):
                boundary.add(int(v))
    total = 0
    for v in boundary:
        to = b if state.part_of(v) == a else a
        g = state.move_gain(v, to)
        if g > 0:
            total += g
    return total


def _legacy_neighbors(hg: Hypergraph, v: int) -> set[int]:
    """Per-call neighbor set rebuild (the pre-cache behaviour)."""
    out: set[int] = set()
    for e in hg.vertex_edges(v):
        out.update(int(u) for u in hg.edge_vertices(e))
    out.discard(v)
    return out


def _legacy_one_pass(state, a, b, constraint):
    """The pre-optimization FM pass, verbatim semantics."""
    hg = state.hg
    lo, hi = constraint.bounds(hg.total_weight)
    vertices = [v for v in range(hg.num_vertices) if state.part[v] in (a, b)]
    if not vertices:
        return 0, 0
    stamp = {v: 0 for v in vertices}
    locked: set[int] = set()
    heap: list[tuple[int, int, int, int]] = []

    def push(v: int) -> None:
        frm = state.part_of(v)
        to = b if frm == a else a
        g = state.move_gain(v, to)
        heapq.heappush(heap, (-g, v, stamp[v], to))

    for v in vertices:
        push(v)
    moves: list[tuple[int, int, int]] = []
    cum = 0
    best = 0
    best_idx = 0
    while heap:
        neg_g, v, st, to = heapq.heappop(heap)
        if v in locked or st != stamp[v]:
            continue
        frm = state.part_of(v)
        if frm not in (a, b):  # pragma: no cover - defensive
            continue
        expected_to = b if frm == a else a
        if to != expected_to:
            continue
        wv = int(hg.vertex_weight[v])
        if state.part_weight[to] + wv > hi or state.part_weight[frm] - wv < lo:
            locked.add(v)
            continue
        realized = state.move(v, to)
        locked.add(v)
        moves.append((v, frm, to))
        cum += realized
        if cum > best:
            best = cum
            best_idx = len(moves)
        for u in _legacy_neighbors(hg, v):
            if u in stamp and u not in locked:
                stamp[u] += 1
                push(u)
    for v, frm, _ in reversed(moves[best_idx:]):
        state.move(v, frm)
    return best, best_idx


def legacy_refine_pair(state, a, b, constraint, max_passes: int = 8):
    """Pre-optimization :func:`repro.core.fm.refine_pair` (gain, moves,
    passes) — identical move decisions, original costs."""
    total_gain = 0
    total_moves = 0
    passes = 0
    for _ in range(max_passes):
        gain, retained = _legacy_one_pass(state, a, b, constraint)
        passes += 1
        total_gain += gain
        total_moves += retained
        if gain <= 0:
            break
    return total_gain, total_moves, passes


# -- the sweep ---------------------------------------------------------------


@dataclass
class SweepStats:
    """Structural outcome of one exhaustive refinement sweep plus its
    host wall.  Everything except ``host_seconds`` is deterministic for
    a fixed hypergraph/seed and must be identical across
    implementations — :func:`speed_study` asserts it."""

    impl: str
    cut_before: int
    cut_after: int
    connectivity_after: int
    gain: int
    moves: int
    passes: int
    estimate_total: int
    host_seconds: float
    lambda_hits: int = 0
    gain_batches: int = 0
    gain_batch_vertices: int = 0
    boundary_batches: int = 0


def _block_noise_assignment(num_vertices: int, k: int, seed: int) -> np.ndarray:
    """Contiguous blocks with 5% uniform noise — a localized start with
    a realistic amount of refinable boundary disorder (a round-robin
    start cuts essentially every local net, which measures pathological
    churn instead of refinement)."""
    rng = np.random.default_rng(seed + 1)
    assign = (np.arange(num_vertices, dtype=np.int64) * k) // num_vertices
    noise = rng.random(num_vertices) < 0.05
    assign[noise] = rng.integers(0, k, size=int(noise.sum()))
    return assign


def run_sweep(
    hg: Hypergraph,
    k: int,
    b: float = 10.0,
    max_passes: int = 2,
    impl: str = "vectorized",
    seed: int = 0,
) -> SweepStats:
    """One full exhaustive refinement sweep, mirroring a driver round:
    per tournament round, take a snapshot (what the parallel engine
    ships to workers), score **every** pair's estimated gain (the
    gain-based pairing criterion, computed exhaustively), then run FM
    over the round's pairs serially.

    The timed region covers state construction plus all three phases —
    exactly the work the pre-PR implementations paid with per-pin
    Python recomputes (snapshots), set-building boundary walks
    (estimates) and O(k) spanning scans (FM bookkeeping).
    """
    assignment = _block_noise_assignment(hg.num_vertices, k, seed)
    constraint = BalanceConstraint(k, b)
    t0 = time.perf_counter()
    if impl == "vectorized":
        state = PartitionState(hg, k, assignment)
        cut_before = state.cut_size
        gain = moves = passes = est_total = 0
        for rnd in tournament_rounds(k):
            snapshot = state.copy()
            del snapshot
            for a in range(k):
                for bb in range(a + 1, k):
                    est_total += estimate_pair_gain(state, a, bb)
            for a, bb in rnd:
                res = refine_pair(state, a, bb, constraint, max_passes=max_passes)
                gain += res.gain
                moves += res.moves
                passes += res.passes
        wall = time.perf_counter() - t0
        return SweepStats(
            impl, cut_before, state.cut_size, state.connectivity,
            gain, moves, passes, est_total, wall,
            lambda_hits=state.lambda_hits,
            gain_batches=state.gain_batches,
            gain_batch_vertices=state.gain_batch_vertices,
            boundary_batches=state.boundary_batches,
        )
    if impl != "legacy":
        raise PartitionError(f"unknown sweep impl {impl!r}")
    state = LegacyPartitionState(hg, k, assignment)
    cut_before = state.cut_size
    gain = moves = passes = est_total = 0
    for rnd in tournament_rounds(k):
        snapshot = LegacyPartitionState(hg, k, state.part)  # pre-PR copy()
        del snapshot
        for a in range(k):
            for bb in range(a + 1, k):
                est_total += legacy_estimate_pair_gain(state, a, bb)
        for a, bb in rnd:
            g, m, p = legacy_refine_pair(state, a, bb, constraint,
                                         max_passes=max_passes)
            gain += g
            moves += m
            passes += p
    wall = time.perf_counter() - t0
    return SweepStats(impl, cut_before, state.cut_size, state.connectivity,
                      gain, moves, passes, est_total, wall)


def speed_study(
    num_vertices: int,
    num_edges: int,
    k: int,
    seed: int = 0,
    b: float = 10.0,
    max_passes: int = 2,
) -> tuple[SweepStats, SweepStats]:
    """Run both implementations on the same hypergraph and assert the
    structural outcomes agree.  Returns ``(vectorized, legacy)``."""
    hg = synthetic_hypergraph(num_vertices, num_edges, seed=seed)
    fast = run_sweep(hg, k, b=b, max_passes=max_passes, impl="vectorized", seed=seed)
    slow = run_sweep(hg, k, b=b, max_passes=max_passes, impl="legacy", seed=seed)
    for field in ("cut_before", "cut_after", "connectivity_after",
                  "gain", "moves", "passes", "estimate_total"):
        fv, sv = getattr(fast, field), getattr(slow, field)
        if fv != sv:
            raise PartitionError(
                f"speed study diverged on {field}: vectorized {fv} != "
                f"legacy {sv} — the optimized core changed behaviour"
            )
    return fast, slow


def smoke_study(seed: int = 0) -> tuple[SweepStats, SweepStats]:
    """Tier-1-sized study (~600 vertices): the same parity assertion as
    the paper-scale benchmark, seconds not minutes."""
    return speed_study(600, 900, k=4, seed=seed, max_passes=2)
