"""Benchmark harness: experiment runners, table/series formatting, and
paper-vs-measured reporting for every table and figure in the paper's
evaluation section (see DESIGN.md's per-experiment index)."""

from .tables import format_table, format_series, format_kv
from .experiments import (
    ExperimentConfig,
    CutRow,
    table1_cutsize_design,
    table2_cutsize_multilevel,
    table3_presim,
    table4_best_partitions,
    table5_full_sim,
    fig5_simulation_time,
    fig6_fig7_messages_rollbacks,
    heuristic_vs_brute_force,
)
from .parallel import GridCell, run_presim_grid
from .partition_speed import (
    SweepStats,
    run_sweep,
    smoke_study,
    speed_study,
    synthetic_hypergraph,
)
from .sim_speed import (
    LegacyClusterLP,
    LegacySequentialSimulator,
    LegacyTimeWarpEngine,
    SimSweepStats,
    run_sim_sweep,
    sim_speed_study,
    smoke_sim_study,
)
from .report import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    PAPER_TABLE5,
    PAPER_SEQ_TIME_PRESIM,
    PAPER_SEQ_TIME_FULL,
    ShapeCheck,
    shape_checks_cutsize,
    shape_checks_speedup,
    shape_check_counters,
)

__all__ = [
    "format_table",
    "format_series",
    "format_kv",
    "ExperimentConfig",
    "CutRow",
    "table1_cutsize_design",
    "table2_cutsize_multilevel",
    "table3_presim",
    "table4_best_partitions",
    "table5_full_sim",
    "fig5_simulation_time",
    "fig6_fig7_messages_rollbacks",
    "heuristic_vs_brute_force",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "PAPER_TABLE5",
    "PAPER_SEQ_TIME_PRESIM",
    "PAPER_SEQ_TIME_FULL",
    "ShapeCheck",
    "shape_checks_cutsize",
    "shape_checks_speedup",
    "shape_check_counters",
    "GridCell",
    "run_presim_grid",
    "SweepStats",
    "run_sweep",
    "smoke_study",
    "speed_study",
    "synthetic_hypergraph",
    "LegacyClusterLP",
    "LegacySequentialSimulator",
    "LegacyTimeWarpEngine",
    "SimSweepStats",
    "run_sim_sweep",
    "sim_speed_study",
    "smoke_sim_study",
]
