"""Process-parallel (k, b) sweeps.

The pre-simulation grid is embarrassingly parallel — every (k, b) cell
partitions and simulates independently — so the sweep itself can use
the host's cores.  Workers rebuild the netlist from source text (cheap,
and far more robust than shipping large object graphs through pickle)
and return slim result rows; determinism is preserved because each cell
is seeded identically to the serial path.

This parallelizes the *experiment harness*, not the simulated cluster —
the virtual cluster inside each cell stays deterministic and modeled.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from ..core.balance import PAPER_B_VALUES
from ..core.parallel_refine import resolve_workers
from ..obs.recorder import NULL_RECORDER, Recorder
from ..obs.spans import export_telemetry, merge_telemetry, worker_telemetry

__all__ = ["GridCell", "run_presim_grid"]


@dataclass(frozen=True)
class GridCell:
    """One (k, b) result row (slim, pickle-friendly)."""

    k: int
    b: float
    cut_size: int
    balanced: bool
    sim_time: float
    speedup: float
    messages: int
    rollbacks: int

    def to_row(self) -> dict:
        """Scalar dict form for a metrics document ``rows`` entry."""
        return {
            "k": self.k,
            "b": self.b,
            "cut_size": self.cut_size,
            "balanced": self.balanced,
            "sim_time": self.sim_time,
            "speedup": self.speedup,
            "messages": self.messages,
            "rollbacks": self.rollbacks,
        }


def _evaluate_cell(
    source: str,
    top: str | None,
    k: int,
    b: float,
    n_vectors: int,
    seed: int,
    pairing: str,
    refine_workers: int = 1,
    algorithm: str = "design",
    collect: bool = False,
    refiner: str = "fm",
) -> tuple[GridCell, dict | None]:
    """Worker: compile, partition, pre-simulate one grid cell.

    With ``collect`` on, the whole cell runs under a per-task
    mini-recorder's ``sweep.cell`` span — the partitioner and Time Warp
    engine record into it, and the export is returned alongside the
    slim row for deterministic merge in the driver (same shape whether
    this runs serially or in a pool worker).
    """
    from ..circuits import random_vectors
    from ..core import design_driven_partition, multilevel_flat_partition
    from ..sim import ClusterSpec, TimeWarpConfig, compile_circuit, run_partitioned
    from ..verilog import compile_verilog

    wrec = worker_telemetry() if collect else NULL_RECORDER
    with wrec.phase("sweep.cell"):
        netlist = compile_verilog(source, top=top)
        circuit = compile_circuit(netlist)
        events = random_vectors(netlist, n_vectors, seed=seed)
        if algorithm == "multilevel":
            part = multilevel_flat_partition(
                netlist, k, b, seed=seed, workers=refine_workers,
                refiner=refiner, recorder=wrec,
            )
        else:
            part = design_driven_partition(
                netlist, k=k, b=b, seed=seed, pairing=pairing,
                workers=refine_workers, refiner=refiner, recorder=wrec,
            )
        clusters, machines = part.to_simulation()
        report = run_partitioned(
            circuit, clusters, machines, events,
            ClusterSpec(num_machines=k), TimeWarpConfig(), recorder=wrec,
        )
    cell = GridCell(
        k=k,
        b=b,
        cut_size=part.cut_size,
        balanced=part.balanced,
        sim_time=report.parallel_wall_time,
        speedup=report.speedup,
        messages=report.messages,
        rollbacks=report.rollbacks,
    )
    return cell, export_telemetry(wrec) if collect else None


def run_presim_grid(
    source: str,
    ks: tuple[int, ...] = (2, 3, 4),
    bs: tuple[float, ...] = PAPER_B_VALUES,
    n_vectors: int = 40,
    seed: int = 1,
    pairing: str = "gain",
    top: str | None = None,
    workers: int | None = None,
    refine_workers: int = 1,
    algorithm: str = "design",
    refiner: str = "fm",
    recorder: Recorder = NULL_RECORDER,
) -> list[GridCell]:
    """Run the (k, b) pre-simulation grid, optionally across processes.

    Worker-count policy is the shared
    :func:`repro.core.parallel_refine.resolve_workers`: ``workers=None``
    consults the ``REPRO_WORKERS`` environment variable (unset means
    serial, capped at ``os.cpu_count()``), an explicit count is honoured
    verbatim.  Serial runs stay in-process (no subprocess overhead);
    parallel runs fan the cells out over a process pool.  Rows come back
    in grid order regardless of completion order, and every cell is
    seeded identically to the serial path, so results never depend on
    the worker count.

    ``refine_workers`` is forwarded to each cell's
    :func:`~repro.core.multiway.design_driven_partition` call.  Inside a
    parallel grid the cells are daemonic workers, so nested refinement
    pools automatically degrade to serial (see ``docs/parallelism.md``);
    the default of 1 keeps the serial grid's cells serial too.

    ``algorithm`` selects each cell's partition backend — ``"design"``
    (default) or ``"multilevel"``
    (:func:`~repro.core.multilevel.multilevel_flat_partition`, see
    ``docs/multilevel.md``).  ``refiner`` selects the backend's
    improvement engine, ``"fm"`` or ``"batch"`` (``docs/refinement.md``).

    ``recorder`` collects per-cell worker telemetry (a ``sweep.cell``
    span per cell carrying that cell's partition + Time Warp counters),
    merged back in grid order — byte-identical at any ``workers``.
    """
    resolved = resolve_workers(workers)
    collect = recorder.enabled
    cells = [(k, b) for k in ks for b in bs]
    args = [
        (source, top, k, b, n_vectors, seed, pairing, refine_workers,
         algorithm, collect, refiner)
        for k, b in cells
    ]
    if resolved <= 1:
        results = [_evaluate_cell(*a) for a in args]
    else:
        with ProcessPoolExecutor(max_workers=resolved) as pool:
            futures = [pool.submit(_evaluate_cell, *a) for a in args]
            results = [f.result() for f in futures]
    out: list[GridCell] = []
    for cell, telemetry in results:
        out.append(cell)
        merge_telemetry(recorder, telemetry)
    return out
