"""Auxiliary gate-level circuit generators.

Beyond the Viterbi workload these provide: regression targets with
known functional behaviour (adders, multiplier, counter, LFSR),
hierarchy-rich designs for partitioner tests (pipelined datapaths,
mesh), and an irregular random-logic cloud for property-based testing.
Every generator emits structural Verilog text that round-trips through
:mod:`repro.verilog`.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from ._vlog import ModuleWriter

__all__ = [
    "ripple_adder_verilog",
    "multiplier_verilog",
    "counter_verilog",
    "lfsr_verilog",
    "pipeline_verilog",
    "mesh_verilog",
    "random_logic_verilog",
]


def ripple_adder_verilog(width: int = 8, hierarchical: bool = True) -> str:
    """``width``-bit ripple-carry adder; hierarchical form uses one
    full-adder module instance per bit (a tiny super-gate per stage)."""
    if width < 1:
        raise ConfigError("width must be >= 1")
    if not hierarchical:
        m = ModuleWriter("adder_flat")
        a = m.input("a", width)
        b = m.input("b", width)
        cin = m.input("cin")[0]
        s = m.output("s", width)
        cout = m.output("cout")[0]
        m.ripple_add(a, b, s, cout=cout, cin=cin)
        return m.emit()
    fa = ModuleWriter("fa_cell")
    a1 = fa.input("a")[0]
    b1 = fa.input("b")[0]
    c1 = fa.input("cin")[0]
    s1 = fa.output("s")[0]
    co = fa.output("cout")[0]
    fa.full_adder(a1, b1, c1, s1, co)

    top = ModuleWriter("adder_top")
    a = top.input("a", width)
    b = top.input("b", width)
    cin = top.input("cin")[0]
    s = top.output("s", width)
    cout = top.output("cout")[0]
    carries = top.wire("c", width)
    prev = cin
    for i in range(width):
        top.instance(
            "fa_cell",
            f"fa{i}",
            {"a": a[i], "b": b[i], "cin": prev, "s": s[i], "cout": carries[i]},
        )
        prev = carries[i]
    top.gate("buf", cout, prev)
    return fa.emit() + "\n" + top.emit()


def multiplier_verilog(width: int = 4) -> str:
    """Unsigned array multiplier (``width`` x ``width`` → ``2*width``),
    built from partial-product AND rows and ripple-adder rows — a
    classic deep combinational benchmark."""
    if width < 2:
        raise ConfigError("width must be >= 2")
    m = ModuleWriter("arraymul")
    a = m.input("a", width)
    b = m.input("b", width)
    p = m.output("p", 2 * width)
    # partial products
    pp = [[m.fresh(f"pp{i}_{j}")[0] for j in range(width)] for i in range(width)]
    for i in range(width):
        for j in range(width):
            m.gate("and", pp[i][j], a[j], b[i])
    m.gate("buf", p[0], pp[0][0])
    # accumulate row by row
    acc = pp[0][1:]  # width-1 bits representing bits 1..width-1
    for i in range(1, width):
        row = pp[i]
        a_in = acc + ["1'b0"] * (width - len(acc))
        s = m.fresh(f"s{i}", width)
        cout = m.fresh(f"co{i}")[0]
        m.ripple_add(a_in[:width], row, s, cout=cout)
        m.gate("buf", p[i], s[0])
        acc = s[1:] + [cout]
    for idx, bit in enumerate(acc):
        m.gate("buf", p[width + idx], bit)
    return m.emit()


def counter_verilog(width: int = 8) -> str:
    """Synchronous binary counter with reset (incrementer + dffr)."""
    if width < 1:
        raise ConfigError("width must be >= 1")
    m = ModuleWriter("counter")
    clk = m.input("clk")[0]
    rst = m.input("rst")[0]
    q = m.output("q", width)
    d = m.wire("d", width)
    # increment: d = q + 1 (half-adder chain)
    prev = None
    for i in range(width):
        if prev is None:
            m.gate("not", d[i], q[i])
            prev = q[i]
        else:
            m.gate("xor", d[i], q[i], prev)
            nxt = m.fresh("carry")[0]
            m.gate("and", nxt, q[i], prev)
            prev = nxt
    for i in range(width):
        m.dffr(q[i], d[i], clk, rst)
    return m.emit()


def lfsr_verilog(width: int = 16, taps: tuple[int, ...] = ()) -> str:
    """Fibonacci LFSR; default taps give a long-period register for
    stimulus-heavy sequential tests.  Reset loads the all-ones state
    (via inverted-input flip-flops on reset is avoided — instead the
    feedback ORs in a reset-driven 1)."""
    if width < 3:
        raise ConfigError("width must be >= 3")
    if not taps:
        taps = (width - 1, width // 2, 0)
    m = ModuleWriter("lfsr")
    clk = m.input("clk")[0]
    rst = m.input("rst")[0]
    q = m.output("q", width)
    fb = m.wire("fb")[0]
    prev = q[taps[0]]
    for t in taps[1:]:
        nxt = m.fresh("fb_x")[0]
        m.gate("xor", nxt, prev, q[t])
        prev = nxt
    # seed injection: while rst was high the register is zero, so force
    # a 1 into the feedback for one cycle after release
    zero = m.fresh("allzero")[0]
    acc = q[0]
    for i in range(1, width):
        nxt = m.fresh("orred")[0]
        m.gate("or", nxt, acc, q[i])
        acc = nxt
    m.gate("not", zero, acc)
    m.gate("or", fb, prev, zero)
    m.dffr(q[0], fb, clk, rst)
    for i in range(1, width):
        m.dffr(q[i], q[i - 1], clk, rst)
    return m.emit()


def pipeline_verilog(stages: int = 4, width: int = 8) -> str:
    """Registered adder pipeline: ``stages`` alternating adder /
    register modules — a hierarchy-rich synchronous design whose
    natural partition is by stage."""
    if stages < 2:
        raise ConfigError("stages must be >= 2")
    add = ModuleWriter("pl_add")
    a = add.input("a", width)
    b = add.input("b", width)
    y = add.output("y", width)
    add.ripple_add(a, b, y)
    reg = ModuleWriter("pl_reg")
    d = reg.input("d", width)
    clk1 = reg.input("clk")[0]
    rst1 = reg.input("rst")[0]
    q = reg.output("q", width)
    for i in range(width):
        reg.dffr(q[i], d[i], clk1, rst1)

    top = ModuleWriter("pipeline_top")
    clk = top.input("clk")[0]
    rst = top.input("rst")[0]
    x = top.input("x", width)
    k = top.input("k", width)
    out = top.output("out", width)
    cur = "x"
    for sidx in range(stages):
        summed = top.wire(f"sum{sidx}", width)
        regged = top.wire(f"reg{sidx}", width)
        top.instance("pl_add", f"add{sidx}", {"a": cur, "b": "k", "y": f"sum{sidx}"})
        top.instance(
            "pl_reg",
            f"reg{sidx}_i",
            {"d": f"sum{sidx}", "clk": clk, "rst": rst, "q": f"reg{sidx}"},
        )
        cur = f"reg{sidx}"
    for i in range(width):
        top.gate("buf", out[i], f"{cur}[{i}]")
    return "\n".join([add.emit(), reg.emit(), top.emit()])


def mesh_verilog(rows: int = 3, cols: int = 3, width: int = 4) -> str:
    """Mesh of registered processing cells, each combining its west and
    north inputs through an adder — 2-D locality for partitioners."""
    if rows < 2 or cols < 2:
        raise ConfigError("mesh needs rows >= 2 and cols >= 2")
    cell = ModuleWriter("mesh_cell")
    w_in = cell.input("w", width)
    n_in = cell.input("n", width)
    clk1 = cell.input("clk")[0]
    rst1 = cell.input("rst")[0]
    e_out = cell.output("e", width)
    s_out = cell.output("s", width)
    summed = cell.wire("sum", width)
    cell.ripple_add(w_in, n_in, summed)
    for i in range(width):
        cell.dffr(e_out[i], summed[i], clk1, rst1)
        cell.dffr(s_out[i], summed[i], clk1, rst1)

    top = ModuleWriter("mesh_top")
    clk = top.input("clk")[0]
    rst = top.input("rst")[0]
    for r in range(rows):
        top.input(f"win{r}", width)
    for c in range(cols):
        top.input(f"nin{c}", width)
    out = top.output("out", width)
    for r in range(rows):
        for c in range(cols):
            top.wire(f"e_{r}_{c}", width)
            top.wire(f"s_{r}_{c}", width)
    for r in range(rows):
        for c in range(cols):
            w_src = f"win{r}" if c == 0 else f"e_{r}_{c-1}"
            n_src = f"nin{c}" if r == 0 else f"s_{r-1}_{c}"
            top.instance(
                "mesh_cell",
                f"cell_{r}_{c}",
                {"w": w_src, "n": n_src, "clk": clk, "rst": rst,
                 "e": f"e_{r}_{c}", "s": f"s_{r}_{c}"},
            )
    for i in range(width):
        top.gate("buf", out[i], f"e_{rows-1}_{cols-1}[{i}]")
    return "\n".join([cell.emit(), top.emit()])


def random_logic_verilog(
    n_gates: int = 200,
    n_inputs: int = 8,
    seed: int = 0,
    p_ff: float = 0.1,
    name: str = "randlogic",
) -> str:
    """Random combinational/sequential DAG for property-based tests.

    Gates read from earlier gates or primary inputs only, so the
    combinational part is acyclic by construction; a ``p_ff`` fraction
    become flip-flops (which may legally read later signals, forming
    sequential feedback).
    """
    if n_gates < 1 or n_inputs < 2:
        raise ConfigError("need n_gates >= 1 and n_inputs >= 2")
    rng = np.random.default_rng(seed)
    m = ModuleWriter(name)
    clk = m.input("clk")[0]
    rst = m.input("rst")[0]
    signals: list[str] = []
    for i in range(n_inputs):
        signals.append(m.input(f"in{i}")[0])
    gate_types = ["and", "or", "nand", "nor", "xor", "xnor", "not", "buf"]
    outs: list[str] = []
    ff_indices = set(
        rng.choice(n_gates, size=int(n_gates * p_ff), replace=False).tolist()
    )
    for g in range(n_gates):
        y = m.wire(f"n{g}")[0]
        if g in ff_indices and g > n_inputs:
            # feedback allowed: pick any existing or future-ish signal
            d = signals[int(rng.integers(len(signals)))]
            m.dffr(y, d, clk, rst)
        else:
            gt = gate_types[int(rng.integers(len(gate_types)))]
            n_in = 1 if gt in ("not", "buf") else int(rng.integers(2, 4))
            ins = [signals[int(rng.integers(len(signals)))] for _ in range(n_in)]
            m.gate(gt, y, *ins)
        signals.append(y)
        outs.append(y)
    # a few observable outputs
    for i, src in enumerate(outs[-min(4, len(outs)):]):
        o = m.output(f"out{i}")[0]
        m.gate("buf", o, src)
    return m.emit()
