"""Synthetic NoC / crossbar fabric (mesh-local net structure).

A torus of identical 5-port routers (north/south/east/west/local).
Each router registers its five input buses, keeps a 2-bit rotating
grant counter, and drives every output port from a 4:1 crossbar mux
over the *other* ports' input registers, with the select bits skewed
per port so the five muxes do not collapse into one net.

The net-locality profile is the interesting part for the partitioner:
almost every inter-instance net is a ``width``-bit point-to-point link
between torus neighbours (2-D locality), in sharp contrast to the
Viterbi decoder's chained survivor pipeline and to the memory
controller's global fan-out buses — three families, three hypergraph
shapes.

Both emitters exist: :func:`noc_verilog` (text, parsed by the normal
front end) and :func:`noc_stream` (array-native
:class:`~repro.verilog.netlist_csr.NetlistCSR` via template stamping),
equivalent gate-for-gate at any config.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..obs.recorder import NULL_RECORDER, Recorder
from ..verilog.netlist_csr import NetlistCSR
from ._vlog import ModuleWriter
from .stream import ModuleTemplate, StreamBuilder

__all__ = [
    "NocConfig", "noc_verilog", "noc_stream",
    "TEST_CONFIG", "BENCH_CONFIG", "SCALE_CONFIG",
]

_PORTS = ("n", "s", "e", "w", "l")


@dataclass(frozen=True)
class NocConfig:
    """Generator parameters.

    Attributes
    ----------
    rows / cols:
        Torus dimensions (routers = rows * cols).
    width:
        Link/data-path width in bits.
    """

    rows: int = 4
    cols: int = 4
    width: int = 6

    def __post_init__(self) -> None:
        if self.rows < 2 or self.cols < 2:
            raise ConfigError("rows and cols must be >= 2")
        if self.width < 2:
            raise ConfigError("width must be >= 2")

    @property
    def routers(self) -> int:
        """Router instances in the fabric."""
        return self.rows * self.cols


#: unit-test scale
TEST_CONFIG = NocConfig(rows=2, cols=2, width=3)
#: benchmark scale (a few thousand gates)
BENCH_CONFIG = NocConfig(rows=4, cols=4, width=6)
#: scale-ladder rung: ~120k gates of mesh-local connectivity
SCALE_CONFIG = NocConfig(rows=19, cols=19, width=6)


def _router_module(cfg: NocConfig) -> str:
    """One 5-port router: input registers, grant counter, crossbar."""
    m = ModuleWriter("noc_router")
    clk = m.input("clk")[0]
    rst = m.input("rst")[0]
    ins = {p: m.input(f"in_{p}", cfg.width) for p in _PORTS}
    outs = {p: m.output(f"out_{p}", cfg.width) for p in _PORTS}
    regs = {}
    for p in _PORTS:
        r = m.wire(f"r_{p}", cfg.width)
        for i in range(cfg.width):
            m.dffr(r[i], ins[p][i], clk, rst)
        regs[p] = r
    g = m.wire("g", 2)
    gn = m.wire("gn", 2)
    m.gate("not", gn[0], g[0])
    m.gate("xor", gn[1], g[1], g[0])
    m.dffr(g[0], gn[0], clk, rst)
    m.dffr(g[1], gn[1], clk, rst)
    for pi, p in enumerate(_PORTS):
        others = [regs[q] for q in _PORTS if q != p]
        s0 = m.wire(f"s0_{p}")[0]
        s1 = m.wire(f"s1_{p}")[0]
        m.gate("xor", s0, g[0], f"1'b{pi & 1}")
        m.gate("xor", s1, g[1], f"1'b{(pi >> 1) & 1}")
        t0 = m.wire(f"t0_{p}", cfg.width)
        t1 = m.wire(f"t1_{p}", cfg.width)
        m.mux2(s0, others[0], others[1], t0)
        m.mux2(s0, others[2], others[3], t1)
        m.mux2(s1, t0, t1, outs[p])
    return m.emit()


def _neighbor(cfg: NocConfig, r: int, c: int, port: str) -> tuple[int, int, str]:
    """Torus neighbour whose output feeds ``in_<port>`` of (r, c)."""
    if port == "n":
        return (r - 1) % cfg.rows, c, "s"
    if port == "s":
        return (r + 1) % cfg.rows, c, "n"
    if port == "e":
        return r, (c + 1) % cfg.cols, "w"
    return r, (c - 1) % cfg.cols, "e"


def _top_module(cfg: NocConfig) -> str:
    m = ModuleWriter("noc_top")
    clk = m.input("clk")[0]
    rst = m.input("rst")[0]
    m.input("inj", cfg.width)
    eject = m.output("eject", cfg.width)
    for r in range(cfg.rows):
        for c in range(cfg.cols):
            for p in _PORTS:
                m.wire(f"o_{p}_{r}_{c}", cfg.width)
    last = f"o_l_{cfg.rows - 1}_{cfg.cols - 1}"
    for i in range(cfg.width):
        m.gate("buf", eject[i], f"{last}[{i}]")
    for r in range(cfg.rows):
        for c in range(cfg.cols):
            conns = {"clk": clk, "rst": rst}
            for p in ("n", "s", "e", "w"):
                nr, nc, np_ = _neighbor(cfg, r, c, p)
                conns[f"in_{p}"] = f"o_{np_}_{nr}_{nc}"
            conns["in_l"] = "inj" if (r, c) == (0, 0) else f"o_l_{r}_{c}"
            for p in _PORTS:
                conns[f"out_{p}"] = f"o_{p}_{r}_{c}"
            m.instance("noc_router", f"rtr_{r}_{c}", conns)
    return m.emit()


def noc_verilog(cfg: NocConfig = BENCH_CONFIG) -> str:
    """Generate the fabric as Verilog source text."""
    return _router_module(cfg) + "\n" + _top_module(cfg)


def noc_stream(cfg: NocConfig = BENCH_CONFIG,
               recorder: Recorder = NULL_RECORDER) -> NetlistCSR:
    """Generate the fabric directly as a :class:`NetlistCSR`.

    Same order contract as :func:`~repro.circuits.viterbi
    .viterbi_stream`: the top module's eject bufs first (body order),
    then every router stamped in row-major declaration order — here as
    one vectorized stamp over the whole grid.
    """
    W = cfg.width
    router_t = ModuleTemplate.from_verilog(_router_module(cfg))
    b = StreamBuilder("noc_top")
    clk = b.net()
    rst = b.net()
    inj = b.nets(W)
    b.mark_input([clk, rst])
    b.mark_input(inj)
    eject = b.nets(W)
    b.mark_output(eject)
    # (rows, cols, 5 ports, W) output-bus net grid, allocated as one block
    out = b.nets(cfg.routers * 5 * W).reshape(cfg.rows, cfg.cols, 5, W)
    last = out[cfg.rows - 1, cfg.cols - 1, _PORTS.index("l")]
    b.gates("buf", eject, last[:, None])
    ports = np.empty((cfg.rows, cfg.cols, 2 + 10 * W), dtype=np.int64)
    ports[:, :, 0] = clk
    ports[:, :, 1] = rst
    col = 2
    for p in ("n", "s", "e", "w"):
        # in_<p> of every router = the facing output bus of its neighbour
        if p == "n":
            src = np.roll(out[:, :, _PORTS.index("s")], 1, axis=0)
        elif p == "s":
            src = np.roll(out[:, :, _PORTS.index("n")], -1, axis=0)
        elif p == "e":
            src = np.roll(out[:, :, _PORTS.index("w")], -1, axis=1)
        else:
            src = np.roll(out[:, :, _PORTS.index("e")], 1, axis=1)
        ports[:, :, col:col + W] = src
        col += W
    loc = out[:, :, _PORTS.index("l")].copy()
    loc[0, 0] = inj
    ports[:, :, col:col + W] = loc
    col += W
    for pi in range(5):
        ports[:, :, col:col + W] = out[:, :, pi]
        col += W
    b.stamp(router_t, ports.reshape(cfg.routers, -1))
    return b.build(recorder=recorder)