"""Synthetic gate-level CPU datapath — the paper's planned second workload.

The paper closes: "we are now in the process of synthesizing a gate
level Verilog design from an open source RTL design for a Sparc
computer so that we may experiment on a large, realistic design."  That
netlist never appeared in a follow-up we can reuse, so this generator
provides the equivalent: a hierarchical gate-level in-order CPU
datapath whose module mix differs structurally from the Viterbi
decoder — a register file of flip-flop banks (two-level hierarchy,
like the decoder's SMU), a wide combinational ALU, a PLA-style control
decoder, a gate-LUT program ROM, and pipeline registers — so the
partitioner is exercised on a second, differently shaped design.

The datapath is functionally real: the program counter walks a ROM of
encoded instructions; each instruction reads two registers, runs the
ALU, and writes back.  Programs are pseudo-random but fixed by seed.

Instruction encoding (width-independent):

    [op:3][rd:RB][ra:RB][rb:RB]   RB = log2(registers)

ops: 0 add, 1 sub (two's complement via add + invert), 2 and, 3 or,
4 xor, 5 mov-a, 6 nor, 7 not-a.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ._vlog import ModuleWriter, bus

__all__ = ["CpuConfig", "cpu_verilog", "CPU_BENCH_CONFIG", "CPU_TEST_CONFIG"]


@dataclass(frozen=True)
class CpuConfig:
    """Generator parameters.

    ``registers`` must be a power of two; ``rom_size`` instructions are
    generated pseudo-randomly from ``program_seed``.
    """

    width: int = 8
    registers: int = 8
    rom_size: int = 32
    program_seed: int = 0

    def __post_init__(self) -> None:
        if self.width < 4:
            raise ConfigError("width must be >= 4")
        if self.registers < 2 or self.registers & (self.registers - 1):
            raise ConfigError("registers must be a power of two >= 2")
        if self.rom_size < 2 or self.rom_size & (self.rom_size - 1):
            raise ConfigError("rom_size must be a power of two >= 2")

    @property
    def reg_bits(self) -> int:
        return max(1, (self.registers - 1).bit_length())

    @property
    def pc_bits(self) -> int:
        return max(1, (self.rom_size - 1).bit_length())

    @property
    def insn_bits(self) -> int:
        return 3 + 3 * self.reg_bits


CPU_BENCH_CONFIG = CpuConfig(width=8, registers=8, rom_size=32, program_seed=7)
CPU_TEST_CONFIG = CpuConfig(width=4, registers=4, rom_size=8, program_seed=3)


def _decoder_module(n_out: int, name: str) -> str:
    """n_in -> 2^n_in one-hot decoder built from AND trees."""
    n_in = max(1, (n_out - 1).bit_length())
    m = ModuleWriter(name)
    a = m.input("a", n_in)
    y = m.output("y", n_out)
    inv = m.wire("ninv", n_in)
    for i in range(n_in):
        m.gate("not", inv[i], a[i])
    for o in range(n_out):
        terms = [a[i] if (o >> i) & 1 else inv[i] for i in range(n_in)]
        if len(terms) == 1:
            m.gate("buf", y[o], terms[0])
        else:
            acc = terms[0]
            for t in terms[1:-1]:
                nxt = m.fresh("dp")[0]
                m.gate("and", nxt, acc, t)
                acc = nxt
            m.gate("and", y[o], acc, terms[-1])
    return m.emit()


def _register_module(cfg: CpuConfig) -> str:
    """One W-bit register with write enable and synchronous reset.

    Synthesis style: a hold mux (``en ? d : q``) in front of a
    resettable flip-flop, so the whole datapath leaves X after reset.
    """
    m = ModuleWriter("cpu_reg")
    d = m.input("d", cfg.width)
    clk = m.input("clk")[0]
    rst = m.input("rst")[0]
    en = m.input("en")[0]
    q = m.output("q", cfg.width)
    held = m.wire("held", cfg.width)
    for i in range(cfg.width):
        m.mux2(en, [q[i]], [d[i]], [held[i]])
        m.dffr(q[i], held[i], clk, rst)
    return m.emit()


def _regfile_module(cfg: CpuConfig) -> str:
    """Register file: write decoder + cpu_reg banks + two read muxes."""
    R, W, RB = cfg.registers, cfg.width, cfg.reg_bits
    m = ModuleWriter("cpu_regfile")
    clk = m.input("clk")[0]
    rst = m.input("rst")[0]
    wen = m.input("wen")[0]
    wsel = m.input("wsel", RB)
    wdata = m.input("wdata", W)
    asel = m.input("asel", RB)
    bsel = m.input("bsel", RB)
    adata = m.output("adata", W)
    bdata = m.output("bdata", W)
    onehot = m.wire("woh", R)
    m.instance("cpu_wdec", "wdec", {"a": "wsel", "y": "woh"})
    for r in range(R):
        en = m.wire(f"we_{r}")[0]
        m.gate("and", en, wen, onehot[r])
        m.wire(f"q{r}", W)
        m.instance(
            "cpu_reg", f"r{r}",
            {"d": "wdata", "clk": clk, "rst": rst, "en": en, "q": f"q{r}"},
        )
    reg_conns = {f"q{r}": f"q{r}" for r in range(R)}
    m.instance("cpu_rdmux", "amux", {**reg_conns, "sel": "asel", "out": "adata"})
    m.instance("cpu_rdmux", "bmux", {**reg_conns, "sel": "bsel", "out": "bdata"})
    return m.emit()


def _rdmux_module(cfg: CpuConfig) -> str:
    """Read port: binary mux tree over the register outputs."""
    R, W, RB = cfg.registers, cfg.width, cfg.reg_bits
    m = ModuleWriter("cpu_rdmux")
    for r in range(R):
        m.input(f"q{r}", W)
    sel = m.input("sel", RB)
    out = m.output("out", W)
    layer = [f"q{r}" for r in range(R)]
    for level in range(RB):
        nxt = []
        for i in range(0, len(layer), 2):
            if i + 1 >= len(layer):
                nxt.append(layer[i])
                continue
            name = f"mx_{level}_{i // 2}"
            m.wire(name, W)
            m.mux2(
                sel[level],
                bus(layer[i], W),
                bus(layer[i + 1], W),
                bus(name, W),
            )
            nxt.append(name)
        layer = nxt
    for i in range(W):
        m.gate("buf", out[i], f"{layer[0]}[{i}]")
    return m.emit()


def _alu_arith_module(cfg: CpuConfig) -> str:
    """Arithmetic unit: add and subtract results."""
    W = cfg.width
    m = ModuleWriter("cpu_arith")
    a = m.input("a", W)
    b = m.input("b", W)
    add = m.output("add", W)
    sub = m.output("sub", W)
    m.ripple_add(a, b, add)
    nb = m.wire("nb", W)
    for i in range(W):
        m.gate("not", nb[i], b[i])
    m.ripple_add(a, nb, sub, cin="1'b1")
    return m.emit()


def _alu_logic_module(cfg: CpuConfig) -> str:
    """Logic unit: bitwise and/or/xor/mov/nor/not results."""
    W = cfg.width
    m = ModuleWriter("cpu_logicops")
    a = m.input("a", W)
    b = m.input("b", W)
    andr = m.output("andr", W)
    orr = m.output("orr", W)
    xorr = m.output("xorr", W)
    mova = m.output("mova", W)
    norr = m.output("norr", W)
    nota = m.output("nota", W)
    for i in range(W):
        m.gate("and", andr[i], a[i], b[i])
        m.gate("or", orr[i], a[i], b[i])
        m.gate("xor", xorr[i], a[i], b[i])
        m.gate("buf", mova[i], a[i])
        m.gate("nor", norr[i], a[i], b[i])
        m.gate("not", nota[i], a[i])
    return m.emit()


def _alu_select_module(cfg: CpuConfig) -> str:
    """Result selector: 8:1 mux tree over the unit outputs."""
    W = cfg.width
    m = ModuleWriter("cpu_alusel")
    names = ["add", "sub", "andr", "orr", "xorr", "mova", "norr", "nota"]
    buses = [m.input(n, W) for n in names]
    op = m.input("op", 3)
    y = m.output("y", W)
    lvl0 = []
    for idx in range(4):
        w = m.wire(f"sel0_{idx}", W)
        m.mux2(op[0], buses[2 * idx], buses[2 * idx + 1], w)
        lvl0.append(w)
    lvl1 = []
    for idx in range(2):
        w = m.wire(f"sel1_{idx}", W)
        m.mux2(op[1], lvl0[2 * idx], lvl0[2 * idx + 1], w)
        lvl1.append(w)
    m.mux2(op[2], lvl1[0], lvl1[1], y)
    return m.emit()


def _alu_module(cfg: CpuConfig) -> str:
    """8-op ALU composed of arithmetic, logic, and select sub-units
    (real synthesis hierarchy: the partitioner can flatten the ALU one
    level before reaching raw gates)."""
    W = cfg.width
    m = ModuleWriter("cpu_alu")
    a = m.input("a", W)
    b = m.input("b", W)
    op = m.input("op", 3)
    y = m.output("y", W)
    for n in ("r_add", "r_sub", "r_and", "r_or", "r_xor", "r_mova",
              "r_nor", "r_nota"):
        m.wire(n, W)
    m.instance("cpu_arith", "arith", {"a": "a", "b": "b", "add": "r_add",
                                       "sub": "r_sub"})
    m.instance(
        "cpu_logicops", "logic",
        {"a": "a", "b": "b", "andr": "r_and", "orr": "r_or",
         "xorr": "r_xor", "mova": "r_mova", "norr": "r_nor",
         "nota": "r_nota"},
    )
    m.instance(
        "cpu_alusel", "sel",
        {"add": "r_add", "sub": "r_sub", "andr": "r_and", "orr": "r_or",
         "xorr": "r_xor", "mova": "r_mova", "norr": "r_nor",
         "nota": "r_nota", "op": "op", "y": "y"},
    )
    return m.emit()


_ROM_BANK_BITS = 4


def _rom_bank_modules(cfg: CpuConfig) -> tuple[list[str], list[tuple[str, int, int]]]:
    """OR-plane banks of up to 4 instruction bits each.

    Returns (module texts, [(module name, lo bit, width)]).  Bank
    contents are program-specific, so each bank is its own module def.
    """
    rng = np.random.default_rng(cfg.program_seed)
    IB = cfg.insn_bits
    words = [int(rng.integers(0, 1 << IB)) for _ in range(cfg.rom_size)]
    texts: list[str] = []
    banks: list[tuple[str, int, int]] = []
    for lo in range(0, IB, _ROM_BANK_BITS):
        width = min(_ROM_BANK_BITS, IB - lo)
        name = f"cpu_rombank{lo // _ROM_BANK_BITS}"
        m = ModuleWriter(name)
        rows = m.input("row", cfg.rom_size)
        data = m.output("data", width)
        for off in range(width):
            bit = lo + off
            with_bit = [r for r in range(cfg.rom_size) if (words[r] >> bit) & 1]
            if not with_bit:
                m.gate("buf", data[off], "1'b0")
            elif len(with_bit) == 1:
                m.gate("buf", data[off], rows[with_bit[0]])
            else:
                acc = rows[with_bit[0]]
                for r in with_bit[1:-1]:
                    nxt = m.fresh("orp")[0]
                    m.gate("or", nxt, acc, rows[r])
                    acc = nxt
                m.gate("or", data[off], acc, rows[with_bit[-1]])
        texts.append(m.emit())
        banks.append((name, lo, width))
    return texts, banks


def _rom_module(cfg: CpuConfig) -> str:
    """Program ROM: address decoder + OR-plane banks."""
    IB = cfg.insn_bits
    m = ModuleWriter("cpu_rom")
    addr = m.input("addr", cfg.pc_bits)
    data = m.output("data", IB)
    m.wire("row", cfg.rom_size)
    m.instance("cpu_adec", "adec", {"a": "addr", "y": "row"})
    _, banks = _rom_bank_modules(cfg)
    for name, lo, width in banks:
        out = f"bank{lo // _ROM_BANK_BITS}"
        out_bits = m.wire(out, width)
        m.instance(name, f"u_{out}", {"row": "row", "data": out})
        for off in range(width):
            m.gate("buf", data[lo + off], out_bits[off])
    return m.emit()


def _pc_module(cfg: CpuConfig) -> str:
    """Program counter: resettable incrementing register."""
    PB = cfg.pc_bits
    m = ModuleWriter("cpu_pc")
    clk = m.input("clk")[0]
    rst = m.input("rst")[0]
    pc = m.output("pc", PB)
    nxt = m.wire("nxt", PB)
    prev: str | None = None
    for i in range(PB):
        if prev is None:
            m.gate("not", nxt[i], pc[i])
            prev = pc[i]
        else:
            m.gate("xor", nxt[i], pc[i], prev)
            c = m.fresh("pcc")[0]
            m.gate("and", c, pc[i], prev)
            prev = c
    for i in range(PB):
        m.dffr(pc[i], nxt[i], clk, rst)
    return m.emit()


def _pipereg_module(name: str, width: int) -> str:
    m = ModuleWriter(name)
    d = m.input("d", width)
    clk = m.input("clk")[0]
    rst = m.input("rst")[0]
    q = m.output("q", width)
    for i in range(width):
        m.dffr(q[i], d[i], clk, rst)
    return m.emit()


def _top_module(cfg: CpuConfig) -> str:
    W, RB, IB, PB = cfg.width, cfg.reg_bits, cfg.insn_bits, cfg.pc_bits
    m = ModuleWriter("cpu_top")
    clk = m.input("clk")[0]
    rst = m.input("rst")[0]
    din = m.input("din", W)      # external operand injected into r0 writes
    result = m.output("result", W)

    m.wire("pc", PB)
    m.instance("cpu_pc", "pc_u", {"clk": clk, "rst": rst, "pc": "pc"})
    m.wire("insn", IB)
    m.instance("cpu_rom", "rom_u", {"addr": "pc", "data": "insn"})
    m.wire("insn_q", IB)
    m.instance(
        "cpu_ifreg", "if_reg",
        {"d": "insn", "clk": clk, "rst": rst, "q": "insn_q"},
    )

    # decode fields
    op_lo = 3 * RB
    m.wire("alu_y", W)
    m.wire("adata", W)
    m.wire("bdata", W)
    m.wire("wdata", W)
    # wdata = alu_y xor din (keeps external inputs relevant every cycle)
    for i in range(W):
        m.gate("xor", f"wdata[{i}]", f"alu_y[{i}]", f"din[{i}]")
    m.instance(
        "cpu_regfile", "rf",
        {
            "clk": clk,
            "rst": rst,
            "wen": "1'b1",
            "wsel": f"insn_q[{op_lo - 2 * RB - 1}:{op_lo - 3 * RB}]"
            if RB > 1 else f"insn_q[{op_lo - 3 * RB}]",
            "wdata": "wdata",
            "asel": f"insn_q[{op_lo - RB - 1}:{op_lo - 2 * RB}]"
            if RB > 1 else f"insn_q[{op_lo - 2 * RB}]",
            "bsel": f"insn_q[{op_lo - 1}:{op_lo - RB}]"
            if RB > 1 else f"insn_q[{op_lo - RB}]",
            "adata": "adata",
            "bdata": "bdata",
        },
    )
    m.instance(
        "cpu_alu", "alu_u",
        {
            "a": "adata",
            "b": "bdata",
            "op": f"insn_q[{IB - 1}:{IB - 3}]",
            "y": "alu_y",
        },
    )
    m.wire("res_q", W)
    m.instance(
        "cpu_exreg", "ex_reg",
        {"d": "alu_y", "clk": clk, "rst": rst, "q": "res_q"},
    )
    for i in range(W):
        m.gate("buf", result[i], f"res_q[{i}]")
    return m.emit()


def cpu_verilog(cfg: CpuConfig = CPU_BENCH_CONFIG) -> str:
    """Generate the CPU datapath as Verilog source text."""
    bank_texts, _ = _rom_bank_modules(cfg)
    return "\n".join(
        [
            _decoder_module(cfg.registers, "cpu_wdec"),
            _decoder_module(cfg.rom_size, "cpu_adec"),
            _register_module(cfg),
            _rdmux_module(cfg),
            _regfile_module(cfg),
            _alu_arith_module(cfg),
            _alu_logic_module(cfg),
            _alu_select_module(cfg),
            _alu_module(cfg),
            *bank_texts,
            _rom_module(cfg),
            _pc_module(cfg),
            _pipereg_module("cpu_ifreg", cfg.insn_bits),
            _pipereg_module("cpu_exreg", cfg.width),
            _top_module(cfg),
        ]
    )
