"""Streamed array-native circuit construction (template stamping).

The text path (generator → Verilog → parse → elaborate) allocates one
AST node per token and one :class:`~repro.verilog.netlist.Gate` object
per gate — fine at bench scale, prohibitive at the paper's ~1.2 M
gates.  The streamed path keeps the *generators'* structure but skips
text entirely:

1. each leaf/cell module is compiled **once** through the normal
   front end into a :class:`ModuleTemplate` — its gates as arrays with
   net references encoded relative to the module boundary (constant /
   port-bit / local);
2. a :class:`StreamBuilder` allocates global net-id blocks and
   *stamps* templates per instance: one vectorized offset-add per
   array, appended into bounded-size chunks
   (:class:`~repro.verilog.netlist_csr.ChunkedIntArray`);
3. the result freezes into a
   :class:`~repro.verilog.netlist_csr.NetlistCSR`.

Because a standalone elaboration of a cell module orders gates exactly
like the full-design elaboration does inside each instance (a module's
own gates in body order, then child instances depth-first in
declaration order), a streamed netlist lists gates in **the same order
as the parsed netlist** — gate ``i`` here is gate ``i`` there.  The
equivalence test (``tests/test_stream_circuits.py``) checks this
gate-for-gate on small configs; the invariants a streamed emitter must
uphold are spelled out in ``docs/performance.md``.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError, ElaborationError
from ..obs.recorder import NULL_RECORDER, Recorder
from ..verilog import compile_verilog
from ..verilog.netlist import _NUM_CONST_NETS, Netlist
from ..verilog.netlist_csr import ChunkedIntArray, NetlistCSR
from ..hypergraph.dtypes import INT32_MAX, index_dtype, require_int64

__all__ = ["ModuleTemplate", "StreamBuilder"]


class ModuleTemplate:
    """One cell module lowered to stampable arrays.

    Net references inside the template are encoded as ints:

    * ``0..2`` — the global constant nets (pass through unchanged);
    * ``-(p + 1)`` — bit ``p`` of the port vector (template inputs in
      port order, then outputs in port order — the standalone
      netlist's ``inputs + outputs`` concatenation);
    * ``3 + l`` — template-local net ``l``; each stamped instance gets
      a fresh contiguous block of ``num_locals`` global ids.

    Stamping is then a masked select over these codes — no per-gate
    Python work.
    """

    __slots__ = (
        "name", "gate_types", "gate_code", "pin_count", "pin_enc",
        "out_enc", "num_ports", "num_locals", "num_gates", "num_pins",
    )

    def __init__(
        self,
        name: str,
        gate_types: tuple[str, ...],
        gate_code: np.ndarray,
        pin_count: np.ndarray,
        pin_enc: np.ndarray,
        out_enc: np.ndarray,
        num_ports: int,
        num_locals: int,
    ) -> None:
        self.name = name
        self.gate_types = gate_types
        self.gate_code = gate_code
        self.pin_count = pin_count
        self.pin_enc = pin_enc
        self.out_enc = out_enc
        self.num_ports = int(num_ports)
        self.num_locals = int(num_locals)
        self.num_gates = len(gate_code)
        self.num_pins = len(pin_enc)

    @classmethod
    def from_netlist(cls, netlist: Netlist) -> "ModuleTemplate":
        """Encode a standalone-elaborated cell netlist.

        Ports are the netlist's primary inputs followed by primary
        outputs; stamp-site bindings must supply global net ids in that
        order.  Rejects cells whose elaboration merged two port bits or
        tied a port to a constant — such a cell cannot be stamped
        positionally (none of the repo's generators produce one).
        """
        ports = list(netlist.inputs) + list(netlist.outputs)
        if len(set(ports)) != len(ports):
            raise ElaborationError(
                f"cell {netlist.top!r}: two port bits share a net; "
                f"not stampable"
            )
        if any(p < _NUM_CONST_NETS for p in ports):
            raise ElaborationError(
                f"cell {netlist.top!r}: a port bit is a constant net; "
                f"not stampable"
            )
        enc = np.empty(netlist.num_nets, dtype=np.int64)
        n_locals = 0
        port_pos = {nid: pos for pos, nid in enumerate(ports)}
        for nid in range(netlist.num_nets):
            if nid < _NUM_CONST_NETS:
                enc[nid] = nid
            elif nid in port_pos:
                enc[nid] = -(port_pos[nid] + 1)
            else:
                enc[nid] = _NUM_CONST_NETS + n_locals
                n_locals += 1

        gtypes: list[str] = []
        type_code: dict[str, int] = {}
        codes = np.empty(netlist.num_gates, dtype=np.int16)
        counts = np.empty(netlist.num_gates, dtype=np.int16)
        pins: list[int] = []
        outs = np.empty(netlist.num_gates, dtype=np.int64)
        for gate in netlist.gates:
            code = type_code.get(gate.gtype)
            if code is None:
                code = type_code[gate.gtype] = len(gtypes)
                gtypes.append(gate.gtype)
            codes[gate.gid] = code
            counts[gate.gid] = len(gate.inputs)
            pins.extend(int(enc[n]) for n in gate.inputs)
            outs[gate.gid] = enc[gate.output]
        return cls(
            name=netlist.top,
            gate_types=tuple(gtypes),
            gate_code=codes,
            pin_count=counts,
            pin_enc=np.array(pins, dtype=np.int64),
            out_enc=outs,
            num_ports=len(ports),
            num_locals=n_locals,
        )

    @classmethod
    def from_verilog(cls, text: str, top: str | None = None) -> "ModuleTemplate":
        """Compile a cell's Verilog once and encode it for stamping."""
        return cls.from_netlist(compile_verilog(text, top=top))

    def expand(self, port_nets: np.ndarray, local_base: np.ndarray,
               enc: np.ndarray) -> np.ndarray:
        """Resolve encoded refs to global ids for a block of instances.

        ``port_nets`` is ``(n, num_ports)`` global ids, ``local_base``
        the ``(n,)`` first global id of each instance's local block;
        returns ``(n, len(enc))`` in instance-major order.
        """
        n = len(local_base)
        out = np.empty((n, len(enc)), dtype=np.int64)
        const = (enc >= 0) & (enc < _NUM_CONST_NETS)
        port = enc < 0
        local = enc >= _NUM_CONST_NETS
        out[:, const] = enc[const]
        out[:, port] = port_nets[:, -enc[port] - 1]
        out[:, local] = local_base[:, None] + (enc[local] - _NUM_CONST_NETS)
        return out


class StreamBuilder:
    """Accumulates a :class:`NetlistCSR` from net blocks and stamps.

    The emitter's responsibilities mirror the elaborator's order
    contract: emit the top module's own gates in body order first, then
    stamp instances in declaration order.  Net *allocation* order is
    free — only gate order and primary-I/O order are part of the
    equivalence contract.

    ``expected_pins`` picks the chunk element width via
    :func:`~repro.hypergraph.dtypes.index_dtype`; the builder refuses
    to allocate a net id that would overflow the chosen width.
    """

    def __init__(self, top: str, *, chunk: int = 1 << 18,
                 expected_nets: int = 0) -> None:
        self.top = top
        self._dtype = index_dtype(max(expected_nets, 0))
        self._num_nets = _NUM_CONST_NETS
        self._gate_types: list[str] = []
        self._type_code: dict[str, int] = {}
        self._code = ChunkedIntArray(np.int16, chunk)
        self._out = ChunkedIntArray(self._dtype, chunk)
        self._pin_count = ChunkedIntArray(np.int16, chunk)
        self._pin = ChunkedIntArray(self._dtype, chunk)
        self._inputs: list[int] = []
        self._outputs: list[int] = []
        self._template_codes: dict[int, np.ndarray] = {}
        self._stamps = 0
        self._built = False

    @property
    def num_gates(self) -> int:
        return len(self._code)

    @property
    def num_nets(self) -> int:
        return self._num_nets

    # -- nets --------------------------------------------------------------

    def nets(self, count: int) -> np.ndarray:
        """Allocate ``count`` fresh net ids (a contiguous int64 block)."""
        base = self._alloc(count)
        return np.arange(base, base + count, dtype=np.int64)

    def net(self) -> int:
        """Allocate one fresh net id."""
        return self._alloc(1)

    def _alloc(self, count: int) -> int:
        base = self._num_nets
        self._num_nets += int(count)
        if self._dtype.itemsize == 4 and self._num_nets - 1 > INT32_MAX:
            raise ConfigError(
                f"net ids exceeded int32 while building {self.top!r}; "
                f"pass a truthful expected_nets to StreamBuilder"
            )
        return base

    def mark_input(self, nets) -> None:
        """Record primary inputs (port declaration order matters)."""
        self._inputs.extend(int(n) for n in np.atleast_1d(nets))

    def mark_output(self, nets) -> None:
        """Record primary outputs (port declaration order matters)."""
        self._outputs.extend(int(n) for n in np.atleast_1d(nets))

    # -- gates -------------------------------------------------------------

    def _code_of(self, gtype: str) -> int:
        code = self._type_code.get(gtype)
        if code is None:
            code = self._type_code[gtype] = len(self._gate_types)
            self._gate_types.append(gtype)
        return code

    def gate(self, gtype: str, output: int, *inputs: int) -> None:
        """Emit one top-level gate (body-order position is significant)."""
        self._code.append(self._code_of(gtype))
        self._out.append(output)
        self._pin_count.append(len(inputs))
        for n in inputs:
            self._pin.append(n)

    def gates(self, gtype: str, outputs: np.ndarray,
              inputs: np.ndarray) -> None:
        """Emit a block of same-type gates.

        ``outputs`` is ``(n,)``; ``inputs`` is ``(n, arity)`` — every
        gate in the block has the same arity.
        """
        outputs = np.ascontiguousarray(outputs).reshape(-1)
        inputs = np.ascontiguousarray(inputs)
        if inputs.ndim != 2 or len(inputs) != len(outputs):
            raise ConfigError("gates() needs (n,) outputs and (n, arity) inputs")
        n, arity = inputs.shape
        self._code.extend(np.full(n, self._code_of(gtype), dtype=np.int16))
        self._out.extend(outputs)
        self._pin_count.extend(np.full(n, arity, dtype=np.int16))
        self._pin.extend(inputs)

    def stamp(self, template: ModuleTemplate, port_nets: np.ndarray) -> None:
        """Stamp instances of ``template`` in declaration order.

        ``port_nets`` is ``(n, template.num_ports)`` global net ids
        (template input bits first, then output bits).  Instances are
        processed in bounded blocks so the transient expansion stays
        ~one chunk regardless of ``n``.
        """
        port_nets = np.ascontiguousarray(port_nets, dtype=np.int64)
        if port_nets.ndim != 2 or port_nets.shape[1] != template.num_ports:
            raise ConfigError(
                f"template {template.name!r} has {template.num_ports} port "
                f"bits; got binding shape {port_nets.shape}"
            )
        n = len(port_nets)
        if n == 0:
            return
        codes = self._template_codes.get(id(template))
        if codes is None:
            codes = np.array(
                [self._code_of(t) for t in template.gate_types],
                dtype=np.int16,
            )[template.gate_code]
            self._template_codes[id(template)] = codes
        self._stamps += n
        base = self._alloc(n * template.num_locals)
        per = max(template.num_pins, template.num_gates, 1)
        block = max(1, self._pin.chunk // per)
        for lo in range(0, n, block):
            hi = min(n, lo + block)
            local_base = (
                base
                + np.arange(lo, hi, dtype=np.int64) * template.num_locals
            )
            bound = port_nets[lo:hi]
            self._code.extend(np.tile(codes, hi - lo))
            self._out.extend(
                template.expand(bound, local_base, template.out_enc)
            )
            self._pin_count.extend(np.tile(template.pin_count, hi - lo))
            self._pin.extend(
                template.expand(bound, local_base, template.pin_enc)
            )

    # -- freeze ------------------------------------------------------------

    def build(self, recorder: Recorder = NULL_RECORDER) -> NetlistCSR:
        """Freeze into a validated :class:`NetlistCSR` (single use).

        A recorder receives the deterministic ``circ.*`` construction
        counters (gate/net/pin totals and stamped instance count).
        """
        if self._built:
            raise ConfigError("StreamBuilder.build() called twice")
        self._built = True
        if recorder.enabled:
            recorder.incr("circ.gates", self.num_gates)
            recorder.incr("circ.nets", self._num_nets)
            recorder.incr("circ.pins", len(self._pin))
            recorder.incr("circ.stamps", self._stamps)
        counts = self._pin_count.freeze()
        ptr = np.zeros(len(counts) + 1, dtype=np.int64)
        np.cumsum(counts, dtype=np.int64, out=ptr[1:])
        return NetlistCSR(
            top=self.top,
            gate_types=tuple(self._gate_types),
            gate_code=self._code.freeze(),
            gate_output=require_int64(self._out.freeze()),
            pin_ptr=ptr,
            pin_net=require_int64(self._pin.freeze()),
            inputs=np.array(self._inputs, dtype=np.int64),
            outputs=np.array(self._outputs, dtype=np.int64),
            num_nets=self._num_nets,
        )
