"""Synthetic hierarchical Viterbi decoder (the paper's workload).

The paper's evaluation circuit is a synthesized Viterbi-decoder netlist
from RPI with 388 modules and ~1.2 M gates, which is not publicly
archived.  This generator reproduces the *structural properties* the
design-driven partitioner depends on — that is all the algorithm ever
sees:

* many medium-sized module instances visible at the top level
  (branch-metric units, add-compare-select butterflies, path-metric
  registers, register-exchange survivor columns);
* bus-structured inter-module nets (path metrics, decisions) against
  much denser intra-module gate connectivity (adders, comparators);
* a synchronous datapath: unit-delay combinational cones between
  flip-flop stages, driven by a clock and random symbol inputs.

The decoder is functionally meaningful gate logic (real adders,
comparators, muxes in the standard ACS butterfly topology with
register-exchange survivor memory), not filler.  The default
configuration mirrors the paper's 388 top-level instances; the gate
count scales with ``states``/``traceback``/``width``/``channels``, and
the scaled-down presets keep the reproduction laptop-sized (the paper's
absolute 1.2 M gates would only stretch wall-clock, not change which
partitioner wins).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..obs.recorder import NULL_RECORDER, Recorder
from ..verilog.netlist import CONST0, CONST1
from ..verilog.netlist_csr import NetlistCSR
from ._vlog import ModuleWriter
from .stream import ModuleTemplate, StreamBuilder

__all__ = [
    "ViterbiConfig", "viterbi_verilog", "viterbi_stream",
    "PAPER_CONFIG", "BENCH_CONFIG", "TEST_CONFIG",
    "S10K_CONFIG", "S100K_CONFIG", "XL_CONFIG",
]


@dataclass(frozen=True)
class ViterbiConfig:
    """Generator parameters.

    Attributes
    ----------
    channels:
        Independent decoder channels (the RPI design packed several).
    states:
        Trellis states per channel (power of two, >= 4).
    traceback:
        Register-exchange survivor depth (total columns).
    width:
        Path/branch-metric datapath width in bits.
    smu_cols:
        Survivor columns grouped into one SMU block instance.  The
        survivor memory dominates the gate count, so SMU blocks are the
        design's *large* super-gates — tight balance factors force the
        partitioner to flatten them into their column instances, which
        is exactly the size-skew tension the paper's Table 1 exhibits.
    """

    channels: int = 2
    states: int = 8
    traceback: int = 16
    width: int = 6
    smu_cols: int = 8

    def __post_init__(self) -> None:
        if self.channels < 1:
            raise ConfigError("channels must be >= 1")
        if self.states < 4 or self.states & (self.states - 1):
            raise ConfigError("states must be a power of two >= 4")
        if self.traceback < 2:
            raise ConfigError("traceback must be >= 2")
        if self.width < 3:
            raise ConfigError("width must be >= 3")
        if self.smu_cols < 1:
            raise ConfigError("smu_cols must be >= 1")

    @property
    def smu_blocks(self) -> int:
        """SMU block instances per channel (last one may be short)."""
        return -(-self.traceback // self.smu_cols)

    @property
    def instances(self) -> int:
        """Top-level module instances the partitioner will see."""
        return self.channels * (4 + 2 * self.states + self.smu_blocks)


#: 388 top-level instances, matching the paper's circuit shape
PAPER_CONFIG = ViterbiConfig(
    channels=4, states=32, traceback=116, width=8, smu_cols=4
)
#: benchmark default: a single decoder (no trivially independent
#: halves), big SMU super-gates, table sweeps in minutes
BENCH_CONFIG = ViterbiConfig(
    channels=1, states=16, traceback=32, width=6, smu_cols=8
)
#: unit-test scale
TEST_CONFIG = ViterbiConfig(channels=1, states=4, traceback=4, width=4, smu_cols=2)

#: scale-ladder rungs (streamed construction; gate counts ~10k / ~100k)
S10K_CONFIG = ViterbiConfig(
    channels=1, states=8, traceback=228, width=6, smu_cols=4
)
S100K_CONFIG = ViterbiConfig(
    channels=2, states=16, traceback=603, width=6, smu_cols=8
)
#: the paper's true scale: ~1.2 M gates (streamed construction only —
#: round-tripping this through Verilog text is exactly what the
#: streamed path exists to avoid)
XL_CONFIG = ViterbiConfig(
    channels=4, states=64, traceback=912, width=8, smu_cols=8
)


def _bmu_module(cfg: ViterbiConfig) -> str:
    """Branch-metric unit: Hamming distance between the received symbol
    pair and an expected pair, zero-extended to the metric width."""
    m = ModuleWriter("vit_bmu")
    rx0 = m.input("rx0")[0]
    rx1 = m.input("rx1")[0]
    e0 = m.input("e0")[0]
    e1 = m.input("e1")[0]
    bm = m.output("bm", cfg.width)
    d0 = m.wire("d0")[0]
    d1 = m.wire("d1")[0]
    m.gate("xor", d0, rx0, e0)
    m.gate("xor", d1, rx1, e1)
    m.gate("xor", bm[0], d0, d1)
    m.gate("and", bm[1], d0, d1)
    for i in range(2, cfg.width):
        m.gate("buf", bm[i], "1'b0")
    return m.emit()


def _acs_module(cfg: ViterbiConfig) -> str:
    """Add-compare-select: pm_out = min(pm_a + bm_a, pm_b + bm_b),
    decision = 1 when the b-path wins."""
    m = ModuleWriter("vit_acs")
    pm_a = m.input("pm_a", cfg.width)
    pm_b = m.input("pm_b", cfg.width)
    bm_a = m.input("bm_a", cfg.width)
    bm_b = m.input("bm_b", cfg.width)
    pm_o = m.output("pm_o", cfg.width)
    dec = m.output("dec")[0]
    sum_a = m.wire("sum_a", cfg.width)
    sum_b = m.wire("sum_b", cfg.width)
    m.ripple_add(pm_a, bm_a, sum_a)
    m.ripple_add(pm_b, bm_b, sum_b)
    m.less_than(sum_b, sum_a, dec)  # dec=1: b strictly smaller
    m.mux2(dec, sum_a, sum_b, pm_o)
    return m.emit()


def _pmreg_module(cfg: ViterbiConfig) -> str:
    """Path-metric register: one resettable flip-flop per metric bit."""
    m = ModuleWriter("vit_pmreg")
    d = m.input("d", cfg.width)
    clk = m.input("clk")[0]
    rst = m.input("rst")[0]
    q = m.output("q", cfg.width)
    for i in range(cfg.width):
        m.dffr(q[i], d[i], clk, rst)
    return m.emit()


def _recol_module(cfg: ViterbiConfig) -> str:
    """Register-exchange survivor column: per state, select the
    predecessor survivor bit by this state's decision, then register."""
    m = ModuleWriter("vit_recol")
    prev = m.input("prev", cfg.states)
    dec = m.input("dec", cfg.states)
    clk = m.input("clk")[0]
    rst = m.input("rst")[0]
    col = m.output("col", cfg.states)
    S = cfg.states
    for s in range(S):
        p0 = (2 * s) % S
        p1 = (2 * s + 1) % S
        sel = m.wire(f"sel_{s}")[0]
        m.mux2(dec[s], [prev[p0]], [prev[p1]], [sel])
        m.dffr(col[s], sel, clk, rst)
    return m.emit()


def _smu_module(cfg: ViterbiConfig, cols: int, name: str) -> str:
    """Survivor-memory block: ``cols`` chained register-exchange
    columns.  These blocks are the design's heavyweight super-gates;
    flattening one exposes its column instances (two-level hierarchy,
    exercising the paper's §3.2 flattening path)."""
    m = ModuleWriter(name)
    prev = m.input("prev", cfg.states)
    dec = m.input("dec", cfg.states)
    clk = m.input("clk")[0]
    rst = m.input("rst")[0]
    out = m.output("out", cfg.states)
    src = "prev"
    for j in range(cols):
        if j < cols - 1:
            m.wire(f"c{j}", cfg.states)
            dst = f"c{j}"
        else:
            dst = "out"
        m.instance(
            "vit_recol",
            f"col{j}",
            {"prev": src, "dec": "dec", "clk": clk, "rst": rst, "col": dst},
        )
        src = dst
    return m.emit()


def _top_module(cfg: ViterbiConfig) -> str:
    m = ModuleWriter("viterbi_top")
    clk = m.input("clk")[0]
    rst = m.input("rst")[0]
    W = cfg.width
    S = cfg.states
    out_bits: list[str] = []
    for c in range(cfg.channels):
        rx0 = m.input(f"ch{c}_rx0")[0]
        rx1 = m.input(f"ch{c}_rx1")[0]
        # branch metrics for the four expected symbols
        bms: list[list[str]] = []
        for sym in range(4):
            bm = m.wire(f"ch{c}_bm{sym}", W)
            m.instance(
                "vit_bmu",
                f"ch{c}_bmu{sym}",
                {
                    "rx0": rx0,
                    "rx1": rx1,
                    "e0": f"1'b{sym & 1}",
                    "e1": f"1'b{(sym >> 1) & 1}",
                    "bm": f"ch{c}_bm{sym}",
                },
            )
            bms.append(bm)
        # trellis: per-state ACS fed by two predecessor path metrics
        pm_q = [m.wire(f"ch{c}_pm{s}", W) for s in range(S)]
        pm_n = [m.wire(f"ch{c}_pmn{s}", W) for s in range(S)]
        dec = m.wire(f"ch{c}_dec", S)
        for s in range(S):
            p0 = (2 * s) % S
            p1 = (2 * s + 1) % S
            sym0 = (s ^ p0) & 3
            sym1 = (s ^ p1) & 3
            m.instance(
                "vit_acs",
                f"ch{c}_acs{s}",
                {
                    "pm_a": f"ch{c}_pm{p0}",
                    "pm_b": f"ch{c}_pm{p1}",
                    "bm_a": f"ch{c}_bm{sym0}",
                    "bm_b": f"ch{c}_bm{sym1}",
                    "pm_o": f"ch{c}_pmn{s}",
                    "dec": f"ch{c}_dec[{s}]",
                },
            )
            m.instance(
                "vit_pmreg",
                f"ch{c}_pmr{s}",
                {
                    "d": f"ch{c}_pmn{s}",
                    "clk": clk,
                    "rst": rst,
                    "q": f"ch{c}_pm{s}",
                },
            )
        # register-exchange survivor memory, grouped into SMU blocks
        prev_name = f"ch{c}_dec"
        remaining = cfg.traceback
        blk = 0
        while remaining > 0:
            cols = min(cfg.smu_cols, remaining)
            out_name = f"ch{c}_smu{blk}_out"
            m.wire(out_name, S)
            module = "vit_smu" if cols == cfg.smu_cols else "vit_smu_tail"
            m.instance(
                module,
                f"ch{c}_smu{blk}",
                {
                    "prev": prev_name,
                    "dec": f"ch{c}_dec",
                    "clk": clk,
                    "rst": rst,
                    "out": out_name,
                },
            )
            prev_name = out_name
            remaining -= cols
            blk += 1
        decoded = m.wire(f"ch{c}_out")[0]
        m.gate("buf", decoded, f"{prev_name}[0]")
        out_bits.append(decoded)
        m.output(f"ch{c}_bit")
        m.gate("buf", f"ch{c}_bit", decoded)
    return m.emit()


def viterbi_verilog(cfg: ViterbiConfig = BENCH_CONFIG) -> str:
    """Generate the full decoder as Verilog source text."""
    parts = [
        _bmu_module(cfg),
        _acs_module(cfg),
        _pmreg_module(cfg),
        _recol_module(cfg),
        _smu_module(cfg, cfg.smu_cols, "vit_smu"),
    ]
    tail = cfg.traceback % cfg.smu_cols
    if tail:
        parts.append(_smu_module(cfg, tail, "vit_smu_tail"))
    parts.append(_top_module(cfg))
    return "\n".join(parts)


def viterbi_stream(cfg: ViterbiConfig = BENCH_CONFIG,
                   recorder: Recorder = NULL_RECORDER) -> NetlistCSR:
    """Generate the decoder directly as a :class:`NetlistCSR`.

    Mirrors :func:`viterbi_verilog` + parse + elaborate without the
    text round trip: each cell module is compiled once into a
    :class:`~repro.circuits.stream.ModuleTemplate`, then stamped per
    instance.  Gate order, gate types and primary-I/O order match the
    parsed path exactly (the elaborator's own-gates-first /
    instances-in-declaration-order contract); net ids differ only by a
    bijection.  ``tests/test_stream_circuits.py`` pins this.
    """
    W, S = cfg.width, cfg.states
    bmu_t = ModuleTemplate.from_verilog(_bmu_module(cfg))
    acs_t = ModuleTemplate.from_verilog(_acs_module(cfg))
    pmreg_t = ModuleTemplate.from_verilog(_pmreg_module(cfg))
    recol = _recol_module(cfg)
    smu_t = ModuleTemplate.from_verilog(
        recol + "\n" + _smu_module(cfg, cfg.smu_cols, "vit_smu"),
        top="vit_smu",
    )
    tail = cfg.traceback % cfg.smu_cols
    smu_tail_t = (
        ModuleTemplate.from_verilog(
            recol + "\n" + _smu_module(cfg, tail, "vit_smu_tail"),
            top="vit_smu_tail",
        )
        if tail
        else None
    )

    b = StreamBuilder("viterbi_top")
    clk = b.net()
    rst = b.net()
    b.mark_input([clk, rst])

    # pass 1: per-channel nets, primary I/O, and the top module's own
    # gates — the elaborator emits *all* of a module's own gates before
    # any instance gates, so these bufs must come first
    chans = []
    for _c in range(cfg.channels):
        rx0 = b.net()
        rx1 = b.net()
        b.mark_input([rx0, rx1])
        bms = [b.nets(W) for _ in range(4)]
        pm = [b.nets(W) for _ in range(S)]
        pmn = [b.nets(W) for _ in range(S)]
        dec = b.nets(S)
        blocks = []
        remaining = cfg.traceback
        while remaining > 0:
            cols = min(cfg.smu_cols, remaining)
            blocks.append((cols, b.nets(S)))
            remaining -= cols
        decoded = b.net()
        bit = b.net()
        b.gate("buf", decoded, int(blocks[-1][1][0]))
        b.mark_output(bit)
        b.gate("buf", bit, decoded)
        chans.append((rx0, rx1, bms, pm, pmn, dec, blocks))

    # pass 2: stamp instances in declaration order
    for rx0, rx1, bms, pm, pmn, dec, blocks in chans:
        bmu_ports = np.empty((4, 4 + W), dtype=np.int64)
        for sym in range(4):
            bmu_ports[sym, 0] = rx0
            bmu_ports[sym, 1] = rx1
            bmu_ports[sym, 2] = CONST1 if sym & 1 else CONST0
            bmu_ports[sym, 3] = CONST1 if (sym >> 1) & 1 else CONST0
            bmu_ports[sym, 4:] = bms[sym]
        b.stamp(bmu_t, bmu_ports)
        for s in range(S):
            p0 = (2 * s) % S
            p1 = (2 * s + 1) % S
            sym0 = (s ^ p0) & 3
            sym1 = (s ^ p1) & 3
            acs_ports = np.concatenate(
                (pm[p0], pm[p1], bms[sym0], bms[sym1], pmn[s], dec[s:s + 1])
            )
            b.stamp(acs_t, acs_ports[None, :])
            pmreg_ports = np.concatenate(
                (pmn[s], [clk, rst], pm[s])
            )
            b.stamp(pmreg_t, pmreg_ports[None, :])
        prev = dec
        for cols, out in blocks:
            tmpl = smu_t if cols == cfg.smu_cols else smu_tail_t
            ports = np.concatenate((prev, dec, [clk, rst], out))
            b.stamp(tmpl, ports[None, :])
            prev = out
    return b.build(recorder=recorder)
