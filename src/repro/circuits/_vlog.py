"""Tiny helper for emitting structural Verilog from generators.

Generators build module bodies line by line; :class:`ModuleWriter`
handles port/wire declarations and gate instantiation syntax so the
generator code reads like netlist construction, not string plumbing.
All emitted text parses back through :mod:`repro.verilog`.
"""

from __future__ import annotations

import io

__all__ = ["ModuleWriter", "bus"]


def bus(name: str, width: int) -> list[str]:
    """Bit references ``name[0] .. name[width-1]`` (LSB first); a bare
    ``name`` for width 1."""
    if width == 1:
        return [name]
    return [f"{name}[{i}]" for i in range(width)]


class ModuleWriter:
    """Accumulates one Verilog module definition."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._ports: list[tuple[str, str, int]] = []  # (dir, name, width)
        self._wires: list[tuple[str, int]] = []
        self._body: list[str] = []
        self._tmp = 0

    # -- declarations ------------------------------------------------------

    def input(self, name: str, width: int = 1) -> list[str]:
        self._ports.append(("input", name, width))
        return bus(name, width)

    def output(self, name: str, width: int = 1) -> list[str]:
        self._ports.append(("output", name, width))
        return bus(name, width)

    def wire(self, name: str, width: int = 1) -> list[str]:
        self._wires.append((name, width))
        return bus(name, width)

    def fresh(self, prefix: str = "t", width: int = 1) -> list[str]:
        """Declare a uniquely named scratch wire."""
        name = f"{prefix}_{self._tmp}"
        self._tmp += 1
        return self.wire(name, width)

    # -- gates ----------------------------------------------------------------

    def gate(self, gtype: str, out: str, *ins: str) -> None:
        terms = ", ".join((out, *ins))
        self._body.append(f"  {gtype} ({terms});")

    def dff(self, q: str, d: str, clk: str) -> None:
        self._body.append(f"  dff ({q}, {d}, {clk});")

    def dffr(self, q: str, d: str, clk: str, rst: str) -> None:
        self._body.append(f"  dffr ({q}, {d}, {clk}, {rst});")

    def instance(self, module: str, name: str, connections: dict[str, str]) -> None:
        conns = ", ".join(f".{p}({e})" for p, e in connections.items())
        self._body.append(f"  {module} {name} ({conns});")

    def raw(self, line: str) -> None:
        self._body.append("  " + line)

    # -- compound gate-level blocks ----------------------------------------------

    def full_adder(self, a: str, b: str, cin: str, s: str, cout: str) -> None:
        """5-gate full adder."""
        t = self.fresh("fa", 3)
        self.gate("xor", t[0], a, b)
        self.gate("xor", s, t[0], cin)
        self.gate("and", t[1], t[0], cin)
        self.gate("and", t[2], a, b)
        self.gate("or", cout, t[1], t[2])

    def ripple_add(self, a: list[str], b: list[str], s: list[str], cout: str | None = None,
                   cin: str | None = None) -> None:
        """Ripple-carry adder over equal-width buses."""
        width = len(a)
        carries = self.fresh("rc", width)
        prev = cin
        for i in range(width):
            if prev is None:
                # half adder for the first stage
                self.gate("xor", s[i], a[i], b[i])
                self.gate("and", carries[i], a[i], b[i])
            else:
                self.full_adder(a[i], b[i], prev, s[i], carries[i])
            prev = carries[i]
        if cout is not None:
            self.gate("buf", cout, prev)

    def less_than(self, a: list[str], b: list[str], lt: str) -> None:
        """Unsigned comparator: lt = (a < b), MSB-down ripple."""
        width = len(a)
        prev: str | None = None
        for i in range(width - 1, -1, -1):
            eq = self.fresh("lt_eq")[0]
            li = self.fresh("lt_lt")[0]
            nb = self.fresh("lt_nb")[0]
            self.gate("xnor", eq, a[i], b[i])
            self.gate("not", nb, a[i])
            self.gate("and", li, nb, b[i])
            if prev is None:
                prev = li
            else:
                keep = self.fresh("lt_keep")[0]
                self.gate("and", keep, eq, prev)
                nxt = self.fresh("lt_next")[0]
                self.gate("or", nxt, li, keep)
                prev = nxt
        self.gate("buf", lt, prev if prev is not None else "1'b0")

    def mux2(self, sel: str, a: list[str], b: list[str], y: list[str]) -> None:
        """y = sel ? b : a, bitwise (3 gates + shared inverter)."""
        nsel = self.fresh("mx_ns")[0]
        self.gate("not", nsel, sel)
        for i in range(len(a)):
            ta = self.fresh("mx_a")[0]
            tb = self.fresh("mx_b")[0]
            self.gate("and", ta, a[i], nsel)
            self.gate("and", tb, b[i], sel)
            self.gate("or", y[i], ta, tb)

    # -- emission -------------------------------------------------------------------

    def emit(self) -> str:
        out = io.StringIO()
        port_names = ", ".join(p[1] for p in self._ports)
        out.write(f"module {self.name} ({port_names});\n")
        for direction, name, width in self._ports:
            rng = f"[{width - 1}:0] " if width > 1 else ""
            out.write(f"  {direction} {rng}{name};\n")
        for name, width in self._wires:
            rng = f"[{width - 1}:0] " if width > 1 else ""
            out.write(f"  wire {rng}{name};\n")
        for line in self._body:
            out.write(line + "\n")
        out.write("endmodule\n")
        return out.getvalue()
