"""Synthetic banked memory controller (global fan-out net structure).

A request pipeline feeds a one-hot bank decoder and broadcast
row/write-data buses into ``banks`` identical bank trackers; read data
and hit flags come back through OR-trees.  Each bank keeps an open-row
register with a comparator (row-hit detection) and a write-data
register gated by its select.

The partitioner-relevant property is the *anti-locality*: the row and
write-data buses are single nets with a sink in **every** bank, and
the OR-trees pull one wire out of every bank — high-fanout hyperedges
spanning the whole design, the opposite of the NoC fabric's
point-to-point neighbour links.  A partition of this design pays cut
on the broadcast nets no matter where it cuts, which stresses the
λ−1 connectivity metric rather than plain cut counting.

Both emitters exist: :func:`memctrl_verilog` (text) and
:func:`memctrl_stream` (array-native), equivalent gate-for-gate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..obs.recorder import NULL_RECORDER, Recorder
from ..verilog.netlist_csr import NetlistCSR
from ._vlog import ModuleWriter
from .stream import ModuleTemplate, StreamBuilder

__all__ = [
    "MemCtrlConfig", "memctrl_verilog", "memctrl_stream",
    "TEST_CONFIG", "BENCH_CONFIG", "SCALE_CONFIG",
]


@dataclass(frozen=True)
class MemCtrlConfig:
    """Generator parameters.

    Attributes
    ----------
    banks:
        Bank trackers (power of two, >= 2); the decoder one-hots
        ``log2(banks)`` address bits.
    abits:
        Row-address width broadcast to every bank.
    width:
        Data-path width.
    queue:
        Request-pipeline depth (register stages before the decoder).
    """

    banks: int = 4
    abits: int = 6
    width: int = 6
    queue: int = 2

    def __post_init__(self) -> None:
        if self.banks < 2 or self.banks & (self.banks - 1):
            raise ConfigError("banks must be a power of two >= 2")
        if self.abits < 2:
            raise ConfigError("abits must be >= 2")
        if self.width < 2:
            raise ConfigError("width must be >= 2")
        if self.queue < 1:
            raise ConfigError("queue must be >= 1")

    @property
    def bank_bits(self) -> int:
        """Decoder select width, ``log2(banks)``."""
        return self.banks.bit_length() - 1

    @property
    def addr_bits(self) -> int:
        """Primary address width: row bits + bank-select bits."""
        return self.abits + self.bank_bits


#: unit-test scale
TEST_CONFIG = MemCtrlConfig(banks=2, abits=3, width=3, queue=1)
#: benchmark scale (a few thousand gates)
BENCH_CONFIG = MemCtrlConfig(banks=16, abits=6, width=6, queue=2)
#: scale-ladder rung: ~90k gates dominated by broadcast fan-out
SCALE_CONFIG = MemCtrlConfig(banks=1024, abits=10, width=8, queue=4)


def _bank_module(cfg: MemCtrlConfig) -> str:
    """Open-row tracker: row/data registers + row-hit comparator."""
    m = ModuleWriter("mc_bank")
    clk = m.input("clk")[0]
    rst = m.input("rst")[0]
    sel = m.input("sel")[0]
    row = m.input("row", cfg.abits)
    wdata = m.input("wdata", cfg.width)
    rdata = m.output("rdata", cfg.width)
    hit = m.output("hit")[0]
    rq = m.wire("rq", cfg.abits)
    rmx = m.wire("rmx", cfg.abits)
    m.mux2(sel, rq, row, rmx)
    for i in range(cfg.abits):
        m.dffr(rq[i], rmx[i], clk, rst)
    eq = m.wire("eq", cfg.abits)
    for i in range(cfg.abits):
        m.gate("xnor", eq[i], rq[i], row[i])
    acc = eq[0]
    for i in range(1, cfg.abits):
        nxt = m.fresh("eqc")[0]
        m.gate("and", nxt, acc, eq[i])
        acc = nxt
    m.gate("and", hit, acc, sel)
    dq = m.wire("dq", cfg.width)
    dmx = m.wire("dmx", cfg.width)
    m.mux2(sel, dq, wdata, dmx)
    for i in range(cfg.width):
        m.dffr(dq[i], dmx[i], clk, rst)
    for i in range(cfg.width):
        m.gate("and", rdata[i], dq[i], hit)
    return m.emit()


def _top_module(cfg: MemCtrlConfig) -> str:
    m = ModuleWriter("memctrl_top")
    clk = m.input("clk")[0]
    rst = m.input("rst")[0]
    addr = m.input("addr", cfg.addr_bits)
    wdata = m.input("wdata", cfg.width)
    rdata = m.output("rdata", cfg.width)
    hit = m.output("hit")[0]
    # request pipeline: queue register stages over (addr, wdata)
    stage = list(addr) + list(wdata)
    for j in range(cfg.queue):
        q = m.wire(f"q{j}", cfg.addr_bits + cfg.width)
        for i, src in enumerate(stage):
            m.dffr(q[i], src, clk, rst)
        stage = q
    c_addr = stage[: cfg.addr_bits]
    c_wdata = stage[cfg.addr_bits:]
    # one-hot bank decoder over the high address bits
    nb = cfg.bank_bits
    inv = m.wire("binv", nb)
    for i in range(nb):
        m.gate("not", inv[i], c_addr[cfg.abits + i])
    sels = m.wire("sel", cfg.banks)
    for bk in range(cfg.banks):
        acc = None
        for i in range(nb):
            term = c_addr[cfg.abits + i] if (bk >> i) & 1 else inv[i]
            if acc is None:
                acc = term
            else:
                nxt = m.fresh("dec")[0]
                m.gate("and", nxt, acc, term)
                acc = nxt
        m.gate("buf", sels[bk], acc)
    # banks: row/wdata buses broadcast to every instance
    for bk in range(cfg.banks):
        m.wire(f"rd{bk}", cfg.width)
        m.instance(
            "mc_bank",
            f"bank{bk}",
            {
                "clk": clk,
                "rst": rst,
                "sel": f"sel[{bk}]",
                "row": f"{{{', '.join(reversed(c_addr[:cfg.abits]))}}}",
                "wdata": f"{{{', '.join(reversed(c_wdata))}}}",
                "rdata": f"rd{bk}",
                "hit": f"bhit[{bk}]",
            },
        )
    m.wire("bhit", cfg.banks)
    # OR-trees folding every bank's read data / hit back together
    for i in range(cfg.width):
        acc = f"rd0[{i}]"
        for bk in range(1, cfg.banks):
            dst = rdata[i] if bk == cfg.banks - 1 else m.fresh("ord")[0]
            m.gate("or", dst, acc, f"rd{bk}[{i}]")
            acc = dst
    acc = "bhit[0]"
    for bk in range(1, cfg.banks):
        dst = hit if bk == cfg.banks - 1 else m.fresh("ohit")[0]
        m.gate("or", dst, acc, f"bhit[{bk}]")
        acc = dst
    return m.emit()


def memctrl_verilog(cfg: MemCtrlConfig = BENCH_CONFIG) -> str:
    """Generate the controller as Verilog source text."""
    return _bank_module(cfg) + "\n" + _top_module(cfg)


def memctrl_stream(cfg: MemCtrlConfig = BENCH_CONFIG,
                   recorder: Recorder = NULL_RECORDER) -> NetlistCSR:
    """Generate the controller directly as a :class:`NetlistCSR`.

    The top module's own gates (pipeline registers, decoder, OR-trees)
    are emitted first in body order, then all banks in one vectorized
    stamp — the elaborator's order contract, as in the other streamed
    emitters.
    """
    A, W, nb = cfg.abits, cfg.width, cfg.bank_bits
    bank_t = ModuleTemplate.from_verilog(_bank_module(cfg))
    b = StreamBuilder("memctrl_top")
    clk = b.net()
    rst = b.net()
    addr = b.nets(cfg.addr_bits)
    wdata = b.nets(W)
    b.mark_input([clk, rst])
    b.mark_input(addr)
    b.mark_input(wdata)
    rdata = b.nets(W)
    hit = b.net()
    b.mark_output(rdata)
    b.mark_output(hit)

    stage = np.concatenate((addr, wdata))
    for _j in range(cfg.queue):
        q = b.nets(cfg.addr_bits + W)
        pins = np.stack(
            (stage, np.full_like(stage, clk), np.full_like(stage, rst)),
            axis=1,
        )
        b.gates("dffr", q, pins)
        stage = q
    c_addr = stage[: cfg.addr_bits]
    c_wdata = stage[cfg.addr_bits:]
    inv = b.nets(nb)
    b.gates("not", inv, c_addr[A:, None])
    sels = b.nets(cfg.banks)
    for bk in range(cfg.banks):
        acc = None
        for i in range(nb):
            term = int(c_addr[A + i]) if (bk >> i) & 1 else int(inv[i])
            if acc is None:
                acc = term
            else:
                nxt = b.net()
                b.gate("and", nxt, acc, term)
                acc = nxt
        b.gate("buf", int(sels[bk]), acc)
    rd = b.nets(cfg.banks * W).reshape(cfg.banks, W)
    bhit = b.nets(cfg.banks)
    for i in range(W):
        acc = int(rd[0, i])
        for bk in range(1, cfg.banks):
            dst = int(rdata[i]) if bk == cfg.banks - 1 else b.net()
            b.gate("or", dst, acc, int(rd[bk, i]))
            acc = dst
    acc = int(bhit[0])
    for bk in range(1, cfg.banks):
        dst = hit if bk == cfg.banks - 1 else b.net()
        b.gate("or", dst, acc, int(bhit[bk]))
        acc = dst

    n_ports = 3 + A + W + W + 1
    ports = np.empty((cfg.banks, n_ports), dtype=np.int64)
    ports[:, 0] = clk
    ports[:, 1] = rst
    ports[:, 2] = sels
    ports[:, 3:3 + A] = c_addr[:A]
    ports[:, 3 + A:3 + A + W] = c_wdata
    ports[:, 3 + A + W:3 + A + 2 * W] = rd
    ports[:, -1] = bhit
    b.stamp(bank_t, ports)
    return b.build(recorder=recorder)