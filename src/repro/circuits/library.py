"""Named circuit registries (text-compiled and array-streamed).

Benchmarks, examples and tests refer to circuits by name; the registry
maps names to generator thunks so a workload is one string in an
experiment config.  Every :data:`CIRCUITS` entry compiles through the
full Verilog front end (no precompiled netlists), keeping the paper's
vvp-like input path exercised everywhere.

:data:`STREAM_CIRCUITS` is the parallel registry for the array-native
construction path (:mod:`repro.circuits.stream`): entries emit a
:class:`~repro.verilog.netlist_csr.NetlistCSR` directly, with no
Verilog text or per-gate objects — the only practical route to the
scale-ladder rungs (``viterbi-xl`` is ~1.2 M gates; round-tripping it
through text costs minutes and gigabytes).  Families present in both
registries under the same name (``noc-*``, ``memctrl-*``,
``viterbi-test``/``-bench``) are equivalent gate-for-gate
(``tests/test_stream_circuits.py``).
"""

from __future__ import annotations

from typing import Callable

from ..errors import ConfigError
from ..obs.recorder import NULL_RECORDER, Recorder
from ..verilog import Netlist, compile_verilog
from ..verilog.netlist_csr import NetlistCSR
from .generators import (
    counter_verilog,
    lfsr_verilog,
    mesh_verilog,
    multiplier_verilog,
    pipeline_verilog,
    random_logic_verilog,
    ripple_adder_verilog,
)
from .cpu import CPU_BENCH_CONFIG, CPU_TEST_CONFIG, cpu_verilog
from .memctrl import memctrl_stream, memctrl_verilog
from .noc import noc_stream, noc_verilog
from .viterbi import (
    BENCH_CONFIG,
    PAPER_CONFIG,
    S10K_CONFIG,
    S100K_CONFIG,
    TEST_CONFIG,
    XL_CONFIG,
    ViterbiConfig,
    viterbi_stream,
    viterbi_verilog,
)
from . import memctrl as _memctrl
from . import noc as _noc

__all__ = [
    "CIRCUITS",
    "STREAM_CIRCUITS",
    "circuit_source",
    "load_circuit",
    "load_stream_circuit",
    "available_circuits",
    "available_stream_circuits",
]

CIRCUITS: dict[str, Callable[[], str]] = {
    "adder8": lambda: ripple_adder_verilog(8),
    "adder16": lambda: ripple_adder_verilog(16),
    "mul4": lambda: multiplier_verilog(4),
    "mul6": lambda: multiplier_verilog(6),
    "counter8": lambda: counter_verilog(8),
    "lfsr16": lambda: lfsr_verilog(16),
    "pipeline4": lambda: pipeline_verilog(4, 8),
    "pipeline8": lambda: pipeline_verilog(8, 8),
    "mesh3x3": lambda: mesh_verilog(3, 3, 4),
    "mesh4x4": lambda: mesh_verilog(4, 4, 4),
    "randlogic": lambda: random_logic_verilog(300, 8, seed=1),
    "viterbi-test": lambda: viterbi_verilog(TEST_CONFIG),
    "viterbi-bench": lambda: viterbi_verilog(BENCH_CONFIG),
    # the paper-shape workload: a single decoder, no trivially
    # independent halves, balance pressure at tight b
    "viterbi-single": lambda: viterbi_verilog(
        ViterbiConfig(channels=1, states=16, traceback=32, width=6)
    ),
    "viterbi-paper": lambda: viterbi_verilog(PAPER_CONFIG),
    # the paper's planned second workload: a CPU-shaped design
    "cpu-test": lambda: cpu_verilog(CPU_TEST_CONFIG),
    "cpu8": lambda: cpu_verilog(CPU_BENCH_CONFIG),
    # locality-contrast families (streamed twins in STREAM_CIRCUITS)
    "noc-test": lambda: noc_verilog(_noc.TEST_CONFIG),
    "noc-bench": lambda: noc_verilog(_noc.BENCH_CONFIG),
    "memctrl-test": lambda: memctrl_verilog(_memctrl.TEST_CONFIG),
    "memctrl-bench": lambda: memctrl_verilog(_memctrl.BENCH_CONFIG),
}

#: array-native emitters; large entries are stream-only by design —
#: the text path would round-trip megabytes of Verilog for nothing
STREAM_CIRCUITS: dict[str, Callable[..., NetlistCSR]] = {
    "viterbi-test": lambda **kw: viterbi_stream(TEST_CONFIG, **kw),
    "viterbi-bench": lambda **kw: viterbi_stream(BENCH_CONFIG, **kw),
    # the scale-ladder rungs (benchmarks/bench_scale_ladder.py)
    "viterbi-s10k": lambda **kw: viterbi_stream(S10K_CONFIG, **kw),
    "viterbi-s100k": lambda **kw: viterbi_stream(S100K_CONFIG, **kw),
    "viterbi-xl": lambda **kw: viterbi_stream(XL_CONFIG, **kw),
    "noc-test": lambda **kw: noc_stream(_noc.TEST_CONFIG, **kw),
    "noc-bench": lambda **kw: noc_stream(_noc.BENCH_CONFIG, **kw),
    "noc-scale": lambda **kw: noc_stream(_noc.SCALE_CONFIG, **kw),
    "memctrl-test": lambda **kw: memctrl_stream(_memctrl.TEST_CONFIG, **kw),
    "memctrl-bench": lambda **kw: memctrl_stream(_memctrl.BENCH_CONFIG, **kw),
    "memctrl-scale": lambda **kw: memctrl_stream(_memctrl.SCALE_CONFIG, **kw),
}


def available_circuits() -> list[str]:
    """Registered circuit names."""
    return sorted(CIRCUITS)


def available_stream_circuits() -> list[str]:
    """Registered array-native circuit names."""
    return sorted(STREAM_CIRCUITS)


def circuit_source(name: str) -> str:
    """Verilog source for a registered circuit."""
    try:
        gen = CIRCUITS[name]
    except KeyError:
        raise ConfigError(
            f"unknown circuit {name!r}; available: {', '.join(available_circuits())}"
        )
    return gen()


def load_circuit(name: str) -> Netlist:
    """Compile a registered circuit to an elaborated netlist."""
    return compile_verilog(circuit_source(name))


def load_stream_circuit(name: str,
                        recorder: Recorder = NULL_RECORDER) -> NetlistCSR:
    """Emit a registered circuit through the array-native path.

    ``recorder`` receives the builder's ``circ.*`` counters.
    """
    try:
        gen = STREAM_CIRCUITS[name]
    except KeyError:
        raise ConfigError(
            f"unknown stream circuit {name!r}; available: "
            f"{', '.join(available_stream_circuits())}"
        )
    return gen(recorder=recorder)
