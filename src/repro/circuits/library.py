"""Named circuit registry.

Benchmarks, examples and tests refer to circuits by name; the registry
maps names to generator thunks so a workload is one string in an
experiment config.  Every entry compiles through the full Verilog
front end (no precompiled netlists), keeping the paper's vvp-like
input path exercised everywhere.
"""

from __future__ import annotations

from typing import Callable

from ..errors import ConfigError
from ..verilog import Netlist, compile_verilog
from .generators import (
    counter_verilog,
    lfsr_verilog,
    mesh_verilog,
    multiplier_verilog,
    pipeline_verilog,
    random_logic_verilog,
    ripple_adder_verilog,
)
from .cpu import CPU_BENCH_CONFIG, CPU_TEST_CONFIG, cpu_verilog
from .viterbi import BENCH_CONFIG, PAPER_CONFIG, TEST_CONFIG, ViterbiConfig, viterbi_verilog

__all__ = ["CIRCUITS", "circuit_source", "load_circuit", "available_circuits"]

CIRCUITS: dict[str, Callable[[], str]] = {
    "adder8": lambda: ripple_adder_verilog(8),
    "adder16": lambda: ripple_adder_verilog(16),
    "mul4": lambda: multiplier_verilog(4),
    "mul6": lambda: multiplier_verilog(6),
    "counter8": lambda: counter_verilog(8),
    "lfsr16": lambda: lfsr_verilog(16),
    "pipeline4": lambda: pipeline_verilog(4, 8),
    "pipeline8": lambda: pipeline_verilog(8, 8),
    "mesh3x3": lambda: mesh_verilog(3, 3, 4),
    "mesh4x4": lambda: mesh_verilog(4, 4, 4),
    "randlogic": lambda: random_logic_verilog(300, 8, seed=1),
    "viterbi-test": lambda: viterbi_verilog(TEST_CONFIG),
    "viterbi-bench": lambda: viterbi_verilog(BENCH_CONFIG),
    # the paper-shape workload: a single decoder, no trivially
    # independent halves, balance pressure at tight b
    "viterbi-single": lambda: viterbi_verilog(
        ViterbiConfig(channels=1, states=16, traceback=32, width=6)
    ),
    "viterbi-paper": lambda: viterbi_verilog(PAPER_CONFIG),
    # the paper's planned second workload: a CPU-shaped design
    "cpu-test": lambda: cpu_verilog(CPU_TEST_CONFIG),
    "cpu8": lambda: cpu_verilog(CPU_BENCH_CONFIG),
}


def available_circuits() -> list[str]:
    """Registered circuit names."""
    return sorted(CIRCUITS)


def circuit_source(name: str) -> str:
    """Verilog source for a registered circuit."""
    try:
        gen = CIRCUITS[name]
    except KeyError:
        raise ConfigError(
            f"unknown circuit {name!r}; available: {', '.join(available_circuits())}"
        )
    return gen()


def load_circuit(name: str) -> Netlist:
    """Compile a registered circuit to an elaborated netlist."""
    return compile_verilog(circuit_source(name))
