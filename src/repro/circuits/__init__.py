"""Circuit workloads: generators, named registry, stimulus streams.

* :func:`viterbi_verilog` / :class:`ViterbiConfig` — the paper's
  workload (synthetic hierarchical Viterbi decoder), with
  :data:`PAPER_CONFIG` matching the RPI netlist's 388-instance shape.
* :mod:`repro.circuits.generators` — adders, multiplier, counter,
  LFSR, pipeline, mesh, random-logic test circuits.
* :func:`load_circuit` — compile a registry entry by name.
* :func:`random_vectors` — the paper's random-vector stimulus with
  clock detection.
"""

from .viterbi import (
    ViterbiConfig,
    viterbi_verilog,
    viterbi_stream,
    PAPER_CONFIG,
    BENCH_CONFIG,
    TEST_CONFIG,
    S10K_CONFIG,
    S100K_CONFIG,
    XL_CONFIG,
)
from .noc import NocConfig, noc_stream, noc_verilog
from .memctrl import MemCtrlConfig, memctrl_stream, memctrl_verilog
from .stream import ModuleTemplate, StreamBuilder
from .generators import (
    ripple_adder_verilog,
    multiplier_verilog,
    counter_verilog,
    lfsr_verilog,
    pipeline_verilog,
    mesh_verilog,
    random_logic_verilog,
)
from .cpu import CpuConfig, cpu_verilog, CPU_BENCH_CONFIG, CPU_TEST_CONFIG
from .library import (
    CIRCUITS,
    STREAM_CIRCUITS,
    available_circuits,
    available_stream_circuits,
    circuit_source,
    load_circuit,
    load_stream_circuit,
)
from .vectors import (
    VectorSchedule,
    detect_clocks,
    natural_schedule,
    random_vectors,
    vector_events,
)

__all__ = [
    "ViterbiConfig",
    "viterbi_verilog",
    "viterbi_stream",
    "PAPER_CONFIG",
    "BENCH_CONFIG",
    "TEST_CONFIG",
    "S10K_CONFIG",
    "S100K_CONFIG",
    "XL_CONFIG",
    "NocConfig",
    "noc_verilog",
    "noc_stream",
    "MemCtrlConfig",
    "memctrl_verilog",
    "memctrl_stream",
    "ModuleTemplate",
    "StreamBuilder",
    "ripple_adder_verilog",
    "multiplier_verilog",
    "counter_verilog",
    "lfsr_verilog",
    "pipeline_verilog",
    "mesh_verilog",
    "random_logic_verilog",
    "CIRCUITS",
    "STREAM_CIRCUITS",
    "available_circuits",
    "available_stream_circuits",
    "circuit_source",
    "load_circuit",
    "load_stream_circuit",
    "VectorSchedule",
    "detect_clocks",
    "natural_schedule",
    "random_vectors",
    "vector_events",
    "CpuConfig",
    "cpu_verilog",
    "CPU_BENCH_CONFIG",
    "CPU_TEST_CONFIG",
]
