"""Circuit workloads: generators, named registry, stimulus streams.

* :func:`viterbi_verilog` / :class:`ViterbiConfig` — the paper's
  workload (synthetic hierarchical Viterbi decoder), with
  :data:`PAPER_CONFIG` matching the RPI netlist's 388-instance shape.
* :mod:`repro.circuits.generators` — adders, multiplier, counter,
  LFSR, pipeline, mesh, random-logic test circuits.
* :func:`load_circuit` — compile a registry entry by name.
* :func:`random_vectors` — the paper's random-vector stimulus with
  clock detection.
"""

from .viterbi import (
    ViterbiConfig,
    viterbi_verilog,
    PAPER_CONFIG,
    BENCH_CONFIG,
    TEST_CONFIG,
)
from .generators import (
    ripple_adder_verilog,
    multiplier_verilog,
    counter_verilog,
    lfsr_verilog,
    pipeline_verilog,
    mesh_verilog,
    random_logic_verilog,
)
from .cpu import CpuConfig, cpu_verilog, CPU_BENCH_CONFIG, CPU_TEST_CONFIG
from .library import CIRCUITS, available_circuits, circuit_source, load_circuit
from .vectors import (
    VectorSchedule,
    detect_clocks,
    natural_schedule,
    random_vectors,
    vector_events,
)

__all__ = [
    "ViterbiConfig",
    "viterbi_verilog",
    "PAPER_CONFIG",
    "BENCH_CONFIG",
    "TEST_CONFIG",
    "ripple_adder_verilog",
    "multiplier_verilog",
    "counter_verilog",
    "lfsr_verilog",
    "pipeline_verilog",
    "mesh_verilog",
    "random_logic_verilog",
    "CIRCUITS",
    "available_circuits",
    "circuit_source",
    "load_circuit",
    "VectorSchedule",
    "detect_clocks",
    "natural_schedule",
    "random_vectors",
    "vector_events",
    "CpuConfig",
    "cpu_verilog",
    "CPU_BENCH_CONFIG",
    "CPU_TEST_CONFIG",
]
