"""Input-vector stream generation.

The paper drives its Viterbi circuit with random vectors — one million
for the full run, ten thousand for pre-simulation.  This module turns a
vector count into the timed :class:`~repro.sim.events.InputEvent`
stream both simulators consume, handling the one piece of testbench
realism random bits cannot provide: a usable clock.

Clock inputs are auto-detected (a primary input wired to the ``clk``
pin of any flip-flop) and toggled once per vector period; the data
inputs take fresh random values at the start of each period, giving the
synchronous logic half a period to settle before the sampling edge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from ..errors import ConfigError
from ..sim.events import InputEvent
from ..sim.logic import SEQ_CODE_MIN
from ..verilog.netlist import Netlist

__all__ = [
    "VectorSchedule",
    "detect_clocks",
    "natural_schedule",
    "random_vectors",
    "vector_events",
]


@dataclass(frozen=True)
class VectorSchedule:
    """Timing of one vector period.

    ``period`` virtual-time units per vector; data changes at offset 0,
    the clock rises at ``rise`` and falls at ``fall`` within the
    period.  Defaults give combinational logic half a period to settle
    before the sampling edge.
    """

    period: int = 16
    rise: int | None = None
    fall: int | None = None

    def resolved(self) -> tuple[int, int, int]:
        if self.period < 4:
            raise ConfigError(f"vector period must be >= 4, got {self.period}")
        rise = self.rise if self.rise is not None else self.period // 2
        fall = self.fall if self.fall is not None else rise + max(1, self.period // 4)
        if not (0 < rise < fall < self.period):
            raise ConfigError(
                f"invalid clock offsets rise={rise}, fall={fall} "
                f"for period {self.period}"
            )
        return self.period, rise, fall


def detect_clocks(netlist: Netlist) -> list[int]:
    """Primary-input nets wired to any flip-flop's clock pin."""
    from ..sim.logic import GATE_CODES

    pi = set(netlist.inputs)
    clocks: set[int] = set()
    for gate in netlist.gates:
        if GATE_CODES.get(gate.gtype, -1) >= SEQ_CODE_MIN and len(gate.inputs) >= 2:
            clk = gate.inputs[1]
            if clk in pi:
                clocks.add(clk)
    return sorted(clocks)


def natural_schedule(netlist: Netlist, margin: int = 4) -> VectorSchedule:
    """A vector schedule whose period exceeds the critical path.

    With the unit-delay model, registered values are only meaningful
    when the clock period exceeds the combinational depth; this derives
    such a period (rise at depth+margin, period twice that), which is
    what a functional testbench should use.  Partitioning/speedup
    studies can use shorter periods — the workload stays deterministic
    either way, the logic just pipelines wavefronts.
    """
    from ..sim.compiled import combinational_depth, compile_circuit

    depth = combinational_depth(compile_circuit(netlist))
    half = max(depth + margin, 4)
    return VectorSchedule(period=2 * half, rise=half, fall=half + max(2, half // 2))


def vector_events(
    data_nets: Sequence[int],
    vectors: np.ndarray,
    clock_nets: Sequence[int] = (),
    schedule: VectorSchedule = VectorSchedule(),
    start_time: int = 0,
) -> Iterator[InputEvent]:
    """Expand a ``(n_vectors, n_data_nets)`` bit matrix into input events.

    Yields events in nondecreasing time order: data bits at each period
    start, clock rise and fall at their offsets.
    """
    period, rise, fall = schedule.resolved()
    if vectors.ndim != 2 or vectors.shape[1] != len(data_nets):
        raise ConfigError(
            f"vector matrix shape {vectors.shape} does not match "
            f"{len(data_nets)} data nets"
        )
    for i in range(vectors.shape[0]):
        t0 = start_time + i * period
        row = vectors[i]
        for j, net in enumerate(data_nets):
            yield InputEvent(t0, net, int(row[j]))
        for clk in clock_nets:
            yield InputEvent(t0 + rise, clk, 1)
            yield InputEvent(t0 + fall, clk, 0)


def random_vectors(
    netlist: Netlist,
    n_vectors: int,
    seed: int = 0,
    schedule: VectorSchedule = VectorSchedule(),
) -> list[InputEvent]:
    """Random stimulus for a netlist (paper §4: "random vectors").

    Clock inputs are detected and driven with a regular toggle; all
    other primary inputs receive fresh uniform random bits each period.
    Initial values (time 0) also initialize the clock to 0 so the first
    rise is a well-defined edge.
    """
    rng = np.random.default_rng(seed)
    clocks = detect_clocks(netlist)
    data_nets = [n for n in netlist.inputs if n not in set(clocks)]
    bits = rng.integers(0, 2, size=(n_vectors, len(data_nets)), dtype=np.int8)
    events = list(
        vector_events(data_nets, bits, clock_nets=clocks, schedule=schedule)
    )
    for clk in clocks:
        events.append(InputEvent(0, clk, 0))
    events.sort(key=lambda e: (e.time, e.net))
    return events
