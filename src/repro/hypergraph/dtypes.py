"""Index-dtype policy for the array substrate.

Every CSR structure in the repo (hypergraph pins, netlist pin/sink
arrays, partition assignments) indexes entities with dense integers.
At the million-gate scale the index arrays themselves become a memory
term, so construction paths build them at the narrowest safe width and
widen exactly once at the freeze boundary:

* **int32** while the indexed id range provably fits (the streamed
  builders' accumulation chunks — half the transient footprint);
* **int64** for every frozen, query-facing array (``Hypergraph``,
  ``PartitionState``, ``CompiledCircuit``): the vectorized kernels mix
  index arrays with ``np.arange``/``np.repeat`` products and weight
  sums, and a single int64 array in a binary op silently upcasts the
  int32 operand *per call* — the churn costs more than the memory
  saved.

:func:`index_dtype` is the one decision point; both rules above and
the regression test for the 2^31 boundary go through it, so a future
width change happens in exactly one place.
"""

from __future__ import annotations

import numpy as np

__all__ = ["INT32_MAX", "index_dtype", "require_int64"]

#: largest id representable in a signed 32-bit index array
INT32_MAX = np.iinfo(np.int32).max


def index_dtype(max_id: int) -> np.dtype:
    """Narrowest safe index dtype for ids in ``[0, max_id]``.

    ``max_id`` is the largest id the array may hold (not the length).
    Returns ``int32`` while ``max_id`` fits — including the sentinel
    headroom for ``-1`` markers — and ``int64`` past the 2^31 - 1
    boundary.  Negative ``max_id`` (empty range) stays int32.
    """
    return np.dtype(np.int32 if max_id <= INT32_MAX else np.int64)


def require_int64(arr: np.ndarray) -> np.ndarray:
    """Widen a construction-side index array for the frozen substrate.

    The query kernels are int64-only by policy (see the module
    docstring); this is the single upcast at the freeze boundary.
    Returns ``arr`` itself when it is already int64 — no copy.
    """
    if arr.dtype == np.int64:
        return arr
    return arr.astype(np.int64)
