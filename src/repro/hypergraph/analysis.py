"""Circuit and hypergraph structure analysis.

Partitioning papers characterize their workloads with a handful of
structural statistics; this module computes them for any elaborated
netlist so users can tell *why* an algorithm behaves as it does on
their design (e.g. the Viterbi decoder's module-size skew vs the CPU
datapath's bit-sliced connectivity):

* gate/net/fanout distributions,
* logic depth (longest combinational path),
* module-instance size distribution and hierarchy depth,
* net locality: how many nets stay inside one first-level instance
  (the quantity the design-driven partitioner exploits — the paper's
  "design locality").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..verilog.netlist import Netlist
from .build import Clustering

__all__ = [
    "CircuitStats",
    "analyze_netlist",
    "locality_fraction",
    "StuckXReport",
    "stuck_x_report",
]


@dataclass
class CircuitStats:
    """Structural summary of an elaborated netlist."""

    gates: int
    nets: int
    inputs: int
    outputs: int
    flip_flops: int
    logic_depth: int
    top_instances: int
    hierarchy_depth: int
    instance_sizes: list[int] = field(default_factory=list)
    fanout_mean: float = 0.0
    fanout_max: int = 0
    local_nets: int = 0
    boundary_nets: int = 0

    @property
    def locality(self) -> float:
        """Fraction of multi-pin nets internal to one visible node."""
        total = self.local_nets + self.boundary_nets
        return self.local_nets / total if total else 0.0

    def summary(self) -> str:
        """Multi-line human-readable report."""
        sizes = sorted(self.instance_sizes, reverse=True)
        lines = [
            f"gates          : {self.gates}",
            f"nets           : {self.nets}",
            f"primary I/O    : {self.inputs} in / {self.outputs} out",
            f"flip-flops     : {self.flip_flops}",
            f"logic depth    : {self.logic_depth}",
            f"hierarchy      : {self.top_instances} top instances, "
            f"depth {self.hierarchy_depth}",
            f"instance sizes : max {sizes[0] if sizes else 0}, "
            f"median {sizes[len(sizes) // 2] if sizes else 0}, "
            f"min {sizes[-1] if sizes else 0}",
            f"fanout         : mean {self.fanout_mean:.1f}, max {self.fanout_max}",
            f"net locality   : {self.locality:.0%} of multi-pin nets stay "
            f"inside one visible node",
        ]
        return "\n".join(lines)


def locality_fraction(netlist: Netlist) -> tuple[int, int]:
    """(internal, boundary) counts of multi-pin nets at visible-node
    granularity — the design locality the paper's algorithm preserves."""
    clustering = Clustering.top_level(netlist)
    gate_cluster = [0] * netlist.num_gates
    for ci, cluster in enumerate(clustering.clusters):
        for gid in cluster.gate_ids:
            gate_cluster[gid] = ci
    local = boundary = 0
    for nid in range(netlist.num_nets):
        touched: set[int] = set()
        driver = netlist.net_driver[nid]
        if driver >= 0:
            touched.add(gate_cluster[driver])
        for gid in netlist.net_sinks[nid]:
            touched.add(gate_cluster[gid])
        pins = (1 if driver >= 0 else 0) + len(netlist.net_sinks[nid])
        if pins < 2:
            continue
        if len(touched) <= 1:
            local += 1
        else:
            boundary += 1
    return local, boundary


@dataclass
class StuckXReport:
    """Nets still unknown after a stimulus — reset/initialization bugs.

    The classic causes: a flip-flop without reset in a feedback loop
    (its X re-circulates forever), an undriven net, a clock period
    shorter than the logic depth.  ``by_cause`` buckets the stuck nets.
    """

    total_nets: int
    stuck: list[int] = field(default_factory=list)
    by_cause: dict[str, list[int]] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.stuck

    def summary(self, netlist: Netlist, limit: int = 8) -> str:
        if self.clean:
            return "no stuck-X nets: the design initializes completely"
        lines = [f"{len(self.stuck)} of {self.total_nets} nets still X:"]
        for cause, nets in self.by_cause.items():
            names = ", ".join(netlist.net_name(n) for n in nets[:limit])
            more = f" (+{len(nets) - limit} more)" if len(nets) > limit else ""
            lines.append(f"  {cause}: {names}{more}")
        return "\n".join(lines)


def stuck_x_report(netlist: Netlist, events) -> StuckXReport:
    """Simulate a stimulus and classify every net still X at the end.

    Pass a real testbench stimulus (reset sequence + a few cycles, e.g.
    from :class:`repro.sim.Testbench`); nets that stay X under it are
    initialization escapes.
    """
    from ..sim.compiled import compile_circuit
    from ..sim.logic import VX
    from ..sim.sequential import SequentialSimulator

    circuit = compile_circuit(netlist)
    sim = SequentialSimulator(circuit)
    sim.add_inputs(events)
    sim.run()
    undriven = set(netlist.undriven_nets())
    ff_outputs = {g.output for g in netlist.sequential_gates()}
    report = StuckXReport(total_nets=netlist.num_nets)
    for nid in range(3, netlist.num_nets):
        if int(sim.values[nid]) != VX:
            continue
        report.stuck.append(nid)
        if nid in undriven:
            cause = "undriven net"
        elif nid in ff_outputs:
            cause = "uninitialized flip-flop (no reset reached it)"
        elif netlist.net_driver[nid] == -1:
            cause = "primary input never driven by the stimulus"
        else:
            cause = "derived from another stuck-X net"
        report.by_cause.setdefault(cause, []).append(nid)
    return report


def analyze_netlist(netlist: Netlist) -> CircuitStats:
    """Compute the full structural summary."""
    from ..sim.compiled import combinational_depth, compile_circuit

    circuit = compile_circuit(netlist)
    fanouts = [len(s) for s in netlist.net_sinks]
    nonzero = [f for f in fanouts if f > 0]
    local, boundary = locality_fraction(netlist)
    hierarchy_depth = max(
        (len(node.path) for node in netlist.hierarchy.walk()), default=0
    )
    return CircuitStats(
        gates=netlist.num_gates,
        nets=netlist.num_nets,
        inputs=len(netlist.inputs),
        outputs=len(netlist.outputs),
        flip_flops=len(netlist.sequential_gates()),
        logic_depth=combinational_depth(circuit),
        top_instances=len(netlist.hierarchy.children),
        hierarchy_depth=hierarchy_depth,
        instance_sizes=[
            n.total_gates for n in netlist.hierarchy.children.values()
        ],
        fanout_mean=float(np.mean(nonzero)) if nonzero else 0.0,
        fanout_max=max(nonzero, default=0),
        local_nets=local,
        boundary_nets=boundary,
    )
