"""hMetis ``.hgr`` file format reader/writer.

The hMetis hypergraph format (Karypis et al.) is the lingua franca of
VLSI partitioning benchmarks::

    <num_hyperedges> <num_vertices> [fmt]
    <pin> <pin> ...          # one line per hyperedge, 1-based vertex ids
    ...
    [<vertex weight>]        # one line per vertex when fmt includes 10

``fmt`` is ``1`` (edge weights: each edge line starts with its weight),
``10`` (vertex weights appended), ``11`` (both), or absent (neither).
Comment lines start with ``%``.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from ..errors import HypergraphError
from .hypergraph import Hypergraph

__all__ = ["write_hgr", "read_hgr", "dumps_hgr", "loads_hgr"]


def dumps_hgr(hg: Hypergraph) -> str:
    """Serialize a hypergraph to hMetis text format.

    Edge weights are emitted only if any differ from 1; likewise vertex
    weights.  Vertex ids are 1-based per the format.
    """
    sizes = hg._edge_ptr[1:] - hg._edge_ptr[:-1]
    if (sizes == 0).any():
        bad = int(np.argmax(sizes == 0))
        raise HypergraphError(
            f"edge {bad} has no pins — the hgr format cannot represent "
            "empty hyperedges (an empty pin line parses as a blank line)"
        )
    has_ew = bool((hg.edge_weight != 1).any())
    has_vw = bool((hg.vertex_weight != 1).any())
    fmt = (1 if has_ew else 0) + (10 if has_vw else 0)
    buf = io.StringIO()
    header = f"{hg.num_edges} {hg.num_vertices}"
    if fmt:
        header += f" {fmt}"
    buf.write(header + "\n")
    for e in range(hg.num_edges):
        pins = " ".join(str(int(v) + 1) for v in hg.edge_vertices(e))
        if has_ew:
            buf.write(f"{int(hg.edge_weight[e])} {pins}\n")
        else:
            buf.write(pins + "\n")
    if has_vw:
        for v in range(hg.num_vertices):
            buf.write(f"{int(hg.vertex_weight[v])}\n")
    return buf.getvalue()


def write_hgr(hg: Hypergraph, path: str | Path) -> None:
    """Write a hypergraph to an hMetis ``.hgr`` file."""
    Path(path).write_text(dumps_hgr(hg))


def loads_hgr(text: str) -> Hypergraph:
    """Parse hMetis text format into a :class:`Hypergraph`."""
    lines = [ln.strip() for ln in text.splitlines()]
    lines = [ln for ln in lines if ln and not ln.startswith("%")]
    if not lines:
        raise HypergraphError("empty hgr file")
    header = lines[0].split()
    if len(header) not in (2, 3):
        raise HypergraphError(f"malformed hgr header: {lines[0]!r}")
    num_edges, num_vertices = int(header[0]), int(header[1])
    fmt = int(header[2]) if len(header) == 3 else 0
    if fmt not in (0, 1, 10, 11):
        raise HypergraphError(f"unsupported hgr fmt {fmt}")
    has_ew = fmt in (1, 11)
    has_vw = fmt in (10, 11)
    expected = 1 + num_edges + (num_vertices if has_vw else 0)
    if len(lines) < expected:
        raise HypergraphError(
            f"hgr file truncated: expected {expected} lines, got {len(lines)}"
        )
    edges = []
    edge_weights = []
    for i in range(num_edges):
        fields = [int(x) for x in lines[1 + i].split()]
        if has_ew:
            edge_weights.append(fields[0])
            fields = fields[1:]
        if any(p < 1 or p > num_vertices for p in fields):
            raise HypergraphError(f"hgr edge {i} has pin out of range")
        edges.append([p - 1 for p in fields])
    if has_vw:
        vw = [int(lines[1 + num_edges + v]) for v in range(num_vertices)]
    else:
        vw = [1] * num_vertices
    return Hypergraph.from_edges(vw, edges, edge_weights if has_ew else None)


def read_hgr(path: str | Path) -> Hypergraph:
    """Read an hMetis ``.hgr`` file."""
    return loads_hgr(Path(path).read_text())
